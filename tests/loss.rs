//! Internet asynchrony (§4.6): "the multicast protocol can never be
//! absolutely reliable … both [absent and stale pointers] are only of a
//! very small fraction and do no substantial harm." These tests inject
//! real datagram loss under the full protocol and check that the
//! acknowledgement/retry, reconciliation, and refresh/expiry machinery
//! keeps peer lists usable.

use bytes::Bytes;
use peerwindow::des::{DetRng, SimTime};
use peerwindow::prelude::*;
use peerwindow::sim::FullSim;
use peerwindow::topology::UniformNetwork;

fn protocol() -> ProtocolConfig {
    ProtocolConfig {
        probe_interval_us: 3_000_000,
        rpc_timeout_us: 400_000,
        processing_delay_us: 10_000,
        bandwidth_window_us: 10_000_000,
        default_refresh_us: 40_000_000, // quiet-system anti-entropy every 40 s
        reconcile_interval_us: 45_000_000, // periodic pull: lossy network
        ..ProtocolConfig::default()
    }
}

fn build(loss: f64, seed: u64) -> (FullSim, Vec<u32>) {
    let mut sim = FullSim::new(
        protocol(),
        Box::new(UniformNetwork { latency_us: 20_000 }),
        seed,
    );
    sim.set_loss(loss);
    let mut rng = DetRng::new(seed ^ 0xA11CE);
    sim.spawn_seed(NodeId(rng.next_u128()), 1e9, Bytes::new());
    let mut slots = vec![];
    for _ in 0..35 {
        sim.run_for(800_000);
        if let Some(s) = sim.spawn_joiner(NodeId(rng.next_u128()), 1e9, Bytes::new()) {
            slots.push(s);
        }
    }
    (sim, slots)
}

#[test]
fn three_percent_loss_still_converges() {
    let (mut sim, _) = build(0.03, 1);
    // Enough horizon for several refresh (40 s) and reconcile (45 s)
    // rounds after the join storm: pointers lost to dropped multicasts
    // only heal at that anti-entropy cadence.
    sim.run_until(SimTime::from_secs(240));
    assert!(sim.dropped() > 0, "loss model inactive");
    let (correct, missing, stale) = sim.accuracy();
    let err = (missing + stale) as f64 / correct as f64;
    assert!(
        err < 0.02,
        "error fraction {err:.4} ({missing} missing, {stale} stale of {correct})"
    );
    // Retries actually fired (lost sends were re-attempted).
    let retries: u64 = sim.machines().map(|(_, m)| m.stats().tx_msgs).sum();
    assert!(retries > 0);
}

#[test]
fn loss_plus_crashes_heal_via_refresh_and_expiry() {
    let (mut sim, slots) = build(0.02, 2);
    sim.run_until(SimTime::from_secs(60));
    for &v in slots.iter().take(5) {
        sim.crash_after(v, 0);
    }
    // Long horizon: detection under loss takes extra retry rounds, and
    // stragglers fall to the §4.6 expiry.
    sim.run_until(SimTime::from_secs(420));
    let (correct, missing, stale) = sim.accuracy();
    let err = (missing + stale) as f64 / correct as f64;
    assert!(
        err < 0.03,
        "error fraction {err:.4} ({missing} missing, {stale} stale of {correct})"
    );
    assert!(!sim.log().failures.is_empty());
}

#[test]
fn heavier_loss_degrades_gracefully_not_catastrophically() {
    // 10 % datagram loss is an order of magnitude beyond measured
    // Internet loss. At this rate the §4.1 three-attempt probe misfires
    // regularly (p = 0.19³ per cycle), so live nodes are transiently
    // declared dead and resurrected by their next §4.6 refresh: the error
    // fraction *oscillates* — spikes of ~N pairs per false obituary,
    // healed within a refresh period. The meaningful property is that the
    // time-averaged error stays bounded far from collapse.
    let (mut sim, _) = build(0.10, 3);
    let mut samples = Vec::new();
    for t in [240u64, 300, 360, 420] {
        sim.run_until(SimTime::from_secs(t));
        let (c, m, s) = sim.accuracy();
        samples.push((m + s) as f64 / c.max(1) as f64);
    }
    let live = sim.live_count();
    assert!(live >= 25, "only {live} nodes survived joining at 10% loss");
    let avg = samples.iter().sum::<f64>() / samples.len() as f64;
    assert!(
        avg < 0.15,
        "time-averaged error fraction {avg:.3} (samples: {samples:?})"
    );
}
