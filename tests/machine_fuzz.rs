//! Robustness fuzzing of the sans-IO node machine: arbitrary message
//! sequences from arbitrary senders must never panic the machine or
//! violate its structural invariants. (The UDP transport feeds the
//! machine whatever decodes — a hostile peer controls these inputs.)

use bytes::Bytes;
use peerwindow::prelude::*;
use proptest::prelude::*;

fn arb_level() -> impl Strategy<Value = Level> {
    (0u8..=128).prop_map(Level::new)
}

fn arb_target() -> impl Strategy<Value = Target> {
    (any::<u128>(), any::<u64>(), arb_level()).prop_map(|(id, addr, level)| Target {
        id: NodeId(id),
        addr: Addr(addr),
        level,
    })
}

fn arb_pointer() -> impl Strategy<Value = Pointer> {
    (
        any::<u128>(),
        any::<u64>(),
        arb_level(),
        proptest::collection::vec(any::<u8>(), 0..16),
    )
        .prop_map(|(id, addr, level, info)| {
            Pointer::with_info(NodeId(id), Addr(addr), level, Bytes::from(info))
        })
}

fn arb_event() -> impl Strategy<Value = StateEvent> {
    (
        any::<u128>(),
        any::<u64>(),
        arb_level(),
        0u8..5,
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(|(subject, addr, level, kind, seq, origin)| StateEvent {
            subject: NodeId(subject),
            addr: Addr(addr),
            level,
            kind: match kind {
                0 => EventKind::Join,
                1 => EventKind::Leave,
                2 => EventKind::LevelShift {
                    from: Level::new(seq as u8 & 0x7F),
                },
                3 => EventKind::InfoChange,
                _ => EventKind::Refresh,
            },
            seq,
            origin_us: origin,
            info: Bytes::new(),
        })
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        Just(Message::Probe),
        Just(Message::ProbeAck),
        arb_event().prop_map(|event| Message::Report { event }),
        (
            any::<u128>(),
            any::<u64>(),
            proptest::collection::vec(arb_target(), 0..4)
        )
            .prop_map(|(id, seq, tops)| Message::ReportAck {
                key: (NodeId(id), seq),
                tops,
            }),
        (arb_event(), any::<u8>()).prop_map(|(event, step)| Message::Multicast {
            event,
            step: step.min(128),
        }),
        (any::<u128>(), any::<u64>()).prop_map(|(id, seq)| Message::MulticastAck {
            key: (NodeId(id), seq)
        }),
        any::<u128>().prop_map(|id| Message::FindTop { joiner: NodeId(id) }),
        proptest::collection::vec(arb_target(), 0..4)
            .prop_map(|tops| Message::FindTopReply { tops }),
        Just(Message::LevelQuery),
        (arb_level(), any::<f64>())
            .prop_map(|(level, cost_bps)| Message::LevelQueryReply { level, cost_bps }),
        (any::<u128>(), 0u8..=128).prop_map(|(bits, len)| Message::Download {
            scope: Prefix::new(bits, len)
        }),
        (
            any::<u128>(),
            0u8..=128,
            proptest::collection::vec(arb_pointer(), 0..6),
            proptest::collection::vec(arb_target(), 0..4),
        )
            .prop_map(|(bits, len, pointers, tops)| Message::DownloadReply {
                scope: Prefix::new(bits, len),
                pointers,
                tops,
            }),
        Just(Message::TopListRequest),
        proptest::collection::vec(arb_target(), 0..4)
            .prop_map(|tops| Message::TopListReply { tops }),
    ]
}

fn arb_input() -> impl Strategy<Value = Input> {
    prop_oneof![
        (any::<u128>(), any::<u64>(), arb_message()).prop_map(|(from, addr, msg)| {
            Input::Message {
                from: NodeId(from),
                from_addr: Addr(addr),
                msg,
            }
        }),
        prop_oneof![
            Just(Timer::Probe),
            any::<u64>().prop_map(Timer::RpcTimeout),
            Just(Timer::Adapt),
            Just(Timer::Refresh),
            Just(Timer::Expire),
            Just(Timer::Reconcile),
        ]
        .prop_map(Input::Timer),
        prop_oneof![
            proptest::collection::vec(any::<u8>(), 0..8)
                .prop_map(|b| Command::ChangeInfo(Bytes::from(b))),
            any::<f64>().prop_map(Command::SetThreshold),
            arb_level().prop_map(Command::SetLevel),
        ]
        .prop_map(Input::Command),
    ]
}

/// Structural invariants that must hold after every input.
fn check_invariants(m: &NodeMachine) {
    // The peer list never stores the node itself.
    assert!(m.peers().get(m.id()).is_none(), "self-pointer in peer list");
    // The scope always matches the level (eigenstring).
    assert_eq!(m.peers().scope().len(), {
        // During joining the scope may still be the default; only check
        // once active.
        if m.is_active() {
            m.level().value()
        } else {
            m.peers().scope().len()
        }
    });
    // Top list never exceeds capacity.
    assert!(m.tops().len() <= m.tops().capacity());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A seed node fed arbitrary garbage never panics and keeps its
    /// invariants.
    #[test]
    fn seed_survives_arbitrary_inputs(
        inputs in proptest::collection::vec(arb_input(), 1..60),
        seed in any::<u64>(),
    ) {
        let (mut m, _) = NodeMachine::new_seed(
            ProtocolConfig::default(),
            NodeId(0xFEED_FACE),
            Addr(1),
            Bytes::new(),
            5_000.0,
            seed,
        );
        let mut t = 0u64;
        for input in inputs {
            t += 250_000;
            let outs = m.handle(t, input);
            // Outputs are structurally sane: sends go to real addresses,
            // timers have bounded delays.
            for o in &outs {
                if let Output::SetTimer { delay_us, .. } = o {
                    prop_assert!(*delay_us < 24 * 3_600_000_000, "absurd timer {delay_us}");
                }
            }
            check_invariants(&m);
        }
    }

    /// A joining node fed arbitrary garbage (including fake replies to its
    /// join RPCs) never panics.
    #[test]
    fn joiner_survives_arbitrary_inputs(
        inputs in proptest::collection::vec(arb_input(), 1..60),
        seed in any::<u64>(),
    ) {
        let boot = Target {
            id: NodeId(42),
            addr: Addr(2),
            level: Level::TOP,
        };
        let (mut m, _) = NodeMachine::new_joining(
            ProtocolConfig::default(),
            NodeId(0xDEAD_BEEF),
            Addr(1),
            Bytes::new(),
            5_000.0,
            boot,
            seed,
        );
        let mut t = 0u64;
        for input in inputs {
            t += 250_000;
            let _ = m.handle(t, input);
            check_invariants(&m);
        }
    }

    /// Time never flows backwards for the machine even if inputs repeat
    /// the same timestamp (the engine guarantees monotonicity; the machine
    /// must tolerate equal timestamps).
    #[test]
    fn equal_timestamps_are_tolerated(
        inputs in proptest::collection::vec(arb_input(), 1..30),
    ) {
        let (mut m, _) = NodeMachine::new_seed(
            ProtocolConfig::default(),
            NodeId(7),
            Addr(1),
            Bytes::new(),
            5_000.0,
            1,
        );
        for input in inputs {
            let _ = m.handle(1_000_000, input);
            check_invariants(&m);
        }
    }
}
