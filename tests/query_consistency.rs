//! PR 10 query-consistency tier: snapshot publication is linearizable
//! observation.
//!
//! * Proptest interleaving: arbitrary peer-list operation sequences run
//!   on a writer thread that publishes after every operation, while a
//!   concurrent reader loads lock-free snapshots the whole time. Every
//!   snapshot the reader observes must equal some *prefix-state* of the
//!   operation sequence — never a torn list, never a state that no
//!   prefix of the history produced — and observed epochs must be
//!   monotone.
//! * Fingerprint parity: enabling snapshot publication inside the
//!   parallel simulation changes nothing about the protocol — the run
//!   fingerprint is byte-identical with snapshots on or off, at 1 and 4
//!   shards (and across shard counts, as always).

use bytes::Bytes;
use peerwindow::des::SimTime;
use peerwindow::prelude::*;
use peerwindow::sim::ParallelFullSim;
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// One mutation against the peer list. Ids index a small universe so
/// operations collide (re-inserts, removes of absentees, level flips on
/// live entries).
#[derive(Clone, Debug)]
enum Op {
    Insert(u8, u8),
    Remove(u8),
    UpdateLevel(u8, u8),
    UpdateInfo(u8, u8),
    Touch(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..12, 0u8..5).prop_map(|(i, l)| Op::Insert(i, l)),
        (0u8..12).prop_map(Op::Remove),
        (0u8..12, 0u8..5).prop_map(|(i, l)| Op::UpdateLevel(i, l)),
        (0u8..12, any::<u8>()).prop_map(|(i, b)| Op::UpdateInfo(i, b)),
        (0u8..12).prop_map(Op::Touch),
    ]
}

fn id_of(i: u8) -> NodeId {
    NodeId(1 + i as u128)
}

fn apply(list: &mut PeerList, op: &Op, t: u64) {
    match *op {
        Op::Insert(i, l) => {
            list.insert(Pointer::new(id_of(i), Addr(i as u64), Level::new(l)));
        }
        Op::Remove(i) => {
            list.remove(id_of(i));
        }
        Op::UpdateLevel(i, l) => {
            list.update_level(id_of(i), Level::new(l));
        }
        Op::UpdateInfo(i, b) => {
            list.update_info(id_of(i), Bytes::from(vec![b]), t);
        }
        Op::Touch(i) => {
            list.touch(id_of(i), t);
        }
    }
}

/// The serving-observable content of a list or snapshot: `(id, level,
/// addr, info)` in id order. Refresh stamps are deliberately excluded —
/// they are not serving-layer state (`touch` does not publish).
type Content = Vec<(u128, u8, u64, Vec<u8>)>;

fn content_of<'a>(pointers: impl Iterator<Item = &'a Pointer>) -> Content {
    pointers
        .map(|p| (p.id.raw(), p.level.value(), p.addr.0, p.info.to_vec()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Concurrent readers only ever observe prefix-states.
    #[test]
    fn observed_snapshots_are_prefix_states(ops in proptest::collection::vec(arb_op(), 1..120)) {
        let me = NodeIdentity::new(NodeId(u128::MAX), Level::new(0));
        let mut publisher = SnapshotPublisher::new();
        let reader = publisher.reader();
        let stop = Arc::new(AtomicBool::new(false));

        let observer = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut observed: Vec<(u64, Content)> = Vec::new();
                let mut last_epoch = 0u64;
                loop {
                    let s = reader.load();
                    assert!(s.is_well_formed(), "torn or malformed snapshot");
                    assert!(s.epoch >= last_epoch, "epoch went backwards");
                    last_epoch = s.epoch;
                    if observed.last().map(|(e, _)| *e) != Some(s.epoch) {
                        observed.push((s.epoch, content_of(s.pointers().iter())));
                    }
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    std::thread::yield_now();
                }
                observed
            })
        };

        // Writer: apply each op, publish, and record the prefix-state.
        let mut list = PeerList::new(Prefix::EMPTY);
        let mut prefix_states: BTreeSet<Content> = BTreeSet::new();
        prefix_states.insert(Content::new()); // the pre-history empty state
        for (t, op) in ops.iter().enumerate() {
            apply(&mut list, op, 1 + t as u64);
            publisher.maybe_publish_list(me, Addr(u64::MAX), &list, 1 + t as u64);
            prefix_states.insert(content_of(list.iter()));
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Release);
        let observed = observer.join().expect("observer panicked");

        prop_assert!(!observed.is_empty());
        for (epoch, content) in &observed {
            prop_assert!(
                prefix_states.contains(content),
                "epoch {} shows a state no prefix of the history produced: {:?}",
                epoch,
                content
            );
        }
        // The last observation (taken after the writer stopped) is the
        // final state exactly — the reader is never left behind once the
        // writer quiesces.
        let (_, final_observed) = observed.last().unwrap();
        prop_assert_eq!(final_observed, &content_of(list.iter()));
    }
}

/// The determinism scenario, with publication optionally enabled.
fn parallel_fingerprint(shards: usize, snapshots: bool) -> (u64, u64) {
    let n = 24u32;
    let protocol = ProtocolConfig {
        probe_interval_us: 3_000_000,
        rpc_timeout_us: 500_000,
        processing_delay_us: 20_000,
        bandwidth_window_us: 12_000_000,
        ..ProtocolConfig::default()
    };
    let mut sim = ParallelFullSim::new(shards, n as usize, protocol, 20_000, 1_000, 7);
    if snapshots {
        let _dir = sim.enable_snapshots();
    }
    let seed_id = NodeId(0x0123_4567_89AB_CDEF_0011_2233_4455_6677);
    sim.start_node(SimTime::ZERO, 0, seed_id, 1e9, Bytes::new(), None);
    let boot = Target {
        id: seed_id,
        addr: Addr(0),
        level: Level::TOP,
    };
    for k in 1..n {
        let id = NodeId((k as u128).wrapping_mul(0x9E37_79B9_7F4A_7C15_F39C_0C4A_2B8E_D1A3) | 1);
        sim.start_node(
            SimTime::from_millis(500 * k as u64),
            k,
            id,
            1e9,
            Bytes::new(),
            Some(boot),
        );
    }
    sim.crash(SimTime::from_secs(25), 5);
    sim.command(SimTime::from_secs(30), 2, Command::Shutdown);
    sim.run_until(SimTime::from_secs(60));
    if snapshots {
        // The published views are coherent at quiescence: well formed
        // and byte-equal (modulo refresh stamps) to each live list.
        for (actor, m) in sim.machines() {
            let Some(reader) = sim.snapshot_reader(actor) else {
                continue;
            };
            let snap = reader.load();
            assert!(snap.is_well_formed(), "actor {actor} torn view");
            assert_eq!(snap.me.id, m.id());
            assert_eq!(
                content_of(snap.pointers().iter()),
                content_of(m.peers().iter()),
                "actor {actor} serving view trails its list at quiescence"
            );
        }
    }
    (sim.fingerprint(), sim.snapshots_published())
}

#[test]
fn snapshots_do_not_perturb_the_parallel_fingerprint() {
    let (fp1_off, zero1) = parallel_fingerprint(1, false);
    let (fp1_on, pub1) = parallel_fingerprint(1, true);
    let (fp4_off, zero4) = parallel_fingerprint(4, false);
    let (fp4_on, pub4) = parallel_fingerprint(4, true);
    assert_eq!(zero1, 0);
    assert_eq!(zero4, 0);
    assert!(pub1 > 0, "1-shard run never published");
    assert!(pub4 > 0, "4-shard run never published");
    assert_eq!(fp1_off, fp1_on, "publication perturbed the 1-shard run");
    assert_eq!(fp4_off, fp4_on, "publication perturbed the 4-shard run");
    assert_eq!(fp1_off, fp4_off, "shard count stopped being a pure speedup");
}
