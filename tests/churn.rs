//! Full-fidelity churn: the protocol under continuous joins, crashes, and
//! graceful departures must keep every survivor's peer list accurate.

use bytes::Bytes;
use peerwindow::des::{DetRng, SimTime};
use peerwindow::prelude::*;
use peerwindow::sim::FullSim;
use peerwindow::topology::UniformNetwork;

fn protocol() -> ProtocolConfig {
    ProtocolConfig {
        probe_interval_us: 4_000_000,
        rpc_timeout_us: 500_000,
        processing_delay_us: 20_000,
        bandwidth_window_us: 15_000_000,
        ..ProtocolConfig::default()
    }
}

#[test]
fn steady_state_churn_keeps_error_fraction_small() {
    let mut sim = FullSim::new(
        protocol(),
        Box::new(UniformNetwork { latency_us: 25_000 }),
        11,
    );
    let mut rng = DetRng::new(1234);
    sim.spawn_seed(NodeId(rng.next_u128()), 1e9, Bytes::new());
    let mut slots = Vec::new();
    // Build up to ~50 nodes, then run balanced churn for five minutes:
    // one join and one departure every ~8 s (a ~7-minute mean lifetime —
    // far harsher than the paper's 135 minutes).
    for _ in 0..50u64 {
        sim.run_for(2_000_000);
        slots.push(
            sim.spawn_joiner(NodeId(rng.next_u128()), 1e9, Bytes::new())
                .expect("bootstrap available"),
        );
    }
    sim.run_for(20_000_000);
    for round in 0..40u64 {
        sim.run_for(8_000_000);
        slots.push(
            sim.spawn_joiner(NodeId(rng.next_u128()), 1e9, Bytes::new())
                .expect("bootstrap available"),
        );
        // Departures: mostly graceful, some silent (like real systems).
        for _ in 0..8 {
            let victim = slots[(rng.next_u64() as usize) % slots.len()];
            if sim.machine(victim).is_some() && sim.live_count() > 40 {
                if round % 4 == 3 {
                    sim.crash_after(victim, 1_000_000);
                } else {
                    sim.leave_after(victim, 1_000_000);
                }
                break;
            }
        }
    }
    sim.run_until(SimTime::from_secs(460));
    let live = sim.live_count();
    assert!(live >= 40, "only {live} nodes survived");
    // The paper's figure-7 claim, order-of-magnitude: errors (stale +
    // absent entries) are a small fraction of all required pointers even
    // under churn ~20x harsher than measured reality.
    let (correct, missing, stale) = sim.accuracy();
    let errors = missing + stale;
    // Bound chosen with headroom over the observed ~5 % at this extreme
    // churn; the paper's own regime (135-minute lifetimes) measures under
    // 0.5 % — see fig7 in EXPERIMENTS.md.
    assert!(
        (errors as f64) < 0.065 * correct as f64,
        "{errors} errors ({missing} missing, {stale} stale) of {correct} pointers"
    );
}

#[test]
fn mass_failure_is_fully_cleaned_up() {
    let mut sim = FullSim::new(
        protocol(),
        Box::new(UniformNetwork { latency_us: 25_000 }),
        13,
    );
    let mut rng = DetRng::new(99);
    sim.spawn_seed(NodeId(rng.next_u128()), 1e9, Bytes::new());
    let mut slots = Vec::new();
    for _ in 0..30 {
        sim.run_for(800_000);
        slots.push(
            sim.spawn_joiner(NodeId(rng.next_u128()), 1e9, Bytes::new())
                .unwrap(),
        );
    }
    sim.run_for(30_000_000);
    // Kill a third of the system within one second — including several
    // consecutive ring neighbors (the §4.1 cascading-detection case).
    for &v in slots.iter().take(10) {
        sim.crash_after(v, rng.next_u64() % 1_000_000);
    }
    // Detection handles most victims within seconds; a victim whose ring
    // predecessor had never learned it (a join-window absence) is
    // reclaimed by the §4.6 expiry after ≈ 3 observed lifetimes.
    sim.run_for(220_000_000);
    assert_eq!(sim.live_count(), 21);
    let (_, _missing, stale) = sim.accuracy();
    assert_eq!(stale, 0, "stale pointers survived a mass failure");
    // Every crash produced at least one FailureDetected.
    let detected: std::collections::HashSet<NodeId> =
        sim.log().failures.iter().map(|&(_, id)| id).collect();
    // Most victims are caught by probing; the rest (ring-predecessor
    // absences) fall to the §4.6 expiry, already asserted above.
    assert!(detected.len() >= 7, "only {} detected", detected.len());
}

#[test]
fn determinism_same_seed_same_history() {
    let run = |seed: u64| {
        let mut sim = FullSim::new(
            protocol(),
            Box::new(UniformNetwork { latency_us: 25_000 }),
            seed,
        );
        let mut rng = DetRng::new(5);
        sim.spawn_seed(NodeId(rng.next_u128()), 1e9, Bytes::new());
        for _ in 0..20 {
            sim.run_for(900_000);
            sim.spawn_joiner(NodeId(rng.next_u128()), 1e9, Bytes::new());
        }
        sim.run_for(30_000_000);
        let mut sizes: Vec<(NodeId, usize)> = sim
            .machines()
            .map(|(_, m)| (m.id(), m.peers().len()))
            .collect();
        sizes.sort();
        (sim.log().joined.len(), sizes)
    };
    assert_eq!(run(42), run(42));
}
