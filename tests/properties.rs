//! Property-based tests of the core protocol invariants (§2's five
//! peer-list properties, audience-set algebra, multicast coverage).

use peerwindow::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn arb_id() -> impl Strategy<Value = NodeId> {
    any::<u128>().prop_map(NodeId)
}

fn arb_level() -> impl Strategy<Value = Level> {
    (0u8..6).prop_map(Level::new)
}

fn arb_members(n: usize) -> impl Strategy<Value = Vec<(NodeId, Level)>> {
    // A membership holds one identity per node: duplicate id draws (the
    // generator is edge-biased, so collisions happen) collapse to the
    // first occurrence — two levels for one id is not a valid view.
    proptest::collection::vec((arb_id(), arb_level()), 2..n).prop_map(|mut v| {
        let mut seen = BTreeSet::new();
        v.retain(|(id, _)| seen.insert(*id));
        v
    })
}

/// Ground-truth correct peer list of a member within a membership.
fn correct_list(members: &[(NodeId, Level)], me: (NodeId, Level)) -> BTreeSet<NodeId> {
    let scope = me.1.eigenstring(me.0);
    members
        .iter()
        .filter(|(id, _)| *id != me.0 && scope.contains(*id))
        .map(|(id, _)| *id)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Prefix algebra: common_prefix_len is symmetric, bounded, and
    /// consistent with prefix containment.
    #[test]
    fn prefix_algebra(a in arb_id(), b in arb_id(), l in 0u8..=128) {
        let cpl = a.common_prefix_len(b);
        prop_assert_eq!(cpl, b.common_prefix_len(a));
        if a != b {
            prop_assert!(cpl < 128);
            // They agree on exactly the first cpl bits.
            prop_assert!(a.prefix(cpl) == b.prefix(cpl));
            prop_assert!(a.prefix(cpl + 1) != b.prefix(cpl + 1));
        }
        // Containment ⇔ prefix equality.
        prop_assert_eq!(a.prefix(l).contains(b), cpl >= l);
    }

    /// Prefix ranges: an id is in a prefix's range iff it has the prefix.
    #[test]
    fn prefix_ranges(a in arb_id(), b in arb_id(), l in 0u8..=128) {
        let p = a.prefix(l);
        let in_range = b >= p.range_start() && b <= p.range_end();
        prop_assert_eq!(in_range, p.contains(b));
    }

    /// §2 property 1: same eigenstring ⇒ same (correct) peer list.
    #[test]
    fn same_eigenstring_same_list(members in arb_members(40)) {
        for &a in &members {
            for &b in &members {
                let ia = NodeIdentity::new(a.0, a.1);
                let ib = NodeIdentity::new(b.0, b.1);
                if ia.same_group(ib) {
                    let mut la = correct_list(&members, a);
                    let mut lb = correct_list(&members, b);
                    // Lists differ only by the owners themselves.
                    la.insert(a.0);
                    lb.insert(b.0);
                    prop_assert_eq!(la, lb);
                }
            }
        }
    }

    /// §2 property 2: a stronger node's list covers a weaker node's.
    #[test]
    fn stronger_covers_weaker(members in arb_members(40)) {
        for &a in &members {
            for &b in &members {
                let ia = NodeIdentity::new(a.0, a.1);
                let ib = NodeIdentity::new(b.0, b.1);
                if ia.stronger_than(ib) {
                    let la = correct_list(&members, a);
                    let lb = correct_list(&members, b);
                    for id in &lb {
                        prop_assert!(*id == a.0 || la.contains(id),
                            "stronger list missing {id}");
                    }
                }
            }
        }
    }

    /// §2 properties 4–5: same level + different eigenstrings ⇒ disjoint
    /// lists; same eigenstring ⇒ fully connected (mutual coverage).
    #[test]
    fn disjoint_and_fully_connected(members in arb_members(40)) {
        for &a in &members {
            for &b in &members {
                if a.0 == b.0 { continue; }
                let ia = NodeIdentity::new(a.0, a.1);
                let ib = NodeIdentity::new(b.0, b.1);
                if a.1 == b.1 && ia.eigenstring() != ib.eigenstring() {
                    let la = correct_list(&members, a);
                    let lb = correct_list(&members, b);
                    prop_assert!(la.is_disjoint(&lb), "lists must be disjoint");
                }
                if ia.same_group(ib) {
                    prop_assert!(ia.covers(b.0) && ib.covers(a.0),
                        "group members must be fully connected");
                }
            }
        }
    }

    /// Audience-set duality: A keeps a pointer to B ⇔ A is in B's
    /// audience set (§2).
    #[test]
    fn audience_duality(id in arb_id(), level in arb_level(), other in arb_id()) {
        let a = NodeIdentity::new(id, level);
        // covers(other) means "other ∈ my list" means "I ∈ other's audience".
        prop_assert_eq!(a.covers(other), a.eigenstring().is_prefix_of(other.prefix(128)));
    }

    /// Multicast coverage: with a consistent view the planned tree reaches
    /// exactly the audience set minus {root, subject}, each node once,
    /// with stronger-to-weaker edges.
    #[test]
    fn multicast_exactly_once_coverage(members in arb_members(60), subject_raw in any::<u128>()) {
        let subject = NodeId(subject_raw);
        let mut list = PeerList::new(Prefix::EMPTY);
        for &(id, lvl) in &members {
            list.insert(Pointer::new(id, Addr(0), lvl));
        }
        // Root: strongest member covering the subject; skip memberships
        // where nobody covers it (empty audience).
        let root = members
            .iter()
            .filter(|(id, l)| NodeIdentity::new(*id, *l).covers(subject) && *id != subject)
            .min_by_key(|(id, l)| (l.value(), *id))
            .map(|&(id, _)| id);
        prop_assume!(root.is_some());
        let root = root.unwrap();
        let root_level = list.get(root).unwrap().level;
        // The §4.2 invariant requires the root to be a top node of the
        // subject's part: strongest cover, which we chose.
        let edges = plan_tree(&list, root, root_level.value(), subject);
        let reached: Vec<NodeId> = edges.iter().map(|e| e.to.id).collect();
        let reached_set: BTreeSet<NodeId> = reached.iter().copied().collect();
        prop_assert_eq!(reached.len(), reached_set.len(), "duplicate delivery");
        let expect: BTreeSet<NodeId> = members
            .iter()
            .filter(|(id, l)| {
                NodeIdentity::new(*id, *l).covers(subject) && *id != root && *id != subject
            })
            .map(|(id, _)| *id)
            .collect();
        prop_assert_eq!(reached_set, expect);
        // §4.2 property 1: stronger → weaker flow.
        for e in &edges {
            let from_level = list.get(e.from).unwrap().level;
            prop_assert!(from_level.at_least_as_strong_as(e.to.level));
        }
    }

    /// Tree depth is logarithmic: ≤ ~2·log2(audience) + slack.
    #[test]
    fn multicast_depth_logarithmic(seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 512;
        let mut list = PeerList::new(Prefix::EMPTY);
        let mut first = None;
        for _ in 0..n {
            let id = NodeId(rng.gen());
            first.get_or_insert(id);
            list.insert(Pointer::new(id, Addr(0), Level::TOP));
        }
        let subject = NodeId(rng.gen());
        let edges = plan_tree(&list, first.unwrap(), 0, subject);
        let stats = tree_stats(&edges, first.unwrap());
        prop_assert!(stats.max_depth <= 2 * 9 + 8, "depth {}", stats.max_depth);
    }

    /// PartMap: parts are prefix-free and every member belongs to exactly
    /// one part; merging all parts' members recovers the membership.
    #[test]
    fn parts_partition_members(members in arb_members(50)) {
        let idents: Vec<NodeIdentity> = members
            .iter()
            .map(|&(id, l)| NodeIdentity::new(id, l))
            .collect();
        let pm = PartMap::from_members(&idents);
        // Prefix-free.
        for a in pm.parts() {
            for b in pm.parts() {
                if a != b {
                    prop_assert!(!a.is_prefix_of(*b) && !b.is_prefix_of(*a));
                }
            }
        }
        // Exactly one part per member.
        for m in &idents {
            let covering = pm
                .parts()
                .iter()
                .filter(|p| p.contains(m.id))
                .count();
            prop_assert_eq!(covering, 1, "member {} in {} parts", m.id, covering);
            prop_assert!(pm.part_of(m.id).is_some());
        }
    }
}
