//! Cross-validation of the two simulation fidelities.
//!
//! Oracle mode replaces per-node peer lists with one ground-truth
//! directory (the paper's own memory trick). These tests pin down the
//! equivalences that justify it: identical multicast trees on identical
//! membership, matching per-level list sizes, and matching steady-state
//! behaviour of a small system run both ways.

use peerwindow::prelude::*;
use peerwindow::sim::directory::{AudienceEntry, Directory};
use peerwindow::sim::plan::{plan_event, Rmq};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

fn random_membership(n: usize, seed: u64) -> Vec<(NodeId, Level)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (NodeId(rng.gen()), Level::new(rng.gen_range(0..5))))
        .collect()
}

/// The oracle planner and the reference peer-list planner must produce
/// the same tree on the same membership, for many subjects and seeds.
#[test]
fn oracle_planner_equals_reference_planner() {
    for seed in 0..5u64 {
        let members = random_membership(600, seed);
        // Reference: a consistent peer list.
        let mut list = PeerList::new(Prefix::EMPTY);
        for &(id, l) in &members {
            list.insert(Pointer::new(id, Addr(0), l));
        }
        // Oracle: the directory.
        let mut dir = Directory::new();
        for (i, &(id, l)) in members.iter().enumerate() {
            dir.join(id, i as u32, l, 500.0, 1e6);
        }
        let root = members
            .iter()
            .filter(|(_, l)| l.is_top())
            .map(|&(id, _)| id)
            .min()
            .expect("a top node");
        let mut audience: Vec<AudienceEntry> = Vec::new();
        let mut rmq = Rmq::new();
        for k in 0..20 {
            let subject = members[k * 29].0;
            if subject == root {
                continue;
            }
            let reference: BTreeSet<(u128, u128)> = plan_tree(&list, root, 0, subject)
                .into_iter()
                .map(|e| (e.from.raw(), e.to.id.raw()))
                .collect();
            dir.collect_audience(subject, &mut audience);
            let root_idx = audience
                .binary_search_by_key(&root.raw(), |e| e.id)
                .expect("root in audience");
            let mut got = BTreeSet::new();
            plan_event(
                &audience,
                &mut rmq,
                root_idx,
                0,
                0,
                0,
                |_, _| 0,
                |d| {
                    got.insert((audience[d.parent].id, audience[d.child].id));
                },
            );
            assert_eq!(got, reference, "seed {seed}, subject {subject}");
        }
    }
}

/// The directory's prefix counts must equal what the full-fidelity
/// machines end up holding once a quiet system converges.
#[test]
fn converged_full_sim_matches_directory_counts() {
    use bytes::Bytes;
    use peerwindow::des::DetRng;
    use peerwindow::sim::FullSim;
    use peerwindow::topology::UniformNetwork;

    let protocol = ProtocolConfig {
        probe_interval_us: 5_000_000,
        rpc_timeout_us: 500_000,
        processing_delay_us: 20_000,
        ..ProtocolConfig::default()
    };
    let mut sim = FullSim::new(protocol, Box::new(UniformNetwork { latency_us: 20_000 }), 3);
    let mut rng = DetRng::new(77);
    sim.spawn_seed(NodeId(rng.next_u128()), 1e9, Bytes::new());
    for _ in 0..40 {
        sim.run_for(700_000);
        sim.spawn_joiner(NodeId(rng.next_u128()), 1e9, Bytes::new())
            .unwrap();
    }
    sim.run_for(40_000_000);
    // Build the oracle directory from the machines' self-reported state.
    let mut dir = Directory::new();
    for (slot, m) in sim.machines() {
        dir.join(m.id(), slot, m.level(), m.threshold_bps(), 1e6);
    }
    for (_, m) in sim.machines() {
        let correct = dir.count_prefix(m.eigenstring()) - 1; // minus self
        assert_eq!(
            m.peers().len(),
            correct,
            "machine {} list size mismatch",
            m.id()
        );
    }
}

/// Small-system steady state: oracle-mode per-level error rates are of
/// the same magnitude as the paper's analytic model, which the full
/// machines also obey — three-way consistency at the order-of-magnitude
/// level (the figures only claim shapes).
#[test]
fn oracle_error_magnitude_matches_model() {
    use peerwindow::sim::oracle::{run_oracle, OracleConfig};
    let mut cfg = OracleConfig::paper_common_uniform(3_000, 5);
    cfg.warmup_s = 20.0;
    cfg.measure_s = 80.0;
    let rep = run_oracle(cfg);
    let model = ModelParams {
        lifetime_s: 135.0 * 60.0,
        ..ModelParams::default()
    };
    // Mean staleness is bounded by the full multicast delay plus the
    // §4.1 detection overhead; error = m·staleness/L within a small
    // constant of the model's single-delay estimate.
    let delay = model.multicast_delay_s(3_000.0, 0.08, 1.0);
    let model_err = model.error_rate(delay);
    assert!(
        rep.avg_error_rate < 10.0 * model_err && rep.avg_error_rate > 0.1 * model_err,
        "oracle {} vs model {}",
        rep.avg_error_rate,
        model_err
    );
}
