//! Protocol invariant verification, two ways:
//!
//! 1. The exhaustive polestar-style sweep: every join/leave/crash/shift
//!    interleaving of a small id table, local invariants after every
//!    machine event, cross-node invariants at every quiescent state.
//! 2. A full-fidelity simulation with per-event checking compiled in
//!    (the `invariants` feature): the realistic-scale companion to the
//!    sweep's exhaustive-but-tiny state space.

use bytes::Bytes;
use peerwindow::des::DetRng;
use peerwindow::prelude::*;
use peerwindow::sim::FullSim;
use peerwindow::topology::UniformNetwork;
use peerwindow_core::invariants::{exhaustive_sweep, SweepConfig};

// First-bit-diverse ids so shifts to level 1 split the part in two.
const A: u128 = 0x2000_0000_0000_0000_0000_0000_0000_0000; // 001…
const B: u128 = 0x6000_0000_0000_0000_0000_0000_0000_0000; // 011…
const C: u128 = 0xa000_0000_0000_0000_0000_0000_0000_0000; // 101…
const D: u128 = 0xe000_0000_0000_0000_0000_0000_0000_0000; // 111…

#[test]
fn sweep_four_nodes_join_leave_crash_shift() {
    let cfg = SweepConfig {
        ids: vec![A, B, C, D],
        max_ops: 3,
        settle_us: 10_000_000,
        levels: vec![0, 1],
        allow_crash: true,
    };
    let stats = exhaustive_sweep(&cfg).unwrap_or_else(|failure| panic!("{failure}"));
    // The numbers themselves are not the contract — but a sweep that
    // explored three states because op enumeration broke would pass
    // vacuously without these floors.
    assert!(stats.states > 100, "only {} states explored", stats.states);
    assert!(
        stats.events_checked > 10_000,
        "only {} events invariant-checked",
        stats.events_checked
    );
    assert!(stats.distinct_states > 10);
}

#[test]
fn full_sim_upholds_invariants_after_every_event() {
    let protocol = ProtocolConfig {
        probe_interval_us: 3_000_000,
        rpc_timeout_us: 500_000,
        processing_delay_us: 20_000,
        bandwidth_window_us: 12_000_000,
        ..ProtocolConfig::default()
    };
    let mut sim = FullSim::new(
        protocol,
        Box::new(UniformNetwork { latency_us: 25_000 }),
        21,
    );
    let mut rng = DetRng::new(5);
    sim.spawn_seed(NodeId(rng.next_u128()), 1e9, Bytes::new());
    let mut slots = Vec::new();
    for _ in 0..30 {
        sim.run_for(700_000);
        if let Some(s) = sim.spawn_joiner(NodeId(rng.next_u128()), 1e9, Bytes::new()) {
            slots.push(s);
        }
    }
    sim.run_for(20_000_000);
    sim.set_level_after(slots[4], 100_000, Level::new(1));
    sim.crash_after(slots[9], 1_500_000);
    sim.leave_after(slots[12], 3_000_000);
    // Long settle: failure detection, the leave multicast, and the level
    // shift all disseminate fully before the quiescent check.
    sim.run_for(90_000_000);

    // Per-event local checks ran inside the simulator (the `invariants`
    // feature is enabled for test builds); none may have fired.
    assert!(
        sim.log().invariant_violations.is_empty(),
        "local invariant violations during the run: {:?}",
        sim.log().invariant_violations
    );
    // And the settled system satisfies the cross-node invariants.
    sim.check_invariants()
        .unwrap_or_else(|violation| panic!("quiescent check failed: {violation}"));
}
