//! Protocol invariant verification, two ways:
//!
//! 1. The explicit-state model checker (`peerwindow-mc`): breadth-first
//!    search over join/leave/crash/shift interleavings with canonical
//!    state hashing (id-symmetry + reconvergence dedup), local
//!    invariants after every machine event, temporal properties under
//!    fault plans, and oracle-verified counterexample shrinking. This
//!    subsumes the PR 2 brute-force sweep, which it retired.
//! 2. A full-fidelity simulation with per-event checking compiled in
//!    (the `invariants` feature): the realistic-scale companion to the
//!    checker's exhaustive-but-tiny state space.

use bytes::Bytes;
use peerwindow::des::DetRng;
use peerwindow::prelude::*;
use peerwindow::sim::FullSim;
use peerwindow::topology::UniformNetwork;
use peerwindow_faults::{Condition, FaultPlan, FaultRule, LinkSel, NodeSel};
use peerwindow_mc::{
    always_system_invariants, check, eventually_no_departed_pointer, mc_protocol_config,
    no_correct_node_permanently_expunged, partition_heal_reconverges, replay, shrink, McConfig,
    SweepOp,
};

// First-bit-diverse ids so shifts to level 1 split the part in two, and
// so class_bits = 1 gives two nontrivial symmetry classes.
const A: u128 = 0x2000_0000_0000_0000_0000_0000_0000_0000; // 001…
const B: u128 = 0x6000_0000_0000_0000_0000_0000_0000_0000; // 011…
const C: u128 = 0xa000_0000_0000_0000_0000_0000_0000_0000; // 101…
const D: u128 = 0xe000_0000_0000_0000_0000_0000_0000_0000; // 111…
                                                           // Same classes, distinct low bits — fodder for the symmetry reduction.
const E: u128 = 0x3000_0000_0000_0000_0000_0000_0000_0000; // 001…
const F: u128 = 0xb000_0000_0000_0000_0000_0000_0000_0000; // 101…

#[test]
fn checker_sweeps_four_nodes_join_leave_crash_shift() {
    let mut cfg = McConfig::new(&[A, B, C, D]);
    cfg.max_ops = 3;
    cfg.settle_us = 10_000_000;
    cfg.levels = vec![0, 1];
    cfg.allow_crash = true;
    let stats =
        check(&cfg, &[always_system_invariants()]).unwrap_or_else(|failure| panic!("{failure}"));
    assert!(stats.completed);
    // The numbers themselves are not the contract — but a sweep that
    // explored three states because op enumeration broke would pass
    // vacuously without these floors. (They are lower than the retired
    // brute-force sweep's floors because dedup prunes re-expansion of
    // permutation-equivalent and reconverged states — that is the
    // point.)
    assert!(
        stats.raw_states > 50,
        "only {} states explored",
        stats.raw_states
    );
    assert!(
        stats.events_checked > 5_000,
        "only {} events invariant-checked",
        stats.events_checked
    );
    assert!(stats.canonical_states > 10);
    assert!(stats.pruned > 0, "dedup never fired: {stats}");
}

/// The headline capability: with canonical-state dedup the checker
/// finishes a six-id space that the brute-force engine (the PR 2 sweep
/// mode, `dedup: false`) cannot finish on the *same* transition budget.
/// The comparison is deterministic — transitions executed, not wall
/// clock — so it cannot flake on a loaded CI machine.
#[test]
fn dedup_completes_a_space_brute_force_cannot() {
    let mut cfg = McConfig::new(&[A, B, C, D, E, F]);
    cfg.max_ops = 3;
    cfg.allow_crash = true;
    cfg.levels = vec![0];

    let with_dedup = check(&cfg, &[]).unwrap_or_else(|failure| panic!("{failure}"));
    assert!(with_dedup.completed, "dedup run must exhaust the space");
    assert!(
        with_dedup.reduction_factor() > 1.5,
        "id symmetry + reconvergence should collapse >1.5x: {with_dedup}"
    );

    // Same engine, same op space, dedup off, budget pinned to exactly
    // the transition count dedup needed.
    let mut brute = cfg.clone();
    brute.dedup = false;
    brute.max_transitions = with_dedup.transitions;
    let brute_stats = check(&brute, &[]).unwrap_or_else(|failure| panic!("{failure}"));
    assert!(
        !brute_stats.completed,
        "brute force finished within dedup's budget — dedup is not earning its keep: \
         dedup {with_dedup}; brute {brute_stats}"
    );
}

/// A one-way blackhole between two joiners while all three nodes are
/// up: every ack of one full probe cycle is swallowed, so the prober
/// falsely declares its successor dead — but the obituary fires after
/// the heal, the courtesy copy is delivered, and the refutation
/// multicast reconverges the system. Both ROADMAP liveness properties
/// must hold at every reachable state under this plan.
fn gap13_cfg(reintroduce: bool) -> McConfig {
    let mut cfg = McConfig::new(&[A, B, C]);
    cfg.max_ops = 2;
    cfg.allow_crash = false;
    cfg.levels = vec![0];
    cfg.settle_us = 12_000_000;
    cfg.fair_settles = 4;
    cfg.reintroduce_gap13 = reintroduce;
    cfg.protocol = mc_protocol_config();
    // A wide bandwidth window keeps the expiry floor (3x window = 90s)
    // above every entry age reachable inside the fair extension, so the
    // only way a correct node can vanish is the obituary path itself —
    // the distinction this scenario probes. (With the default 5s
    // window, the false obituary's short lifetime sample collapses
    // observers' expiry horizons and they expire *unrelated* quiet
    // peers, masking the refutation signal.)
    cfg.protocol.bandwidth_window_us = 30_000_000;
    // Blackhole slot 2 -> slot 1 for 2s, timed so the probe attempts at
    // t0, +0.3s, +0.9s all lose their acks but the give-up (t0 + 2.1s)
    // lands after the heal. Too short for slot 2 to initiate any RPC
    // toward slot 1 while the link is down, so no unrefutable
    // counter-obituary can arise.
    cfg.plan = Some(FaultPlan::reliable(11).with_rule(FaultRule {
        from_us: 26_000_000,
        until_us: 28_000_000,
        links: LinkSel::one_way(NodeSel::One(2), NodeSel::One(1)),
        condition: Condition::Blackhole,
    }));
    cfg
}

#[test]
fn liveness_holds_under_partition_fault_plan() {
    let cfg = gap13_cfg(false);
    let props = [
        partition_heal_reconverges(),
        no_correct_node_permanently_expunged(),
    ];
    let stats = check(&cfg, &props).unwrap_or_else(|failure| panic!("{failure}"));
    assert!(stats.completed);
    assert!(stats.raw_states > 1);
}

/// Regression: re-arm the DESIGN.md gap-13 bug (the failure detector
/// stops sending the condemned node its courtesy obituary copy, and a
/// node hearing its own removal forwards instead of refuting). The
/// checker must catch the resulting permanent false obituary, and the
/// shrinker must hand back a small self-contained repro.
#[test]
fn gap13_reintroduction_is_caught_with_shrunk_trace() {
    let cfg = gap13_cfg(true);
    let props = [no_correct_node_permanently_expunged()];
    let failure = match check(&cfg, &props) {
        Ok(stats) => panic!("reintroduced gap-13 bug was not caught: {stats}"),
        Err(f) => f,
    };

    let repro = shrink(&cfg, &props, &failure);
    assert!(
        repro.trace.len() <= 6,
        "shrunk repro should be tiny, got {} ops: {repro}",
        repro.trace.len()
    );
    // The repro is self-consistent: replaying it still fails…
    let mut small = cfg.clone();
    small.ids = repro.ids.clone();
    assert!(
        replay(&small, &props, &repro.trace).is_some(),
        "shrunk repro does not reproduce: {repro}"
    );
    // …and the same trace passes once the bug is fixed again.
    let mut fixed = small.clone();
    fixed.reintroduce_gap13 = false;
    assert!(
        replay(&fixed, &props, &repro.trace).is_none(),
        "repro trace fails even without the bug — the scenario is not \
         isolating gap-13: {repro}"
    );
}

/// The PR 7 depth-4 finding, now a passing regression: after
/// `[Join(1), Join(2), Shift(0→1), Crash(0)]` the seed dies alone at
/// level 1 — in nobody's §4.1 group ring, and with no lifetime samples
/// at its level the §4.6 expiry deadline degenerates to "never". Before
/// the cross-level fallback probe, survivors held the departed pointer
/// forever; now every observer alternates its probe interval onto such
/// "lonely" peers and the crash is detected.
#[test]
fn depth4_off_level_crash_is_eventually_detected() {
    let mut cfg = McConfig::new(&[A, B, C]);
    cfg.max_ops = 4;
    cfg.allow_crash = true;
    cfg.levels = vec![0, 1];
    cfg.protocol = mc_protocol_config();
    let props = [always_system_invariants(), eventually_no_departed_pointer()];

    // The exact counterexample trace the checker produced in PR 7.
    let trace = [
        SweepOp::Join(1),
        SweepOp::Join(2),
        SweepOp::Shift(0, 1),
        SweepOp::Crash(0),
    ];
    if let Some(failure) = replay(&cfg, &props, &trace) {
        panic!("depth-4 off-level crash still undetected: {failure}");
    }
    // Two more depth-4 traces the full sweep surfaced once the first
    // failure stopped masking them: a level raise importing a stale top
    // entry into scope, and the crash *detector* skipping the §4.6
    // lifetime sample so its refresh lagged every peer's tightened
    // expiry horizon.
    for trace in [
        [
            SweepOp::Join(1),
            SweepOp::Join(2),
            SweepOp::Shift(1, 1),
            SweepOp::Leave(2),
        ],
        [
            SweepOp::Join(1),
            SweepOp::Join(2),
            SweepOp::Crash(2),
            SweepOp::Shift(0, 1),
        ],
    ] {
        if let Some(failure) = replay(&cfg, &props, &trace) {
            panic!("depth-4 regression trace {trace:?} fails again: {failure}");
        }
    }

    // And the full depth-4 space around it is clean too.
    let stats = check(&cfg, &props).unwrap_or_else(|failure| panic!("{failure}"));
    assert!(stats.completed);
    assert!(
        stats.raw_states > 50,
        "only {} states explored",
        stats.raw_states
    );
}

#[test]
fn full_sim_upholds_invariants_after_every_event() {
    let protocol = ProtocolConfig {
        probe_interval_us: 3_000_000,
        rpc_timeout_us: 500_000,
        processing_delay_us: 20_000,
        bandwidth_window_us: 12_000_000,
        ..ProtocolConfig::default()
    };
    let mut sim = FullSim::new(
        protocol,
        Box::new(UniformNetwork { latency_us: 25_000 }),
        21,
    );
    let mut rng = DetRng::new(5);
    sim.spawn_seed(NodeId(rng.next_u128()), 1e9, Bytes::new());
    let mut slots = Vec::new();
    for _ in 0..30 {
        sim.run_for(700_000);
        if let Some(s) = sim.spawn_joiner(NodeId(rng.next_u128()), 1e9, Bytes::new()) {
            slots.push(s);
        }
    }
    sim.run_for(20_000_000);
    sim.set_level_after(slots[4], 100_000, Level::new(1));
    sim.crash_after(slots[9], 1_500_000);
    sim.leave_after(slots[12], 3_000_000);
    // Long settle: failure detection, the leave multicast, and the level
    // shift all disseminate fully before the quiescent check.
    sim.run_for(90_000_000);

    // Per-event local checks ran inside the simulator (the `invariants`
    // feature is enabled for test builds); none may have fired.
    assert!(
        sim.log().invariant_violations.is_empty(),
        "local invariant violations during the run: {:?}",
        sim.log().invariant_violations
    );
    // And the settled system satisfies the cross-node invariants.
    sim.check_invariants()
        .unwrap_or_else(|violation| panic!("quiescent check failed: {violation}"));
}
