//! The §4.3 *warm-up*: "A new node can also first set a low level so as
//! to start working in a relatively short period, and then ask stronger
//! nodes for a larger peer list … it raises its level and reports the
//! state-changing event."

use bytes::Bytes;
use peerwindow::des::{DetRng, SimTime};
use peerwindow::prelude::*;
use peerwindow::sim::FullSim;
use peerwindow::topology::UniformNetwork;

fn protocol(warm_up: bool) -> ProtocolConfig {
    ProtocolConfig {
        probe_interval_us: 3_000_000,
        rpc_timeout_us: 400_000,
        processing_delay_us: 10_000,
        bandwidth_window_us: 6_000_000,
        warm_up,
        ..ProtocolConfig::default()
    }
}

fn build(warm_up: bool) -> (FullSim, u32) {
    let mut sim = FullSim::new(
        protocol(warm_up),
        Box::new(UniformNetwork { latency_us: 15_000 }),
        5,
    );
    let mut rng = DetRng::new(77);
    sim.spawn_seed(NodeId(rng.next_u128()), 1e9, Bytes::new());
    for _ in 0..30 {
        sim.run_for(500_000);
        sim.spawn_joiner(NodeId(rng.next_u128()), 1e9, Bytes::new());
    }
    sim.run_for(10_000_000);
    let late = sim
        .spawn_joiner(NodeId(rng.next_u128()), 1e9, Bytes::new())
        .unwrap();
    (sim, late)
}

#[test]
fn warm_up_starts_low_with_a_small_download() {
    let (mut sim, late) = build(true);
    sim.run_for(2_000_000);
    let m = sim.machine(late).expect("joiner alive");
    assert!(m.is_active());
    // §4.3: the estimate for this rich node would be level 0; warm-up
    // starts it two levels weaker so the initial download is a quarter of
    // the full list.
    assert!(
        m.level().value() >= 2,
        "warm-up joiner started at {}",
        m.level()
    );
    assert!(
        m.peers().len() < 15,
        "warm-up download was not small: {} pointers",
        m.peers().len()
    );
    assert_eq!(m.peers().scope(), m.eigenstring());
}

#[test]
fn warm_up_rises_to_the_estimated_level_in_the_background() {
    let (mut sim, late) = build(true);
    // The adaptation loop raises an under-budget node one level per few
    // windows (debounced), downloading the wider list each time.
    sim.run_until(SimTime::from_secs(240));
    let m = sim.machine(late).expect("joiner alive");
    assert!(
        m.level().is_top(),
        "warm-up node never rose: still at {}",
        m.level()
    );
    // It now holds the full list.
    assert_eq!(m.peers().len(), sim.live_count() - 1);
    // Its level shifts were upward (background warm-up, not thrash).
    let ups = sim
        .log()
        .shifts
        .iter()
        .filter(|&&(s, from, to)| s == late && to.value() < from.value())
        .count();
    assert!(ups >= 2, "expected ≥2 upward shifts, saw {ups}");
}

#[test]
fn without_warm_up_the_same_node_starts_at_its_estimate() {
    let (mut sim, late) = build(false);
    sim.run_for(2_000_000);
    let m = sim.machine(late).expect("joiner alive");
    assert!(m.is_active());
    // Rich node, quiet system: the §4.3 estimate is level 0 directly.
    assert!(
        m.level().value() <= 1,
        "non-warm-up joiner started at {}",
        m.level()
    );
}
