//! Chaos regression: the fault-injection layer composed at full strength
//! over the parallel engine. Three contracts are pinned here:
//!
//! 1. **Shard invariance under faults.** Verdicts are judged at send
//!    time in the sender's shard from per-link random streams, so an
//!    identical `FaultPlan` + seed must yield byte-identical state
//!    fingerprints at 1 and 4 shards — even with burst loss, jitter
//!    reordering, duplication, and a partition all active at once.
//! 2. **Partition + heal convergence.** With probe backoff outlasting
//!    the outage (§4.1 hardening), a 25-second total partition leaves no
//!    permanent damage: the settle audit reports one part, no missing /
//!    stale / cross-part pointers.
//! 3. **Traced runs agree too.** With tracing on, the canonically
//!    sorted record streams (protocol events + `net_fault` records) are
//!    byte-identical across shard counts.

use bytes::Bytes;
use peerwindow::des::SimTime;
use peerwindow::faults::{Condition, FaultPlan, FaultRule, LinkSel};
use peerwindow::prelude::*;
use peerwindow::sim::ParallelFullSim;
use peerwindow_trace::TraceEventKind;

const N: u32 = 32;
const STORM_FROM_US: u64 = 25_000_000;
const STORM_UNTIL_US: u64 = 50_000_000;

fn protocol() -> ProtocolConfig {
    ProtocolConfig {
        probe_interval_us: 2_000_000,
        rpc_timeout_us: 400_000,
        processing_delay_us: 10_000,
        bandwidth_window_us: 8_000_000,
        // Backed-off retries (0.4 s doubling) span ~80 s — longer than
        // the partition below, so nobody is falsely expunged (§4.1).
        max_attempts: 9,
        ..ProtocolConfig::default()
    }
}

/// Everything at once: bursty loss and jitter on all links, duplication,
/// and a domain partition that heals mid-run.
fn stormy_plan() -> FaultPlan {
    FaultPlan::reliable(0xC_4A05)
        .with_rule(FaultRule {
            from_us: STORM_FROM_US,
            until_us: STORM_UNTIL_US,
            links: LinkSel::all(),
            condition: Condition::GilbertElliott {
                p_enter_bad: 0.02,
                p_exit_bad: 0.10,
                loss_good: 0.005,
                loss_bad: 0.40,
            },
        })
        .with_rule(FaultRule {
            from_us: 0,
            until_us: u64::MAX,
            links: LinkSel::all(),
            condition: Condition::Jitter {
                max_extra_us: 30_000,
            },
        })
        .with_rule(FaultRule {
            from_us: 0,
            until_us: u64::MAX,
            links: LinkSel::all(),
            condition: Condition::Duplicate {
                p: 0.05,
                gap_us: 4_000,
            },
        })
        .with_partition(STORM_FROM_US, STORM_UNTIL_US, 4, &[1, 3])
}

fn build(shards: usize, trace: bool) -> ParallelFullSim {
    build_with(shards, trace, protocol())
}

fn build_with(shards: usize, trace: bool, protocol: ProtocolConfig) -> ParallelFullSim {
    let mut sim = ParallelFullSim::new(shards, N as usize, protocol, 20_000, 1_000, 11);
    sim.set_fault_plan(&stormy_plan());
    if trace {
        sim.enable_tracing(true);
    }
    let seed_id = NodeId(0x0123_4567_89AB_CDEF_0011_2233_4455_6677);
    sim.start_node(SimTime::ZERO, 0, seed_id, 1e9, Bytes::new(), None);
    let boot = Target {
        id: seed_id,
        addr: Addr(0),
        level: Level::TOP,
    };
    for k in 1..N {
        let id = NodeId((k as u128).wrapping_mul(0x9E37_79B9_7F4A_7C15_F39C_0C4A_2B8E_D1A3) | 1);
        sim.start_node(
            SimTime::from_millis(500 * k as u64),
            k,
            id,
            1e9,
            Bytes::new(),
            Some(boot),
        );
    }
    sim
}

#[test]
fn stormy_fingerprint_is_shard_invariant() {
    let mut one = build(1, false);
    let mut four = build(4, false);
    one.run_until(SimTime::from_secs(120));
    four.run_until(SimTime::from_secs(120));
    let (c1, c4) = (one.fault_counters(), four.fault_counters());
    assert!(c1.dropped > 0, "storm produced no drops: {c1:?}");
    assert!(c1.duplicated > 0, "no duplicates injected: {c1:?}");
    assert!(c1.jittered > 0, "no jitter applied: {c1:?}");
    assert_eq!(c1, c4, "fault verdicts diverged across shard counts");
    assert_eq!(
        one.fingerprint(),
        four.fingerprint(),
        "state diverged across shard counts under faults"
    );
}

/// The §4.1 hardening claim, made executable as a counterfactual pair:
/// at the default three probe attempts the partition purges the lists
/// (the settle audit sees the damage mid-outage); with nine backed-off
/// attempts the retry schedule outlasts the outage, nobody is expunged,
/// and the system settles on its own after the heal.
#[test]
fn partition_heals_and_settles() {
    // Counterfactual: un-hardened failure detection. ~3 s to a false
    // obituary, so 20 s into the partition the halves have purged each
    // other and the audit reports the missing pointers.
    let mut soft = build_with(
        4,
        false,
        ProtocolConfig {
            max_attempts: 3,
            ..protocol()
        },
    );
    soft.run_until(SimTime::from_micros(STORM_UNTIL_US - 5_000_000));
    let during = soft.part_audit();
    assert!(
        !during.is_settled(),
        "default config rode through a 25 s partition: {during:?}"
    );
    assert!(during.missing > 0, "expected purged pointers: {during:?}");

    // Hardened config: backoff outlasts the outage.
    let mut sim = build(4, false);
    sim.run_until(SimTime::from_micros(STORM_UNTIL_US - 5_000_000));
    let riding = sim.part_audit();
    assert_eq!(
        riding.missing, 0,
        "backoff failed to ride through the partition: {riding:?}"
    );
    sim.run_until(SimTime::from_secs(180));
    assert_eq!(sim.live_count(), N as usize);
    let (_, missing, stale) = sim.accuracy();
    assert_eq!((missing, stale), (0, 0), "lists did not repair after heal");
    let after = sim.part_audit();
    assert!(after.is_settled(), "not settled after heal: {after:?}");
    assert_eq!(after.parts, 1, "system still split: {after:?}");
}

#[test]
fn traced_stormy_runs_are_identical_across_shards() {
    let mut one = build(1, true);
    let mut four = build(4, true);
    one.run_until(SimTime::from_secs(90));
    four.run_until(SimTime::from_secs(90));
    assert_eq!(one.fingerprint(), four.fingerprint());
    let (t1, t4) = (one.take_trace(), four.take_trace());
    assert!(!t1.is_empty());
    assert!(
        t1.iter()
            .any(|r| matches!(r.kind, TraceEventKind::NetFault { .. })),
        "no net_fault records in the traced storm"
    );
    assert_eq!(t1.len(), t4.len(), "trace lengths diverged");
    assert_eq!(t1, t4, "trace contents diverged across shard counts");
}
