//! Tracing-layer acceptance tests over real simulation runs.
//!
//! * Shard-placement invariance: the canonical trace log of a traced
//!   [`ParallelFullSim`] run is *byte-identical* across shard counts —
//!   the observability side of the determinism contract in
//!   `tests/determinism.rs`.
//! * Exporter fidelity: JSONL and Chrome `trace_event` exports of a real
//!   run parse back to the same records, and a join multicast
//!   reconstructed from the Chrome round trip matches the tree that the
//!   §4.2 planner (`plan_tree`) derives from the root's own peer list.

use bytes::Bytes;
use peerwindow::des::{DetRng, SimTime};
use peerwindow::prelude::*;
use peerwindow::protocol::multicast::{plan_tree, tree_stats};
use peerwindow::sim::{FullSim, ParallelFullSim};
use peerwindow::topology::UniformNetwork;
use peerwindow_trace::{chrome, jsonl, reconstruct_tree, TraceEventKind};

fn protocol() -> ProtocolConfig {
    ProtocolConfig {
        probe_interval_us: 3_000_000,
        rpc_timeout_us: 500_000,
        processing_delay_us: 20_000,
        bandwidth_window_us: 12_000_000,
        ..ProtocolConfig::default()
    }
}

/// The determinism-suite parallel scenario (joins, a crash, a shutdown),
/// traced; returns the canonical JSONL log.
fn traced_parallel_jsonl(shards: usize) -> String {
    let n = 24u32;
    let mut sim = ParallelFullSim::new(shards, n as usize, protocol(), 20_000, 1_000, 7);
    sim.enable_tracing(true);
    let seed_id = NodeId(0x0123_4567_89AB_CDEF_0011_2233_4455_6677);
    sim.start_node(SimTime::ZERO, 0, seed_id, 1e9, Bytes::new(), None);
    let boot = Target {
        id: seed_id,
        addr: Addr(0),
        level: Level::TOP,
    };
    for k in 1..n {
        let id = NodeId((k as u128).wrapping_mul(0x9E37_79B9_7F4A_7C15_F39C_0C4A_2B8E_D1A3) | 1);
        sim.start_node(
            SimTime::from_millis(500 * k as u64),
            k,
            id,
            1e9,
            Bytes::new(),
            Some(boot),
        );
    }
    sim.crash(SimTime::from_secs(25), 5);
    sim.command(SimTime::from_secs(30), 2, Command::Shutdown);
    sim.run_until(SimTime::from_secs(60));
    jsonl::to_string(&sim.take_trace())
}

#[test]
fn shard_count_never_changes_the_trace_log() {
    let one = traced_parallel_jsonl(1);
    let four = traced_parallel_jsonl(4);
    assert!(!one.is_empty(), "traced run produced no records");
    assert_eq!(one, four, "trace logs differ between 1 and 4 shards");
}

#[test]
fn jsonl_round_trips_a_real_run() {
    let doc = traced_parallel_jsonl(2);
    let records = jsonl::parse_string(&doc).expect("own JSONL export must parse");
    assert_eq!(jsonl::to_string(&records), doc);
}

#[test]
fn chrome_roundtrip_of_a_join_multicast_matches_the_planner() {
    // Grow a stable membership first: seed + 19 joiners, high bandwidth
    // thresholds (nobody shifts down), reliable network, then settle.
    let mut sim = FullSim::new(
        protocol(),
        Box::new(UniformNetwork { latency_us: 25_000 }),
        11,
    );
    let mut rng = DetRng::new(99);
    sim.spawn_seed(NodeId(rng.next_u128()), 1e9, Bytes::new());
    for _ in 0..19 {
        sim.run_for(700_000);
        sim.spawn_joiner(NodeId(rng.next_u128()), 1e9, Bytes::new());
    }
    sim.run_for(40_000_000);

    // Trace exactly one more join: its announcement is a §4.2 multicast
    // about the joiner, rooted at a top node of the joiner's part.
    sim.enable_tracing(true);
    let joiner = NodeId(rng.next_u128());
    sim.spawn_joiner(joiner, 1e9, Bytes::new())
        .expect("late joiner admitted");
    sim.run_for(10_000_000);
    let records = sim.take_trace();

    let root_rec = records
        .iter()
        .find(|r| r.cause.subject == joiner.0 && matches!(r.kind, TraceEventKind::McastRoot { .. }))
        .expect("join multicast root record");
    let TraceEventKind::McastRoot { step, .. } = root_rec.kind else {
        unreachable!()
    };

    // Chrome round trip must preserve the multicast structure exactly.
    let parsed = chrome::parse(&chrome::export(&records)).expect("own Chrome export must parse");
    let tree = reconstruct_tree(&records, root_rec.cause);
    let tree2 = reconstruct_tree(&parsed, root_rec.cause);
    assert_eq!(tree.root, tree2.root);
    assert_eq!(tree.hops, tree2.hops);
    assert_eq!(tree.redirects, tree2.redirects);

    // The traced tree must match what the planner derives from the
    // root's own (converged, hence consistent) peer list.
    assert_eq!(tree.root, Some(root_rec.node));
    let (_, root_machine) = sim
        .machines()
        .find(|(_, m)| m.id().0 == root_rec.node)
        .expect("multicast root still alive");
    let plan = plan_tree(root_machine.peers(), root_machine.id(), step, joiner);
    let want = tree_stats(&plan, root_machine.id());
    assert_eq!(
        tree.max_depth(),
        want.max_depth,
        "reconstructed hop depth differs from the planner's"
    );
    assert_eq!(tree.receivers(), want.receivers);
    assert_eq!(tree.root_out_degree(), want.root_out_degree);
    assert_eq!(tree.redirects, 0, "no churn, so no redirects");
}
