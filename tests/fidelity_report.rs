//! Head-to-head fidelity comparison: a full-fidelity run (real protocol
//! machines) and an oracle-mode run (the paper's centralized trick) of
//! comparable systems must agree on the population-level quantities the
//! figures report — level distribution and peer-list sizes.

use bytes::Bytes;
use peerwindow::des::{DetRng, SimTime};
use peerwindow::prelude::*;
use peerwindow::sim::oracle::{run_oracle, NetworkConfig, OracleConfig};
use peerwindow::sim::FullSim;
use peerwindow::topology::UniformNetwork;
use peerwindow::workload::{BandwidthDist, ChurnConfig, LifetimeDist};

#[test]
fn full_and_oracle_agree_on_level_distribution_and_list_sizes() {
    // --- Full fidelity: 300 nodes with the paper's threshold policy. ---
    let protocol = ProtocolConfig {
        probe_interval_us: 5_000_000,
        rpc_timeout_us: 600_000,
        processing_delay_us: 20_000,
        bandwidth_window_us: 20_000_000,
        ..ProtocolConfig::default()
    };
    let mut sim = FullSim::new(
        protocol.clone(),
        Box::new(UniformNetwork { latency_us: 40_000 }),
        1,
    );
    let churn = ChurnConfig {
        n: 300,
        lifetime: LifetimeDist::Fixed { secs: 1e9 }, // no departures: compare structure
        lifetime_rate: 1.0,
        bandwidth: BandwidthDist::gnutella(),
        threshold_frac: 0.01,
        threshold_floor_bps: 500.0,
        seed: 7,
    };
    let mut rng = DetRng::new(7);
    let pop = churn.initial_population();
    sim.spawn_seed(NodeId(rng.next_u128()), 1e9, Bytes::new());
    for (spec, _) in &pop {
        sim.run_for(120_000);
        sim.spawn_joiner(NodeId(spec.id_raw), spec.threshold_bps, Bytes::new());
    }
    // Settling time: with a 20 s bandwidth window a climb needs a post-
    // shift cooldown plus four consecutive quiet windows (~100 s), so
    // nodes that joined mid-storm two levels deep need ~200 s of quiet.
    sim.run_until(SimTime::from_secs(360));
    let full = sim.report(360.0);

    // --- Oracle: same population target, same threshold policy. ---
    let oracle = run_oracle(OracleConfig {
        churn: ChurnConfig { seed: 7, ..churn },
        protocol,
        network: NetworkConfig::Uniform { latency_us: 40_000 },
        warmup_s: 40.0,
        measure_s: 120.0,
        adapt_interval_s: 20.0,
        sample_interval_s: 20.0,
        graceful_fraction: 0.0,
        seed: 7,
        flash_crowds: vec![],
    });

    // Quantities to compare: level-0 share and the L0 list size ≈ N.
    let f0_full = full.level(0).map(|r| r.node_fraction).unwrap_or(0.0);
    let f0_oracle = oracle.level(0).map(|r| r.node_fraction).unwrap_or(0.0);
    // At n = 300 the steady-state level-0 cost is ~111 bps < every
    // threshold floor, so both fidelities put (nearly) everyone at level
    // 0. Full fidelity keeps a small transient tail: nodes that joined
    // mid-storm estimated deeper (the measured W_T was inflated by join
    // traffic) and climb back one debounced window at a time.
    assert!(f0_full > 0.9, "full-fidelity L0 share {f0_full}");
    assert!(f0_oracle > 0.9, "oracle L0 share {f0_oracle}");
    assert!(
        (f0_full - f0_oracle).abs() < 0.1,
        "fidelities disagree: full {f0_full} vs oracle {f0_oracle}"
    );
    let l0_full = full.level(0).unwrap();
    let l0_oracle = oracle.level(0).unwrap();
    let ratio = l0_full.list_mean / (full.n_final as f64 - 1.0);
    assert!(ratio > 0.98, "full lists incomplete: {ratio}");
    let ratio = l0_oracle.list_mean / (oracle.n_final as f64 - 1.0);
    assert!(ratio > 0.98, "oracle lists incomplete: {ratio}");
}
