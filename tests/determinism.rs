//! Determinism regression: identically-seeded simulations must produce
//! byte-identical state fingerprints — run-to-run, and (for the parallel
//! engine) across shard counts. This is the workspace's "no HashMap
//! iteration, no wall clock" contract made executable; the lint side of
//! the same contract lives in `peerwindow-audit`.

use bytes::Bytes;
use peerwindow::des::{DetRng, SimTime};
use peerwindow::prelude::*;
use peerwindow::sim::{FullSim, ParallelFullSim};
use peerwindow::topology::UniformNetwork;

fn protocol() -> ProtocolConfig {
    ProtocolConfig {
        probe_interval_us: 3_000_000,
        rpc_timeout_us: 500_000,
        processing_delay_us: 20_000,
        bandwidth_window_us: 12_000_000,
        ..ProtocolConfig::default()
    }
}

/// A busy little system: joins, a level pin, silent crashes, graceful
/// departures, and (optionally) datagram loss — every nondeterminism
/// hazard the protocol stack has, in one scenario.
fn full_sim_fingerprint(engine_seed: u64, loss: f64) -> u64 {
    let mut sim = FullSim::new(
        protocol(),
        Box::new(UniformNetwork { latency_us: 25_000 }),
        engine_seed,
    );
    sim.set_loss(loss);
    let mut rng = DetRng::new(77);
    sim.spawn_seed(NodeId(rng.next_u128()), 1e9, Bytes::new());
    let mut slots = Vec::new();
    for _ in 0..24 {
        sim.run_for(700_000);
        if let Some(s) = sim.spawn_joiner(NodeId(rng.next_u128()), 1e9, Bytes::new()) {
            slots.push(s);
        }
    }
    sim.run_for(20_000_000);
    sim.set_level_after(slots[3], 100_000, Level::new(1));
    sim.crash_after(slots[7], 2_000_000);
    sim.crash_after(slots[8], 2_100_000);
    sim.leave_after(slots[11], 5_000_000);
    sim.run_for(60_000_000);
    sim.fingerprint()
}

#[test]
fn same_seed_same_fingerprint() {
    assert_eq!(
        full_sim_fingerprint(42, 0.0),
        full_sim_fingerprint(42, 0.0),
        "identically-seeded runs diverged on a reliable network"
    );
}

#[test]
fn same_seed_same_fingerprint_under_loss() {
    // Datagram loss is drawn from the seeded engine RNG, so it must not
    // break reproducibility either.
    assert_eq!(
        full_sim_fingerprint(42, 0.05),
        full_sim_fingerprint(42, 0.05),
        "identically-seeded runs diverged under 5 % loss"
    );
}

#[test]
fn fingerprint_is_seed_sensitive() {
    // Canary for a degenerate digest: different engine seeds must not
    // collapse to one value.
    assert_ne!(full_sim_fingerprint(42, 0.0), full_sim_fingerprint(43, 0.0));
}

/// The parallel engine's pitch (and ONSP's): shard count is a pure
/// speedup, never a different simulation. `faulty` additionally installs
/// a lossy/jittery `FaultPlan`, and `workers` overrides the engine's
/// thread count — none of which may perturb the fingerprint.
fn parallel_fingerprint_cfg(shards: usize, faulty: bool, workers: usize) -> (u64, u64) {
    let n = 24u32;
    let mut sim = ParallelFullSim::new(shards, n as usize, protocol(), 20_000, 1_000, 7);
    sim.set_workers(workers);
    if faulty {
        sim.set_fault_plan(&peerwindow::faults::FaultPlan::uniform_loss(99, 0.03));
    }
    let seed_id = NodeId(0x0123_4567_89AB_CDEF_0011_2233_4455_6677);
    sim.start_node(SimTime::ZERO, 0, seed_id, 1e9, Bytes::new(), None);
    let boot = Target {
        id: seed_id,
        addr: Addr(0),
        level: Level::TOP,
    };
    for k in 1..n {
        let id = NodeId((k as u128).wrapping_mul(0x9E37_79B9_7F4A_7C15_F39C_0C4A_2B8E_D1A3) | 1);
        sim.start_node(
            SimTime::from_millis(500 * k as u64),
            k,
            id,
            1e9,
            Bytes::new(),
            Some(boot),
        );
    }
    sim.crash(SimTime::from_secs(25), 5);
    sim.command(SimTime::from_secs(30), 2, Command::Shutdown);
    sim.run_until(SimTime::from_secs(60));
    (sim.fingerprint(), sim.processed())
}

fn parallel_fingerprint(shards: usize) -> (u64, u64) {
    parallel_fingerprint_cfg(shards, false, 1)
}

/// Same scenario as [`parallel_fingerprint_cfg`], but with the runtime
/// metrics layer switched on. Also returns the report so tests can check
/// the observation side without re-running.
fn parallel_fingerprint_metered(
    shards: usize,
    workers: usize,
) -> (u64, u64, peerwindow::metrics::runtime::RunReport) {
    let n = 24u32;
    let mut sim = ParallelFullSim::new(shards, n as usize, protocol(), 20_000, 1_000, 7);
    sim.set_workers(workers);
    sim.enable_runtime_metrics(true);
    let seed_id = NodeId(0x0123_4567_89AB_CDEF_0011_2233_4455_6677);
    sim.start_node(SimTime::ZERO, 0, seed_id, 1e9, Bytes::new(), None);
    let boot = Target {
        id: seed_id,
        addr: Addr(0),
        level: Level::TOP,
    };
    for k in 1..n {
        let id = NodeId((k as u128).wrapping_mul(0x9E37_79B9_7F4A_7C15_F39C_0C4A_2B8E_D1A3) | 1);
        sim.start_node(
            SimTime::from_millis(500 * k as u64),
            k,
            id,
            1e9,
            Bytes::new(),
            Some(boot),
        );
    }
    sim.crash(SimTime::from_secs(25), 5);
    sim.command(SimTime::from_secs(30), 2, Command::Shutdown);
    sim.run_until(SimTime::from_secs(60));
    let report = sim.runtime_metrics_report("determinism");
    (sim.fingerprint(), sim.processed(), report)
}

#[test]
fn runtime_metrics_do_not_perturb_the_fingerprint() {
    // Metrics are write-only observation: recording wall-clock laps and
    // handoff counters must leave the simulated world byte-identical.
    let (plain_f, plain_p) = parallel_fingerprint(4);
    let (metered_f, metered_p, _) = parallel_fingerprint_metered(4, 1);
    assert_eq!(plain_p, metered_p, "metrics changed the processed count");
    assert_eq!(plain_f, metered_f, "metrics changed the world digest");
}

#[test]
fn shard_invariance_holds_with_runtime_metrics_enabled() {
    // The PR 8 contract: 1-vs-4-shard fingerprints stay byte-identical
    // with `runtime-metrics` compiled in *and* enabled, sequential and
    // threaded paths alike.
    let (f1, p1, _) = parallel_fingerprint_metered(1, 1);
    let (f4, p4, _) = parallel_fingerprint_metered(4, 1);
    let (f4t, p4t, _) = parallel_fingerprint_metered(4, 4);
    assert_eq!(p1, p4, "processed counts differ with metrics (1 vs 4)");
    assert_eq!(f1, f4, "world digest differs with metrics (1 vs 4)");
    assert_eq!(p1, p4t, "processed counts differ with metrics (threaded)");
    assert_eq!(f1, f4t, "world digest differs with metrics (threaded)");
}

#[test]
fn runtime_metrics_report_is_coherent() {
    // When the feature is compiled in, the attribution must account for
    // the run: fractions over named groups sum to ~1 and the event
    // counter matches the engine's processed count.
    let (_, processed, report) = parallel_fingerprint_metered(4, 2);
    if !peerwindow::sim::runtime_metrics_active() {
        assert_eq!(report.total_time_ns(), 0);
        return;
    }
    assert_eq!(report.counter("events"), processed);
    assert!(report.counter("windows") > 0, "no windows recorded");
    assert!(report.total_time_ns() > 0, "no wall-clock time attributed");
    let sum: f64 = report.attribution().iter().map(|(_, f)| f).sum();
    assert!(
        (sum - 1.0).abs() < 1e-9,
        "attribution fractions sum to {sum}, expected 1.0"
    );
    assert_eq!(report.per_shard.len(), 4, "expected one row per shard");
}

#[test]
fn one_and_four_shards_agree() {
    let (f1, p1) = parallel_fingerprint(1);
    let (f4, p4) = parallel_fingerprint(4);
    assert_eq!(p1, p4, "processed-event counts differ (1 vs 4 shards)");
    assert_eq!(f1, f4, "world digest differs (1 vs 4 shards)");
}

#[test]
fn one_four_and_eight_shards_agree() {
    let (f1, p1) = parallel_fingerprint(1);
    let (f8, p8) = parallel_fingerprint(8);
    assert_eq!(p1, p8, "processed-event counts differ (1 vs 8 shards)");
    assert_eq!(f1, f8, "world digest differs (1 vs 8 shards)");
}

#[test]
fn shard_invariance_holds_under_fault_plan() {
    // A lossy, jittery network exercises the per-link conditioner streams;
    // the digest must still be a pure function of the scenario.
    let (f1, p1) = parallel_fingerprint_cfg(1, true, 1);
    let (f4, p4) = parallel_fingerprint_cfg(4, true, 1);
    let (f8, p8) = parallel_fingerprint_cfg(8, true, 1);
    assert_eq!(p1, p4, "processed counts differ under faults (1 vs 4)");
    assert_eq!(p1, p8, "processed counts differ under faults (1 vs 8)");
    assert_eq!(f1, f4, "digest differs under faults (1 vs 4 shards)");
    assert_eq!(f1, f8, "digest differs under faults (1 vs 8 shards)");
    // The plan actually dropped traffic (different digest from clean run).
    assert_ne!(
        f1,
        parallel_fingerprint(1).0,
        "fault plan had no observable effect — the faulty pin is vacuous"
    );
}

#[test]
fn worker_count_never_changes_the_world() {
    // The threaded window protocol (persistent workers, spin barrier,
    // mailbox matrix) must be bit-identical to the sequential path, even
    // oversubscribed on a 1-core host.
    let (f1, p1) = parallel_fingerprint_cfg(8, true, 1);
    let (f4, p4) = parallel_fingerprint_cfg(8, true, 4);
    let (f8, p8) = parallel_fingerprint_cfg(8, true, 8);
    assert_eq!(p1, p4, "processed counts differ (1 vs 4 workers)");
    assert_eq!(p1, p8, "processed counts differ (1 vs 8 workers)");
    assert_eq!(f1, f4, "world digest differs (1 vs 4 workers)");
    assert_eq!(f1, f8, "world digest differs (1 vs 8 workers)");
}
