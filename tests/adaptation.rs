//! Autonomy (§2, §4.3): nodes pick levels from their budgets at join time
//! and shift levels at runtime when their measured cost or their budget
//! changes.

use bytes::Bytes;
use peerwindow::des::{DetRng, SimTime};
use peerwindow::prelude::*;
use peerwindow::sim::FullSim;
use peerwindow::topology::UniformNetwork;

fn protocol() -> ProtocolConfig {
    ProtocolConfig {
        probe_interval_us: 4_000_000,
        rpc_timeout_us: 400_000,
        processing_delay_us: 10_000,
        bandwidth_window_us: 8_000_000, // adapt every 8 s
        ..ProtocolConfig::default()
    }
}

/// Drive enough event traffic that a tiny-budget node must lower its
/// level (shrink its list) while loaded, and — autonomy! — climb back to
/// the top once the system quiets down (§2's dynamic adjustment).
#[test]
fn overloaded_node_lowers_its_level_and_recovers() {
    let mut sim = FullSim::new(
        protocol(),
        Box::new(UniformNetwork { latency_us: 10_000 }),
        21,
    );
    let mut rng = DetRng::new(50);
    sim.spawn_seed(NodeId(rng.next_u128()), 1e9, Bytes::new());
    // One pauper among patricians: ~200 bps budget.
    let pauper = {
        sim.run_for(500_000);
        sim.spawn_joiner(NodeId(rng.next_u128()), 200.0, Bytes::new())
            .unwrap()
    };
    for _ in 0..30 {
        sim.run_for(400_000);
        sim.spawn_joiner(NodeId(rng.next_u128()), 1e9, Bytes::new())
            .unwrap();
    }
    sim.run_for(10_000_000);
    // Generate sustained event traffic: rolling info changes (~4 kbps at
    // level 0, 20x the pauper's budget).
    let slots: Vec<u32> = sim.machines().map(|(s, _)| s).collect();
    for round in 0..120u64 {
        let slot = slots[(round as usize) % slots.len()];
        sim.set_info_after(slot, round * 250_000, Bytes::from(format!("v{round}")));
    }
    // Mid-load: the pauper has descended.
    sim.run_until(SimTime::from_secs(42));
    let m = sim.machine(pauper).expect("pauper alive");
    assert!(
        m.level().value() >= 1,
        "pauper stayed at level {} despite a 200 bps budget",
        m.level()
    );
    // Its list really is the prefix-scoped subset.
    assert_eq!(m.peers().scope(), m.eigenstring());
    for p in m.peers().iter() {
        assert!(m.eigenstring().contains(p.id));
    }
    assert!(
        sim.log()
            .shifts
            .iter()
            .any(|&(s, from, to)| s == pauper && to.value() > from.value()),
        "no downward shift recorded: {:?}",
        sim.log().shifts
    );
    // The rich stayed on top throughout.
    let rich_at_top = sim
        .machines()
        .filter(|(s, _)| *s != pauper)
        .filter(|(_, m)| m.level().is_top())
        .count();
    assert!(
        rich_at_top >= 25,
        "only {rich_at_top} rich nodes at level 0"
    );
    // Quiet phase: cost collapses, the pauper climbs back (peer list
    // "inflates" as §2 describes), re-downloading from stronger nodes.
    // Recovery is deliberately slow: each climb waits out a post-shift
    // cooldown window plus four consecutive under-budget windows (raising
    // costs a full download, so the debounce is asymmetric), and the
    // pauper bottoms out around L3 — three climbs ≈ 40 s each.
    sim.run_until(SimTime::from_secs(250));
    let m = sim.machine(pauper).unwrap();
    assert!(
        m.level().is_top(),
        "pauper did not recover after quiescence: {}",
        m.level()
    );
    assert_eq!(m.peers().len(), 31);
}

/// Autonomy is dynamic the other way too: under *sustained* load a
/// pauper stays deep, until its budget is raised at runtime — then it
/// climbs despite the load (§2: "adjust it dynamically").
#[test]
fn budget_increase_raises_level_under_load() {
    let mut sim = FullSim::new(
        protocol(),
        Box::new(UniformNetwork { latency_us: 10_000 }),
        22,
    );
    let mut rng = DetRng::new(51);
    sim.spawn_seed(NodeId(rng.next_u128()), 1e9, Bytes::new());
    let pauper = {
        sim.run_for(500_000);
        sim.spawn_joiner(NodeId(rng.next_u128()), 200.0, Bytes::new())
            .unwrap()
    };
    for _ in 0..25 {
        sim.run_for(400_000);
        sim.spawn_joiner(NodeId(rng.next_u128()), 1e9, Bytes::new())
            .unwrap();
    }
    // Sustained traffic for the whole test (one info change every 400 ms
    // until t = 190 s).
    let slots: Vec<u32> = sim.machines().map(|(s, _)| s).collect();
    for round in 0..450u64 {
        let slot = slots[(round as usize) % slots.len()];
        sim.set_info_after(
            slot,
            10_000_000 + round * 400_000,
            Bytes::from(format!("v{round}")),
        );
    }
    sim.run_until(SimTime::from_secs(90));
    let low = sim.machine(pauper).unwrap().level();
    assert!(low.value() >= 1, "pauper never descended under load");
    // Budget upgrade at runtime: the user bought fiber.
    sim.set_threshold_after(pauper, 0, 1e9);
    sim.run_until(SimTime::from_secs(185));
    let high = sim.machine(pauper).unwrap().level();
    assert!(
        high.value() < low.value(),
        "pauper did not climb despite the new budget: {low} vs {high}"
    );
    let m = sim.machine(pauper).unwrap();
    assert_eq!(m.peers().scope(), m.eigenstring());
}

/// The §4.3 join-time estimate places a weak joiner below the top level
/// immediately (no oscillation from level 0 downwards) once the system
/// carries measurable traffic.
#[test]
fn weak_joiner_estimates_low_entry_level() {
    let mut sim = FullSim::new(
        protocol(),
        Box::new(UniformNetwork { latency_us: 10_000 }),
        23,
    );
    let mut rng = DetRng::new(52);
    sim.spawn_seed(NodeId(rng.next_u128()), 1e9, Bytes::new());
    for _ in 0..30 {
        sim.run_for(300_000);
        sim.spawn_joiner(NodeId(rng.next_u128()), 1e9, Bytes::new())
            .unwrap();
    }
    // Sustained traffic so the top's measured cost W_T is non-trivial.
    let slots: Vec<u32> = sim.machines().map(|(s, _)| s).collect();
    for round in 0..200u64 {
        let slot = slots[(round as usize) % slots.len()];
        sim.set_info_after(
            slot,
            10_000_000 + round * 150_000,
            Bytes::from(format!("x{round}")),
        );
    }
    sim.run_until(SimTime::from_secs(45));
    // Now a genuinely weak node joins: its level estimate uses l_T and
    // the measured W_T (§4.3) and should start below level 0.
    let weak = sim
        .spawn_joiner(NodeId(rng.next_u128()), 50.0, Bytes::new())
        .unwrap();
    sim.run_until(SimTime::from_secs(60));
    let m = sim.machine(weak).expect("weak node alive");
    assert!(m.is_active(), "weak node failed to join");
    assert!(
        m.level().value() >= 1,
        "weak joiner estimated level {}",
        m.level()
    );
}
