//! Split PeerWindow (§4.4), full fidelity: when the last level-0 node
//! departs, the system partitions into independent parts, and each part
//! keeps functioning as a complete PeerWindow.
//!
//! The split regime presumes level 0 is unaffordable (§4.4: "when the
//! system is very large or very dynamic"); a 25-node test cannot make
//! level 0 genuinely unaffordable without running at the adaptation
//! controller's stability edge, so nodes are pinned to level 1 via the
//! explicit `Command::SetLevel` API and upward adaptation is disabled.

use bytes::Bytes;
use peerwindow::des::{DetRng, SimTime};
use peerwindow::prelude::*;
use peerwindow::sim::FullSim;
use peerwindow::topology::UniformNetwork;

fn protocol() -> ProtocolConfig {
    ProtocolConfig {
        probe_interval_us: 3_000_000,
        rpc_timeout_us: 400_000,
        processing_delay_us: 10_000,
        bandwidth_window_us: 16_000_000,
        default_refresh_us: 60_000_000,
        grow_fraction: 0.0, // hold the split: never raise autonomously
        ..ProtocolConfig::default()
    }
}

/// Seed at level 0, 24 joiners pinned to level 1, then the seed leaves:
/// the system splits into the "0" and "1" parts.
fn build_split(seed: u64) -> FullSim {
    let mut sim = FullSim::new(
        protocol(),
        Box::new(UniformNetwork { latency_us: 15_000 }),
        seed,
    );
    let mut rng = DetRng::new(seed ^ 0x517);
    let seed_slot = sim.spawn_seed(NodeId(rng.next_u128()), 1e9, Bytes::new());
    let mut joiners = Vec::new();
    for _ in 0..24 {
        sim.run_for(600_000);
        joiners.push(
            sim.spawn_joiner(NodeId(rng.next_u128()), 1e9, Bytes::new())
                .expect("bootstrap"),
        );
    }
    sim.run_for(20_000_000);
    for &j in &joiners {
        sim.set_level_after(j, 0, Level::new(1));
    }
    sim.run_for(20_000_000);
    // Everyone (but the seed) is now at level 1 with a half-space list.
    for (slot, m) in sim.machines() {
        if slot != seed_slot {
            assert_eq!(m.level(), Level::new(1), "slot {slot} not pinned");
            assert_eq!(m.peers().scope(), m.eigenstring());
        }
    }
    sim.leave_after(seed_slot, 0);
    sim.run_for(20_000_000);
    sim
}

#[test]
fn seed_departure_splits_the_system() {
    let mut sim = build_split(31);
    sim.run_until(SimTime::from_secs(90));
    let members: Vec<NodeIdentity> = sim.ground_truth();
    assert!(members.iter().all(|m| m.level == Level::new(1)));
    let parts = PartMap::from_members(&members);
    assert!(parts.is_split(), "parts: {:?}", parts.parts());
    assert_eq!(parts.count(), 2);
    // §4.4: "a node in one part must keep no pointer to any node of the
    // other part" — structurally guaranteed by the level-1 scopes.
    for (_, m) in sim.machines() {
        let my_part = parts.part_of(m.id()).expect("member has a part");
        for p in m.peers().iter() {
            assert_eq!(
                parts.part_of(p.id),
                Some(my_part),
                "{} (part {my_part}) holds cross-part pointer to {}",
                m.id(),
                p.id
            );
        }
    }
    // Each part is fully connected at its own level (§2 property 5).
    for (_, m) in sim.machines() {
        let part_size = sim
            .machines()
            .filter(|(_, o)| o.eigenstring() == m.eigenstring())
            .count();
        assert_eq!(
            m.peers().len() + 1,
            part_size,
            "{} does not know its whole part",
            m.id()
        );
    }
}

#[test]
fn each_part_keeps_disseminating_after_the_split() {
    let mut sim = build_split(37);
    sim.run_until(SimTime::from_secs(90));
    let parts = PartMap::from_members(&sim.ground_truth());
    assert!(parts.is_split());
    // Change every node's info; within each part the change must reach
    // every part-mate, and no information crosses the part boundary.
    let slots: Vec<(u32, NodeId)> = sim.machines().map(|(s, m)| (s, m.id())).collect();
    for (k, &(slot, _)) in slots.iter().enumerate() {
        sim.set_info_after(slot, k as u64 * 200_000, Bytes::from(format!("tag-{k}")));
    }
    sim.run_until(SimTime::from_secs(140));
    let mut pairs = 0;
    let mut agree = 0;
    for (_, holder) in sim.machines() {
        for (_, subject) in sim.machines() {
            if subject.id() == holder.id() {
                continue;
            }
            if holder.eigenstring().contains(subject.id()) {
                pairs += 1;
                if holder
                    .peers()
                    .get(subject.id())
                    .map(|p| p.info == *subject.info())
                    .unwrap_or(false)
                {
                    agree += 1;
                }
            } else {
                // Other part: must not even hold a pointer.
                assert!(holder.peers().get(subject.id()).is_none());
            }
        }
    }
    assert!(pairs > 0);
    assert_eq!(
        agree, pairs,
        "only {agree}/{pairs} part-mate pairs agree on the info"
    );
    // Failure detection also still works per part: crash one node in the
    // "0" part and watch its part-mates purge it.
    let victim = slots
        .iter()
        .find(|(_, id)| !id.bit(0))
        .map(|&(s, id)| (s, id))
        .expect("a node in part 0");
    sim.crash_after(victim.0, 0);
    sim.run_until(SimTime::from_secs(200));
    for (_, m) in sim.machines() {
        assert!(
            m.peers().get(victim.1).is_none(),
            "{} still lists the crashed {}",
            m.id(),
            victim.1
        );
    }
}
