//! PR 10 churn soak: the serving layer under sustained membership churn
//! and datagram loss. A [`QueryEngine`] serves from one node's published
//! snapshots while the simulation joins, crashes, and gracefully leaves
//! nodes under a seeded [`FaultPlan`] — and must hold three guarantees:
//!
//! * zero query panics: every plan executes against every refreshed
//!   epoch without error, whatever the churn did to the list;
//! * monotone epochs: the engine's served epoch never moves backwards
//!   across refreshes;
//! * bounded staleness: once churn stops and one settle window passes,
//!   the served view is byte-identical (modulo refresh stamps) to the
//!   observed node's live peer list — the serving layer never trails by
//!   more than the window.

use bytes::Bytes;
use peerwindow::apps::query::{QueryEngine, QueryPlan};
use peerwindow::des::DetRng;
use peerwindow::faults::FaultPlan;
use peerwindow::prelude::*;
use peerwindow::sim::FullSim;
use peerwindow::topology::UniformNetwork;

fn protocol() -> ProtocolConfig {
    ProtocolConfig {
        probe_interval_us: 4_000_000,
        rpc_timeout_us: 500_000,
        processing_delay_us: 20_000,
        bandwidth_window_us: 15_000_000,
        ..ProtocolConfig::default()
    }
}

#[test]
fn query_engine_survives_seeded_churn() {
    let mut sim = FullSim::new(
        protocol(),
        Box::new(UniformNetwork { latency_us: 25_000 }),
        23,
    );
    // Seeded datagram loss on top of the churn: refreshes and failure
    // reports get dropped, retried, and reordered like on a real WAN.
    sim.set_fault_plan(FaultPlan::uniform_loss(23, 0.02));
    let _dir = sim.enable_snapshots();

    let mut rng = DetRng::new(4242);
    let seed_slot = sim.spawn_seed(NodeId(rng.next_u128()), 1e9, Bytes::new());
    let mut slots = Vec::new();
    for _ in 0..30u64 {
        sim.run_for(2_000_000);
        slots.push(
            sim.spawn_joiner(NodeId(rng.next_u128()), 1e9, Bytes::new())
                .expect("bootstrap available"),
        );
    }
    sim.run_for(20_000_000);

    // The engine observes the seed node's published snapshots.
    let reader = sim
        .snapshot_reader(seed_slot)
        .expect("seed published at least once");
    let engine = QueryEngine::new(reader);
    let plans = [
        QueryPlan::Strongest { k: 5 },
        QueryPlan::holders(b"doc-churn"),
        QueryPlan::PartnersEq {
            key: "os".into(),
            value: "linux".into(),
            limit: 8,
        },
        QueryPlan::KSmallest {
            key: "load".into(),
            k: 3,
        },
    ];

    // Churn: every ~6 s one join plus one departure (mostly graceful,
    // every fourth round a silent crash), with the engine refreshing and
    // querying between rounds.
    let mut last_epoch = engine.prepared().epoch();
    let mut executed = 0u64;
    for round in 0..25u64 {
        sim.run_for(6_000_000);
        slots.push(
            sim.spawn_joiner(NodeId(rng.next_u128()), 1e9, Bytes::new())
                .expect("bootstrap available"),
        );
        for _ in 0..8 {
            let victim = slots[(rng.next_u64() as usize) % slots.len()];
            if victim != seed_slot && sim.machine(victim).is_some() && sim.live_count() > 20 {
                if round % 4 == 3 {
                    sim.crash_after(victim, 1_000_000);
                } else {
                    sim.leave_after(victim, 1_000_000);
                }
                break;
            }
        }
        engine.refresh();
        let ps = engine.prepared();
        assert!(
            ps.epoch() >= last_epoch,
            "served epoch went backwards: {} < {last_epoch}",
            ps.epoch()
        );
        last_epoch = ps.epoch();
        assert!(ps.snapshot().is_well_formed(), "round {round}: torn view");
        for plan in &plans {
            // The guarantee is absence of panics and well-formed output,
            // not specific hits (the infos are empty in this scenario).
            let hits = plan.execute(&ps);
            executed += 1;
            assert!(hits.len() <= ps.len());
        }
    }
    assert_eq!(executed, 100);
    assert!(sim.snapshots_published() > 0);
    // Empty infos never decode-error (only foreign bytes do).
    assert_eq!(engine.decode_errors_total(), 0);

    // Settle: one failure-detection window with no further churn, then
    // the served view must equal the seed's live list exactly.
    sim.run_for(90_000_000);
    engine.refresh();
    let ps = engine.prepared();
    assert!(ps.epoch() >= last_epoch);
    let live: Vec<(u128, u8)> = sim
        .machine(seed_slot)
        .expect("seed survives the whole soak")
        .peers()
        .iter()
        .map(|p| (p.id.raw(), p.level.value()))
        .collect();
    let served: Vec<(u128, u8)> = ps
        .snapshot()
        .pointers()
        .iter()
        .map(|p| (p.id.raw(), p.level.value()))
        .collect();
    assert_eq!(
        served, live,
        "served view still trails the live list after a settle window"
    );
}
