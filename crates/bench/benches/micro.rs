//! Microbenchmarks of the protocol's hot operations.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use peerwindow_core::prelude::*;
use peerwindow_des::DetRng;
use peerwindow_sim::directory::Directory;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn build_list(n: usize, seed: u64) -> PeerList {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut list = PeerList::new(Prefix::EMPTY);
    for _ in 0..n {
        list.insert(Pointer::new(
            NodeId(rng.gen()),
            Addr(rng.gen()),
            Level::new(rng.gen_range(0..8)),
        ));
    }
    list
}

fn bench_prefix_ops(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let ids: Vec<NodeId> = (0..1024).map(|_| NodeId(rng.gen())).collect();
    c.bench_function("id/common_prefix_len", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % 1023;
            black_box(ids[i].common_prefix_len(ids[i + 1]))
        })
    });
    c.bench_function("id/audience_covers", |b| {
        let ident = NodeIdentity::new(ids[0], Level::new(4));
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % 1024;
            black_box(ident.covers(ids[i]))
        })
    });
}

fn bench_peer_list(c: &mut Criterion) {
    for n in [1_000usize, 10_000, 100_000] {
        let list = build_list(n, 2);
        let mut rng = StdRng::seed_from_u64(3);
        c.bench_with_input(
            BenchmarkId::new("peer_list/target_selection", n),
            &n,
            |b, _| {
                b.iter(|| {
                    let changing = NodeId(rng.gen());
                    let range = changing.prefix(1).sibling();
                    black_box(PeerList::strongest_audience_in_range(
                        &list,
                        range,
                        changing,
                        NodeId(0),
                    ))
                })
            },
        );
        c.bench_with_input(
            BenchmarkId::new("peer_list/insert_remove", n),
            &n,
            |b, _| {
                let mut list = list.clone();
                b.iter(|| {
                    let id = NodeId(rng.gen());
                    list.insert(Pointer::new(id, Addr(0), Level::new(2)));
                    list.remove(id);
                })
            },
        );
    }
}

fn bench_plan_tree(c: &mut Criterion) {
    for n in [1_000usize, 10_000] {
        let list = build_list(n, 4);
        let root = list
            .iter()
            .find(|p| p.level.is_top())
            .map(|p| p.id)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        c.bench_with_input(
            BenchmarkId::new("multicast/plan_tree_reference", n),
            &n,
            |b, _| {
                b.iter(|| {
                    let subject = NodeId(rng.gen());
                    black_box(plan_tree(&list, root, 0, subject).len())
                })
            },
        );
    }
}

fn bench_oracle_planner(c: &mut Criterion) {
    use peerwindow_sim::plan::{plan_event, Rmq};
    for n in [10_000usize, 100_000] {
        let mut dir = Directory::new();
        let mut rng = StdRng::seed_from_u64(6);
        for i in 0..n {
            dir.join(
                NodeId(rng.gen()),
                i as u32,
                Level::new(rng.gen_range(0..6)),
                500.0,
                1e6,
            );
        }
        let mut audience = Vec::new();
        let mut rmq = Rmq::new();
        c.bench_with_input(BenchmarkId::new("oracle/plan_event", n), &n, |b, _| {
            b.iter(|| {
                let subject = NodeId(rng.gen());
                dir.collect_audience(subject, &mut audience);
                if audience.is_empty() {
                    return;
                }
                let root_idx = audience.iter().position(|e| e.level == 0).unwrap_or(0);
                let mut count = 0u64;
                plan_event(
                    &audience,
                    &mut rmq,
                    root_idx,
                    audience[root_idx].level,
                    0,
                    1_000_000,
                    |_, _| 80_000,
                    |d| {
                        count += d.at_us & 1;
                    },
                );
                black_box(count);
            })
        });
    }
}

fn bench_directory(c: &mut Criterion) {
    let mut dir = Directory::new();
    let mut rng = StdRng::seed_from_u64(7);
    for i in 0..100_000u32 {
        dir.join(
            NodeId(rng.gen()),
            i,
            Level::new(rng.gen_range(0..6)),
            500.0,
            1e6,
        );
    }
    c.bench_function("directory/join_leave_100k", |b| {
        b.iter(|| {
            let id = NodeId(rng.gen());
            dir.join(id, 0, Level::new(3), 500.0, 1e6);
            dir.leave(id);
        })
    });
    c.bench_function("directory/count_prefix_100k", |b| {
        b.iter(|| {
            let p = NodeId(rng.gen()).prefix(3);
            black_box(dir.count_prefix(p))
        })
    });
}

fn bench_rng(c: &mut Criterion) {
    let mut r = DetRng::new(1);
    c.bench_function("rng/splitmix_u64", |b| b.iter(|| black_box(r.next_u64())));
}

fn bench_codec(c: &mut Criterion) {
    use bytes::Bytes;
    use peerwindow_core::prelude::*;
    use peerwindow_transport::{decode, encode};
    let event = StateEvent {
        subject: NodeId(0xABCDEF),
        addr: Addr(0x7F00_0001_1F90),
        level: Level::new(3),
        kind: EventKind::Join,
        seq: 42,
        origin_us: 1_000_000,
        info: Bytes::from_static(b"os:linux;load:0.3"),
    };
    let msg = Message::Multicast { event, step: 17 };
    c.bench_function("codec/encode_multicast", |b| {
        b.iter(|| black_box(encode(NodeId(1), Addr(2), &msg)))
    });
    let frame = encode(NodeId(1), Addr(2), &msg);
    c.bench_function("codec/decode_multicast", |b| {
        b.iter(|| black_box(decode(&frame).unwrap()))
    });
    // Bulk download frames (the big ones).
    let pointers: Vec<Pointer> = (0..1_000)
        .map(|i| Pointer::new(NodeId(i as u128), Addr(i as u64), Level::new(2)))
        .collect();
    let big = Message::DownloadReply {
        scope: Prefix::EMPTY,
        pointers,
        tops: vec![],
    };
    c.bench_function("codec/encode_download_1k", |b| {
        b.iter(|| black_box(encode(NodeId(1), Addr(2), &big)).len())
    });
    let frame = encode(NodeId(1), Addr(2), &big);
    c.bench_function("codec/decode_download_1k", |b| {
        b.iter(|| black_box(decode(&frame).unwrap()))
    });
}

fn bench_node_machine(c: &mut Criterion) {
    use bytes::Bytes;
    use peerwindow_core::prelude::*;
    // Measure the hot path: a multicast delivery applied + forwarded by a
    // node holding a 10k-entry peer list.
    let mut rng = StdRng::seed_from_u64(9);
    let (mut machine, _) = NodeMachine::new_seed(
        ProtocolConfig::default(),
        NodeId(rng.gen()),
        Addr(0),
        Bytes::new(),
        1e9,
        7,
    );
    // Install entries via multicast joins (realistic path).
    let mut t = 0u64;
    for i in 0..10_000u64 {
        t += 1_000;
        let ev = StateEvent {
            subject: NodeId(rng.gen()),
            addr: Addr(i),
            level: Level::new((i % 4) as u8),
            kind: EventKind::Join,
            seq: 1,
            origin_us: t,
            info: Bytes::new(),
        };
        machine.handle(
            t,
            Input::Message {
                from: NodeId(1),
                from_addr: Addr(1),
                msg: Message::Multicast {
                    event: ev,
                    step: 64,
                },
            },
        );
    }
    c.bench_function("node/multicast_delivery_10k_list", |b| {
        b.iter(|| {
            t += 1_000;
            let ev = StateEvent {
                subject: NodeId(rng.gen()),
                addr: Addr(t),
                level: Level::new(2),
                kind: EventKind::Join,
                seq: 1,
                origin_us: t,
                info: Bytes::new(),
            };
            let outs = machine.handle(
                t,
                Input::Message {
                    from: NodeId(1),
                    from_addr: Addr(1),
                    msg: Message::Multicast { event: ev, step: 2 },
                },
            );
            black_box(outs.len());
        })
    });
}

criterion_group!(
    benches,
    bench_prefix_ops,
    bench_peer_list,
    bench_plan_tree,
    bench_oracle_planner,
    bench_directory,
    bench_rng,
    bench_codec,
    bench_node_machine
);
criterion_main!(benches);
