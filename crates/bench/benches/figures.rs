//! One criterion bench per paper figure (scaled-down populations; the
//! full-scale regeneration lives in the `experiments` binary).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use peerwindow_bench::extras::{baselines_table, gossip_ablation};
use peerwindow_bench::figures::*;
use peerwindow_sim::oracle::run_oracle;

fn quick(c: &mut Criterion, name: &str, f: impl Fn(u64) -> usize) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    let mut seed = 0u64;
    g.bench_function(name, |b| {
        b.iter(|| {
            seed += 1;
            black_box(f(seed))
        })
    });
    g.finish();
}

fn bench_fig5_to_8(c: &mut Criterion) {
    // Figures 5–8 share the common run; benchmark it once and each
    // figure's table extraction separately (extraction is ~free).
    quick(c, "fig5_to_fig8_common_run", |seed| {
        let rep = common_run(Scale::Quick, seed);
        fig5(&rep).len() + fig6(&rep).len() + fig7(&rep).len() + fig8(&rep).len()
    });
}

fn bench_fig9_fig10(c: &mut Criterion) {
    quick(c, "fig9_fig10_scale_sweep", |seed| {
        let sweep = scale_sweep(Scale::Quick, seed);
        fig9(&sweep).len() + fig10(&sweep).len()
    });
}

fn bench_fig11_fig12(c: &mut Criterion) {
    quick(c, "fig11_fig12_lifetime_sweep", |seed| {
        let sweep = lifetime_sweep(Scale::Quick, seed);
        fig11(&sweep).len() + fig12(&sweep).len()
    });
}

fn bench_model_and_baselines(c: &mut Criterion) {
    quick(c, "model_vs_sim", |seed| {
        let rep = run_oracle(Scale::Quick.config(2_000, seed));
        peerwindow_bench::extras::model_vs_sim(&rep, 8_100.0).len()
    });
    quick(c, "baselines_table", |_seed| {
        baselines_table(100_000.0, 8_100.0).len()
    });
    quick(c, "ablation_gossip", |seed| gossip_ablation(seed).len());
}

criterion_group!(
    benches,
    bench_fig5_to_8,
    bench_fig9_fig10,
    bench_fig11_fig12,
    bench_model_and_baselines
);
criterion_main!(benches);
