//! Simulation-engine benchmarks: sequential event throughput, parallel
//! shard scaling (the ONSP-substitute claim), and topology queries.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use peerwindow_des::{Engine, Outbox, ParallelEngine, Scheduler, ShardLogic, SimTime, Simulation};
use peerwindow_topology::{NetworkModel, Topology, TransitStubNetwork, TransitStubParams};

struct Ping {
    left: u64,
}
impl Simulation for Ping {
    type Event = u32;
    fn handle(&mut self, _now: SimTime, ev: u32, sched: &mut Scheduler<'_, u32>) {
        if self.left > 0 {
            self.left -= 1;
            sched.schedule(100, ev.wrapping_add(1));
        }
    }
}

/// 100k self-rescheduling timers: the queue shape of a large protocol
/// run, where every node keeps probe/refresh timers resident.
struct ResidentTimers {
    left: u64,
}
impl Simulation for ResidentTimers {
    type Event = u32;
    fn handle(&mut self, _now: SimTime, actor: u32, sched: &mut Scheduler<'_, u32>) {
        if self.left > 0 {
            self.left -= 1;
            sched.schedule(500 + (actor as u64).wrapping_mul(7919) % 10_000, actor);
        }
    }
}

fn bench_sequential_engine(c: &mut Criterion) {
    c.bench_function("des/sequential_1M_events", |b| {
        b.iter(|| {
            let mut e = Engine::new(Ping { left: 1_000_000 });
            e.schedule(0, 1);
            e.run_to_completion();
            black_box(e.stats().processed)
        })
    });
    c.bench_function("des/sequential_1M_events_resident100k", |b| {
        b.iter(|| {
            let mut e = Engine::new(ResidentTimers { left: 1_000_000 });
            for a in 0..100_000u32 {
                e.schedule(500 + (a as u64).wrapping_mul(7919) % 10_000, a);
            }
            e.run_to_completion();
            black_box(e.stats().processed)
        })
    });
}

struct Fanout {
    actors: u32,
    count: u64,
}
impl ShardLogic for Fanout {
    type Msg = u32;
    fn handle(&mut self, _now: SimTime, _actor: u32, hops: u32, out: &mut Outbox<u32>) {
        self.count += 1;
        if hops > 0 {
            let a = (self.count as u32).wrapping_mul(2654435761) % self.actors;
            let b = (self.count as u32).wrapping_mul(40503) % self.actors;
            out.send(1_000, a, hops - 1);
            out.send(1_500, b, hops - 1);
        }
    }
    fn fingerprint(&self) -> u64 {
        self.count
    }
}

fn bench_parallel_engine(c: &mut Criterion) {
    for shards in [1usize, 2, 4, 8] {
        c.bench_with_input(
            BenchmarkId::new("des/parallel_fanout", shards),
            &shards,
            |b, &s| {
                b.iter(|| {
                    let logics: Vec<Fanout> = (0..s)
                        .map(|_| Fanout {
                            actors: 256,
                            count: 0,
                        })
                        .collect();
                    let mut e = ParallelEngine::new(logics, 1_000);
                    for i in 0..8 {
                        e.schedule(SimTime(0), i, 15);
                    }
                    e.run_until(SimTime::from_secs(600));
                    black_box(e.processed())
                })
            },
        );
    }
}

fn bench_topology(c: &mut Criterion) {
    let topo = Topology::generate(TransitStubParams::small(), 1);
    c.bench_function("topology/dijkstra_small", |b| {
        b.iter(|| black_box(topo.dijkstra(0)))
    });
    let net = TransitStubNetwork::build(&topo);
    let mut i = 0u32;
    c.bench_function("topology/latency_query", |b| {
        b.iter(|| {
            i = i.wrapping_add(2654435761);
            black_box(net.latency_us(i % 1000, (i >> 10) % 1000))
        })
    });
}

criterion_group!(
    benches,
    bench_sequential_engine,
    bench_parallel_engine,
    bench_topology
);
criterion_main!(benches);
