//! Asserts the runtime-metrics layer's cost on the resident-timer
//! workload: perfbaseline's shape, scaled down so it finishes quickly
//! under the debug profile.
//!
//! Two distinct configurations, with separate gates:
//!
//! * **Compiled out** — the simulation is generic over
//!   [`MetricsSink`] and instantiated with [`NoopMetrics`];
//!   monomorphisation deletes the metrics code entirely. This is what a
//!   default build runs, and the ISSUE 8 acceptance bar (<1% + noise)
//!   applies to it.
//! * **Enabled** — the same simulation instantiated with a live
//!   [`ShardSlot`] recording at the engine's cadence: a counter add per
//!   event, plus a histogram observe and a wall-clock lap every
//!   `WINDOW`-ish events (the parallel engine records per *window*, not
//!   per event — that cadence is exactly why the enabled layer can hold
//!   a 3% gate).
//!
//! Timing on a shared host is noisy (individual runs swing ±20% when a
//! neighbour steals the core), so the gate interleaves plain/metered
//! runs in pairs and compares best-of-N — the best over enough tries
//! converges on the unloaded speed of each configuration — and adds the
//! observed plain-side spread to the allowance.

use peerwindow_des::{Engine, Scheduler, SimTime, Simulation};
use peerwindow_metrics::runtime::{
    Counter, MetricsSink, NoopMetrics, SampleKind, ShardSlot, TimeCat,
};
use std::time::Instant;

const RESIDENT: u32 = 5_000;
const EVENTS: u64 = 300_000;
const TRIES: usize = 8;
/// Events per simulated "window": the cadence at which the engine does
/// histogram observes and wall-clock laps (counters are per event).
const WINDOW: u64 = 256;

fn period_us(actor: u32) -> u64 {
    500 + (actor as u64).wrapping_mul(7919) % 10_000
}

/// The unmetered reference: no metrics state, no metrics code.
struct Plain {
    left: u64,
}

impl Simulation for Plain {
    type Event = u32;
    fn handle(&mut self, _now: SimTime, actor: u32, sched: &mut Scheduler<'_, u32>) {
        if self.left > 0 {
            self.left -= 1;
            sched.schedule(period_us(actor), actor);
        }
    }
}

/// The metered workload, generic over the sink so each configuration is
/// a separate monomorphisation (mirrors the engine's `EngineMetrics`
/// alias).
struct Metered<M: MetricsSink> {
    left: u64,
    sink: M,
}

impl<M: MetricsSink> Simulation for Metered<M> {
    type Event = u32;
    fn handle(&mut self, _now: SimTime, actor: u32, sched: &mut Scheduler<'_, u32>) {
        if self.left > 0 {
            self.left -= 1;
            sched.schedule(period_us(actor), actor);
        }
        // Same guard shape as the engine: const-false for NoopMetrics
        // (the block is deleted), one predictable branch when live.
        if M::ACTIVE && self.sink.enabled() {
            self.sink.add(Counter::Events, 1);
            if self.left.is_multiple_of(WINDOW) {
                self.sink.add(Counter::Windows, 1);
                self.sink
                    .observe(SampleKind::EventsPerWindow, WINDOW as f64);
                self.sink.lap(TimeCat::Execute);
            }
        }
    }
}

fn run_plain() -> f64 {
    let mut e = Engine::new(Plain { left: EVENTS });
    for a in 0..RESIDENT {
        e.schedule(period_us(a), a);
    }
    let t = Instant::now();
    e.run_to_completion();
    let secs = t.elapsed().as_secs_f64();
    assert_eq!(e.stats().processed, EVENTS + RESIDENT as u64);
    e.stats().processed as f64 / secs
}

fn run_metered<M: MetricsSink>(sink: M) -> f64 {
    let mut e = Engine::new(Metered { left: EVENTS, sink });
    for a in 0..RESIDENT {
        e.schedule(period_us(a), a);
    }
    let t = Instant::now();
    e.run_to_completion();
    let secs = t.elapsed().as_secs_f64();
    assert_eq!(e.stats().processed, EVENTS + RESIDENT as u64);
    e.stats().processed as f64 / secs
}

/// Interleaves plain and metered runs in pairs and asserts the best
/// metered run stays within `base_allowance + observed plain spread` of
/// the best plain run. A round can still lose to a noisy neighbour on a
/// shared host, so the gate re-measures up to three rounds and passes on
/// the first clean one — a genuine regression fails every round.
fn gate_metered_path(mut metered_run: impl FnMut() -> f64, base_allowance: f64, what: &str) {
    const ROUNDS: usize = 3;
    run_plain(); // warm up caches and the allocator
    let mut last = String::new();
    for _ in 0..ROUNDS {
        let mut plains = [0.0f64; TRIES];
        let mut meters = [0.0f64; TRIES];
        for i in 0..TRIES {
            plains[i] = run_plain();
            meters[i] = metered_run();
        }
        let plain = plains.iter().cloned().fold(0.0, f64::max);
        let metered = meters.iter().cloned().fold(0.0, f64::max);
        // Noise estimate: how far apart the best of the two halves of
        // the plain samples landed — the same statistic the overhead
        // comparison uses, measured on identical code.
        let half_a = plains[..TRIES / 2].iter().cloned().fold(0.0, f64::max);
        let half_b = plains[TRIES / 2..].iter().cloned().fold(0.0, f64::max);
        let noise = (half_a - half_b).abs() / plain;
        let overhead = plain / metered - 1.0;
        let allowed = base_allowance + noise;
        if overhead <= allowed {
            return;
        }
        last = format!(
            "{what} overhead {:.2}% exceeds allowance {:.2}% \
             (plain best {:.0} ev/s, metered best {:.0} ev/s, noise {:.2}%)",
            overhead * 100.0,
            allowed * 100.0,
            plain,
            metered,
            noise * 100.0,
        );
    }
    panic!("{last} — in all {ROUNDS} measurement rounds");
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "timing assertion needs the release profile; \
              run with cargo test --release"
)]
fn compiled_out_metrics_cost_under_one_percent_plus_noise() {
    // The ISSUE 8 acceptance bar: the NoopMetrics instantiation is the
    // same machine code as the plain workload, so anything beyond noise
    // means the abstraction stopped being zero-cost.
    gate_metered_path(|| run_metered(NoopMetrics), 0.01, "compiled-out metrics");
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "timing assertion needs the release profile; \
              run with cargo test --release"
)]
fn enabled_metrics_cost_under_three_percent_plus_noise() {
    // The enabled layer pays a branch + counter add per event and a
    // histogram observe + `Instant::now` lap per window — the cadence
    // the parallel engine actually records at. That window batching is
    // the design point: per-event observes would blow this gate.
    gate_metered_path(
        || {
            let mut slot = ShardSlot::default();
            slot.set_enabled(true);
            run_metered(slot)
        },
        0.03,
        "enabled metrics",
    );
}

#[test]
fn metered_run_records_at_engine_cadence() {
    // Functional sanity for the workload above: the live slot sees every
    // event and one observe per window.
    let mut slot = ShardSlot::default();
    slot.set_enabled(true);
    let mut e = Engine::new(Metered {
        left: 1_000,
        sink: slot,
    });
    for a in 0..16 {
        e.schedule(period_us(a), a);
    }
    e.run_to_completion();
    let sink = &e.sim().sink;
    assert_eq!(sink.get(Counter::Events), 1_000 + 16);
    assert!(sink.get(Counter::Windows) > 0);
    assert!(sink.hist(SampleKind::EventsPerWindow).total() > 0);
}
