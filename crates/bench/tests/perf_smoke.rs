//! Perf smoke gates for the PR 6 fast path, with debug-tolerant
//! thresholds (the timing assertions are release-only; the workload
//! still runs under debug so the code paths stay covered).
//!
//! Three gates:
//!
//! * **Shallow-queue guard** — the wheel's `seq_ping` pathology (a full
//!   cascade per pop at queue depth 1) is fixed by the singleton-slot
//!   fast path; an explicitly-pinned wheel must stay within 4× of the
//!   heap on the chain workload (it used to be >5× slower), and the
//!   adaptive policy must hold ≥0.8× heap speed there.
//! * **Deep-queue guard** — the adaptive policy must keep the wheel's
//!   advantage on the resident-timer workload (≥1.5× heap here; the
//!   full 1M-event run in perfbaseline shows ≥4×, but this scaled-down
//!   20k-resident suite sees a smaller gap and must stay robust to a
//!   noisy-neighbour heap run).
//! * **Fanout scaling** — on hosts with ≥4 cores, 4-shard throughput
//!   must not fall below 1-shard (with a 0.9 fudge for noise). Skipped
//!   on smaller hosts, where extra shards measure oversubscription, not
//!   the engine.
//!
//! Each ratio gate is additionally wrapped in [`retry_gate`]: the full
//! comparison is re-measured up to three times and only fails if every
//! round misses the bar, so noisy neighbours on shared CI runners don't
//! fail unrelated PRs.

use peerwindow_des::{
    Engine, ModuloShardMap, Outbox, ParallelEngine, SchedKind, Scheduler, ShardLogic, SimTime,
    Simulation,
};
use std::time::Instant;

const EVENTS: u64 = 200_000;
const RESIDENT: u32 = 20_000;
const TRIES: usize = 3;

struct Ping {
    left: u64,
}

impl Simulation for Ping {
    type Event = u32;
    fn handle(&mut self, _now: SimTime, ev: u32, sched: &mut Scheduler<'_, u32>) {
        if self.left > 0 {
            self.left -= 1;
            sched.schedule(100, ev.wrapping_add(1));
        }
    }
}

fn period_us(actor: u32) -> u64 {
    500 + (actor as u64).wrapping_mul(7919) % 10_000
}

struct Resident {
    left: u64,
}

impl Simulation for Resident {
    type Event = u32;
    fn handle(&mut self, _now: SimTime, actor: u32, sched: &mut Scheduler<'_, u32>) {
        if self.left > 0 {
            self.left -= 1;
            sched.schedule(period_us(actor), actor);
        }
    }
}

fn ping(kind: SchedKind) -> f64 {
    let mut e = Engine::with_sched(Ping { left: EVENTS }, kind);
    e.schedule(0, 1);
    let t = Instant::now();
    e.run_to_completion();
    let secs = t.elapsed().as_secs_f64();
    assert_eq!(e.stats().processed, EVENTS + 1);
    e.stats().processed as f64 / secs
}

fn resident(kind: SchedKind) -> f64 {
    let mut e = Engine::with_sched(Resident { left: EVENTS }, kind);
    for a in 0..RESIDENT {
        e.schedule(period_us(a), a);
    }
    let t = Instant::now();
    e.run_to_completion();
    let secs = t.elapsed().as_secs_f64();
    assert_eq!(e.stats().processed, EVENTS + RESIDENT as u64);
    e.stats().processed as f64 / secs
}

fn best_of(n: usize, mut f: impl FnMut() -> f64) -> f64 {
    (0..n).map(|_| f()).fold(0.0, f64::max)
}

/// Retries a noisy throughput-ratio gate on shared CI runners: the whole
/// comparison is re-measured up to `rounds` times and the gate passes if
/// any round meets the bar. A real regression fails every round; a noisy
/// neighbour perturbing one side of one round does not.
fn retry_gate(rounds: usize, mut attempt: impl FnMut() -> Result<(), String>) {
    let mut last = String::new();
    for i in 1..=rounds {
        match attempt() {
            Ok(()) => return,
            Err(e) => {
                eprintln!("perf gate attempt {i}/{rounds} failed: {e}");
                last = e;
            }
        }
    }
    panic!("{last} — failed {rounds} consecutive measurement rounds");
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "timing assertion needs the release profile; \
              run with cargo test --release"
)]
fn shallow_queue_wheel_pathology_stays_fixed() {
    ping(SchedKind::Heap); // warm-up
    retry_gate(3, || {
        let heap = best_of(TRIES, || ping(SchedKind::Heap));
        let wheel = best_of(TRIES, || ping(SchedKind::Wheel));
        let adaptive = best_of(TRIES, || ping(SchedKind::Adaptive));
        // Pre-fix the wheel was >5× slower than the heap at queue depth 1;
        // the singleton-slot fast path must keep an explicitly-pinned wheel
        // within 4× even though nobody should pin it for this shape. (The
        // bar is relative, and boxing the wheel backend made the *heap*
        // faster on this tiny workload, so 3× became marginal.)
        if wheel * 4.0 < heap {
            return Err(format!(
                "pinned wheel fell past 4x slower than heap on the chain workload \
                 (wheel {wheel:.0} ev/s, heap {heap:.0} ev/s) — the shallow-queue \
                 cascade pathology is back"
            ));
        }
        // The adaptive policy must simply *be* the heap here (it never
        // crosses WHEEL_UP), modulo noise.
        if adaptive < 0.8 * heap {
            return Err(format!(
                "adaptive queue lost heap speed on the shallow workload \
                 (adaptive {adaptive:.0} ev/s, heap {heap:.0} ev/s)"
            ));
        }
        Ok(())
    });
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "timing assertion needs the release profile; \
              run with cargo test --release"
)]
fn deep_queue_adaptive_keeps_wheel_advantage() {
    resident(SchedKind::Heap); // warm-up
    retry_gate(3, || {
        let heap = best_of(TRIES, || resident(SchedKind::Heap));
        let adaptive = best_of(TRIES, || resident(SchedKind::Adaptive));
        if adaptive < 1.5 * heap {
            return Err(format!(
                "adaptive queue lost the wheel's deep-queue advantage \
                 (adaptive {adaptive:.0} ev/s, heap {heap:.0} ev/s; want >=1.5x)"
            ));
        }
        Ok(())
    });
}

struct Fanout {
    actors: u32,
    count: u64,
}

impl ShardLogic for Fanout {
    type Msg = u32;
    fn handle(&mut self, _now: SimTime, _actor: u32, hops: u32, out: &mut Outbox<u32>) {
        self.count += 1;
        if hops > 0 {
            let a = (self.count as u32).wrapping_mul(2654435761) % self.actors;
            let b = (self.count as u32).wrapping_mul(40503) % self.actors;
            out.send(1_000, a, hops - 1);
            out.send(1_500, b, hops - 1);
        }
    }
}

fn fanout(shards: usize) -> f64 {
    let logics: Vec<Fanout> = (0..shards)
        .map(|_| Fanout {
            actors: 256,
            count: 0,
        })
        .collect();
    let mut e = ParallelEngine::with_map(logics, 1_000, ModuloShardMap);
    for i in 0..8 {
        e.schedule(SimTime(0), i, 13);
    }
    let t = Instant::now();
    e.run_until(SimTime::from_secs(600));
    let secs = t.elapsed().as_secs_f64();
    e.processed() as f64 / secs
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "timing assertion needs the release profile; \
              run with cargo test --release"
)]
fn four_shards_keep_up_with_one_on_multicore_hosts() {
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    if cores < 4 {
        eprintln!("skipping 4-shard scaling gate: host has {cores} core(s)");
        return;
    }
    fanout(1); // warm-up
    retry_gate(3, || {
        let one = best_of(TRIES, || fanout(1));
        let four = best_of(TRIES, || fanout(4));
        if four < 0.9 * one {
            return Err(format!(
                "4-shard throughput fell below 1-shard on a {cores}-core host \
                 (1 shard {one:.0} ev/s, 4 shards {four:.0} ev/s)"
            ));
        }
        Ok(())
    });
}
