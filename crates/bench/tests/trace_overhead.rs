//! Asserts the tracing layer's off-path cost on the resident-timer
//! workload is noise-level: perfbaseline's `trace_resident_1m` shape,
//! scaled down so it finishes quickly under the debug profile.
//!
//! Two distinct "off" configurations, with separate gates:
//!
//! * **Compiled out** — the simulation is generic over
//!   [`TraceSink`] and instantiated with [`NoopTrace`]; monomorphisation
//!   deletes the trace code entirely. This is what an untraced build
//!   runs, and the ISSUE 6 acceptance bar (`off_overhead_pct < 2`)
//!   applies to it.
//! * **Runtime disabled** — the same simulation instantiated with a
//!   [`NodeTrace`] whose enabled flag is off: one predictable branch per
//!   event (the payload closure is never built). This is what a *traced*
//!   build pays while recording is off.
//!
//! Timing on a shared host is noisy (individual runs swing ±20% when a
//! neighbour steals the core), so the gate interleaves plain/off runs in
//! pairs and compares best-of-N — the best over enough tries converges
//! on the unloaded speed of each configuration — and adds the observed
//! plain-side spread to the allowance.

use peerwindow_des::{Engine, Scheduler, SimTime, Simulation};
use peerwindow_trace::{CauseId, NodeTrace, NoopTrace, TraceEventKind, TraceRecord, TraceSink};
use std::time::Instant;

const RESIDENT: u32 = 5_000;
const EVENTS: u64 = 300_000;
const TRIES: usize = 8;

fn period_us(actor: u32) -> u64 {
    500 + (actor as u64).wrapping_mul(7919) % 10_000
}

/// The untraced reference: no trace state, no trace code.
struct Plain {
    left: u64,
}

impl Simulation for Plain {
    type Event = u32;
    fn handle(&mut self, _now: SimTime, actor: u32, sched: &mut Scheduler<'_, u32>) {
        if self.left > 0 {
            self.left -= 1;
            sched.schedule(period_us(actor), actor);
        }
    }
}

/// The traced workload, generic over the sink so each configuration is a
/// separate monomorphisation (mirrors `perfbaseline::TracedResident`).
struct Resident<T: TraceSink> {
    left: u64,
    trace: T,
    drained: Vec<TraceRecord>,
}

impl<T: TraceSink> Simulation for Resident<T> {
    type Event = u32;
    fn handle(&mut self, now: SimTime, actor: u32, sched: &mut Scheduler<'_, u32>) {
        if self.left > 0 {
            self.left -= 1;
            sched.schedule(period_us(actor), actor);
        }
        // One guard for the whole trace block: const-false for NoopTrace
        // (the block is deleted), one predictable branch for a
        // runtime-disabled NodeTrace — the same shape as NodeMachine::tr.
        if T::ACTIVE && self.trace.recording() {
            self.trace.set_now(now.as_micros());
            self.trace
                .emit_with(0, CauseId::NONE, || TraceEventKind::ProbeSent {
                    target: actor as u128,
                });
            self.trace.drain_into(&mut self.drained);
            if self.drained.len() >= 65_536 {
                self.drained.clear();
            }
        }
    }
}

fn run_plain() -> f64 {
    let mut e = Engine::new(Plain { left: EVENTS });
    for a in 0..RESIDENT {
        e.schedule(period_us(a), a);
    }
    let t = Instant::now();
    e.run_to_completion();
    let secs = t.elapsed().as_secs_f64();
    assert_eq!(e.stats().processed, EVENTS + RESIDENT as u64);
    e.stats().processed as f64 / secs
}

fn run_traced<T: TraceSink>(trace: T) -> f64 {
    let mut e = Engine::new(Resident {
        left: EVENTS,
        trace,
        drained: Vec::new(),
    });
    for a in 0..RESIDENT {
        e.schedule(period_us(a), a);
    }
    let t = Instant::now();
    e.run_to_completion();
    let secs = t.elapsed().as_secs_f64();
    assert_eq!(e.stats().processed, EVENTS + RESIDENT as u64);
    e.stats().processed as f64 / secs
}

/// Interleaves plain and off runs in pairs and asserts the best off run
/// stays within `base_allowance + observed plain spread` of the best
/// plain run. A round can still lose to a noisy neighbour on a shared
/// host, so the gate re-measures up to three rounds and passes on the
/// first clean one — a genuine regression fails every round.
fn gate_off_path(mut off_run: impl FnMut() -> f64, base_allowance: f64, what: &str) {
    const ROUNDS: usize = 3;
    run_plain(); // warm up caches and the allocator
    let mut last = String::new();
    for _ in 0..ROUNDS {
        let mut plains = [0.0f64; TRIES];
        let mut offs = [0.0f64; TRIES];
        for i in 0..TRIES {
            plains[i] = run_plain();
            offs[i] = off_run();
        }
        let plain = plains.iter().cloned().fold(0.0, f64::max);
        let off = offs.iter().cloned().fold(0.0, f64::max);
        // Noise estimate: how far apart the best of the two halves of the
        // plain samples landed — the same statistic the overhead
        // comparison uses, measured on identical code.
        let half_a = plains[..TRIES / 2].iter().cloned().fold(0.0, f64::max);
        let half_b = plains[TRIES / 2..].iter().cloned().fold(0.0, f64::max);
        let noise = (half_a - half_b).abs() / plain;
        let overhead = plain / off - 1.0;
        let allowed = base_allowance + noise;
        if overhead <= allowed {
            return;
        }
        last = format!(
            "{what} overhead {:.2}% exceeds allowance {:.2}% \
             (plain best {:.0} ev/s, off best {:.0} ev/s, noise {:.2}%)",
            overhead * 100.0,
            allowed * 100.0,
            plain,
            off,
            noise * 100.0,
        );
    }
    panic!("{last} — in all {ROUNDS} measurement rounds");
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "timing assertion needs the release profile; \
              run with cargo test --release"
)]
fn compiled_out_tracing_costs_under_two_percent_plus_noise() {
    // The ISSUE 6 acceptance bar: the NoopTrace instantiation is the
    // same machine code as the plain workload, so anything beyond noise
    // means the abstraction stopped being zero-cost.
    gate_off_path(|| run_traced(NoopTrace::new(1)), 0.02, "compiled-out trace");
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "timing assertion needs the release profile: without inlining \
              the is_enabled guard costs ~5% here; run with cargo test --release"
)]
fn disabled_tracing_costs_under_five_percent_plus_noise() {
    // The runtime-disabled path genuinely pays a load + branch per event
    // and drags the NodeTrace fields into the working set — measured
    // 2-4% on this tight loop, and that real cost is exactly why the
    // compiled-out NoopTrace path above exists (and is held to 2%). This
    // gate is the regression guard against the pre-PR 6 pathology, where
    // the disabled path cost 19%.
    gate_off_path(
        || run_traced(NodeTrace::new(1)),
        0.05,
        "runtime-disabled trace",
    );
}

#[test]
fn enabled_tracing_still_drains_every_event() {
    let mut trace = NodeTrace::new(1);
    trace.set_enabled(true);
    let mut e = Engine::new(Resident {
        left: 1_000,
        trace,
        drained: Vec::new(),
    });
    for a in 0..16 {
        e.schedule(period_us(a), a);
    }
    e.run_to_completion();
    let sim = e.sim();
    assert_eq!(sim.drained.len() as u64, 1_000 + 16);
    assert!(sim.trace.is_empty());
}
