//! Asserts the tracing layer's disabled-path cost on the resident-timer
//! workload is noise-level: perfbaseline's `trace_resident_1m` shape,
//! scaled down so it finishes quickly under the debug profile.
//!
//! The handler guards every trace call behind `NodeTrace::is_enabled`,
//! exactly like `NodeMachine::tr` in `crates/core`, so the disabled path
//! is one predictable branch per event. We measure the plain workload
//! twice to estimate run-to-run noise, take best-of-N for each
//! configuration, and require the traced-but-disabled run to stay within
//! `1% + observed noise` of the plain one.

use peerwindow_des::{Engine, Scheduler, SimTime, Simulation};
use peerwindow_trace::{CauseId, NodeTrace, TraceEventKind, TraceRecord};
use std::time::Instant;

const RESIDENT: u32 = 5_000;
const EVENTS: u64 = 300_000;
const TRIES: usize = 3;

fn period_us(actor: u32) -> u64 {
    500 + (actor as u64).wrapping_mul(7919) % 10_000
}

struct Resident {
    left: u64,
    trace: Option<NodeTrace>,
    drained: Vec<TraceRecord>,
}

impl Simulation for Resident {
    type Event = u32;
    fn handle(&mut self, now: SimTime, actor: u32, sched: &mut Scheduler<'_, u32>) {
        if self.left > 0 {
            self.left -= 1;
            sched.schedule(period_us(actor), actor);
        }
        if let Some(trace) = self.trace.as_mut() {
            if trace.is_enabled() {
                trace.set_now(now.as_micros());
                trace.emit(
                    0,
                    TraceEventKind::ProbeSent {
                        target: actor as u128,
                    },
                    CauseId::NONE,
                );
                trace.drain_into(&mut self.drained);
                if self.drained.len() >= 65_536 {
                    self.drained.clear();
                }
            }
        }
    }
}

/// Events per second for one run; `trace` of `None` is the plain
/// workload, `Some(false)` carries a disabled sink, `Some(true)` an
/// enabled one.
fn run(trace: Option<bool>) -> f64 {
    let trace = trace.map(|on| {
        let mut t = NodeTrace::new(1);
        t.set_enabled(on);
        t
    });
    let mut e = Engine::new(Resident {
        left: EVENTS,
        trace,
        drained: Vec::new(),
    });
    for a in 0..RESIDENT {
        e.schedule(period_us(a), a);
    }
    let t = Instant::now();
    e.run_to_completion();
    let secs = t.elapsed().as_secs_f64();
    assert_eq!(e.stats().processed, EVENTS + RESIDENT as u64);
    e.stats().processed as f64 / secs
}

fn best_of(n: usize, trace: Option<bool>) -> f64 {
    (0..n).map(|_| run(trace)).fold(0.0, f64::max)
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "timing assertion needs the release profile: without inlining \
              the is_enabled guard costs ~5% here; run with cargo test --release"
)]
fn disabled_tracing_costs_under_one_percent_plus_noise() {
    // Warm up caches and the allocator before any measured run.
    run(None);

    let plain_a = best_of(TRIES, None);
    let plain_b = best_of(TRIES, None);
    let off = best_of(TRIES, Some(false));

    let plain = plain_a.max(plain_b);
    let noise = (plain_a - plain_b).abs() / plain;
    let overhead = plain / off - 1.0;
    let allowed = 0.01 + noise;
    assert!(
        overhead <= allowed,
        "disabled-trace overhead {:.2}% exceeds allowance {:.2}% \
         (plain {:.0} / {:.0} ev/s, off {:.0} ev/s, noise {:.2}%)",
        overhead * 100.0,
        allowed * 100.0,
        plain_a,
        plain_b,
        off,
        noise * 100.0,
    );
}

#[test]
fn enabled_tracing_still_drains_every_event() {
    let mut trace = NodeTrace::new(1);
    trace.set_enabled(true);
    let mut e = Engine::new(Resident {
        left: 1_000,
        trace: Some(trace),
        drained: Vec::new(),
    });
    for a in 0..16 {
        e.schedule(period_us(a), a);
    }
    e.run_to_completion();
    let sim = e.sim();
    assert_eq!(sim.drained.len() as u64, 1_000 + 16);
    assert!(sim.trace.as_ref().is_some_and(NodeTrace::is_empty));
}
