//! Asserts the serving layer's cost on the protocol hot path is
//! noise-level: a full protocol run with snapshot publication enabled
//! must stay within `1% + observed noise` of the same run without it.
//!
//! Two configurations on identical seeded scenarios: snapshots off
//! (the `Option<SnapshotHub>` is `None` — one branch per handled
//! event), and snapshots on (every machine's peer list mirrored into
//! its lock-free `Published` cell after every event, content-generation
//! gated so an unchanged list costs one integer compare — in this
//! membership-stable scenario every publish lands in the convergence
//! phase and the 150 s steady-state tail publishes nothing at all).
//!
//! Timing on a shared host is noisy (individual runs swing ±20% when a
//! neighbour steals the core), so the gate interleaves plain/published
//! runs in pairs and compares best-of-N, adds the observed plain-side
//! spread to the allowance, and re-measures up to three rounds, passing
//! on the first clean one — the same discipline as `trace_overhead.rs`
//! and `faults_overhead.rs`. A genuine regression fails every round.

use bytes::Bytes;
use peerwindow_core::prelude::*;
use peerwindow_des::SimTime;
use peerwindow_sim::FullSim;
use peerwindow_topology::UniformNetwork;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const NODES: u32 = 32;
const HORIZON_S: u64 = 180;
const TRIES: usize = 8;

fn build(snapshots: bool) -> FullSim {
    let protocol = ProtocolConfig {
        probe_interval_us: 2_000_000,
        rpc_timeout_us: 400_000,
        processing_delay_us: 10_000,
        bandwidth_window_us: 8_000_000,
        ..ProtocolConfig::default()
    };
    let mut sim = FullSim::new(
        protocol,
        Box::new(UniformNetwork { latency_us: 20_000 }),
        13,
    );
    if snapshots {
        let _dir = sim.enable_snapshots();
    }
    sim
}

fn run(snapshots: bool) -> f64 {
    let mut sim = build(snapshots);
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    sim.spawn_seed(NodeId(rng.gen()), 1e9, Bytes::new());
    for _ in 1..NODES {
        sim.run_for(300_000);
        let _ = sim.spawn_joiner(NodeId(rng.gen()), 1e9, Bytes::new());
    }
    let t = Instant::now();
    sim.run_until(SimTime::from_secs(HORIZON_S));
    let secs = t.elapsed().as_secs_f64();
    if snapshots {
        assert!(
            sim.snapshots_published() > 0,
            "publication enabled but nothing published"
        );
    } else {
        assert_eq!(sim.snapshots_published(), 0);
    }
    sim.processed() as f64 / secs
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "timing assertion needs the release profile: without inlining \
              the generation-gate guard is not representative; run with \
              cargo test --release"
)]
fn snapshot_publication_overhead_is_under_one_percent_plus_noise() {
    const ROUNDS: usize = 3;
    // Warm up caches and the allocator before any measured run.
    run(false);
    let mut last = String::new();
    for _ in 0..ROUNDS {
        let mut plains = [0.0f64; TRIES];
        let mut pubs = [0.0f64; TRIES];
        for i in 0..TRIES {
            plains[i] = run(false);
            pubs[i] = run(true);
        }
        let plain = plains.iter().cloned().fold(0.0, f64::max);
        let published = pubs.iter().cloned().fold(0.0, f64::max);
        // Noise estimate: how far apart the best of the two halves of
        // the plain samples landed — the same statistic the overhead
        // comparison uses, measured on identical code.
        let half_a = plains[..TRIES / 2].iter().cloned().fold(0.0, f64::max);
        let half_b = plains[TRIES / 2..].iter().cloned().fold(0.0, f64::max);
        let noise = (half_a - half_b).abs() / plain;
        let overhead = plain / published - 1.0;
        let allowed = 0.01 + noise;
        if overhead <= allowed {
            return;
        }
        last = format!(
            "snapshot publication overhead {:.2}% exceeds allowance {:.2}% \
             (plain best {:.0} ev/s, published best {:.0} ev/s, noise {:.2}%)",
            overhead * 100.0,
            allowed * 100.0,
            plain,
            published,
            noise * 100.0,
        );
    }
    panic!("{last} — in all {ROUNDS} measurement rounds");
}

/// Publication must be pure observation: the protocol outcome is
/// bit-identical with snapshots on or off.
#[test]
fn snapshots_preserve_the_fingerprint() {
    let fp = |snapshots: bool| {
        let mut sim = build(snapshots);
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        sim.spawn_seed(NodeId(rng.gen()), 1e9, Bytes::new());
        for _ in 1..12 {
            sim.run_for(300_000);
            let _ = sim.spawn_joiner(NodeId(rng.gen()), 1e9, Bytes::new());
        }
        sim.run_until(SimTime::from_secs(30));
        sim.fingerprint()
    };
    assert_eq!(fp(false), fp(true));
}

/// The published views themselves are coherent at the end of a run:
/// well formed (sorted, deduplicated, no self-entry) and carrying the
/// publishing node's own identity.
#[test]
fn published_views_are_well_formed() {
    let mut sim = build(true);
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    sim.spawn_seed(NodeId(rng.gen()), 1e9, Bytes::new());
    for _ in 1..12 {
        sim.run_for(300_000);
        let _ = sim.spawn_joiner(NodeId(rng.gen()), 1e9, Bytes::new());
    }
    sim.run_until(SimTime::from_secs(30));
    let mut seen = 0;
    for slot in 0..12 {
        let Some(reader) = sim.snapshot_reader(slot) else {
            continue;
        };
        let snap = reader.load();
        assert!(snap.is_well_formed(), "slot {slot} published a torn view");
        if let Some(m) = sim.machine(slot) {
            assert_eq!(snap.me.id, m.id());
            // The final published view equals the live list (the last
            // event's publish ran after the last mutation).
            let live: Vec<NodeId> = {
                let mut ids: Vec<NodeId> = m.peers().iter().map(|p| p.id).collect();
                ids.sort();
                ids
            };
            let pub_ids: Vec<NodeId> = snap.pointers().iter().map(|p| p.id).collect();
            assert_eq!(pub_ids, live, "slot {slot} serving view trails the list");
        }
        seen += 1;
    }
    assert!(seen >= 10, "only {seen} slots ever published");
}
