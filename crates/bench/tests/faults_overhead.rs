//! Asserts the fault-injection layer's zero-fault cost on a full
//! protocol run is noise-level: perfbaseline's `faults_zero_loss` shape,
//! scaled down so it finishes quickly.
//!
//! Two configurations on identical seeded scenarios: no fault model
//! installed (faults `None`, one branch per send), and an installed
//! `FaultPlan::reliable` — rules are empty, so every judged datagram
//! takes the conditioner's fast path: no RNG draw, no link-state
//! allocation. We measure the plain run twice to estimate run-to-run
//! noise, take best-of-N per configuration, and require the
//! reliable-plan run to stay within `1% + observed noise` of the plain
//! one.

use bytes::Bytes;
use peerwindow_core::prelude::*;
use peerwindow_des::SimTime;
use peerwindow_faults::FaultPlan;
use peerwindow_sim::FullSim;
use peerwindow_topology::UniformNetwork;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const NODES: u32 = 32;
const HORIZON_S: u64 = 180;
const TRIES: usize = 3;

fn run(reliable_plan: bool) -> f64 {
    let protocol = ProtocolConfig {
        probe_interval_us: 2_000_000,
        rpc_timeout_us: 400_000,
        processing_delay_us: 10_000,
        bandwidth_window_us: 8_000_000,
        ..ProtocolConfig::default()
    };
    let mut sim = FullSim::new(
        protocol,
        Box::new(UniformNetwork { latency_us: 20_000 }),
        13,
    );
    if reliable_plan {
        sim.set_fault_plan(FaultPlan::reliable(13));
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    sim.spawn_seed(NodeId(rng.gen()), 1e9, Bytes::new());
    for _ in 1..NODES {
        sim.run_for(300_000);
        let _ = sim.spawn_joiner(NodeId(rng.gen()), 1e9, Bytes::new());
    }
    let t = Instant::now();
    sim.run_until(SimTime::from_secs(HORIZON_S));
    let secs = t.elapsed().as_secs_f64();
    let judged = sim.fault_counters().judged;
    if reliable_plan {
        assert!(judged > 0, "reliable plan was not consulted");
        assert_eq!(sim.fault_counters().dropped, 0);
    } else {
        assert_eq!(judged, 0, "no model installed, yet datagrams judged");
    }
    sim.processed() as f64 / secs
}

fn best_of(n: usize, reliable_plan: bool) -> f64 {
    (0..n).map(|_| run(reliable_plan)).fold(0.0, f64::max)
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "timing assertion needs the release profile: without inlining \
              the fast-path guard is not representative; run with cargo \
              test --release"
)]
fn zero_fault_overhead_is_under_one_percent_plus_noise() {
    // Warm up caches and the allocator before any measured run.
    run(false);

    let plain_a = best_of(TRIES, false);
    let plain_b = best_of(TRIES, false);
    let with_plan = best_of(TRIES, true);

    let plain = plain_a.max(plain_b);
    let noise = (plain_a - plain_b).abs() / plain;
    let overhead = plain / with_plan - 1.0;
    let allowed = 0.01 + noise;
    assert!(
        overhead <= allowed,
        "zero-fault overhead {:.2}% exceeds allowance {:.2}% \
         (plain {:.0} / {:.0} ev/s, with plan {:.0} ev/s, noise {:.2}%)",
        overhead * 100.0,
        allowed * 100.0,
        plain_a,
        plain_b,
        with_plan,
        noise * 100.0,
    );
}

/// The two configurations must also be behaviourally identical: a
/// ruleless plan may never change the simulation outcome, only count
/// judgements.
#[test]
fn reliable_plan_preserves_the_fingerprint() {
    let fp = |reliable_plan: bool| {
        let protocol = ProtocolConfig {
            probe_interval_us: 2_000_000,
            rpc_timeout_us: 400_000,
            processing_delay_us: 10_000,
            bandwidth_window_us: 8_000_000,
            ..ProtocolConfig::default()
        };
        let mut sim = FullSim::new(
            protocol,
            Box::new(UniformNetwork { latency_us: 20_000 }),
            13,
        );
        if reliable_plan {
            sim.set_fault_plan(FaultPlan::reliable(13));
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        sim.spawn_seed(NodeId(rng.gen()), 1e9, Bytes::new());
        for _ in 1..12 {
            sim.run_for(300_000);
            let _ = sim.spawn_joiner(NodeId(rng.gen()), 1e9, Bytes::new());
        }
        sim.run_until(SimTime::from_secs(30));
        // Compare machine state only: the full fingerprint deliberately
        // mixes the judged counter, which differs by construction.
        (
            sim.accuracy(),
            sim.live_count(),
            sim.fault_counters().dropped,
        )
    };
    assert_eq!(fp(false), fp(true));
}
