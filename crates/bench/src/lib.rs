//! # peerwindow-bench
//!
//! The experiment harness behind EXPERIMENTS.md: one function per paper
//! figure (§5), shared by the `experiments` binary (full scale) and the
//! criterion benches (scaled down). Each function returns the rows the
//! paper plots; the binary writes them to `results/*.csv`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod extras;
pub mod figures;

pub use figures::*;
