//! One function per §5 figure.
//!
//! Every function takes a [`Scale`] so the same code serves the
//! full-scale `experiments` binary and the quick criterion benches, and
//! returns both a [`Table`] (written to `results/<id>.csv`) and the raw
//! report(s) for assertions.

use peerwindow_metrics::{fmt_f64, Table};
use peerwindow_sim::oracle::{run_oracle, OracleConfig};
use peerwindow_sim::report::OracleReport;

/// Run scale: full reproduces the paper's parameters; quick shrinks the
/// population and windows for benches and CI.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Paper-scale populations (figures 5–8: 100,000 nodes).
    Full,
    /// Populations ÷ 20 or smaller and shorter windows; same shapes.
    Quick,
}

impl Scale {
    /// Common-system population for this scale.
    pub fn common_n(self) -> usize {
        match self {
            Scale::Full => 100_000,
            Scale::Quick => 5_000,
        }
    }

    /// Populations for the figure-9/10 scalability sweep.
    pub fn sweep_ns(self) -> Vec<usize> {
        match self {
            Scale::Full => vec![5_000, 10_000, 20_000, 50_000, 100_000],
            Scale::Quick => vec![1_000, 2_000, 5_000],
        }
    }

    /// Population for the figure-11/12 lifetime sweep (kept below the
    /// common scale: the `Lifetime_Rate = 0.1` point multiplies the event
    /// rate by 10).
    pub fn lifetime_sweep_n(self) -> usize {
        match self {
            Scale::Full => 30_000,
            Scale::Quick => 2_000,
        }
    }

    fn windows(self) -> (f64, f64) {
        match self {
            // Warm-up spans three adaptation windows so the level
            // distribution settles before measurement starts.
            Scale::Full => (300.0, 150.0),
            Scale::Quick => (30.0, 60.0),
        }
    }

    /// A configured common run at population `n`.
    pub fn config(self, n: usize, seed: u64) -> OracleConfig {
        let (warmup_s, measure_s) = self.windows();
        let base = match self {
            // Full scale uses the real transit-stub network everywhere
            // (as the paper does); Quick swaps in the uniform-latency
            // model for speed.
            Scale::Full => OracleConfig::paper_common(n, seed),
            Scale::Quick => OracleConfig::paper_common_uniform(n, seed),
        };
        OracleConfig {
            warmup_s,
            measure_s,
            ..base
        }
    }
}

/// Figures 5–8 all come from the one "common PeerWindow" run (§5.1); this
/// wrapper runs it once and lets the callers slice it.
pub fn common_run(scale: Scale, seed: u64) -> OracleReport {
    run_oracle(scale.config(scale.common_n(), seed))
}

/// Figure 5: node distribution by level in the common system.
pub fn fig5(report: &OracleReport) -> Table {
    let mut t = Table::new(["level", "nodes", "fraction"]);
    for r in &report.rows {
        t.row([
            r.level.to_string(),
            fmt_f64(r.nodes),
            fmt_f64(r.node_fraction),
        ]);
    }
    t
}

/// Figure 6: peer-list size (min/mean/max) per level.
pub fn fig6(report: &OracleReport) -> Table {
    let mut t = Table::new(["level", "list_min", "list_mean", "list_max"]);
    for r in &report.rows {
        t.row([
            r.level.to_string(),
            fmt_f64(r.list_min),
            fmt_f64(r.list_mean),
            fmt_f64(r.list_max),
        ]);
    }
    t
}

/// Figure 7: peer-list error rate per level.
pub fn fig7(report: &OracleReport) -> Table {
    let mut t = Table::new(["level", "error_rate"]);
    for r in &report.rows {
        t.row([r.level.to_string(), format!("{:.6}", r.error_rate)]);
    }
    t
}

/// Figure 8: input and output bandwidth per level.
pub fn fig8(report: &OracleReport) -> Table {
    let mut t = Table::new(["level", "in_bps", "out_bps"]);
    for r in &report.rows {
        t.row([r.level.to_string(), fmt_f64(r.in_bps), fmt_f64(r.out_bps)]);
    }
    t
}

/// Figures 9 + 10: sweep the system scale; returns the per-scale reports.
pub fn scale_sweep(scale: Scale, seed: u64) -> Vec<(usize, OracleReport)> {
    scale
        .sweep_ns()
        .into_iter()
        .map(|n| (n, run_oracle(scale.config(n, seed))))
        .collect()
}

/// Figure 9: node distribution at each level vs system scale.
pub fn fig9(sweep: &[(usize, OracleReport)]) -> Table {
    let max_level = sweep
        .iter()
        .flat_map(|(_, r)| r.rows.iter().map(|x| x.level))
        .max()
        .unwrap_or(0);
    let mut header = vec!["n".to_string()];
    header.extend((0..=max_level).map(|l| format!("frac_L{l}")));
    let mut t = Table::new(header);
    for (n, rep) in sweep {
        let mut row = vec![n.to_string()];
        for l in 0..=max_level {
            row.push(fmt_f64(
                rep.level(l).map(|r| r.node_fraction).unwrap_or(0.0),
            ));
        }
        t.row(row);
    }
    t
}

/// Figure 10: average peer-list error rate vs system scale.
pub fn fig10(sweep: &[(usize, OracleReport)]) -> Table {
    let mut t = Table::new(["n", "avg_error_rate", "mean_depth", "mean_delay_s"]);
    for (n, rep) in sweep {
        t.row([
            n.to_string(),
            format!("{:.6}", rep.avg_error_rate),
            fmt_f64(rep.mean_tree_depth),
            fmt_f64(rep.mean_multicast_delay_s),
        ]);
    }
    t
}

/// The `Lifetime_Rate` values of §5.3.
pub fn lifetime_rates(scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Full => vec![0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0],
        Scale::Quick => vec![0.2, 1.0, 5.0],
    }
}

/// Figures 11 + 12: sweep `Lifetime_Rate`; returns per-rate reports.
pub fn lifetime_sweep(scale: Scale, seed: u64) -> Vec<(f64, OracleReport)> {
    let n = scale.lifetime_sweep_n();
    lifetime_rates(scale)
        .into_iter()
        .map(|rate| {
            let mut cfg = scale.config(n, seed);
            cfg.churn.lifetime_rate = rate;
            // High churn shortens the useful probe period; the §4.6
            // refresh logic would also tighten. Keep protocol constants
            // fixed (the paper does) — only the workload changes.
            (rate, run_oracle(cfg))
        })
        .collect()
}

/// Figure 11: node distribution vs `Lifetime_Rate`.
pub fn fig11(sweep: &[(f64, OracleReport)]) -> Table {
    let max_level = sweep
        .iter()
        .flat_map(|(_, r)| r.rows.iter().map(|x| x.level))
        .max()
        .unwrap_or(0);
    let mut header = vec!["lifetime_rate".to_string()];
    header.extend((0..=max_level).map(|l| format!("frac_L{l}")));
    let mut t = Table::new(header);
    for (rate, rep) in sweep {
        let mut row = vec![fmt_f64(*rate)];
        for l in 0..=max_level {
            row.push(fmt_f64(
                rep.level(l).map(|r| r.node_fraction).unwrap_or(0.0),
            ));
        }
        t.row(row);
    }
    t
}

/// Figure 12: average error rate vs `Lifetime_Rate` (log-y in the paper).
pub fn fig12(sweep: &[(f64, OracleReport)]) -> Table {
    let mut t = Table::new(["lifetime_rate", "avg_error_rate"]);
    for (rate, rep) in sweep {
        t.row([fmt_f64(*rate), format!("{:.6}", rep.avg_error_rate)]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_common_run_matches_paper_shapes() {
        let rep = common_run(Scale::Quick, 11);
        // Figure 5 shape: a majority of nodes at level 0 under the §5.1
        // threshold policy (the paper found >50 % and was surprised too).
        let l0 = rep.level(0).expect("level 0 populated");
        assert!(l0.node_fraction > 0.4, "L0 fraction {}", l0.node_fraction);
        // Figure 6 shape: sizes halve per level; min ≈ max within a level.
        for w in rep.rows.windows(2) {
            if w[1].level == w[0].level + 1 && w[1].nodes > 20.0 {
                let ratio = w[0].list_mean / w[1].list_mean.max(1.0);
                assert!((1.5..=2.6).contains(&ratio), "ratio {ratio}");
                assert!(w[1].list_max - w[1].list_min < 0.35 * w[1].list_mean.max(8.0));
            }
        }
        // Figure 7 shape: small error everywhere; stronger levels no worse
        // than weaker ones (message flow is higher→lower).
        for r in &rep.rows {
            assert!(r.error_rate < 0.05, "error {}", r.error_rate);
        }
        if let (Some(a), Some(b)) = (rep.level(0), rep.rows.last()) {
            assert!(a.error_rate <= b.error_rate * 1.5);
        }
        // Figure 8 shape: input proportional to list size; output exceeds
        // input only near the top.
        let top_ratio = l0.out_bps / l0.in_bps;
        assert!(top_ratio > 0.8, "top out/in {top_ratio}");
        if let Some(weak) = rep.rows.iter().rev().find(|r| r.nodes > 20.0) {
            if weak.level >= 2 {
                assert!(
                    weak.out_bps < weak.in_bps,
                    "weak node sends more than it receives"
                );
            }
        }
    }

    #[test]
    fn quick_sweeps_have_paper_trends() {
        let sweep = scale_sweep(Scale::Quick, 13);
        // Figure 9: larger systems push nodes to lower levels.
        let first = &sweep.first().unwrap().1;
        let last = &sweep.last().unwrap().1;
        let f_small = first.level(0).map(|r| r.node_fraction).unwrap_or(0.0);
        let f_large = last.level(0).map(|r| r.node_fraction).unwrap_or(0.0);
        assert!(f_large <= f_small + 0.02, "L0 {f_small} → {f_large}");
        // Figure 10: error rises (slightly) with scale.
        assert!(last.avg_error_rate >= 0.5 * first.avg_error_rate);
        // Tables render.
        assert_eq!(fig9(&sweep).len(), sweep.len());
        assert_eq!(fig10(&sweep).len(), sweep.len());
    }

    #[test]
    fn quick_lifetime_sweep_is_inverse_proportional() {
        let sweep = lifetime_sweep(Scale::Quick, 17);
        let err: Vec<f64> = sweep.iter().map(|(_, r)| r.avg_error_rate).collect();
        // Figure 12: error ≈ delay / lifetime ⇒ rate 0.2 ≫ rate 5.
        assert!(
            err[0] > 5.0 * err[err.len() - 1],
            "errors {err:?} not inverse in lifetime"
        );
        // Figure 11: short lifetimes push nodes off level 0.
        let f0_fast = sweep[0].1.level(0).map(|r| r.node_fraction).unwrap_or(0.0);
        let f0_slow = sweep
            .last()
            .unwrap()
            .1
            .level(0)
            .map(|r| r.node_fraction)
            .unwrap_or(0.0);
        assert!(f0_fast < f0_slow, "L0: fast {f0_fast} vs slow {f0_slow}");
        assert_eq!(fig11(&sweep).len(), sweep.len());
        assert_eq!(fig12(&sweep).len(), sweep.len());
    }
}
