//! Beyond the figures: the analytic-model cross-check, the baseline
//! comparisons (§1 strawman, §6 one-hop DHT), and design ablations.

use peerwindow_baselines::{
    pointers_with_redundancy, simulate_gossip, GossipConfig, OneHopConfig, ProbingConfig,
};
use peerwindow_core::model::ModelParams;
use peerwindow_metrics::{fmt_f64, Table};
use peerwindow_sim::oracle::run_oracle;
use peerwindow_sim::report::OracleReport;

use crate::figures::Scale;

/// §2's analytic claims versus the measured common run: predicted vs
/// simulated pointers-per-budget, cost-per-1000-pointers, and error rate.
pub fn model_vs_sim(report: &OracleReport, lifetime_s: f64) -> Table {
    let model = ModelParams {
        lifetime_s,
        ..ModelParams::default()
    };
    let mut t = Table::new(["quantity", "model", "simulated"]);
    // Cost per 1000 pointers (the paper quotes < 1 kbps; measured from
    // the level rows as in_bps / (list/1000)).
    let model_cost = model.cost_bps(1_000.0);
    let sim_cost = report
        .rows
        .iter()
        .filter(|r| r.list_mean > 500.0 && r.nodes > 10.0)
        .map(|r| r.in_bps / (r.list_mean / 1000.0))
        .fold((0.0, 0), |(s, c), x| (s + x, c + 1));
    let sim_cost = if sim_cost.1 > 0 {
        sim_cost.0 / sim_cost.1 as f64
    } else {
        0.0
    };
    t.row([
        "bps_per_1000_pointers".to_string(),
        fmt_f64(model_cost),
        fmt_f64(sim_cost),
    ]);
    // Error rate ≈ multicast_delay / lifetime (§5.1), with the measured
    // mean staleness (≈ half the end-to-end delay plus detection).
    let model_err = model.error_rate(model.multicast_delay_s(report.n_final as f64, 0.5, 1.0));
    t.row([
        "avg_error_rate".to_string(),
        format!("{model_err:.6}"),
        format!("{:.6}", report.avg_error_rate),
    ]);
    // Multicast reach: ≈ log2 N steps.
    t.row([
        "tree_depth".to_string(),
        fmt_f64((report.n_final as f64).log2()),
        fmt_f64(report.mean_tree_depth),
    ]);
    t
}

/// The §2 efficiency example as a table: pointers collectible under
/// various budgets, PeerWindow vs explicit probing vs one-hop DHT.
pub fn baselines_table(n: f64, lifetime_s: f64) -> Table {
    let pw = ModelParams {
        lifetime_s,
        ..ModelParams::default()
    };
    let probing = ProbingConfig {
        lifetime_s,
        ..ProbingConfig::default()
    };
    let one_hop = OneHopConfig {
        n,
        lifetime_s,
        msg_bits: 1_000.0,
        changes_per_lifetime: 2.0,
    };
    let mut t = Table::new([
        "budget_bps",
        "peerwindow_pointers",
        "probing_pointers",
        "one_hop_pointers",
    ]);
    for budget in [500.0, 1_000.0, 5_000.0, 10_000.0, 50_000.0, 370_000.0] {
        let pw_p = pw.pointers_for_budget(budget).min(n);
        let pr_p = probing.pointers_for_budget(budget).min(n);
        // One-hop is all-or-nothing: N pointers if affordable, else none.
        let oh_p = if one_hop.affordable(budget) { n } else { 0.0 };
        t.row([fmt_f64(budget), fmt_f64(pw_p), fmt_f64(pr_p), fmt_f64(oh_p)]);
    }
    t
}

/// Ablation: tree multicast (r = 1) versus gossip with measured
/// redundancy, and the resulting collectible-pointer budgets.
pub fn gossip_ablation(seed: u64) -> Table {
    let mut t = Table::new([
        "strategy",
        "fanout",
        "coverage",
        "redundancy_r",
        "rounds",
        "pointers_at_5kbps",
    ]);
    // Tree multicast: exactly one message per member, log2 N depth.
    let n = 20_000usize;
    t.row([
        "tree".to_string(),
        "-".to_string(),
        "1.00".to_string(),
        "1.00".to_string(),
        fmt_f64((n as f64).log2()),
        fmt_f64(pointers_with_redundancy(5_000.0, 3_600.0, 1_000.0, 1.0)),
    ]);
    for fanout in [1usize, 2, 3] {
        let cfg = GossipConfig {
            n,
            fanout,
            rounds: 40,
        };
        let g = simulate_gossip(cfg, seed);
        t.row([
            "gossip".to_string(),
            fanout.to_string(),
            format!("{:.3}", g.covered as f64 / n as f64),
            format!("{:.2}", g.redundancy),
            g.rounds_to_cover.to_string(),
            fmt_f64(pointers_with_redundancy(
                5_000.0,
                3_600.0,
                1_000.0,
                g.redundancy.max(1.0),
            )),
        ]);
    }
    t
}

/// Ablation: how the figure-7 error rate decomposes into detection delay
/// versus dissemination delay — rerun the quick common system with faster
/// probing and shorter RPC timeouts.
pub fn detection_ablation(scale: Scale, seed: u64) -> Table {
    let mut t = Table::new([
        "probe_interval_s",
        "rpc_timeout_s",
        "graceful_fraction",
        "avg_error_rate",
        "mean_delay_s",
    ]);
    for (probe_s, timeout_s, graceful) in [
        (10.0, 3.0, 0.0),
        (5.0, 1.0, 0.0),
        (30.0, 3.0, 0.0),
        (10.0, 3.0, 1.0),
    ] {
        let mut cfg = scale.config(scale.common_n().min(20_000), seed);
        cfg.protocol.probe_interval_us = (probe_s * 1e6) as u64;
        cfg.protocol.rpc_timeout_us = (timeout_s * 1e6) as u64;
        cfg.graceful_fraction = graceful;
        let rep = run_oracle(cfg);
        t.row([
            fmt_f64(probe_s),
            fmt_f64(timeout_s),
            fmt_f64(graceful),
            format!("{:.6}", rep.avg_error_rate),
            fmt_f64(rep.mean_multicast_delay_s),
        ]);
    }
    t
}

/// Ablation: does the lifetime distribution's *shape* matter, or only its
/// mean? The paper calibrates to Gnutella's heavy-tailed sessions; an
/// exponential with the same mean has far fewer very-short sessions, so
/// the churn "felt" by the protocol differs even at equal average
/// lifetime (length-biased sampling: most live nodes come from the long
/// tail).
pub fn lifetime_shape_ablation(scale: Scale, seed: u64) -> Table {
    use peerwindow_workload::LifetimeDist;
    let mut t = Table::new([
        "distribution",
        "mean_lifetime_s",
        "avg_error_rate",
        "frac_L0",
        "events_per_s",
    ]);
    let n = scale.lifetime_sweep_n().min(10_000);
    for (name, dist) in [
        ("gnutella_lognormal", LifetimeDist::Gnutella),
        (
            "exponential_same_mean",
            LifetimeDist::Exponential {
                mean_s: 135.0 * 60.0,
            },
        ),
    ] {
        let mut cfg = scale.config(n, seed);
        cfg.churn.lifetime = dist;
        let rep = run_oracle(cfg);
        let f0 = rep.level(0).map(|r| r.node_fraction).unwrap_or(0.0);
        t.row([
            name.to_string(),
            fmt_f64(dist.mean_s()),
            format!("{:.6}", rep.avg_error_rate),
            fmt_f64(f0),
            fmt_f64(rep.events as f64 / rep.measure_s),
        ]);
    }
    t
}

/// Extension experiment (beyond the paper): a flash crowd — 30 % of the
/// population joins within one second — and how the system absorbs it.
/// Reported: population, error rate, and level-0 share before, during,
/// and after the crowd (three separate measured runs for clean windows).
pub fn flash_crowd_experiment(scale: Scale, seed: u64) -> Table {
    let n = scale.lifetime_sweep_n().min(10_000);
    let mut t = Table::new([
        "phase",
        "n_final",
        "avg_error_rate",
        "frac_L0",
        "level_shifts",
    ]);
    for (phase, crowd) in [("steady", None), ("flash_+30%", Some((0.0, (n * 3) / 10)))] {
        let mut cfg = scale.config(n, seed);
        if let Some((after_warmup, count)) = crowd {
            // The crowd lands right at the start of the measure window.
            let at = cfg.warmup_s + after_warmup;
            cfg.flash_crowds.push((at, count));
        }
        let rep = run_oracle(cfg);
        t.row([
            phase.to_string(),
            rep.n_final.to_string(),
            format!("{:.6}", rep.avg_error_rate),
            fmt_f64(rep.level(0).map(|r| r.node_fraction).unwrap_or(0.0)),
            rep.level_shifts.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::common_run;

    #[test]
    fn model_tracks_simulation_within_factor_three() {
        let rep = common_run(Scale::Quick, 23);
        let t = model_vs_sim(&rep, 135.0 * 60.0);
        assert_eq!(t.len(), 3);
        // Parse back the cost row from CSV for the factor check.
        let csv = t.to_csv();
        let line = csv
            .lines()
            .find(|l| l.starts_with("bps_per_1000_pointers"))
            .unwrap();
        let cells: Vec<&str> = line.split(',').collect();
        let model: f64 = cells[1].parse().unwrap();
        let sim: f64 = cells[2].parse().unwrap();
        assert!(
            sim / model < 3.0 && model / sim < 3.0,
            "model {model} vs sim {sim}"
        );
    }

    #[test]
    fn baselines_table_shows_the_paper_ordering() {
        let t = baselines_table(100_000.0, 8_100.0);
        let csv = t.to_csv();
        let row = |budget: f64| -> Vec<f64> {
            csv.lines()
                .skip(1)
                .map(|l| {
                    l.split(',')
                        .map(|c| c.parse::<f64>().unwrap())
                        .collect::<Vec<f64>>()
                })
                .find(|cells| (cells[0] - budget).abs() < 0.5)
                .unwrap_or_else(|| panic!("no row for budget {budget}"))
        };
        // At 5 kbps: PeerWindow ≫ probing; one-hop unaffordable.
        let cells = row(5_000.0);
        assert!(
            cells[1] > 10.0 * cells[2],
            "pw {} vs probing {}",
            cells[1],
            cells[2]
        );
        assert_eq!(cells[3], 0.0, "one-hop should be unaffordable at 5 kbps");
        // At 370 kbps one-hop becomes affordable.
        let cells = row(370_000.0);
        assert!(cells[3] > 0.0);
    }

    #[test]
    fn gossip_ablation_shows_tree_advantage() {
        let t = gossip_ablation(3);
        let csv = t.to_csv();
        let tree: Vec<&str> = csv.lines().nth(1).unwrap().split(',').collect();
        assert_eq!(tree[0], "tree");
        let tree_pointers: f64 = tree[5].parse().unwrap();
        for line in csv.lines().skip(2) {
            let cells: Vec<&str> = line.split(',').collect();
            let r: f64 = cells[3].parse().unwrap();
            let p: f64 = cells[5].parse().unwrap();
            let coverage: f64 = cells[2].parse().unwrap();
            // Either gossip under-covers, or it pays r > 1 and collects
            // fewer pointers for the same budget.
            assert!(coverage < 0.999 || (r > 1.0 && p < tree_pointers));
        }
    }
}
