//! Regenerates every table/figure of the paper's evaluation (§5).
//!
//! ```text
//! experiments [--quick] [--seed S] [--out DIR] <target>...
//! targets: fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12
//!          model baselines ablation all
//! ```
//!
//! Full-scale runs reproduce the paper's parameters (figures 5–8 at
//! 100,000 nodes); `--quick` shrinks populations for smoke runs. Each
//! target prints a markdown table and writes `results/<target>.csv`.

use peerwindow_bench::extras::{
    baselines_table, detection_ablation, flash_crowd_experiment, gossip_ablation,
    lifetime_shape_ablation, model_vs_sim,
};
use peerwindow_bench::figures::*;
use peerwindow_metrics::plot::{bar_chart, scatter, Scale as Axis};
use peerwindow_metrics::Table;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::time::Instant;

struct Args {
    scale: Scale,
    seed: u64,
    out: PathBuf,
    targets: BTreeSet<String>,
}

fn parse_args() -> Args {
    let mut scale = Scale::Full;
    let mut seed = 42u64;
    let mut out = PathBuf::from("results");
    let mut targets = BTreeSet::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => scale = Scale::Quick,
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed takes an integer")
            }
            "--out" => out = PathBuf::from(it.next().expect("--out takes a path")),
            "--help" | "-h" => {
                eprintln!(
                    "usage: experiments [--quick] [--seed S] [--out DIR] \
                     <fig5..fig12|model|baselines|ablation|all>..."
                );
                std::process::exit(0);
            }
            t => {
                targets.insert(t.to_string());
            }
        }
    }
    if targets.is_empty() || targets.contains("all") {
        targets = [
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "model",
            "baselines",
            "ablation",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    Args {
        scale,
        seed,
        out,
        targets,
    }
}

fn emit(out: &Path, name: &str, title: &str, table: &Table) {
    println!("\n## {name} — {title}\n");
    print!("{}", table.to_markdown());
    let path = out.join(format!("{name}.csv"));
    table.write_csv(&path).expect("write csv");
    println!("\n→ {}", path.display());
}

fn main() {
    let args = parse_args();
    let t0 = Instant::now();
    let want = |s: &str| args.targets.contains(s);
    println!(
        "PeerWindow experiment harness — scale: {:?}, seed: {}",
        args.scale, args.seed
    );

    // Figures 5–8 share the common run.
    let common = if ["fig5", "fig6", "fig7", "fig8", "model"]
        .iter()
        .any(|f| want(f))
    {
        let t = Instant::now();
        let n = args.scale.common_n();
        println!("\n[common run: {n} nodes …]");
        let rep = common_run(args.scale, args.seed);
        println!(
            "[common run done in {:.1?}: {} events, {} deliveries, depth {:.1}, delay {:.1}s, {} shifts]",
            t.elapsed(),
            rep.events,
            rep.deliveries,
            rep.mean_tree_depth,
            rep.mean_multicast_delay_s,
            rep.level_shifts,
        );
        Some(rep)
    } else {
        None
    };
    if let Some(rep) = &common {
        if want("fig5") {
            emit(&args.out, "fig5", "node distribution by level", &fig5(rep));
            let rows: Vec<(String, f64)> = rep
                .rows
                .iter()
                .map(|r| (format!("L{}", r.level), r.node_fraction))
                .collect();
            println!("\n{}", bar_chart(&rows, 46));
        }
        if want("fig6") {
            emit(&args.out, "fig6", "peer-list sizes by level", &fig6(rep));
        }
        if want("fig7") {
            emit(
                &args.out,
                "fig7",
                "peer-list error rate by level",
                &fig7(rep),
            );
            let rows: Vec<(String, f64)> = rep
                .rows
                .iter()
                .map(|r| (format!("L{}", r.level), r.error_rate))
                .collect();
            println!("\n{}", bar_chart(&rows, 46));
        }
        if want("fig8") {
            emit(&args.out, "fig8", "bandwidth by level", &fig8(rep));
            let rows: Vec<(String, f64)> = rep
                .rows
                .iter()
                .flat_map(|r| {
                    [
                        (format!("L{} in ", r.level), r.in_bps),
                        (format!("L{} out", r.level), r.out_bps),
                    ]
                })
                .collect();
            println!("\n{}", bar_chart(&rows, 46));
        }
        if want("model") {
            let lifetime = 135.0 * 60.0;
            emit(
                &args.out,
                "model",
                "§2 analytic model vs simulation",
                &model_vs_sim(rep, lifetime),
            );
        }
    }

    if want("fig9") || want("fig10") {
        let t = Instant::now();
        println!("\n[scalability sweep {:?} …]", args.scale.sweep_ns());
        let sweep = scale_sweep(args.scale, args.seed);
        println!("[sweep done in {:.1?}]", t.elapsed());
        if want("fig9") {
            emit(
                &args.out,
                "fig9",
                "node distribution vs system scale",
                &fig9(&sweep),
            );
        }
        if want("fig10") {
            emit(
                &args.out,
                "fig10",
                "average error rate vs system scale",
                &fig10(&sweep),
            );
            let pts: Vec<(f64, f64)> = sweep
                .iter()
                .map(|(n, r)| (*n as f64, r.avg_error_rate))
                .collect();
            println!("\n{}", scatter(&pts, 50, 10, Axis::Log, Axis::Linear));
        }
    }

    if want("fig11") || want("fig12") {
        let t = Instant::now();
        println!(
            "\n[lifetime sweep {:?} at n = {} …]",
            lifetime_rates(args.scale),
            args.scale.lifetime_sweep_n()
        );
        let sweep = lifetime_sweep(args.scale, args.seed);
        println!("[sweep done in {:.1?}]", t.elapsed());
        if want("fig11") {
            emit(
                &args.out,
                "fig11",
                "node distribution vs Lifetime_Rate",
                &fig11(&sweep),
            );
        }
        if want("fig12") {
            emit(
                &args.out,
                "fig12",
                "average error rate vs Lifetime_Rate (log y)",
                &fig12(&sweep),
            );
            let pts: Vec<(f64, f64)> = sweep
                .iter()
                .map(|(rate, r)| (*rate, r.avg_error_rate))
                .collect();
            println!("\n{}", scatter(&pts, 50, 10, Axis::Log, Axis::Log));
        }
    }

    if want("baselines") {
        emit(
            &args.out,
            "baselines",
            "pointers per budget: PeerWindow vs probing vs one-hop",
            &baselines_table(args.scale.common_n() as f64, 8_100.0),
        );
    }

    if want("ablation") {
        emit(
            &args.out,
            "ablation_gossip",
            "tree multicast vs gossip redundancy",
            &gossip_ablation(args.seed),
        );
        emit(
            &args.out,
            "ablation_detection",
            "failure-detection parameters vs error rate",
            &detection_ablation(args.scale, args.seed),
        );
        emit(
            &args.out,
            "ablation_lifetime_shape",
            "lifetime distribution shape vs error rate",
            &lifetime_shape_ablation(args.scale, args.seed),
        );
        emit(
            &args.out,
            "flash_crowd",
            "extension: 30% flash crowd absorption",
            &flash_crowd_experiment(args.scale, args.seed),
        );
    }

    println!("\nall requested targets finished in {:.1?}", t0.elapsed());
}
