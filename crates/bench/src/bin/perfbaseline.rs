//! Non-interactive perf baseline: runs the hot engine/planner workloads
//! once and writes a machine-readable `BENCH_PR<n>.json` at the repo root
//! (or `--out PATH`). Every PR that touches the simulation path appends a
//! new `BENCH_PR<n>.json`, so the perf trajectory of the repo is a set of
//! checked-in files rather than folklore.
//!
//! ```text
//! perfbaseline [--out PATH] [--quick] [--profile-out PATH]
//! ```
//!
//! Workloads (all in this one binary, so comparisons share a build):
//!
//! * `seq_ping_1m` — the `des/sequential_1M_events` chain (queue depth 1):
//!   the engine pinned to `SchedKind::Heap`, pinned to `SchedKind::Wheel`,
//!   and left on the default `Adaptive` policy. Adaptive must hold heap
//!   speed here (the wheel used to be 5× slower at depth 1; PR 6's
//!   singleton-slot fast path and the adaptive policy both attack that).
//! * `seq_resident_1m` — 1M events with 100,000 resident periodic timers
//!   (the queue shape of a 100k-node protocol run, where every node holds
//!   probe/refresh timers): heap vs. wheel vs. adaptive. Adaptive must
//!   hold the wheel's ≥4× advantage over the heap.
//! * `trace_resident_1m` — the same resident-timer workload, three ways:
//!   the trace layer *compiled out* ([`NoopTrace`] monomorphised away —
//!   the configuration an untraced build actually runs), runtime-disabled
//!   (`NodeTrace` with the enabled flag off — what a traced build pays
//!   when recording is off), and enabled with harness-style drains.
//!   `off_overhead_pct` compares the compiled-out path against the
//!   untraced engine run; a root test gates it under 2%.
//! * `parallel_fanout` — the sharded engine at 1/2/4/8 shards under both
//!   the modulo and the topology-affine shard maps. Each entry records
//!   the worker count actually used and `oversubscribed: true` when
//!   shards exceed host cores, so a 1-core host's fanout numbers can't
//!   masquerade as a scaling regression.
//! * `oracle_plan_100k` — oracle-mode multicast planning over a 100k-node
//!   directory (trees per second).
//! * `latency_matrix_4800` — `TransitStubNetwork::build` wall time at the
//!   paper-scale 4800-stub topology.
//! * `metrics_overhead` — the 4-shard fanout with the engine's runtime
//!   metrics layer enabled vs. unmetered: what a profiled run pays for
//!   the per-window counters, histograms, and barrier-wait laps (a bench
//!   test gates it under 3%; compiled out it is exactly the unmetered
//!   build).
//! * `faults_zero_loss` — a full-fidelity protocol run with no fault
//!   model vs. an installed-but-empty `FaultPlan::reliable`: the cost of
//!   carrying the fault-injection layer on a clean network (the
//!   conditioner's no-active-rule fast path; must be noise-level — a
//!   bench test asserts it).
//!
//! The binary also profiles *itself*: each section runs under a
//! [`Profiler`] span, the per-section wall-clock breakdown lands in the
//! JSON as `self_profile`, and `--profile-out PATH` writes the metered
//! fanout runs' full [`RunReport`]s as JSONL for `pwstat` to render.

use peerwindow_des::{
    Engine, ModuloShardMap, Outbox, ParallelEngine, SchedKind, Scheduler, ShardLogic, ShardMap,
    SimTime, Simulation,
};
use peerwindow_metrics::runtime::{Profiler, RunReport};
use peerwindow_sim::StubAffineShardMap;
use peerwindow_topology::{NetworkModel, Topology, TransitStubNetwork, TransitStubParams};
use peerwindow_trace::{CauseId, NodeTrace, NoopTrace, TraceEventKind, TraceRecord, TraceSink};
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::time::Instant;

// ---------------------------------------------------------------- sequential

/// The `des/sequential_1M_events` workload: one self-perpetuating event.
struct Ping {
    left: u64,
}

impl Simulation for Ping {
    type Event = u32;
    fn handle(&mut self, _now: SimTime, ev: u32, sched: &mut Scheduler<'_, u32>) {
        if self.left > 0 {
            self.left -= 1;
            sched.schedule(100, ev.wrapping_add(1));
        }
    }
}

/// Per-actor timer period: spread over [500, 10 500) µs so pops interleave
/// actors and the queue order churns (the adversarial case for a heap).
fn period_us(actor: u32) -> u64 {
    500 + (actor as u64).wrapping_mul(7919) % 10_000
}

/// Best of `n` runs: single-shot numbers on a shared host swing ±20%
/// when a neighbour steals the core, and the BENCH ratios (adaptive vs
/// heap, off vs plain) must compare unloaded speeds, not scheduler luck.
fn best_of(n: usize, mut f: impl FnMut() -> f64) -> f64 {
    (0..n).map(|_| f()).fold(0.0, f64::max)
}

/// `resident` periodic timers, `events` reschedules: the queue holds
/// `resident` entries for the whole run.
struct ResidentTimers {
    left: u64,
}

impl Simulation for ResidentTimers {
    type Event = u32;
    fn handle(&mut self, _now: SimTime, actor: u32, sched: &mut Scheduler<'_, u32>) {
        if self.left > 0 {
            self.left -= 1;
            sched.schedule(period_us(actor), actor);
        }
    }
}

/// Runs the ping chain under an explicit queue policy.
fn seq_ping(events: u64, kind: SchedKind) -> f64 {
    let mut e = Engine::with_sched(Ping { left: events }, kind);
    e.schedule(0, 1);
    let t = Instant::now();
    e.run_to_completion();
    let secs = t.elapsed().as_secs_f64();
    assert_eq!(e.stats().processed, events + 1);
    e.stats().processed as f64 / secs
}

/// Runs the resident-timer workload under an explicit queue policy.
fn seq_resident(resident: u32, events: u64, kind: SchedKind) -> f64 {
    let mut e = Engine::with_sched(ResidentTimers { left: events }, kind);
    for a in 0..resident {
        e.schedule(period_us(a), a);
    }
    let t = Instant::now();
    e.run_to_completion();
    let secs = t.elapsed().as_secs_f64();
    assert_eq!(e.stats().processed, events + resident as u64);
    e.stats().processed as f64 / secs
}

/// Resident-timer workload generic over the trace sink, so the
/// `NoopTrace` instantiation measures the genuinely compiled-out path —
/// after monomorphisation the handler below contains no trace code at
/// all — while the `NodeTrace` instantiation measures the carried layer
/// (runtime-disabled or enabled).
struct TracedResident<T: TraceSink> {
    left: u64,
    trace: T,
    drained: Vec<TraceRecord>,
}

impl<T: TraceSink> Simulation for TracedResident<T> {
    type Event = u32;
    fn handle(&mut self, now: SimTime, actor: u32, sched: &mut Scheduler<'_, u32>) {
        if self.left > 0 {
            self.left -= 1;
            sched.schedule(period_us(actor), actor);
        }
        // One guard for the whole trace block: `ACTIVE` is a constant, so
        // the `NoopTrace` instantiation deletes the block outright; a
        // runtime-disabled `NodeTrace` pays one predictable branch — the
        // same shape as `NodeMachine::tr` in `crates/core`.
        if T::ACTIVE && self.trace.recording() {
            self.trace.set_now(now.as_micros());
            self.trace
                .emit_with(0, CauseId::NONE, || TraceEventKind::ProbeSent {
                    target: actor as u128,
                });
            self.trace.drain_into(&mut self.drained);
            if self.drained.len() >= 65_536 {
                self.drained.clear();
            }
        }
    }
}

fn traced_resident<T: TraceSink>(resident: u32, events: u64, trace: T) -> f64 {
    let mut e = Engine::new(TracedResident {
        left: events,
        trace,
        drained: Vec::new(),
    });
    for a in 0..resident {
        e.schedule(period_us(a), a);
    }
    let t = Instant::now();
    e.run_to_completion();
    let secs = t.elapsed().as_secs_f64();
    assert_eq!(e.stats().processed, events + resident as u64);
    e.stats().processed as f64 / secs
}

// ------------------------------------------------------------------ parallel

/// The `des/parallel_fanout` workload from `benches/engine.rs`: each event
/// fans out to two pseudo-random actors until its hop budget runs out.
struct Fanout {
    actors: u32,
    count: u64,
}

impl ShardLogic for Fanout {
    type Msg = u32;
    fn handle(&mut self, _now: SimTime, _actor: u32, hops: u32, out: &mut Outbox<u32>) {
        self.count += 1;
        if hops > 0 {
            let a = (self.count as u32).wrapping_mul(2654435761) % self.actors;
            let b = (self.count as u32).wrapping_mul(40503) % self.actors;
            out.send(1_000, a, hops - 1);
            out.send(1_500, b, hops - 1);
        }
    }
    fn fingerprint(&self) -> u64 {
        self.count
    }
}

/// Returns (events/sec, events processed, workers used).
fn parallel_fanout<M: ShardMap + Clone>(shards: usize, hops: u32, map: M) -> (f64, u64, usize) {
    let logics: Vec<Fanout> = (0..shards)
        .map(|_| Fanout {
            actors: 256,
            count: 0,
        })
        .collect();
    let mut e = ParallelEngine::with_map(logics, 1_000, map);
    for i in 0..8 {
        e.schedule(SimTime(0), i, hops);
    }
    let workers = e.workers();
    let t = Instant::now();
    e.run_until(SimTime::from_secs(600));
    let secs = t.elapsed().as_secs_f64();
    let processed = e.processed();
    (processed as f64 / secs, processed, workers)
}

/// Like [`parallel_fanout`], with the engine's runtime metrics enabled;
/// also returns the wall-clock attribution report. With the
/// `runtime-metrics` feature compiled out the report is empty and the
/// run is byte-for-byte the unmetered engine.
fn parallel_fanout_metered<M: ShardMap + Clone>(
    shards: usize,
    hops: u32,
    map: M,
    name: &str,
) -> (f64, u64, usize, RunReport) {
    let logics: Vec<Fanout> = (0..shards)
        .map(|_| Fanout {
            actors: 256,
            count: 0,
        })
        .collect();
    let mut e = ParallelEngine::with_map(logics, 1_000, map);
    e.set_metrics_enabled(true);
    for i in 0..8 {
        e.schedule(SimTime(0), i, hops);
    }
    let workers = e.workers();
    let t = Instant::now();
    e.run_until(SimTime::from_secs(600));
    let secs = t.elapsed().as_secs_f64();
    let processed = e.processed();
    let report = e.metrics_report(name);
    (processed as f64 / secs, processed, workers, report)
}

// -------------------------------------------------------------------- faults

/// A full-fidelity protocol run (joins, probes, multicasts) over a
/// uniform network; `reliable_plan` installs `FaultPlan::reliable` so
/// every datagram takes the conditioner's fast path, `false` leaves the
/// fault layer uninstalled. Returns events per second.
fn full_sim_run(nodes: u32, horizon_s: u64, reliable_plan: bool) -> f64 {
    use bytes::Bytes;
    use peerwindow_core::prelude::*;
    use peerwindow_faults::FaultPlan;
    use peerwindow_sim::FullSim;
    use peerwindow_topology::UniformNetwork;
    let protocol = ProtocolConfig {
        probe_interval_us: 2_000_000,
        rpc_timeout_us: 400_000,
        processing_delay_us: 10_000,
        bandwidth_window_us: 8_000_000,
        ..ProtocolConfig::default()
    };
    let mut sim = FullSim::new(
        protocol,
        Box::new(UniformNetwork { latency_us: 20_000 }),
        13,
    );
    if reliable_plan {
        sim.set_fault_plan(FaultPlan::reliable(13));
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    sim.spawn_seed(
        peerwindow_core::prelude::NodeId(rng.gen()),
        1e9,
        Bytes::new(),
    );
    for _ in 1..nodes {
        sim.run_for(300_000);
        let _ = sim.spawn_joiner(NodeId(rng.gen()), 1e9, Bytes::new());
    }
    let t = Instant::now();
    sim.run_until(peerwindow_des::SimTime::from_secs(horizon_s));
    let secs = t.elapsed().as_secs_f64();
    sim.processed() as f64 / secs
}

// -------------------------------------------------------------------- oracle

fn oracle_plan(n: usize, trees: u32) -> f64 {
    use peerwindow_core::prelude::*;
    use peerwindow_sim::plan::{plan_event, Rmq};
    use peerwindow_sim::Directory;
    let mut dir = Directory::new();
    let mut rng = rand::rngs::StdRng::seed_from_u64(6);
    for i in 0..n {
        dir.join(
            NodeId(rng.gen()),
            i as u32,
            Level::new(rng.gen_range(0..6)),
            500.0,
            1e6,
        );
    }
    let mut audience = Vec::new();
    let mut rmq = Rmq::new();
    let mut sink = 0u64;
    let t = Instant::now();
    for _ in 0..trees {
        let subject = NodeId(rng.gen());
        dir.collect_audience(subject, &mut audience);
        if audience.is_empty() {
            continue;
        }
        let root_idx = audience.iter().position(|e| e.level == 0).unwrap_or(0);
        plan_event(
            &audience,
            &mut rmq,
            root_idx,
            audience[root_idx].level,
            0,
            1_000_000,
            |_, _| 80_000,
            |d| sink = sink.wrapping_add(d.at_us),
        );
    }
    let secs = t.elapsed().as_secs_f64();
    std::hint::black_box(sink);
    trees as f64 / secs
}

// ---------------------------------------------------------------------- json

/// Minimal JSON emitter (the workspace's `serde_json` is an offline stub).
struct Json {
    out: String,
    depth: usize,
    need_comma: bool,
}

impl Json {
    fn new() -> Self {
        Json {
            out: String::new(),
            depth: 0,
            need_comma: false,
        }
    }
    fn pad(&mut self) {
        if self.need_comma {
            self.out.push(',');
        }
        self.out.push('\n');
        for _ in 0..self.depth {
            self.out.push_str("  ");
        }
    }
    fn open(&mut self, key: Option<&str>) {
        self.pad();
        if let Some(k) = key {
            let _ = write!(self.out, "\"{k}\": ");
        }
        self.out.push('{');
        self.depth += 1;
        self.need_comma = false;
    }
    fn close(&mut self) {
        self.depth -= 1;
        self.out.push('\n');
        for _ in 0..self.depth {
            self.out.push_str("  ");
        }
        self.out.push('}');
        self.need_comma = true;
    }
    fn num(&mut self, key: &str, v: f64) {
        self.pad();
        let _ = write!(self.out, "\"{key}\": {v:.1}");
        self.need_comma = true;
    }
    fn num3(&mut self, key: &str, v: f64) {
        self.pad();
        let _ = write!(self.out, "\"{key}\": {v:.3}");
        self.need_comma = true;
    }
    fn int(&mut self, key: &str, v: u64) {
        self.pad();
        let _ = write!(self.out, "\"{key}\": {v}");
        self.need_comma = true;
    }
    fn bool(&mut self, key: &str, v: bool) {
        self.pad();
        let _ = write!(self.out, "\"{key}\": {v}");
        self.need_comma = true;
    }
    fn str(&mut self, key: &str, v: &str) {
        self.pad();
        let _ = write!(self.out, "\"{key}\": \"{v}\"");
        self.need_comma = true;
    }
    fn finish(mut self) -> String {
        self.out.push('\n');
        self.out
    }
}

// ----------------------------------------------------------------------- main

fn main() {
    let usage = "usage: perfbaseline [--out PATH] [--quick] [--profile-out PATH]";
    let mut out_path = String::from("BENCH_PR8.json");
    let mut profile_out: Option<String> = None;
    let mut quick = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => match it.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("{usage} (--out takes a path)");
                    std::process::exit(2);
                }
            },
            "--profile-out" => match it.next() {
                Some(p) => profile_out = Some(p),
                None => {
                    eprintln!("{usage} (--profile-out takes a path)");
                    std::process::exit(2);
                }
            },
            "--quick" => quick = true,
            other => {
                eprintln!("{usage} (unknown arg {other})");
                std::process::exit(2);
            }
        }
    }
    let events: u64 = if quick { 100_000 } else { 1_000_000 };
    let resident: u32 = if quick { 10_000 } else { 100_000 };
    let trees: u32 = if quick { 200 } else { 2_000 };
    let hops: u32 = if quick { 12 } else { 15 };

    let parallelism = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    eprintln!("host parallelism: {parallelism}");

    let mut j = Json::new();
    j.open(None);
    j.str("generated_by", "perfbaseline");
    j.int("pr", 8);
    j.str("mode", if quick { "quick" } else { "full" });
    j.open(Some("host"));
    j.int("parallelism", parallelism as u64);
    j.close();
    j.open(Some("benches"));

    let tries = if quick { 1 } else { 3 };
    // Self-profiling: every section below runs under a span, so the JSON
    // carries its own wall-clock breakdown (`self_profile`).
    let prof = Profiler::new();

    let sp = prof.span("sequential");
    // Sequential: chain (queue depth 1) and resident-timer (deep queue),
    // each under all three queue policies.
    seq_ping(events, SchedKind::Heap); // warm up caches and the allocator
    let h = best_of(tries, || seq_ping(events, SchedKind::Heap));
    let w = best_of(tries, || seq_ping(events, SchedKind::Wheel));
    let a = best_of(tries, || seq_ping(events, SchedKind::Adaptive));
    eprintln!(
        "seq_ping_1m        heap {h:>12.0}  wheel {w:>12.0}  adaptive {a:>12.0} ev/s   adaptive/heap x{:.2}",
        a / h
    );
    j.open(Some("seq_ping_1m"));
    j.int("events", events);
    j.num("heap_events_per_sec", h);
    j.num("wheel_events_per_sec", w);
    j.num("adaptive_events_per_sec", a);
    j.num3("wheel_vs_heap", w / h);
    j.num3("adaptive_vs_heap", a / h);
    j.close();

    let h = best_of(tries, || seq_resident(resident, events, SchedKind::Heap));
    let w = best_of(tries, || seq_resident(resident, events, SchedKind::Wheel));
    let a = best_of(tries, || {
        seq_resident(resident, events, SchedKind::Adaptive)
    });
    eprintln!(
        "seq_resident_1m    heap {h:>12.0}  wheel {w:>12.0}  adaptive {a:>12.0} ev/s   adaptive/heap x{:.2}",
        a / h
    );
    j.open(Some("seq_resident_1m"));
    j.int("events", events);
    j.int("resident_timers", resident as u64);
    j.num("heap_events_per_sec", h);
    j.num("wheel_events_per_sec", w);
    j.num("adaptive_events_per_sec", a);
    j.num3("wheel_vs_heap", w / h);
    j.num3("adaptive_vs_heap", a / h);
    j.close();
    drop(sp);

    let sp = prof.span("trace_overhead");
    // Tracing overhead on the same resident-timer shape. `off` is the
    // compiled-out NoopTrace instantiation — overhead vs. an untraced
    // adaptive run is what an untraced build pays for the trace layer
    // existing: it should be indistinguishable from noise. The baseline
    // is re-measured here, interleaved with the traced configurations,
    // so host-load drift between sections cannot masquerade as
    // overhead.
    let mut base = 0f64;
    let mut off = 0f64;
    let mut disabled = 0f64;
    let mut on = 0f64;
    for _ in 0..tries {
        base = base.max(seq_resident(resident, events, SchedKind::Adaptive));
        off = off.max(traced_resident(resident, events, NoopTrace::new(1)));
        disabled = disabled.max(traced_resident(resident, events, NodeTrace::new(1)));
        on = on.max({
            let mut t = NodeTrace::new(1);
            t.set_enabled(true);
            traced_resident(resident, events, t)
        });
    }
    eprintln!(
        "trace_resident_1m  off {off:>12.0}  disabled {disabled:>12.0}  on {on:>12.0} ev/s   off-overhead {:+.2}%",
        (base / off - 1.0) * 100.0
    );
    j.open(Some("trace_resident_1m"));
    j.int("events", events);
    j.int("resident_timers", resident as u64);
    j.num("untraced_events_per_sec", base);
    j.num("off_events_per_sec", off);
    j.num("runtime_disabled_events_per_sec", disabled);
    j.num("on_events_per_sec", on);
    j.num3("off_overhead_pct", (base / off - 1.0) * 100.0);
    j.num3(
        "runtime_disabled_overhead_pct",
        (base / disabled - 1.0) * 100.0,
    );
    j.num3("on_overhead_pct", (base / on - 1.0) * 100.0);
    j.close();
    drop(sp);

    let sp = prof.span("parallel_fanout");
    // Parallel fanout under both shard maps. Entries where shards exceed
    // host cores are flagged: their throughput measures oversubscription,
    // not the engine's scaling.
    let topo = Topology::generate(TransitStubParams::small(), 11);
    let net = TransitStubNetwork::build(&topo);
    let affine = StubAffineShardMap::new(&net);
    let metrics_active = peerwindow_des::runtime_metrics_active();
    let mut profile_reports: Vec<RunReport> = Vec::new();
    for (name, run) in [
        ("parallel_fanout_modulo", None),
        ("parallel_fanout_stub_affine", Some(affine)),
    ] {
        j.open(Some(name));
        for shards in [1usize, 2, 4, 8] {
            let (eps, processed, workers) = match run {
                None => parallel_fanout(shards, hops, ModuloShardMap),
                Some(m) => parallel_fanout(shards, hops, m),
            };
            let over = shards > parallelism;
            eprintln!(
                "{name:<28} {shards} shards ({workers} workers{}) {eps:>12.0} ev/s ({processed} events)",
                if over { ", oversubscribed" } else { "" }
            );
            j.open(Some(&format!("shards_{shards}")));
            j.num("events_per_sec", eps);
            j.int("workers", workers as u64);
            j.bool("oversubscribed", over);
            // Metered rerun (modulo map only): where did the wall-clock
            // go? Each entry carries grouped attribution fractions
            // (they sum to 1 by construction — laps partition the
            // run), and the full report goes to `--profile-out`.
            if run.is_none() && metrics_active {
                let (meps, _, _, report) = parallel_fanout_metered(
                    shards,
                    hops,
                    ModuloShardMap,
                    &format!("fanout_shards_{shards}"),
                );
                j.num("metered_events_per_sec", meps);
                for (group, frac) in report.attribution() {
                    j.num3(&format!("{group}_frac"), frac);
                }
                eprintln!(
                    "{:<28} {shards} shards metered {meps:>12.0} ev/s   barrier {:.0}%  execute {:.0}%  handoff {:.0}%",
                    "", report.frac("barrier_wait") * 100.0,
                    report.frac("execute") * 100.0,
                    report.frac("handoff") * 100.0,
                );
                profile_reports.push(report);
            }
            j.close();
        }
        j.close();
    }

    // Metrics-layer overhead at 4 shards: enabled vs. unmetered,
    // interleaved best-of so host-load drift cancels. Compiled out, the
    // metered engine IS the unmetered engine (Noop sink), so the entry
    // then measures pure noise.
    let mut un = 0f64;
    let mut met = 0f64;
    for _ in 0..tries.max(2) {
        un = un.max(parallel_fanout(4, hops, ModuloShardMap).0);
        met = met.max(parallel_fanout_metered(4, hops, ModuloShardMap, "overhead").0);
    }
    eprintln!(
        "metrics_overhead   unmetered {un:>12.0} ev/s   metered {met:>12.0} ev/s   overhead {:+.2}%",
        (un / met - 1.0) * 100.0
    );
    j.open(Some("metrics_overhead"));
    j.bool("runtime_metrics_active", metrics_active);
    j.int("shards", 4);
    j.num("unmetered_events_per_sec", un);
    j.num("metered_events_per_sec", met);
    j.num3("enabled_overhead_pct", (un / met - 1.0) * 100.0);
    j.close();
    drop(sp);

    let sp = prof.span("oracle_plan");
    // Oracle planner throughput at the paper's 100k scale.
    let tps = oracle_plan(if quick { 10_000 } else { 100_000 }, trees);
    eprintln!("oracle_plan        {tps:>12.0} trees/s");
    j.open(Some("oracle_plan_100k"));
    j.int("directory_nodes", if quick { 10_000 } else { 100_000 });
    j.num("trees_per_sec", tps);
    j.close();
    drop(sp);

    let sp = prof.span("faults");
    // Fault-layer overhead on a clean network: uninstalled vs. an
    // installed-but-ruleless plan (the per-send fast path).
    let fnodes = if quick { 32 } else { 64 };
    let fhorizon = if quick { 120 } else { 600 };
    let without = full_sim_run(fnodes, fhorizon, false);
    let with = full_sim_run(fnodes, fhorizon, true);
    eprintln!(
        "faults_zero_loss   none  {without:>12.0} ev/s   plan {with:>12.0} ev/s   overhead {:+.2}%",
        (without / with - 1.0) * 100.0
    );
    j.open(Some("faults_zero_loss"));
    j.int("nodes", fnodes as u64);
    j.int("horizon_s", fhorizon);
    j.num("no_model_events_per_sec", without);
    j.num("reliable_plan_events_per_sec", with);
    j.num3("overhead_pct", (without / with - 1.0) * 100.0);
    j.close();
    drop(sp);

    let sp = prof.span("latency_matrix");
    // Latency-matrix build at the paper-scale 4800-stub topology.
    let params = if quick {
        TransitStubParams::small()
    } else {
        TransitStubParams::default()
    };
    let stubs = params.stub_count() as u64;
    let topo = Topology::generate(params, 2);
    let t = Instant::now();
    let net = TransitStubNetwork::build(&topo);
    let secs = t.elapsed().as_secs_f64();
    std::hint::black_box(net.latency_us(0, stubs as u32 / 2));
    eprintln!("latency_matrix     {stubs} stubs built in {secs:.2}s");
    j.open(Some("latency_matrix_build"));
    j.int("stubs", stubs);
    j.num3("seconds", secs);
    j.close();
    drop(sp);

    j.close(); // benches

    // Where this binary itself spent its wall-clock, per section.
    let total_ns = prof.total_ns().max(1);
    j.open(Some("self_profile"));
    for (section, ns) in prof.report() {
        eprintln!(
            "self_profile       {section:<16} {:>8.2}s  ({:.0}%)",
            ns as f64 / 1e9,
            ns as f64 / total_ns as f64 * 100.0
        );
        j.open(Some(&section));
        j.num3("seconds", ns as f64 / 1e9);
        j.num3("frac", ns as f64 / total_ns as f64);
        j.close();
    }
    j.close(); // self_profile

    j.close(); // root
    let json = j.finish();
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");

    // The metered fanout runs' full reports, as JSONL for `pwstat`.
    if let Some(path) = profile_out {
        let mut jsonl = String::new();
        for r in &profile_reports {
            jsonl.push_str(&r.to_jsonl());
        }
        if let Err(e) = std::fs::write(&path, &jsonl) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "wrote {path} ({} report{})",
            profile_reports.len(),
            if profile_reports.len() == 1 { "" } else { "s" }
        );
    }
}
