//! The declarative side: who, when, and what kind of misbehaviour.

/// Selects a set of nodes by sim address (`u32` actor id, the same ids
/// the sim engines use).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeSel {
    /// Every node.
    All,
    /// Exactly one node.
    One(u32),
    /// Nodes whose `actor % key_mod` lands in `domains` — the same
    /// affinity key `StubAffineShardMap` uses, so a partition can be cut
    /// along stub-domain boundaries.
    Domain {
        /// Modulus for the domain key.
        key_mod: u32,
        /// Accepted residues.
        domains: Vec<u32>,
    },
}

impl NodeSel {
    /// Whether `node` is selected.
    #[inline]
    pub fn matches(&self, node: u32) -> bool {
        match self {
            NodeSel::All => true,
            NodeSel::One(n) => *n == node,
            NodeSel::Domain { key_mod, domains } => {
                *key_mod > 0 && domains.contains(&(node % key_mod))
            }
        }
    }
}

/// Selects a set of *directed* links. With `symmetric`, the reversed
/// direction is selected too — `(src→dst) ∪ (dst→src)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinkSel {
    /// Sender-side selector.
    pub src: NodeSel,
    /// Receiver-side selector.
    pub dst: NodeSel,
    /// Also match the reversed direction.
    pub symmetric: bool,
}

impl LinkSel {
    /// Every link, both directions.
    pub fn all() -> Self {
        LinkSel {
            src: NodeSel::All,
            dst: NodeSel::All,
            symmetric: false,
        }
    }

    /// One direction only: `src → dst`.
    pub fn one_way(src: NodeSel, dst: NodeSel) -> Self {
        LinkSel {
            src,
            dst,
            symmetric: false,
        }
    }

    /// Both directions between the two node sets.
    pub fn between(a: NodeSel, b: NodeSel) -> Self {
        LinkSel {
            src: a,
            dst: b,
            symmetric: true,
        }
    }

    /// Whether the directed link `(src, dst)` is selected.
    #[inline]
    pub fn matches(&self, src: u32, dst: u32) -> bool {
        if self.src.matches(src) && self.dst.matches(dst) {
            return true;
        }
        self.symmetric && self.src.matches(dst) && self.dst.matches(src)
    }
}

/// One network condition. Loss conditions OR together when stacked;
/// jitter adds; duplication triggers at most one copy per datagram.
#[derive(Clone, Debug, PartialEq)]
pub enum Condition {
    /// Uniform i.i.d. loss with probability `p` — the legacy model, kept
    /// as the degenerate case backing the `set_loss(f64)` shims.
    Loss {
        /// Drop probability in `[0, 1]`.
        p: f64,
    },
    /// Gilbert–Elliott two-state Markov burst loss. The chain advances
    /// once per judged packet: from Good it enters Bad with
    /// `p_enter_bad`, from Bad it recovers with `p_exit_bad`; the packet
    /// is then lost with the current state's loss rate. With
    /// `loss_good == loss_bad` this reduces exactly to uniform loss.
    GilbertElliott {
        /// P(Good → Bad) per packet.
        p_enter_bad: f64,
        /// P(Bad → Good) per packet.
        p_exit_bad: f64,
        /// Loss probability while in Good.
        loss_good: f64,
        /// Loss probability while in Bad.
        loss_bad: f64,
    },
    /// Adds `uniform[0, max_extra_us]` to the delivery latency. Large
    /// values reorder datagrams relative to the link's base latency.
    Jitter {
        /// Maximum extra one-way delay, microseconds.
        max_extra_us: u64,
    },
    /// Duplicates the datagram with probability `p`; the copy arrives
    /// `gap_us` after the original (plus any jitter already applied).
    Duplicate {
        /// Duplication probability in `[0, 1]`.
        p: f64,
        /// Extra delay of the duplicate over the original, microseconds.
        gap_us: u64,
    },
    /// Drops everything. One-way blackholes model asymmetric link
    /// failure; symmetric blackholes between domain selectors model
    /// partitions.
    Blackhole,
}

/// A [`Condition`] active on `links` during `[from_us, until_us)`.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultRule {
    /// Activation time (inclusive), sim microseconds.
    pub from_us: u64,
    /// Deactivation time (exclusive); `u64::MAX` for "never heals".
    pub until_us: u64,
    /// Which directed links the condition applies to.
    pub links: LinkSel,
    /// What happens to matching datagrams.
    pub condition: Condition,
}

impl FaultRule {
    /// Whether the rule is active at `now_us`.
    #[inline]
    pub fn active(&self, now_us: u64) -> bool {
        self.from_us <= now_us && now_us < self.until_us
    }
}

/// A seeded, deterministic schedule of network conditions. The plan is
/// pure data: interpreting it (and owning the per-link RNG state) is the
/// [`LinkConditioner`](crate::LinkConditioner)'s job.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for every per-link random stream.
    pub seed: u64,
    /// Rules, evaluated in declaration order.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// A plan with no rules: the network is perfectly reliable, but the
    /// conditioner still runs (used to measure the zero-fault overhead).
    pub fn reliable(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// The legacy model: uniform i.i.d. loss `p` on every link, forever.
    pub fn uniform_loss(seed: u64, p: f64) -> Self {
        FaultPlan::reliable(seed).with_rule(FaultRule {
            from_us: 0,
            until_us: u64::MAX,
            links: LinkSel::all(),
            condition: Condition::Loss { p },
        })
    }

    /// Appends a rule (builder style).
    pub fn with_rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Cuts the network into two halves along the stub-domain key during
    /// `[from_us, until_us)`: nodes whose `actor % key_mod` is in
    /// `isolated` cannot exchange datagrams with the rest in either
    /// direction. The partition heals at `until_us`.
    pub fn with_partition(
        self,
        from_us: u64,
        until_us: u64,
        key_mod: u32,
        isolated: &[u32],
    ) -> Self {
        let rest: Vec<u32> = (0..key_mod).filter(|d| !isolated.contains(d)).collect();
        self.with_rule(FaultRule {
            from_us,
            until_us,
            links: LinkSel::between(
                NodeSel::Domain {
                    key_mod,
                    domains: isolated.to_vec(),
                },
                NodeSel::Domain {
                    key_mod,
                    domains: rest,
                },
            ),
            condition: Condition::Blackhole,
        })
    }

    /// Whether any rule can ever match (false ⇒ the conditioner's fast
    /// path is taken on every packet).
    pub fn is_reliable(&self) -> bool {
        self.rules.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selectors_match_as_documented() {
        assert!(NodeSel::All.matches(7));
        assert!(NodeSel::One(7).matches(7));
        assert!(!NodeSel::One(7).matches(8));
        let dom = NodeSel::Domain {
            key_mod: 4,
            domains: vec![1, 3],
        };
        assert!(dom.matches(5)); // 5 % 4 == 1
        assert!(!dom.matches(8)); // 8 % 4 == 0
        let degenerate = NodeSel::Domain {
            key_mod: 0,
            domains: vec![0],
        };
        assert!(!degenerate.matches(0)); // no div-by-zero, matches nothing
    }

    #[test]
    fn symmetric_links_match_both_directions() {
        let one_way = LinkSel::one_way(NodeSel::One(1), NodeSel::One(2));
        assert!(one_way.matches(1, 2));
        assert!(!one_way.matches(2, 1));
        let both = LinkSel::between(NodeSel::One(1), NodeSel::One(2));
        assert!(both.matches(1, 2));
        assert!(both.matches(2, 1));
        assert!(!both.matches(1, 3));
    }

    #[test]
    fn rule_window_is_half_open() {
        let r = FaultRule {
            from_us: 10,
            until_us: 20,
            links: LinkSel::all(),
            condition: Condition::Blackhole,
        };
        assert!(!r.active(9));
        assert!(r.active(10));
        assert!(r.active(19));
        assert!(!r.active(20));
    }

    #[test]
    fn partition_isolates_both_directions_and_heals() {
        let plan = FaultPlan::reliable(1).with_partition(100, 200, 4, &[0, 1]);
        let rule = &plan.rules[0];
        // Domain {0,1} vs {2,3}: actor 4 (dom 0) × actor 6 (dom 2).
        assert!(rule.links.matches(4, 6));
        assert!(rule.links.matches(6, 4));
        // Intra-half links unaffected.
        assert!(!rule.links.matches(4, 5)); // dom 0 → dom 1
        assert!(!rule.links.matches(6, 7)); // dom 2 → dom 3
        assert!(rule.active(150));
        assert!(!rule.active(200)); // healed
    }
}
