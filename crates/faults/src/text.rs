//! A line-based text serialization for [`FaultPlan`]s.
//!
//! The vendored `serde`/`serde_json` are empty stubs (this workspace
//! builds offline), and the crate must stay dependency-free, so the
//! plan-file format is hand-rolled: one declaration per line, `#`
//! comments and blank lines ignored.
//!
//! ```text
//! plan seed=11
//! rule from=10000000 until=25000000 links=dom:2:1>dom:2:0 sym cond=blackhole
//! rule from=0 until=max links=one:3>all cond=loss:0.05
//! ```
//!
//! Grammar:
//!
//! * node selector — `all` | `one:N` | `dom:MOD:R,R,…` (residues of
//!   `node % MOD`)
//! * links — `SRC>DST`, with a trailing `sym` token for both directions
//! * condition — `blackhole` | `loss:P` | `ge:P_ENTER:P_EXIT:L_GOOD:L_BAD`
//!   | `jitter:MAX_US` | `dup:P:GAP_US`
//!
//! Floats are written with Rust's shortest-round-trip formatting, so
//! `to_text` → `from_text` reproduces the plan exactly — the determinism
//! contract (same plan + seed ⇒ same verdicts) survives the file system.

use crate::plan::{Condition, FaultPlan, FaultRule, LinkSel, NodeSel};

/// Serializes a plan to the line format above.
pub fn to_text(plan: &FaultPlan) -> String {
    let mut out = format!("plan seed={}\n", plan.seed);
    for r in &plan.rules {
        out.push_str("rule from=");
        out.push_str(&r.from_us.to_string());
        out.push_str(" until=");
        if r.until_us == u64::MAX {
            out.push_str("max");
        } else {
            out.push_str(&r.until_us.to_string());
        }
        out.push_str(" links=");
        sel_to(&mut out, &r.links.src);
        out.push('>');
        sel_to(&mut out, &r.links.dst);
        if r.links.symmetric {
            out.push_str(" sym");
        }
        out.push_str(" cond=");
        cond_to(&mut out, &r.condition);
        out.push('\n');
    }
    out
}

/// Parses the line format back into a plan. Unknown lines are an error,
/// never silently skipped — a typoed rule must not yield a quieter
/// network than the experiment asked for.
pub fn from_text(text: &str) -> Result<FaultPlan, String> {
    let mut plan: Option<FaultPlan> = None;
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |msg: &str| format!("plan line {}: {msg}: {raw:?}", ln + 1);
        if let Some(rest) = line.strip_prefix("plan ") {
            let seed = rest
                .trim()
                .strip_prefix("seed=")
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err("expected `plan seed=N`"))?;
            if plan.is_some() {
                return Err(err("duplicate `plan` line"));
            }
            plan = Some(FaultPlan::reliable(seed));
        } else if let Some(rest) = line.strip_prefix("rule ") {
            let p = plan
                .as_mut()
                .ok_or_else(|| err("`rule` before the `plan` line"))?;
            p.rules.push(parse_rule(rest).map_err(|m| err(&m))?);
        } else {
            return Err(err("unrecognized declaration"));
        }
    }
    plan.ok_or_else(|| "no `plan seed=N` line found".to_string())
}

fn sel_to(out: &mut String, sel: &NodeSel) {
    match sel {
        NodeSel::All => out.push_str("all"),
        NodeSel::One(n) => {
            out.push_str("one:");
            out.push_str(&n.to_string());
        }
        NodeSel::Domain { key_mod, domains } => {
            out.push_str("dom:");
            out.push_str(&key_mod.to_string());
            out.push(':');
            for (i, d) in domains.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&d.to_string());
            }
        }
    }
}

fn cond_to(out: &mut String, cond: &Condition) {
    match cond {
        Condition::Blackhole => out.push_str("blackhole"),
        Condition::Loss { p } => {
            out.push_str(&format!("loss:{p}"));
        }
        Condition::GilbertElliott {
            p_enter_bad,
            p_exit_bad,
            loss_good,
            loss_bad,
        } => {
            out.push_str(&format!(
                "ge:{p_enter_bad}:{p_exit_bad}:{loss_good}:{loss_bad}"
            ));
        }
        Condition::Jitter { max_extra_us } => {
            out.push_str(&format!("jitter:{max_extra_us}"));
        }
        Condition::Duplicate { p, gap_us } => {
            out.push_str(&format!("dup:{p}:{gap_us}"));
        }
    }
}

fn parse_rule(rest: &str) -> Result<FaultRule, String> {
    let mut from_us = None;
    let mut until_us = None;
    let mut links = None;
    let mut symmetric = false;
    let mut condition = None;
    for tok in rest.split_whitespace() {
        if tok == "sym" {
            symmetric = true;
        } else if let Some(v) = tok.strip_prefix("from=") {
            from_us = Some(v.parse().map_err(|_| format!("bad from {v:?}"))?);
        } else if let Some(v) = tok.strip_prefix("until=") {
            until_us = Some(if v == "max" {
                u64::MAX
            } else {
                v.parse().map_err(|_| format!("bad until {v:?}"))?
            });
        } else if let Some(v) = tok.strip_prefix("links=") {
            let (src, dst) = v
                .split_once('>')
                .ok_or_else(|| format!("links needs `SRC>DST`, got {v:?}"))?;
            links = Some((parse_sel(src)?, parse_sel(dst)?));
        } else if let Some(v) = tok.strip_prefix("cond=") {
            condition = Some(parse_cond(v)?);
        } else {
            return Err(format!("unknown token {tok:?}"));
        }
    }
    let (src, dst) = links.ok_or("missing links=")?;
    Ok(FaultRule {
        from_us: from_us.ok_or("missing from=")?,
        until_us: until_us.ok_or("missing until=")?,
        links: LinkSel {
            src,
            dst,
            symmetric,
        },
        condition: condition.ok_or("missing cond=")?,
    })
}

fn parse_sel(s: &str) -> Result<NodeSel, String> {
    if s == "all" {
        return Ok(NodeSel::All);
    }
    if let Some(n) = s.strip_prefix("one:") {
        return Ok(NodeSel::One(
            n.parse().map_err(|_| format!("bad node {n:?}"))?,
        ));
    }
    if let Some(rest) = s.strip_prefix("dom:") {
        let (m, doms) = rest
            .split_once(':')
            .ok_or_else(|| format!("dom needs `dom:MOD:R,…`, got {s:?}"))?;
        let key_mod = m.parse().map_err(|_| format!("bad modulus {m:?}"))?;
        let domains = doms
            .split(',')
            .map(|d| d.parse().map_err(|_| format!("bad residue {d:?}")))
            .collect::<Result<Vec<u32>, _>>()?;
        return Ok(NodeSel::Domain { key_mod, domains });
    }
    Err(format!("unknown selector {s:?}"))
}

fn parse_f64(s: &str) -> Result<f64, String> {
    s.parse().map_err(|_| format!("bad number {s:?}"))
}

fn parse_u64(s: &str) -> Result<u64, String> {
    s.parse().map_err(|_| format!("bad number {s:?}"))
}

fn parse_cond(s: &str) -> Result<Condition, String> {
    if s == "blackhole" {
        return Ok(Condition::Blackhole);
    }
    let (kind, args) = s.split_once(':').unwrap_or((s, ""));
    let parts: Vec<&str> = if args.is_empty() {
        Vec::new()
    } else {
        args.split(':').collect()
    };
    match (kind, parts.as_slice()) {
        ("loss", [p]) => Ok(Condition::Loss { p: parse_f64(p)? }),
        ("ge", [pe, px, lg, lb]) => Ok(Condition::GilbertElliott {
            p_enter_bad: parse_f64(pe)?,
            p_exit_bad: parse_f64(px)?,
            loss_good: parse_f64(lg)?,
            loss_bad: parse_f64(lb)?,
        }),
        ("jitter", [m]) => Ok(Condition::Jitter {
            max_extra_us: parse_u64(m)?,
        }),
        ("dup", [p, gap]) => Ok(Condition::Duplicate {
            p: parse_f64(p)?,
            gap_us: parse_u64(gap)?,
        }),
        _ => Err(format!("unknown condition {s:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exemplar() -> FaultPlan {
        FaultPlan::reliable(11)
            .with_partition(10_000_000, 25_000_000, 2, &[1])
            .with_rule(FaultRule {
                from_us: 0,
                until_us: u64::MAX,
                links: LinkSel::one_way(NodeSel::One(3), NodeSel::All),
                condition: Condition::Loss { p: 0.05 },
            })
            .with_rule(FaultRule {
                from_us: 5,
                until_us: 6,
                links: LinkSel::all(),
                condition: Condition::GilbertElliott {
                    p_enter_bad: 0.01,
                    p_exit_bad: 0.05,
                    loss_good: 0.0,
                    loss_bad: 1.0,
                },
            })
            .with_rule(FaultRule {
                from_us: 7,
                until_us: 8,
                links: LinkSel::between(NodeSel::One(1), NodeSel::One(2)),
                condition: Condition::Jitter { max_extra_us: 30 },
            })
            .with_rule(FaultRule {
                from_us: 9,
                until_us: 10,
                links: LinkSel::all(),
                condition: Condition::Duplicate {
                    p: 0.125,
                    gap_us: 50,
                },
            })
    }

    #[test]
    fn every_condition_and_selector_round_trips_exactly() {
        let plan = exemplar();
        let text = to_text(&plan);
        let back = from_text(&text).expect("parses");
        assert_eq!(back, plan);
        // Stability: re-serializing the parse is byte-identical.
        assert_eq!(to_text(&back), text);
    }

    #[test]
    fn comments_blank_lines_and_whitespace_are_tolerated() {
        let text = "# partition-heal demo\n\n  plan seed=7\n\
                    \trule from=1 until=max links=all>all cond=loss:0.5\n";
        let plan = from_text(text).expect("parses");
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.rules.len(), 1);
        assert_eq!(plan.rules[0].until_us, u64::MAX);
    }

    #[test]
    fn malformed_input_is_an_error_not_a_silent_skip() {
        for bad in [
            "",                                                                // no plan line
            "rule from=0 until=1 links=all>all cond=blackhole",                // rule before plan
            "plan seed=1\nplan seed=2",                                        // duplicate plan
            "plan seed=x",                                                     // bad seed
            "plan seed=1\nrule from=0 links=all>all cond=loss:1",              // missing until
            "plan seed=1\nrule from=0 until=1 links=all cond=blackhole",       // no `>`
            "plan seed=1\nrule from=0 until=1 links=all>all cond=loss",        // missing p
            "plan seed=1\nrule from=0 until=1 links=all>all cond=warp:9",      // unknown cond
            "plan seed=1\nrule from=0 until=1 links=dom:2>all cond=blackhole", // dom arity
            "plan seed=1\nbogus line",                                         // unknown decl
        ] {
            assert!(from_text(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn verdict_streams_survive_the_file_format() {
        use crate::model::{FaultModel, LinkConditioner};
        let plan = exemplar();
        let back = from_text(&to_text(&plan)).unwrap();
        let mut a = LinkConditioner::new(plan);
        let mut b = LinkConditioner::new(back);
        for k in 0..2_000 {
            assert_eq!(a.judge(k * 7, 1, 2), b.judge(k * 7, 1, 2));
            assert_eq!(a.judge(k * 7, 2, 1), b.judge(k * 7, 2, 1));
        }
        assert_eq!(a.counters(), b.counters());
    }
}
