//! Private SplitMix64 stream, one per directed link.
//!
//! Deliberately a (tiny) copy of `peerwindow_des::DetRng` rather than a
//! dependency on it: this crate must stay dependency-free so the audit
//! lint can confine fault-injection randomness to `faults`/`sim`/`bench`
//! without dragging the DES engine into the allowed set.

/// SplitMix64: tiny, fast, passes BigCrush for this use, and — the
/// property we actually need — each stream is a pure function of its
/// seed, so a link's draw sequence is independent of every other link.
#[derive(Clone, Debug)]
pub struct LinkRng(u64);

impl LinkRng {
    /// Stream for directed link `(src, dst)` under `plan_seed`. The two
    /// golden-ratio multipliers keep `(a, b)` and `(b, a)` streams
    /// uncorrelated even for symmetric plans.
    pub fn for_link(plan_seed: u64, src: u32, dst: u32) -> Self {
        let s = plan_seed
            ^ (src as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (dst as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        LinkRng(s)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` (53-bit mantissa).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, n)`; 0 when `n` is 0.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible_and_distinct() {
        let mut a = LinkRng::for_link(7, 1, 2);
        let mut b = LinkRng::for_link(7, 1, 2);
        let mut c = LinkRng::for_link(7, 2, 1);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = LinkRng::for_link(3, 0, 1);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
