//! The interpretive side: judging datagrams against a plan.

use crate::plan::{Condition, FaultPlan};
use crate::rng::LinkRng;
use std::collections::BTreeMap;

/// What the network does to one datagram. Judged once, at send time, by
/// the shard that owns the sender.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The datagram never arrives.
    Drop,
    /// The datagram arrives, `extra_delay_us` later than the link's base
    /// latency (0 on the reliable fast path).
    Deliver {
        /// Jitter added on top of the base latency, microseconds.
        extra_delay_us: u64,
    },
    /// The datagram arrives twice: the original after `extra_delay_us`
    /// of jitter, the copy after `dup_extra_delay_us` (always strictly
    /// larger).
    Duplicate {
        /// Jitter on the original, microseconds.
        extra_delay_us: u64,
        /// Total extra delay on the duplicate, microseconds.
        dup_extra_delay_us: u64,
    },
}

/// Running totals over every judged datagram.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Datagrams judged (== datagrams sent while a conditioner was
    /// installed).
    pub judged: u64,
    /// Datagrams dropped (loss, burst loss, or blackhole).
    pub dropped: u64,
    /// Datagrams duplicated.
    pub duplicated: u64,
    /// Datagrams delivered with nonzero jitter.
    pub jittered: u64,
}

impl FaultCounters {
    /// Accumulates `other` into `self` (per-shard counters merge).
    pub fn merge(&mut self, other: &FaultCounters) {
        self.judged += other.judged;
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
        self.jittered += other.jittered;
    }
}

/// The single hook both sim engines call. `Send` because the parallel
/// engine moves each shard (and its shard-local conditioner) onto a
/// worker thread.
pub trait FaultModel: Send {
    /// Judges one datagram from `src` to `dst` sent at `now_us`.
    fn judge(&mut self, now_us: u64, src: u32, dst: u32) -> Verdict;
    /// Totals so far.
    fn counters(&self) -> FaultCounters;
}

/// Per-link mutable state: the random stream and the Gilbert–Elliott
/// chain position (shared by every GE rule touching the link — one
/// physical link has one burst process).
#[derive(Clone, Debug)]
struct LinkState {
    rng: LinkRng,
    ge_bad: bool,
}

/// Interprets a [`FaultPlan`] packet by packet. Link state is created
/// lazily on first use, keyed by the *directed* link, in a `BTreeMap`
/// (deterministic, and the key set is identical across shard counts
/// because each link is only ever judged in its sender's shard).
#[derive(Clone, Debug)]
pub struct LinkConditioner {
    plan: FaultPlan,
    links: BTreeMap<(u32, u32), LinkState>,
    counters: FaultCounters,
}

impl LinkConditioner {
    /// A conditioner over `plan`, with fresh per-link state.
    pub fn new(plan: FaultPlan) -> Self {
        LinkConditioner {
            plan,
            links: BTreeMap::new(),
            counters: FaultCounters::default(),
        }
    }

    /// The plan being interpreted.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl FaultModel for LinkConditioner {
    // The fast path must inline into the engines' send loops (the
    // zero-fault overhead budget is ~1%; see
    // crates/bench/tests/faults_overhead.rs), so the ruleless return is
    // split out from the interpretive slow path.
    #[inline]
    fn judge(&mut self, now_us: u64, src: u32, dst: u32) -> Verdict {
        self.counters.judged += 1;
        // Fast path: no active rule touches this link right now. No RNG
        // draw, no link-state allocation.
        if !self
            .plan
            .rules
            .iter()
            .any(|r| r.active(now_us) && r.links.matches(src, dst))
        {
            return Verdict::Deliver { extra_delay_us: 0 };
        }
        self.judge_slow(now_us, src, dst)
    }

    #[inline]
    fn counters(&self) -> FaultCounters {
        self.counters
    }
}

impl LinkConditioner {
    /// At least one rule is active on this link: consult (and lazily
    /// create) link state, draw from the per-link stream, compose rule
    /// effects in declaration order.
    #[cold]
    fn judge_slow(&mut self, now_us: u64, src: u32, dst: u32) -> Verdict {
        let seed = self.plan.seed;
        let st = self.links.entry((src, dst)).or_insert_with(|| LinkState {
            rng: LinkRng::for_link(seed, src, dst),
            ge_bad: false,
        });
        let mut drop = false;
        let mut extra_us = 0u64;
        let mut dup_gap: Option<u64> = None;
        for rule in &self.plan.rules {
            if !rule.active(now_us) || !rule.links.matches(src, dst) {
                continue;
            }
            match rule.condition {
                Condition::Blackhole => drop = true,
                Condition::Loss { p } => {
                    if st.rng.next_f64() < p {
                        drop = true;
                    }
                }
                Condition::GilbertElliott {
                    p_enter_bad,
                    p_exit_bad,
                    loss_good,
                    loss_bad,
                } => {
                    let flip = if st.ge_bad { p_exit_bad } else { p_enter_bad };
                    if st.rng.next_f64() < flip {
                        st.ge_bad = !st.ge_bad;
                    }
                    let p = if st.ge_bad { loss_bad } else { loss_good };
                    if st.rng.next_f64() < p {
                        drop = true;
                    }
                }
                Condition::Jitter { max_extra_us } => {
                    extra_us += st.rng.below(max_extra_us.saturating_add(1));
                }
                Condition::Duplicate { p, gap_us } => {
                    if dup_gap.is_none() && st.rng.next_f64() < p {
                        dup_gap = Some(gap_us.max(1));
                    }
                }
            }
        }
        if drop {
            self.counters.dropped += 1;
            return Verdict::Drop;
        }
        if extra_us > 0 {
            self.counters.jittered += 1;
        }
        match dup_gap {
            Some(gap) => {
                self.counters.duplicated += 1;
                Verdict::Duplicate {
                    extra_delay_us: extra_us,
                    dup_extra_delay_us: extra_us + gap,
                }
            }
            None => Verdict::Deliver {
                extra_delay_us: extra_us,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FaultRule, LinkSel, NodeSel};
    use proptest::prelude::*;

    fn always(links: LinkSel, condition: Condition) -> FaultRule {
        FaultRule {
            from_us: 0,
            until_us: u64::MAX,
            links,
            condition,
        }
    }

    #[test]
    fn reliable_plan_delivers_everything_untouched() {
        let mut c = LinkConditioner::new(FaultPlan::reliable(9));
        for k in 0..1000 {
            assert_eq!(c.judge(k, 1, 2), Verdict::Deliver { extra_delay_us: 0 });
        }
        let cs = c.counters();
        assert_eq!(cs.judged, 1000);
        assert_eq!(cs.dropped + cs.duplicated + cs.jittered, 0);
        // Fast path never materialises link state.
        assert!(c.links.is_empty());
    }

    #[test]
    fn blackhole_drops_exactly_its_window_and_direction() {
        let plan = FaultPlan::reliable(1).with_rule(FaultRule {
            from_us: 100,
            until_us: 200,
            links: LinkSel::one_way(NodeSel::One(1), NodeSel::One(2)),
            condition: Condition::Blackhole,
        });
        let mut c = LinkConditioner::new(plan);
        assert_eq!(c.judge(99, 1, 2), Verdict::Deliver { extra_delay_us: 0 });
        assert_eq!(c.judge(100, 1, 2), Verdict::Drop);
        // Reverse direction unaffected: asymmetric link failure.
        assert_eq!(c.judge(150, 2, 1), Verdict::Deliver { extra_delay_us: 0 });
        assert_eq!(c.judge(200, 1, 2), Verdict::Deliver { extra_delay_us: 0 });
        assert_eq!(c.counters().dropped, 1);
    }

    #[test]
    fn same_plan_same_seed_is_bit_identical() {
        let plan = FaultPlan::uniform_loss(42, 0.3)
            .with_rule(always(
                LinkSel::all(),
                Condition::Jitter { max_extra_us: 500 },
            ))
            .with_rule(always(
                LinkSel::all(),
                Condition::Duplicate { p: 0.1, gap_us: 50 },
            ));
        let mut a = LinkConditioner::new(plan.clone());
        let mut b = LinkConditioner::new(plan.clone());
        // Interleave links differently on b: per-link streams must make
        // the per-link verdict sequences identical anyway.
        let mut va = Vec::new();
        for k in 0..500 {
            va.push(a.judge(k, 1, 2));
            a.judge(k, 3, 4);
        }
        let mut vb = Vec::new();
        for k in 0..500 {
            b.judge(k, 3, 4);
            b.judge(k, 5, 6); // extra traffic on other links
            vb.push(b.judge(k, 1, 2));
        }
        assert_eq!(va, vb);

        let mut c = LinkConditioner::new(FaultPlan {
            seed: 43,
            ..plan.clone()
        });
        let vc: Vec<Verdict> = (0..500).map(|k| c.judge(k, 1, 2)).collect();
        assert_ne!(va, vc, "different seed must give a different sequence");
    }

    #[test]
    fn jitter_adds_and_duplicate_trails_original() {
        let plan = FaultPlan::reliable(5)
            .with_rule(always(
                LinkSel::all(),
                Condition::Jitter { max_extra_us: 300 },
            ))
            .with_rule(always(
                LinkSel::all(),
                Condition::Duplicate { p: 1.0, gap_us: 70 },
            ));
        let mut c = LinkConditioner::new(plan);
        for k in 0..200 {
            match c.judge(k, 8, 9) {
                Verdict::Duplicate {
                    extra_delay_us,
                    dup_extra_delay_us,
                } => {
                    assert!(extra_delay_us <= 300);
                    assert_eq!(dup_extra_delay_us, extra_delay_us + 70);
                }
                v => panic!("expected a duplicate, got {v:?}"),
            }
        }
        assert_eq!(c.counters().duplicated, 200);
    }

    #[test]
    fn gilbert_elliott_actually_bursts() {
        // Strongly bursty chain: long Bad dwell times must yield runs of
        // consecutive drops far beyond what uniform loss at the same
        // average rate produces.
        let plan = FaultPlan::reliable(11).with_rule(always(
            LinkSel::all(),
            Condition::GilbertElliott {
                p_enter_bad: 0.01,
                p_exit_bad: 0.05,
                loss_good: 0.0,
                loss_bad: 1.0,
            },
        ));
        let mut c = LinkConditioner::new(plan);
        let mut longest_run = 0u32;
        let mut run = 0u32;
        for k in 0..20_000 {
            if c.judge(k, 1, 2) == Verdict::Drop {
                run += 1;
                longest_run = longest_run.max(run);
            } else {
                run = 0;
            }
        }
        // E[Bad dwell] = 1/p_exit = 20 packets; uniform loss at the same
        // ~17% average rate has P(run ≥ 10) ≈ 2e-8 per position.
        assert!(
            longest_run >= 10,
            "GE produced no burst (longest run {longest_run})"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Satellite: Gilbert–Elliott with equal good/bad-state loss is
        /// statistically indistinguishable from uniform loss — the chain
        /// state becomes irrelevant, so the empirical drop rate must
        /// match `p` within binomial noise, whatever the transition
        /// probabilities.
        #[test]
        fn ge_with_equal_state_loss_reduces_to_uniform(
            seed in any::<u64>(),
            p in (50u32..600).prop_map(|m| m as f64 / 1000.0),
            p_enter in (10u32..900).prop_map(|m| m as f64 / 1000.0),
            p_exit in (10u32..900).prop_map(|m| m as f64 / 1000.0),
        ) {
            const N: u64 = 30_000;
            let plan = FaultPlan::reliable(seed).with_rule(always(
                LinkSel::all(),
                Condition::GilbertElliott {
                    p_enter_bad: p_enter,
                    p_exit_bad: p_exit,
                    loss_good: p,
                    loss_bad: p,
                },
            ));
            let mut c = LinkConditioner::new(plan);
            for k in 0..N {
                c.judge(k, 1, 2);
            }
            let rate = c.counters().dropped as f64 / N as f64;
            // 6-sigma binomial envelope: 6·sqrt(p(1-p)/N) ≤ 0.018.
            let tol = 6.0 * (p * (1.0 - p) / N as f64).sqrt();
            prop_assert!(
                (rate - p).abs() < tol,
                "rate {rate:.4} vs p {p:.4} (tol {tol:.4})"
            );
        }

        /// Uniform loss drops at its nominal rate (the `set_loss` shim's
        /// statistical contract).
        #[test]
        fn uniform_loss_rate_matches_p(
            seed in any::<u64>(),
            p in (20u32..500).prop_map(|m| m as f64 / 1000.0),
        ) {
            const N: u64 = 30_000;
            let mut c = LinkConditioner::new(FaultPlan::uniform_loss(seed, p));
            for k in 0..N {
                c.judge(k, 1, 2);
            }
            let rate = c.counters().dropped as f64 / N as f64;
            let tol = 6.0 * (p * (1.0 - p) / N as f64).sqrt();
            prop_assert!((rate - p).abs() < tol);
        }
    }
}
