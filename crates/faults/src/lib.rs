//! # peerwindow-faults — deterministic network fault injection
//!
//! The simulators' original adversary was a single uniform i.i.d.
//! datagram-loss probability. That is the *friendliest* possible failure
//! model: every real deployment study of DHT-style membership (and the
//! stability analyses of P2P systems under non-persistent peers) points
//! at the regimes uniform loss cannot express — bursty correlated loss,
//! one-way link failures, network partitions that later heal, paths
//! whose latency jitters enough to reorder datagrams.
//!
//! This crate expresses those regimes as data. A [`FaultPlan`] is a
//! seeded, declarative schedule of [`FaultRule`]s; each rule activates a
//! [`Condition`] on a set of directed links ([`LinkSel`]) over a sim-time
//! window. A [`LinkConditioner`] interprets the plan packet by packet,
//! returning a [`Verdict`] per datagram, and both sim engines consult it
//! through the [`FaultModel`] trait at **send time**.
//!
//! ## Determinism contract
//!
//! Everything here is reproducible from `(FaultPlan, seed)` alone:
//!
//! * **No global RNG.** Each directed link `(src, dst)` owns an
//!   independent SplitMix64 stream seeded from `(plan.seed, src, dst)`.
//!   The k-th packet on a link always sees the same random draws, no
//!   matter what other links did in between.
//! * **Judged at send time.** The verdict for a packet is computed when
//!   the *sender* emits it, inside whichever shard owns the sender. A
//!   sender's outgoing packet sequence is part of the deterministic
//!   event order, which the parallel engine already guarantees is
//!   shard-count-invariant — so the same plan produces byte-identical
//!   fingerprints at 1 shard and at 8.
//! * **Rules compose in declaration order.** When several rules cover
//!   the same link at the same instant, loss conditions OR together,
//!   jitter adds, and the RNG draws happen in rule order.
//!
//! The crate is dependency-free (std only) so that `core` can stay free
//! of any fault-injection machinery: the protocol under test never links
//! against this crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod model;
mod plan;
mod rng;
pub mod text;

pub use model::{FaultCounters, FaultModel, LinkConditioner, Verdict};
pub use plan::{Condition, FaultPlan, FaultRule, LinkSel, NodeSel};
