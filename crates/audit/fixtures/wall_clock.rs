// Fixture: wall-clock and ambient-randomness reads in simulation code.
// Protocol and simulator crates must use simulated time and seeded
// streams; each of the three tokens below is a separate finding.
use std::time::{Instant, SystemTime};

fn measure() -> u128 {
    let t0 = Instant::now();
    t0.elapsed().as_micros()
}

fn stamp() -> SystemTime {
    SystemTime::now()
}

fn jitter() -> u64 {
    rand::thread_rng().gen()
}
