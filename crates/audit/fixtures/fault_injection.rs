// Fixture: fault-injection concepts leaking below the harness layer.
// Network misbehaviour is modelled once, in `peerwindow-faults`, and
// interpreted only by the sim harnesses / bench / apps; a protocol or
// engine crate importing it would smuggle RNG draws (and a second notion
// of the network) into code whose determinism contract forbids both.
use peerwindow_faults::FaultPlan;

fn sabotage(seed: u64) -> FaultPlan {
    FaultPlan::uniform_loss(seed, 0.5)
}
