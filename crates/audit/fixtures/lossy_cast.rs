// Fixture: identifier-algebra casts. The narrowing `as u32` silently
// truncates a 128-bit identifier; the widening and annotated sites are
// exempt.
fn truncating(id: u128) -> u32 {
    id as u32
}

fn widening(len: u8) -> u128 {
    u128::from(len) << 100
}

fn annotated(len: u8) -> u32 {
    // audit: cast-ok — u8 → u32 is widening, never lossy.
    len as u32
}
