// Fixture: exempted panic sites — an `audit: panic-ok` annotation with a
// reason, and anything below the `#[cfg(test)]` marker (test modules sit
// at the bottom of every file in this repository).
fn checked(index: usize, table: &[u64]) -> u64 {
    // audit: panic-ok — index was bounds-checked by the caller's loop.
    table.get(index).copied().unwrap()
}

fn inline_annotated(v: Option<u64>) -> u64 {
    v.unwrap() // audit: panic-ok — constructed Some(_) two lines up.
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_freely() {
        let v: Option<u64> = Some(7);
        assert_eq!(v.unwrap(), 7);
        let r: Result<u64, ()> = Ok(9);
        assert_eq!(r.expect("ok"), 9);
    }
}
