//! Fixture: unjustified atomic memory orderings — every variant fires.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

fn unjustified(flag: &AtomicBool, n: &AtomicU64) {
    flag.store(true, Ordering::Relaxed);
    let _ = flag.load(Ordering::Acquire);
    n.store(1, Ordering::Release);
    n.fetch_add(1, Ordering::AcqRel);
    let _ = n.load(Ordering::SeqCst);
}
