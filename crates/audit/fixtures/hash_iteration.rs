// Fixture: unannotated std hash collections in a protocol crate.
// Iteration order depends on each instance's RandomState, so two
// identically-seeded runs diverge the first time anyone iterates.
use std::collections::{HashMap, HashSet};

fn pick_first(live: &HashMap<u128, u32>) -> Option<u32> {
    live.values().next().copied()
}

fn union(a: &HashSet<u128>, b: &HashSet<u128>) -> Vec<u128> {
    a.union(b).copied().collect()
}
