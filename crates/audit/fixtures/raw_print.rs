// Fixture: the raw-print rule must fire on each macro form.
fn report(count: usize) {
    println!("processed {count}");
    eprintln!("warning: {count} drops");
    print!("partial");
    eprint!("partial err");
}
