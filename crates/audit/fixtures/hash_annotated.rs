// Fixture: hash collections with the `audit: ordered` annotation —
// the holder proves the map is only used for key lookups.
use std::collections::HashMap; // audit: ordered — key lookups only, never iterated

struct Index {
    // audit: ordered — addressed by key, never iterated
    slots: HashMap<u128, u32>,
}

fn lookup(idx: &Index, id: u128) -> Option<u32> {
    idx.slots.get(&id).copied()
}
