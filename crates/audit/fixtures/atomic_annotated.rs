//! Fixture: every ordering choice carries its pairing justification —
//! nothing fires.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

fn justified(flag: &AtomicBool, n: &AtomicU64) {
    // audit: ordering — counter only read under the barrier's Acquire
    flag.store(true, Ordering::Relaxed);
    let _ = flag.load(Ordering::Acquire); // audit: ordering — pairs with the Release store in `publish`
    // A doc mention of Ordering::SeqCst in prose never fires either.
    n.fetch_add(1, Ordering::AcqRel); // audit: ordering — read-modify-write links both barrier sides
}

#[cfg(test)]
mod tests {
    // Below the test marker nothing is scanned.
    fn tail(n: &std::sync::atomic::AtomicU64) {
        n.load(std::sync::atomic::Ordering::SeqCst);
    }
}
