// Fixture: annotated fault-layer mention, plus test-tail usage — neither
// may fire.

fn describe() -> &'static str {
    // audit: fault-ok — doc example naming the harness-side plan type
    "see FaultPlan in peerwindow-faults"
}

#[cfg(test)]
mod tests {
    use peerwindow_faults::FaultPlan;

    #[test]
    fn tests_may_use_fault_plans() {
        let _ = FaultPlan::reliable(1);
    }
}
