// Fixture: annotated sites and test-tail prints are exempt.
fn banner() {
    // audit: print-ok — one-shot startup banner requested by ops
    println!("starting");
    eprintln!("ready"); // audit: print-ok — paired with the banner above
}

#[cfg(test)]
mod tests {
    #[test]
    fn prints_are_fine_in_tests() {
        println!("debugging output");
    }
}
