// Fixture: panics on the message path. A malformed or late message must
// map to a typed ProtocolError, never crash the machine.
fn on_reply(pending: Option<u64>, level: Option<u8>) -> (u64, u8) {
    let token = pending.unwrap();
    let level = level.expect("level reply implies a known top");
    (token, level)
}
