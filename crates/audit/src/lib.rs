//! # peerwindow-audit
//!
//! A determinism/robustness linter for the PeerWindow workspace. The
//! protocol's headline guarantee — bit-identical simulation results for
//! identical seeds, across shard counts — is easy to break silently:
//! one `HashMap` iteration, one `Instant::now()`, one `as` truncation in
//! the identifier algebra, and runs diverge in ways no unit test pins
//! down. This crate encodes those hazards as mechanical rules:
//!
//! * **hash-collections** — `HashMap`/`HashSet` in the protocol crates
//!   (`core`, `des`, `sim`): std's `RandomState` gives every instance a
//!   different iteration order, so any iteration (`iter`, `values`,
//!   `keys`, `retain`, …) is a nondeterminism hazard. Sites that only
//!   ever do key lookups annotate `// audit: ordered <why>`; everything
//!   else uses `BTreeMap`/`BTreeSet`.
//! * **wall-clock** — `Instant::now`, `SystemTime::now`, `thread_rng`
//!   outside the `transport` and `bench` crates and the metrics
//!   runtime's clock module (`crates/metrics/src/runtime/clock.rs`, the
//!   one blessed `Instant` site feeding the engine profiler): simulated
//!   time and seeded [`DetRng`]-style streams only.
//! * **panic-sites** — `.unwrap()` / `.expect(` in the core
//!   message/event-handling modules: malformed or late input must map to
//!   typed `ProtocolError`s, never a crash. Provably unreachable sites
//!   annotate `// audit: panic-ok <why>`.
//! * **raw-print** — `println!`/`eprintln!` (and their non-newline
//!   forms) in library sources outside the `apps` and `bench` crates and
//!   outside `src/bin/` entry points: protocol code reports through the
//!   trace layer's structured records and counters, never the terminal.
//!   Deliberate sites annotate `// audit: print-ok <why>`.
//! * **lossy-casts** — narrowing `as` casts in the NodeId/eigenstring
//!   algebra (`id.rs`, `level.rs`, `parts.rs`): 128-bit identifier math
//!   silently truncated to 32 bits is the classic split-brain bug.
//!   Widening or otherwise-safe casts annotate `// audit: cast-ok <why>`.
//! * **fault-injection** — fault-layer types (`FaultPlan`,
//!   `LinkConditioner`, `FaultModel`, the `peerwindow_faults` crate)
//!   outside the harness layers (`faults` itself, `sim`, `bench`,
//!   `apps`): the protocol and engine crates must stay free of
//!   network-misbehaviour concepts — and of the RNG draws they imply.
//!   Deliberate sites annotate `// audit: fault-ok <why>`.
//! * **atomic-ordering** — every explicit atomic memory ordering
//!   (`Ordering::Relaxed` … `Ordering::SeqCst`) in the parallel engine
//!   (`crates/des`) must carry an `// audit: ordering — <why>`
//!   justification naming the synchronization it relies on. Orderings
//!   are the one place where a too-weak choice produces a data race the
//!   deterministic test suite cannot reproduce, and a too-strong choice
//!   silently costs the hot path; both failure modes look identical in
//!   review without the written pairing argument.
//! * **forbid-unsafe** — `#![forbid(unsafe_code)]` must be present in
//!   the `core`, `des`, `topology`, `sim`, and `workload` crate roots.
//! * **allowlist-drift** — every `audit.toml` allow entry must still
//!   exempt at least one finding the empty-config scan produces. A
//!   stale entry reads as an active suppression and would silently
//!   re-exempt the path if the hazard ever reappeared there.
//!
//! The scanner is line/token based by design (no external parser — the
//! build environment is offline). Two structural conventions of this
//! repository make that sound: test modules (`#[cfg(test)]`) always sit
//! at the bottom of a file, so scanning stops there, and comments are
//! `//`-style. Per-rule allowlists live in `audit.toml` at the workspace
//! root; in-file annotations handle single sites.
//!
//! [`DetRng`]: https://docs.rs/rand/latest/rand/trait.SeedableRng.html

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

// ----------------------------------------------------------------------
// Findings
// ----------------------------------------------------------------------

/// One rule violation at one source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule name (e.g. `hash-collections`).
    pub rule: &'static str,
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-based line number (0 for whole-file findings).
    pub line: usize,
    /// The offending source line, trimmed (or a description for
    /// whole-file findings).
    pub text: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.text
        )
    }
}

// ----------------------------------------------------------------------
// Rules
// ----------------------------------------------------------------------

/// The modules of `peerwindow-core` that sit on the message/event path —
/// the scope of the `panic-sites` rule.
const PANIC_SCOPED: &[&str] = &[
    "crates/core/src/node.rs",
    "crates/core/src/messages.rs",
    "crates/core/src/event.rs",
    "crates/core/src/multicast.rs",
    "crates/core/src/peer_list.rs",
    "crates/core/src/top_list.rs",
];

/// Identifier-algebra modules — the scope of the `lossy-casts` rule.
const CAST_SCOPED: &[&str] = &[
    "crates/core/src/id.rs",
    "crates/core/src/level.rs",
    "crates/core/src/parts.rs",
];

/// Crates whose `src/lib.rs` must carry `#![forbid(unsafe_code)]`.
const FORBID_UNSAFE_CRATES: &[&str] = &["core", "des", "topology", "sim", "workload"];

struct TokenRule {
    name: &'static str,
    /// Tokens whose presence (outside comments/tests) is a finding.
    tokens: &'static [&'static str],
    /// Annotation that exempts a single site (on the line or the line
    /// directly above).
    annotation: &'static str,
    /// Whether the rule applies to this workspace-relative path.
    applies: fn(&str) -> bool,
}

fn in_protocol_crates(path: &str) -> bool {
    path.starts_with("crates/core/src/")
        || path.starts_with("crates/des/src/")
        || path.starts_with("crates/sim/src/")
}

fn outside_wall_clock_crates(path: &str) -> bool {
    !path.starts_with("crates/transport/")
        && !path.starts_with("crates/bench/")
        && !path.starts_with("crates/metrics/src/runtime/clock.rs")
}

fn in_panic_scope(path: &str) -> bool {
    PANIC_SCOPED.contains(&path)
}

/// Library sources of every crate except `apps` and `bench` (whose whole
/// purpose is terminal output), and never binaries (`src/bin/…`).
fn in_print_scope(path: &str) -> bool {
    path.starts_with("crates/")
        && !path.starts_with("crates/apps/")
        && !path.starts_with("crates/bench/")
        && !path.contains("/bin/")
        && path.contains("/src/")
}

fn in_cast_scope(path: &str) -> bool {
    CAST_SCOPED.contains(&path)
}

/// The parallel engine — the only place the workspace uses atomics, and
/// the scope of the `atomic-ordering` rule.
fn in_atomic_scope(path: &str) -> bool {
    path.starts_with("crates/des/src/")
}

/// Library sources that must stay free of fault-injection concepts: the
/// protocol, the engines, and every support crate below the harness
/// layer. The `faults` crate itself, the `sim` harnesses that interpret
/// plans, `bench` (overhead measurement) and `apps` (the `pwchaos` and
/// `pwcluster` drivers) are the only legitimate homes — plus the one
/// transport file `audit.toml` allowlists, `src/shim.rs`, the userspace
/// netem shim that applies plans to real sockets.
fn in_fault_free_scope(path: &str) -> bool {
    [
        "core",
        "des",
        "topology",
        "workload",
        "transport",
        "trace",
        "metrics",
    ]
    .iter()
    .any(|c| path.starts_with(&format!("crates/{c}/src/")))
}

const RULES: &[TokenRule] = &[
    TokenRule {
        name: "hash-collections",
        tokens: &["HashMap", "HashSet"],
        annotation: "audit: ordered",
        applies: in_protocol_crates,
    },
    TokenRule {
        name: "wall-clock",
        tokens: &["Instant::now", "SystemTime::now", "thread_rng"],
        annotation: "audit: wall-clock-ok",
        applies: outside_wall_clock_crates,
    },
    TokenRule {
        name: "panic-sites",
        tokens: &[".unwrap()", ".expect("],
        annotation: "audit: panic-ok",
        applies: in_panic_scope,
    },
    TokenRule {
        name: "raw-print",
        tokens: &["println!", "eprintln!", "print!(", "eprint!("],
        annotation: "audit: print-ok",
        applies: in_print_scope,
    },
    TokenRule {
        name: "fault-injection",
        tokens: &[
            "peerwindow_faults",
            "FaultPlan",
            "LinkConditioner",
            "FaultModel",
        ],
        annotation: "audit: fault-ok",
        applies: in_fault_free_scope,
    },
    TokenRule {
        name: "atomic-ordering",
        tokens: &[
            "Ordering::Relaxed",
            "Ordering::Acquire",
            "Ordering::Release",
            "Ordering::AcqRel",
            "Ordering::SeqCst",
        ],
        annotation: "audit: ordering",
        applies: in_atomic_scope,
    },
    TokenRule {
        name: "lossy-casts",
        tokens: &[
            " as u8", " as u16", " as u32", " as i8", " as i16", " as i32",
        ],
        annotation: "audit: cast-ok",
        applies: in_cast_scope,
    },
];

// ----------------------------------------------------------------------
// Configuration (audit.toml)
// ----------------------------------------------------------------------

/// Per-rule allowlists, parsed from `audit.toml` at the workspace root.
///
/// The accepted grammar is a deliberately small TOML subset (the build
/// is offline, so no TOML crate):
///
/// ```toml
/// [rules.hash-collections]
/// allow = ["crates/sim/src/generated.rs"]
/// ```
///
/// An allow entry exempts every finding whose path starts with it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AuditConfig {
    allow: BTreeMap<String, Vec<String>>,
}

impl AuditConfig {
    /// Parses the `audit.toml` subset. Unknown sections or keys are
    /// errors — a typoed rule name silently allowing nothing would make
    /// the allowlist look effective when it is not.
    pub fn parse(text: &str) -> Result<AuditConfig, String> {
        let mut cfg = AuditConfig::default();
        let mut current: Option<String> = None;
        for (i, raw) in text.lines().enumerate() {
            let line = strip_toml_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(section) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                let rule = section
                    .strip_prefix("rules.")
                    .ok_or_else(|| format!("line {}: unsupported section [{section}]", i + 1))?;
                if !RULES.iter().any(|r| r.name == rule) && rule != "forbid-unsafe" {
                    return Err(format!("line {}: unknown rule '{rule}'", i + 1));
                }
                cfg.allow.entry(rule.to_string()).or_default();
                current = Some(rule.to_string());
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {}: expected 'key = value'", i + 1));
            };
            if key.trim() != "allow" {
                return Err(format!("line {}: unknown key '{}'", i + 1, key.trim()));
            }
            let Some(rule) = current.clone() else {
                return Err(format!(
                    "line {}: 'allow' outside a [rules.*] section",
                    i + 1
                ));
            };
            let value = value.trim();
            if !(value.starts_with('[') && value.ends_with(']')) {
                return Err(format!("line {}: 'allow' must be a [\"…\"] array", i + 1));
            }
            let entries = cfg.allow.entry(rule).or_default();
            for (j, chunk) in value.split('"').enumerate() {
                // Odd split indices are the quoted strings.
                if j % 2 == 1 {
                    entries.push(chunk.to_string());
                }
            }
        }
        Ok(cfg)
    }

    /// Loads `audit.toml` from `root`; a missing file is an empty config.
    pub fn load(root: &Path) -> Result<AuditConfig, String> {
        match std::fs::read_to_string(root.join("audit.toml")) {
            Ok(text) => Self::parse(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(AuditConfig::default()),
            Err(e) => Err(format!("audit.toml: {e}")),
        }
    }

    /// Whether `path` is allowlisted for `rule`.
    pub fn allowed(&self, rule: &str, path: &str) -> bool {
        self.allow
            .get(rule)
            .is_some_and(|entries| entries.iter().any(|p| path.starts_with(p.as_str())))
    }

    /// Every `(rule, allow-entry)` pair in the config, in rule order —
    /// the drift check walks these.
    pub fn allow_entries(&self) -> impl Iterator<Item = (&str, &str)> {
        self.allow
            .iter()
            .flat_map(|(rule, entries)| entries.iter().map(move |e| (rule.as_str(), e.as_str())))
    }
}

/// Strips a `#` comment that is not inside a quoted string.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (idx, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..idx],
            _ => {}
        }
    }
    line
}

// ----------------------------------------------------------------------
// Scanner
// ----------------------------------------------------------------------

/// Scans one file's source for token-rule findings. `rel_path` is the
/// workspace-relative path with forward slashes (rule scoping keys off
/// it, so tests can lint fixture content under any logical path).
pub fn scan_source(rel_path: &str, source: &str, cfg: &AuditConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    let lines: Vec<&str> = source.lines().collect();
    for rule in RULES {
        if !(rule.applies)(rel_path) || cfg.allowed(rule.name, rel_path) {
            continue;
        }
        for (i, &line) in lines.iter().enumerate() {
            let trimmed = line.trim_start();
            // Test modules sit at the bottom of every file in this
            // repository; nothing below the marker is protocol code.
            if trimmed.starts_with("#[cfg(test)]") {
                break;
            }
            if trimmed.starts_with("//") {
                continue;
            }
            // Only the code portion can violate; the comment portion may
            // carry the annotation.
            let code = match line.find("//") {
                Some(pos) => &line[..pos],
                None => line,
            };
            if !rule.tokens.iter().any(|t| code.contains(t)) {
                continue;
            }
            if annotated(&lines, i, rule.annotation) {
                continue;
            }
            findings.push(Finding {
                rule: rule.name,
                path: rel_path.to_string(),
                line: i + 1,
                text: line.trim().to_string(),
            });
        }
    }
    findings
}

/// An annotation exempts a site when it appears in the line's own
/// comment or anywhere in the contiguous `//` comment block directly
/// above — justifications longer than one line (the norm for
/// `audit: ordering` pairing arguments) carry the tag on whichever
/// line reads best.
fn annotated(lines: &[&str], i: usize, tag: &str) -> bool {
    if lines[i].contains(tag) {
        return true;
    }
    let mut j = i;
    while j > 0 && lines[j - 1].trim_start().starts_with("//") {
        j -= 1;
        if lines[j].contains(tag) {
            return true;
        }
    }
    false
}

/// Checks the `forbid-unsafe` rule via an abstract reader so tests can
/// supply in-memory crates; `read` maps a workspace-relative path to
/// file contents (None = unreadable/missing).
pub fn forbid_unsafe_findings(
    cfg: &AuditConfig,
    read: impl Fn(&str) -> Option<String>,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for krate in FORBID_UNSAFE_CRATES {
        let path = format!("crates/{krate}/src/lib.rs");
        if cfg.allowed("forbid-unsafe", &path) {
            continue;
        }
        let ok = read(&path)
            .map(|src| src.contains("#![forbid(unsafe_code)]"))
            .unwrap_or(false);
        if !ok {
            findings.push(Finding {
                rule: "forbid-unsafe",
                path,
                line: 0,
                text: "missing #![forbid(unsafe_code)]".to_string(),
            });
        }
    }
    findings
}

// ----------------------------------------------------------------------
// Workspace walk
// ----------------------------------------------------------------------

/// Directories never scanned: build output, vendored deps, VCS metadata,
/// this crate's own rule fixtures, and the audit tool itself (its rule
/// tables contain every forbidden token by necessity).
fn skip_dir(name: &str) -> bool {
    matches!(name, "target" | "vendor" | ".git" | "fixtures" | "audit")
}

fn collect_rs_files(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !skip_dir(&name) {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints the whole workspace rooted at `root`: every `.rs` file outside
/// the skip list, plus the `forbid-unsafe` crate-root check. Findings
/// come back sorted by path and line.
pub fn lint_workspace(root: &Path, cfg: &AuditConfig) -> Result<Vec<Finding>, String> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .map_err(|_| format!("{} escapes {}", path.display(), root.display()))?
            .to_string_lossy()
            .replace('\\', "/");
        let source =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        findings.extend(scan_source(&rel, &source, cfg));
    }
    findings.extend(forbid_unsafe_findings(cfg, |rel| {
        std::fs::read_to_string(root.join(rel)).ok()
    }));
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(findings)
}

/// The allowlist-drift check: every `audit.toml` allow entry must still
/// prefix-match at least one finding of its rule in `baseline` — the
/// findings an *empty-config* scan produces. An entry matching nothing
/// is dead: it documents an exemption that no longer exists, and it
/// would silently re-activate if the hazard ever reappeared under that
/// path. Dead entries are reported as `allowlist-drift` findings.
pub fn allowlist_drift_findings(cfg: &AuditConfig, baseline: &[Finding]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (rule, entry) in cfg.allow_entries() {
        let exempts_something = baseline
            .iter()
            .any(|f| f.rule == rule && f.path.starts_with(entry));
        if !exempts_something {
            findings.push(Finding {
                rule: "allowlist-drift",
                path: entry.to_string(),
                line: 0,
                text: format!(
                    "allow entry for rule '{rule}' no longer matches any file or finding — \
                     remove it from audit.toml"
                ),
            });
        }
    }
    findings
}

/// The full audit: one empty-config scan of the workspace provides both
/// the real findings (baseline minus what `cfg` allowlists) and the
/// drift evidence (an allow entry exempting nothing in the baseline is
/// itself a finding). Filtering after the scan is equivalent to the
/// scan-time skip in [`lint_workspace`] — the allowlist only ever
/// removes whole files from a rule's scope.
pub fn lint_workspace_with_drift(root: &Path, cfg: &AuditConfig) -> Result<Vec<Finding>, String> {
    let baseline = lint_workspace(root, &AuditConfig::default())?;
    let mut findings: Vec<Finding> = baseline
        .iter()
        .filter(|f| !cfg.allowed(f.rule, &f.path))
        .cloned()
        .collect();
    findings.extend(allowlist_drift_findings(cfg, &baseline));
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(findings)
}

/// The workspace root when running under cargo (two levels above this
/// crate's manifest).
pub fn default_root() -> std::path::PathBuf {
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => {
            let dir = std::path::PathBuf::from(dir);
            dir.parent()
                .and_then(Path::parent)
                .map(Path::to_path_buf)
                .unwrap_or(dir)
        }
        None => std::path::PathBuf::from("."),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_cfg() -> AuditConfig {
        AuditConfig::default()
    }

    // ------------------------------------------------------------------
    // Each rule provably fires on its fixture.
    // ------------------------------------------------------------------

    #[test]
    fn hash_collections_fires_on_fixture() {
        let src = include_str!("../fixtures/hash_iteration.rs");
        let f = scan_source("crates/sim/src/bad.rs", src, &no_cfg());
        assert!(
            f.iter().any(|f| f.rule == "hash-collections"),
            "expected a hash-collections finding, got {f:?}"
        );
    }

    #[test]
    fn hash_collections_scoped_to_protocol_crates() {
        let src = include_str!("../fixtures/hash_iteration.rs");
        assert!(scan_source("crates/metrics/src/ok.rs", src, &no_cfg()).is_empty());
    }

    #[test]
    fn ordered_annotation_exempts_hash_use() {
        let src = include_str!("../fixtures/hash_annotated.rs");
        let f = scan_source("crates/sim/src/annotated.rs", src, &no_cfg());
        assert!(f.is_empty(), "annotated sites must not fire: {f:?}");
    }

    #[test]
    fn wall_clock_fires_on_fixture() {
        let src = include_str!("../fixtures/wall_clock.rs");
        let f = scan_source("crates/des/src/bad_time.rs", src, &no_cfg());
        assert_eq!(
            f.iter().filter(|f| f.rule == "wall-clock").count(),
            3,
            "Instant::now, SystemTime::now and thread_rng must all fire: {f:?}"
        );
    }

    #[test]
    fn wall_clock_allowed_in_transport_and_bench() {
        let src = include_str!("../fixtures/wall_clock.rs");
        assert!(scan_source("crates/transport/src/runtime.rs", src, &no_cfg()).is_empty());
        assert!(scan_source("crates/bench/src/bin/perf.rs", src, &no_cfg()).is_empty());
    }

    #[test]
    fn wall_clock_allowed_only_in_the_metrics_clock_module() {
        // PR 8 confines the simulation-side wall clock to one file: the
        // metrics runtime's `clock.rs`. The rest of the metrics crate —
        // and the engines that *consume* the sink — stay under the rule.
        let src = include_str!("../fixtures/wall_clock.rs");
        assert!(
            scan_source("crates/metrics/src/runtime/clock.rs", src, &no_cfg()).is_empty(),
            "the clock module is the blessed Instant site"
        );
        for path in [
            "crates/metrics/src/runtime/mod.rs",
            "crates/metrics/src/runtime/report.rs",
            "crates/metrics/src/histogram.rs",
            "crates/des/src/parallel.rs",
            "crates/core/src/node.rs",
        ] {
            let f = scan_source(path, src, &no_cfg());
            assert_eq!(
                f.iter().filter(|f| f.rule == "wall-clock").count(),
                3,
                "stray wall-clock reads in {path} must still fire: {f:?}"
            );
        }
    }

    #[test]
    fn panic_sites_fire_on_fixture() {
        let src = include_str!("../fixtures/panic_site.rs");
        let f = scan_source("crates/core/src/node.rs", src, &no_cfg());
        assert_eq!(
            f.iter().filter(|f| f.rule == "panic-sites").count(),
            2,
            "unwrap and expect must both fire: {f:?}"
        );
    }

    #[test]
    fn panic_ok_annotation_and_test_tail_are_exempt() {
        let src = include_str!("../fixtures/panic_annotated.rs");
        let f = scan_source("crates/core/src/node.rs", src, &no_cfg());
        assert!(
            f.is_empty(),
            "annotated/test-tail sites must not fire: {f:?}"
        );
    }

    #[test]
    fn raw_print_fires_on_fixture() {
        let src = include_str!("../fixtures/raw_print.rs");
        let f = scan_source("crates/core/src/node.rs", src, &no_cfg());
        assert_eq!(
            f.iter().filter(|f| f.rule == "raw-print").count(),
            4,
            "all four print macro forms must fire: {f:?}"
        );
    }

    #[test]
    fn raw_print_scoped_to_library_sources() {
        let src = include_str!("../fixtures/raw_print.rs");
        // Binaries and the terminal-output crates are out of scope.
        assert!(scan_source("crates/transport/src/bin/pwnode.rs", src, &no_cfg()).is_empty());
        assert!(scan_source("crates/apps/src/bin/pwtrace.rs", src, &no_cfg()).is_empty());
        assert!(scan_source("crates/bench/src/lib.rs", src, &no_cfg()).is_empty());
        // Library sources of protocol crates are in scope.
        assert!(!scan_source("crates/transport/src/runtime.rs", src, &no_cfg()).is_empty());
        assert!(!scan_source("crates/metrics/src/table.rs", src, &no_cfg()).is_empty());
    }

    #[test]
    fn print_ok_annotation_and_test_tail_are_exempt() {
        let src = include_str!("../fixtures/print_annotated.rs");
        let f = scan_source("crates/core/src/node.rs", src, &no_cfg());
        assert!(
            f.is_empty(),
            "annotated/test-tail prints must not fire: {f:?}"
        );
    }

    #[test]
    fn lossy_casts_fire_on_fixture() {
        let src = include_str!("../fixtures/lossy_cast.rs");
        let f = scan_source("crates/core/src/id.rs", src, &no_cfg());
        assert!(
            f.iter().any(|f| f.rule == "lossy-casts"),
            "expected a lossy-casts finding, got {f:?}"
        );
        // Widening to u128 and annotated sites are fine.
        assert_eq!(f.iter().filter(|f| f.rule == "lossy-casts").count(), 1);
    }

    #[test]
    fn fault_injection_fires_below_the_harness_layer() {
        let src = include_str!("../fixtures/fault_injection.rs");
        for path in [
            "crates/core/src/node.rs",
            "crates/des/src/engine.rs",
            "crates/trace/src/record.rs",
        ] {
            let f = scan_source(path, src, &no_cfg());
            assert!(
                f.iter().any(|f| f.rule == "fault-injection"),
                "expected a fault-injection finding at {path}, got {f:?}"
            );
        }
    }

    #[test]
    fn fault_injection_allowed_in_harness_layers() {
        let src = include_str!("../fixtures/fault_injection.rs");
        for path in [
            "crates/faults/src/model.rs",
            "crates/sim/src/full.rs",
            "crates/bench/src/bin/perfbaseline.rs",
            "crates/apps/src/bin/pwchaos.rs",
        ] {
            assert!(
                scan_source(path, src, &no_cfg()).is_empty(),
                "harness layer {path} must be exempt"
            );
        }
    }

    #[test]
    fn fault_ok_annotation_and_test_tail_are_exempt() {
        let src = include_str!("../fixtures/fault_annotated.rs");
        let f = scan_source("crates/core/src/node.rs", src, &no_cfg());
        assert!(
            f.is_empty(),
            "annotated/test-tail sites must not fire: {f:?}"
        );
    }

    #[test]
    fn atomic_ordering_fires_on_every_variant() {
        let src = include_str!("../fixtures/atomic_ordering.rs");
        let f = scan_source("crates/des/src/parallel.rs", src, &no_cfg());
        assert_eq!(
            f.iter().filter(|f| f.rule == "atomic-ordering").count(),
            5,
            "Relaxed, Acquire, Release, AcqRel and SeqCst must all fire: {f:?}"
        );
    }

    #[test]
    fn atomic_ordering_scoped_to_the_parallel_engine() {
        let src = include_str!("../fixtures/atomic_ordering.rs");
        assert!(scan_source("crates/core/src/node.rs", src, &no_cfg()).is_empty());
        assert!(scan_source("crates/sim/src/full.rs", src, &no_cfg()).is_empty());
    }

    #[test]
    fn ordering_annotation_and_test_tail_are_exempt() {
        let src = include_str!("../fixtures/atomic_annotated.rs");
        let f = scan_source("crates/des/src/parallel.rs", src, &no_cfg());
        assert!(
            f.is_empty(),
            "annotated/test-tail sites must not fire: {f:?}"
        );
    }

    #[test]
    fn ordering_and_ordered_annotations_do_not_cross_exempt() {
        // `audit: ordered` (hash-collections) must not satisfy the
        // atomic rule, nor the reverse — the tags are distinct words.
        let src = "// audit: ordered — lookups only\n\
                   flag.store(true, Ordering::Relaxed);\n";
        let f = scan_source("crates/des/src/parallel.rs", src, &no_cfg());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "atomic-ordering");
    }

    #[test]
    fn forbid_unsafe_fires_when_attribute_missing() {
        let f = forbid_unsafe_findings(&no_cfg(), |path| {
            if path == "crates/des/src/lib.rs" {
                Some("#![warn(missing_docs)]\n".to_string()) // attr absent
            } else {
                Some("#![forbid(unsafe_code)]\n".to_string())
            }
        });
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "forbid-unsafe");
        assert_eq!(f[0].path, "crates/des/src/lib.rs");
    }

    // ------------------------------------------------------------------
    // Scanner mechanics
    // ------------------------------------------------------------------

    #[test]
    fn comment_lines_and_doc_comments_never_fire() {
        let src = "/// HashMap is nondeterministic, so we use BTreeMap.\n\
                   // legacy: had a HashMap here\n";
        assert!(scan_source("crates/core/src/node.rs", src, &no_cfg()).is_empty());
    }

    #[test]
    fn annotation_on_previous_line_counts() {
        let src = "// audit: ordered — lookups only\n\
                   use std::collections::HashMap;\n";
        assert!(scan_source("crates/sim/src/x.rs", src, &no_cfg()).is_empty());
    }

    #[test]
    fn annotation_anywhere_in_the_comment_block_above_counts() {
        let src = "// audit: ordering — Release pairs with the barrier's\n\
                   // Acquire load in `wait`; see the pairing argument there.\n\
                   flag.store(true, Ordering::Release);\n";
        assert!(scan_source("crates/des/src/parallel.rs", src, &no_cfg()).is_empty());
        // A blank line breaks the block: the tag no longer attaches.
        let src = "// audit: ordering — stale justification\n\
                   \n\
                   flag.store(true, Ordering::Release);\n";
        assert_eq!(
            scan_source("crates/des/src/parallel.rs", src, &no_cfg()).len(),
            1
        );
    }

    #[test]
    fn finding_display_is_greppable() {
        let f = Finding {
            rule: "wall-clock",
            path: "crates/sim/src/x.rs".into(),
            line: 7,
            text: "let t = Instant::now();".into(),
        };
        assert_eq!(
            f.to_string(),
            "crates/sim/src/x.rs:7: [wall-clock] let t = Instant::now();"
        );
    }

    // ------------------------------------------------------------------
    // audit.toml subset parser
    // ------------------------------------------------------------------

    #[test]
    fn parses_allowlists() {
        let cfg = AuditConfig::parse(
            "# comment\n\
             [rules.hash-collections]\n\
             allow = [\"crates/sim/src/gen.rs\", \"crates/des/src/tmp\"]\n\
             [rules.wall-clock]\n\
             allow = []\n",
        )
        .unwrap();
        assert!(cfg.allowed("hash-collections", "crates/sim/src/gen.rs"));
        assert!(cfg.allowed("hash-collections", "crates/des/src/tmp/x.rs"));
        assert!(!cfg.allowed("hash-collections", "crates/core/src/node.rs"));
        assert!(!cfg.allowed("wall-clock", "crates/sim/src/gen.rs"));
    }

    #[test]
    fn rejects_unknown_rules_and_keys() {
        assert!(AuditConfig::parse("[rules.no-such-rule]\n").is_err());
        assert!(AuditConfig::parse("[other.section]\n").is_err());
        assert!(AuditConfig::parse("[rules.wall-clock]\ndeny = []\n").is_err());
        assert!(AuditConfig::parse("allow = []\n").is_err());
    }

    #[test]
    fn allowlisted_file_is_exempt() {
        let cfg =
            AuditConfig::parse("[rules.wall-clock]\nallow = [\"crates/sim/src/t.rs\"]\n").unwrap();
        let src = "let t = Instant::now();\n";
        assert!(scan_source("crates/sim/src/t.rs", src, &cfg).is_empty());
        assert!(!scan_source("crates/sim/src/u.rs", src, &cfg).is_empty());
    }

    // ------------------------------------------------------------------
    // Allowlist drift
    // ------------------------------------------------------------------

    fn wall_clock_finding(path: &str) -> Finding {
        Finding {
            rule: "wall-clock",
            path: path.into(),
            line: 3,
            text: "let t = Instant::now();".into(),
        }
    }

    #[test]
    fn stale_allow_entry_is_drift() {
        let cfg = AuditConfig::parse("[rules.wall-clock]\nallow = [\"crates/sim/src/gone.rs\"]\n")
            .unwrap();
        let baseline = vec![wall_clock_finding("crates/sim/src/t.rs")];
        let f = allowlist_drift_findings(&cfg, &baseline);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "allowlist-drift");
        assert_eq!(f[0].path, "crates/sim/src/gone.rs");
    }

    #[test]
    fn live_allow_entry_is_not_drift() {
        // Prefix semantics: the entry exempts a directory that still
        // contains a finding of its rule.
        let cfg =
            AuditConfig::parse("[rules.wall-clock]\nallow = [\"crates/sim/src/\"]\n").unwrap();
        let baseline = vec![wall_clock_finding("crates/sim/src/t.rs")];
        assert!(allowlist_drift_findings(&cfg, &baseline).is_empty());
    }

    #[test]
    fn allow_entry_matching_only_another_rule_is_drift() {
        // The path exists in the baseline but under a different rule:
        // the wall-clock exemption still exempts nothing.
        let cfg = AuditConfig::parse("[rules.hash-collections]\nallow = [\"crates/sim/src/\"]\n")
            .unwrap();
        let baseline = vec![wall_clock_finding("crates/sim/src/t.rs")];
        let f = allowlist_drift_findings(&cfg, &baseline);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    // ------------------------------------------------------------------
    // The tree at HEAD is clean (the binary's exit-0 guarantee).
    // ------------------------------------------------------------------

    #[test]
    fn workspace_at_head_is_lint_clean() {
        let root = default_root();
        let cfg = AuditConfig::load(&root).unwrap();
        let findings = lint_workspace_with_drift(&root, &cfg).unwrap();
        assert!(
            findings.is_empty(),
            "workspace has lint findings:\n{}",
            findings
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
