//! Command-line entry point: `cargo run -p peerwindow-audit -- lint`.
//!
//! Exits 0 when the workspace is clean, 1 when any rule fires, 2 on
//! usage or I/O errors. CI runs this next to the test suite; the
//! `workspace_at_head_is_lint_clean` unit test enforces the same
//! guarantee from `cargo test`.

#![forbid(unsafe_code)]

use peerwindow_audit::{lint_workspace_with_drift, AuditConfig};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        _ => {
            eprintln!("usage: peerwindow-audit lint [--root <workspace-root>]");
            ExitCode::from(2)
        }
    }
}

fn lint(args: &[String]) -> ExitCode {
    let root = match args {
        [] => peerwindow_audit::default_root(),
        [flag, path] if flag == "--root" => PathBuf::from(path),
        _ => {
            eprintln!("usage: peerwindow-audit lint [--root <workspace-root>]");
            return ExitCode::from(2);
        }
    };
    let cfg = match AuditConfig::load(&root) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    match lint_workspace_with_drift(&root, &cfg) {
        Ok(findings) if findings.is_empty() => {
            println!("audit: workspace clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            println!("audit: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
