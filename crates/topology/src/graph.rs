//! The router-level transit-stub graph.
//!
//! Node numbering: transit nodes first (`0 .. transit_count`), then stub
//! nodes (`transit_count .. router_count`). Construction mirrors GT-ITM's
//! structure deterministically from a seed:
//!
//! * transit *domains* form a ring plus random chords (the backbone);
//! * transit nodes within a domain are fully meshed;
//! * each transit node hangs `stub_domains_per_transit` stub domains;
//! * stub nodes within a stub domain are fully meshed and each attaches
//!   to the domain's transit node.

use crate::params::TransitStubParams;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A weighted undirected router graph.
#[derive(Clone, Debug)]
pub struct Topology {
    params: TransitStubParams,
    /// Adjacency: `adj[u] = [(v, weight_us), …]`.
    adj: Vec<Vec<(u32, u32)>>,
}

/// SplitMix64 step (local copy to keep this crate dependency-light).
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl Topology {
    /// Generates a topology from `params` and a seed.
    pub fn generate(params: TransitStubParams, seed: u64) -> Self {
        let n = params.router_count() as usize;
        let mut adj: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        let mut rng = seed ^ 0xD6E8FEB86659FD93;

        let connect = |adj: &mut Vec<Vec<(u32, u32)>>, a: u32, b: u32, w: u32| {
            if a == b || adj[a as usize].iter().any(|&(v, _)| v == b) {
                return;
            }
            adj[a as usize].push((b, w));
            adj[b as usize].push((a, w));
        };

        let td = params.transit_domains;
        let tpd = params.transit_per_domain;
        let transit_of = |domain: u32, i: u32| domain * tpd + i;

        // Intra-domain transit mesh.
        for d in 0..td {
            for i in 0..tpd {
                for j in (i + 1)..tpd {
                    connect(
                        &mut adj,
                        transit_of(d, i),
                        transit_of(d, j),
                        params.transit_transit_us,
                    );
                }
            }
        }
        // Backbone ring over domains plus random chords.
        for d in 0..td {
            let e = (d + 1) % td;
            if td > 1 {
                let a = transit_of(d, (mix(&mut rng) % tpd as u64) as u32);
                let b = transit_of(e, (mix(&mut rng) % tpd as u64) as u32);
                connect(&mut adj, a, b, params.transit_transit_us);
            }
            for _ in 0..params.extra_transit_edges_per_domain {
                let e = (mix(&mut rng) % td as u64) as u32;
                if e == d {
                    continue;
                }
                let a = transit_of(d, (mix(&mut rng) % tpd as u64) as u32);
                let b = transit_of(e, (mix(&mut rng) % tpd as u64) as u32);
                connect(&mut adj, a, b, params.transit_transit_us);
            }
        }
        // Stub domains.
        let mut next_stub = params.transit_count();
        for t in 0..params.transit_count() {
            for _ in 0..params.stub_domains_per_transit {
                let first = next_stub;
                for i in 0..params.stubs_per_domain {
                    let s = next_stub;
                    next_stub += 1;
                    connect(&mut adj, t, s, params.transit_stub_us);
                    for j in first..first + i {
                        connect(&mut adj, j, s, params.stub_stub_us);
                    }
                }
            }
        }
        debug_assert_eq!(next_stub, params.router_count());
        Topology { params, adj }
    }

    /// Generation parameters.
    pub fn params(&self) -> &TransitStubParams {
        &self.params
    }

    /// Number of routers.
    pub fn router_count(&self) -> usize {
        self.adj.len()
    }

    /// Router id of stub node `i` (`0 ≤ i < stub_count`).
    pub fn stub_router(&self, i: u32) -> u32 {
        self.params.transit_count() + i
    }

    /// Neighbors of router `u`.
    pub fn neighbors(&self, u: u32) -> &[(u32, u32)] {
        &self.adj[u as usize]
    }

    /// Single-source shortest paths (Dijkstra); returns distances in µs
    /// (`u32::MAX` for unreachable routers).
    pub fn dijkstra(&self, src: u32) -> Vec<u32> {
        let n = self.adj.len();
        let mut dist = vec![u32::MAX; n];
        let mut heap = BinaryHeap::new();
        dist[src as usize] = 0;
        heap.push(Reverse((0u32, src)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u as usize] {
                continue;
            }
            for &(v, w) in &self.adj[u as usize] {
                let nd = d + w;
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    heap.push(Reverse((nd, v)));
                }
            }
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_graph_has_expected_size_and_is_connected() {
        let p = TransitStubParams::small();
        let t = Topology::generate(p, 1);
        assert_eq!(t.router_count(), p.router_count() as usize);
        let d = t.dijkstra(0);
        assert!(d.iter().all(|&x| x != u32::MAX), "graph must be connected");
    }

    #[test]
    fn paper_scale_graph_is_connected() {
        let p = TransitStubParams::default();
        let t = Topology::generate(p, 7);
        let d = t.dijkstra(t.stub_router(0));
        assert_eq!(d.len(), 5_280);
        assert!(d.iter().all(|&x| x != u32::MAX));
    }

    #[test]
    fn stub_to_own_transit_is_20ms() {
        let p = TransitStubParams::small();
        let t = Topology::generate(p, 1);
        // Stub node 0 attaches to transit node 0.
        let d = t.dijkstra(t.stub_router(0));
        assert_eq!(d[0], p.transit_stub_us);
    }

    #[test]
    fn stubs_in_same_domain_are_5ms_apart() {
        let p = TransitStubParams::small();
        let t = Topology::generate(p, 1);
        let d = t.dijkstra(t.stub_router(0));
        assert_eq!(d[t.stub_router(1) as usize], p.stub_stub_us);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let p = TransitStubParams::small();
        let a = Topology::generate(p, 9);
        let b = Topology::generate(p, 9);
        for u in 0..a.router_count() as u32 {
            assert_eq!(a.neighbors(u), b.neighbors(u));
        }
        let c = Topology::generate(p, 10);
        let diff = (0..a.router_count() as u32).any(|u| a.neighbors(u) != c.neighbors(u));
        assert!(diff, "different seeds should differ");
    }

    #[test]
    fn symmetric_distances() {
        let p = TransitStubParams::small();
        let t = Topology::generate(p, 3);
        let from5 = t.dijkstra(t.stub_router(5));
        let from9 = t.dijkstra(t.stub_router(9));
        assert_eq!(
            from5[t.stub_router(9) as usize],
            from9[t.stub_router(5) as usize]
        );
    }
}
