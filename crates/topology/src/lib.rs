//! # peerwindow-topology
//!
//! Transit-stub Internet topology generation and latency modelling — the
//! substitute for GT-ITM [20] used in the paper's §5.1 experiments
//! (120 transit domains × 4 transit nodes, 5 stub domains per transit node
//! × 2 stub nodes = 4800 stub nodes; 100/20/5/1 ms latency constants).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod graph;
pub mod latency;
pub mod params;

pub use graph::Topology;
pub use latency::{NetworkModel, TransitStubNetwork, UniformNetwork};
pub use params::TransitStubParams;
