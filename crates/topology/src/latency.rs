//! End-to-end latency models for overlay simulations.
//!
//! The simulator asks one question: *how long does a message take from
//! overlay node `a` to overlay node `b`?* [`NetworkModel`] abstracts that;
//! [`TransitStubNetwork`] answers it from a precomputed all-pairs
//! stub-to-stub matrix (one Dijkstra per row, row chunks parallelised
//! across scoped std threads) plus the paper's 1 ms host–stub legs, and
//! [`UniformNetwork`] is a constant-latency stand-in for unit tests and
//! microbenchmarks.

use crate::graph::Topology;

/// Answers point-to-point latency queries between overlay nodes, addressed
/// by an opaque `u32` (the simulator hands out addresses densely).
pub trait NetworkModel: Sync + Send {
    /// One-way latency between overlay addresses `a` and `b`, µs.
    fn latency_us(&self, a: u32, b: u32) -> u64;
}

/// Constant-latency network (tests, baselines, microbenches).
#[derive(Clone, Copy, Debug)]
pub struct UniformNetwork {
    /// The constant one-way latency, µs.
    pub latency_us: u64,
}

impl NetworkModel for UniformNetwork {
    #[inline]
    fn latency_us(&self, a: u32, b: u32) -> u64 {
        if a == b {
            0
        } else {
            self.latency_us
        }
    }
}

/// Stub-to-stub latency matrix over a transit-stub topology, with overlay
/// nodes mapped onto stub nodes round-robin (`addr % stub_count`, giving
/// the paper's ≈20 overlay nodes per stub node at the 100,000-node scale).
pub struct TransitStubNetwork {
    stub_count: u32,
    stubs_per_domain: u32,
    node_leg_us: u64,
    /// Row-major `stub_count × stub_count`, milliseconds (fits u16: the
    /// diameter of the paper topology is well under 65 s).
    matrix_ms: Vec<u16>,
}

impl TransitStubNetwork {
    /// Precomputes the all-pairs stub latency matrix: one Dijkstra per stub
    /// node, with the flat row-major matrix written in place — each worker
    /// thread fills a contiguous chunk of rows, so no intermediate
    /// `Vec<Vec<u16>>` is built and copied.
    pub fn build(topo: &Topology) -> Self {
        let stub_count = topo.params().stub_count();
        let node_leg_us = topo.params().node_node_us as u64;
        let n = stub_count as usize;
        let mut matrix_ms = vec![0u16; n * n];

        let fill_rows = |first_row: usize, chunk: &mut [u16]| {
            for (k, row) in chunk.chunks_mut(n).enumerate() {
                let i = (first_row + k) as u32;
                let dist = topo.dijkstra(topo.stub_router(i));
                for (j, cell) in row.iter_mut().enumerate() {
                    let us = dist[topo.stub_router(j as u32) as usize];
                    debug_assert_ne!(us, u32::MAX, "disconnected stub");
                    *cell = ((us + 500) / 1_000).min(u16::MAX as u32) as u16;
                }
            }
        };

        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n.max(1));
        if workers <= 1 {
            fill_rows(0, &mut matrix_ms);
        } else {
            let rows_per_chunk = n.div_ceil(workers);
            std::thread::scope(|scope| {
                for (c, chunk) in matrix_ms.chunks_mut(rows_per_chunk * n).enumerate() {
                    let fill_rows = &fill_rows;
                    scope.spawn(move || fill_rows(c * rows_per_chunk, chunk));
                }
            });
        }
        TransitStubNetwork {
            stub_count,
            stubs_per_domain: topo.params().stubs_per_domain,
            node_leg_us,
            matrix_ms,
        }
    }

    /// Number of stub attachment points.
    pub fn stub_count(&self) -> u32 {
        self.stub_count
    }

    /// Stub nodes per stub domain (the generation-time block size that
    /// [`Self::stub_domain_of`] divides by).
    pub fn stubs_per_domain(&self) -> u32 {
        self.stubs_per_domain
    }

    /// The stub node an overlay address attaches to.
    #[inline]
    pub fn stub_of(&self, addr: u32) -> u32 {
        addr % self.stub_count
    }

    /// The stub *domain* an overlay address attaches to. Stub nodes are
    /// numbered domain-by-domain at generation time, so a domain is a
    /// contiguous block of `stubs_per_domain` stub indices. Hosts of one
    /// domain are topologically close (intra-domain edges only), which
    /// makes this the natural unit for topology-affine shard placement.
    #[inline]
    pub fn stub_domain_of(&self, addr: u32) -> u32 {
        self.stub_of(addr) / self.stubs_per_domain
    }

    /// Raw stub-to-stub latency, µs.
    #[inline]
    pub fn stub_latency_us(&self, a: u32, b: u32) -> u64 {
        self.matrix_ms[a as usize * self.stub_count as usize + b as usize] as u64 * 1_000
    }
}

impl NetworkModel for TransitStubNetwork {
    fn latency_us(&self, a: u32, b: u32) -> u64 {
        if a == b {
            return 0;
        }
        let sa = self.stub_of(a);
        let sb = self.stub_of(b);
        // Two host–stub legs plus the routed stub–stub path (0 if the two
        // hosts share a stub node — they are 2 · node_node apart).
        2 * self.node_leg_us + self.stub_latency_us(sa, sb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::TransitStubParams;

    fn small_net() -> TransitStubNetwork {
        let topo = Topology::generate(TransitStubParams::small(), 1);
        TransitStubNetwork::build(&topo)
    }

    #[test]
    fn uniform_network_is_constant() {
        let n = UniformNetwork { latency_us: 5_000 };
        assert_eq!(n.latency_us(1, 2), 5_000);
        assert_eq!(n.latency_us(3, 3), 0);
    }

    #[test]
    fn matrix_is_symmetric_with_zero_diagonal() {
        let net = small_net();
        let s = net.stub_count();
        for a in 0..s {
            assert_eq!(net.stub_latency_us(a, a), 0);
            for b in 0..s {
                assert_eq!(net.stub_latency_us(a, b), net.stub_latency_us(b, a));
            }
        }
    }

    #[test]
    fn same_stub_hosts_are_two_host_legs_apart() {
        let net = small_net();
        let s = net.stub_count();
        // Addresses a and a + s map to the same stub node.
        assert_eq!(net.latency_us(3, 3 + s), 2_000);
    }

    #[test]
    fn same_domain_stubs_cost_5ms_plus_legs() {
        let net = small_net();
        // Stubs 0 and 1 are in the same stub domain (construction order).
        assert_eq!(net.latency_us(0, 1), 2_000 + 5_000);
    }

    #[test]
    fn triangle_inequality_holds_on_samples() {
        let net = small_net();
        let s = net.stub_count();
        for a in 0..s.min(12) {
            for b in 0..s.min(12) {
                for c in 0..s.min(12) {
                    assert!(
                        net.stub_latency_us(a, c)
                            <= net.stub_latency_us(a, b) + net.stub_latency_us(b, c) + 1_000,
                        "triangle violated at ({a},{b},{c})"
                    );
                }
            }
        }
    }

    #[test]
    fn paper_scale_matrix_builds() {
        let topo = Topology::generate(TransitStubParams::default(), 2);
        let net = TransitStubNetwork::build(&topo);
        assert_eq!(net.stub_count(), 4_800);
        // Cross-backbone paths cost at least one transit hop.
        let far = net.latency_us(0, 2_400);
        assert!(far >= 2_000 + 20_000, "far latency {far}");
        assert!(far < 2_000_000, "far latency {far} implausibly large");
    }
}
