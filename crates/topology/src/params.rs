//! Transit-stub generation parameters.

/// Parameters of the transit-stub topology, defaulting to the paper's §5.1
/// configuration: 120 transit domains × 4 transit nodes; 5 stub domains per
/// transit node × 2 stub nodes = 4800 stub nodes; latencies
/// transit–transit 100 ms, transit–stub 20 ms, stub–stub 5 ms, and 1 ms
/// for the last hop from a stub node to an attached end host.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TransitStubParams {
    /// Number of transit domains.
    pub transit_domains: u32,
    /// Transit nodes per transit domain.
    pub transit_per_domain: u32,
    /// Stub domains attached to each transit node.
    pub stub_domains_per_transit: u32,
    /// Stub nodes per stub domain.
    pub stubs_per_domain: u32,
    /// Latency of a transit–transit edge, µs.
    pub transit_transit_us: u32,
    /// Latency of a transit–stub edge, µs.
    pub transit_stub_us: u32,
    /// Latency of a stub–stub edge (within a stub domain), µs.
    pub stub_stub_us: u32,
    /// Latency of the final hop between an end host and its stub node, µs.
    pub node_node_us: u32,
    /// Extra random inter-domain transit edges per domain (GT-ITM adds
    /// redundant links beyond the connectivity backbone).
    pub extra_transit_edges_per_domain: u32,
}

impl Default for TransitStubParams {
    fn default() -> Self {
        TransitStubParams {
            transit_domains: 120,
            transit_per_domain: 4,
            stub_domains_per_transit: 5,
            stubs_per_domain: 2,
            transit_transit_us: 100_000,
            transit_stub_us: 20_000,
            stub_stub_us: 5_000,
            node_node_us: 1_000,
            extra_transit_edges_per_domain: 2,
        }
    }
}

impl TransitStubParams {
    /// A scaled-down topology for tests and CI: 6 domains × 2 transit
    /// nodes, 2 stub domains each × 2 stubs = 48 stub nodes.
    pub fn small() -> Self {
        TransitStubParams {
            transit_domains: 6,
            transit_per_domain: 2,
            stub_domains_per_transit: 2,
            stubs_per_domain: 2,
            ..Self::default()
        }
    }

    /// Total transit nodes.
    pub fn transit_count(&self) -> u32 {
        self.transit_domains * self.transit_per_domain
    }

    /// Total stub nodes (4800 with paper defaults).
    pub fn stub_count(&self) -> u32 {
        self.transit_count() * self.stub_domains_per_transit * self.stubs_per_domain
    }

    /// Total router-level graph size.
    pub fn router_count(&self) -> u32 {
        self.transit_count() + self.stub_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_give_4800_stub_nodes() {
        let p = TransitStubParams::default();
        assert_eq!(p.transit_count(), 480);
        assert_eq!(p.stub_count(), 4_800);
        assert_eq!(p.router_count(), 5_280);
    }

    #[test]
    fn small_is_small() {
        let p = TransitStubParams::small();
        assert_eq!(p.stub_count(), 48);
        assert!(p.router_count() < 100);
    }
}
