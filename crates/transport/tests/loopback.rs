//! End-to-end test over real UDP loopback sockets: five OS processes'
//! worth of protocol state machines (in threads), joining, converging,
//! exchanging info changes, and detecting a silent crash.

use bytes::Bytes;
use peerwindow_core::prelude::*;
use peerwindow_transport::{spawn_node, Control, RuntimeConfig};
use std::net::SocketAddrV4;
use std::time::{Duration, Instant};

fn cfg(
    id: u128,
    listen: &str,
    bootstrap: Option<SocketAddrV4>,
    info: &'static [u8],
) -> RuntimeConfig {
    RuntimeConfig {
        protocol: ProtocolConfig {
            processing_delay_us: 0,
            probe_interval_us: 300_000, // fast cadence for the test
            rpc_timeout_us: 150_000,
            bandwidth_window_us: 2_000_000,
            ..ProtocolConfig::default()
        },
        id: NodeId(id),
        listen: listen.parse().unwrap(),
        bootstrap,
        threshold_bps: 1e9,
        info: Bytes::from_static(info),
        seed: id as u64 | 1,
        shim: None,
        clock_offset_us: 0,
    }
}

/// Polls until `pred` holds for all nodes or the deadline passes.
fn wait_for(
    handles: &[&peerwindow_transport::NodeHandle],
    deadline: Duration,
    pred: impl Fn(&peerwindow_transport::Snapshot) -> bool,
) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        let ok = handles.iter().all(|h| {
            h.snapshot(Duration::from_millis(500))
                .map(|s| pred(&s))
                .unwrap_or(false)
        });
        if ok {
            return true;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    false
}

#[test]
fn five_nodes_over_udp_converge_and_detect_a_crash() {
    // Seed node.
    let seed = spawn_node(cfg(
        0x2000_0000_0000_0000_0000_0000_0000_0001,
        "127.0.0.1:0",
        None,
        b"role:seed",
    ))
    .expect("seed starts");
    let boot = seed.local_addr;
    // Four joiners, staggered.
    let ids = [
        0x7000_0000_0000_0000_0000_0000_0000_0002u128,
        0xB000_0000_0000_0000_0000_0000_0000_0003,
        0xD000_0000_0000_0000_0000_0000_0000_0004,
        0x1000_0000_0000_0000_0000_0000_0000_0005,
    ];
    let mut joiners = Vec::new();
    for (k, &id) in ids.iter().enumerate() {
        std::thread::sleep(Duration::from_millis(150));
        joiners.push(
            spawn_node(cfg(id, "127.0.0.1:0", Some(boot), b"role:member"))
                .unwrap_or_else(|e| panic!("joiner {k} failed: {e:?}")),
        );
    }
    let all: Vec<&peerwindow_transport::NodeHandle> =
        std::iter::once(&seed).chain(joiners.iter()).collect();
    // Everyone converges to 4 peers (5 nodes minus self).
    assert!(
        wait_for(&all, Duration::from_secs(15), |s| s.is_active
            && s.peers.len() == 4),
        "nodes did not converge to full mutual knowledge"
    );
    // Info change propagates.
    assert!(joiners[0].control(Control::ChangeInfo(Bytes::from_static(b"role:upgraded"))));
    let changed = joiners[0].id;
    assert!(
        wait_for(&all, Duration::from_secs(10), |s| {
            s.id == changed
                || s.peers
                    .iter()
                    .any(|p| p.id == changed && &p.info[..] == b"role:upgraded")
        }),
        "info change did not propagate"
    );
    // Silent crash: drop a handle without graceful shutdown? NodeHandle's
    // Drop is graceful, so emulate a crash by shutting the node down with
    // its socket: simplest reliable crash is std::mem::forget of a
    // shut-down-less node — instead we use graceful leave here and assert
    // the leave propagates (the crash path is covered by the simulator
    // tests where we control delivery).
    let victim = joiners.pop().unwrap();
    let victim_id = victim.id;
    victim.shutdown();
    let rest: Vec<&peerwindow_transport::NodeHandle> =
        std::iter::once(&seed).chain(joiners.iter()).collect();
    assert!(
        wait_for(&rest, Duration::from_secs(15), |s| {
            s.peers.iter().all(|p| p.id != victim_id) && s.peers.len() == 3
        }),
        "leave did not propagate to every survivor"
    );
    // Clean shutdown of the rest.
    for j in joiners {
        j.shutdown();
    }
    seed.shutdown();
}

#[test]
fn snapshot_reader_serves_lock_free_while_nodes_run() {
    let seed = spawn_node(cfg(
        0x3000_0000_0000_0000_0000_0000_0000_0011,
        "127.0.0.1:0",
        None,
        b"role:seed",
    ))
    .expect("seed starts");
    let boot = seed.local_addr;
    let a = spawn_node(cfg(
        0x9000_0000_0000_0000_0000_0000_0000_0012,
        "127.0.0.1:0",
        Some(boot),
        b"role:member",
    ))
    .expect("a starts");
    let b = spawn_node(cfg(
        0x5000_0000_0000_0000_0000_0000_0000_0013,
        "127.0.0.1:0",
        Some(boot),
        b"role:member",
    ))
    .expect("b starts");
    let all = [&seed, &a, &b];
    assert!(
        wait_for(&all, Duration::from_secs(15), |s| s.is_active
            && s.peers.len() == 2),
        "nodes did not converge"
    );
    for h in &all {
        let reader = h.snapshot_reader();
        // Epochs are monotone across repeated lock-free loads, and the
        // published view is well formed with the node's own identity.
        let first = reader.load();
        assert!(first.is_well_formed(), "published snapshot malformed");
        assert_eq!(first.me.id, h.id);
        let mut last_epoch = first.epoch;
        for _ in 0..1000 {
            let s = reader.load();
            assert!(s.epoch >= last_epoch, "epoch went backwards");
            last_epoch = s.epoch;
        }
        // Converged: the serving view agrees with the control-channel
        // snapshot on membership.
        let ctl = h.snapshot(Duration::from_secs(1)).expect("ctl snapshot");
        let mut ctl_ids: Vec<NodeId> = ctl.peers.iter().map(|p| p.id).collect();
        ctl_ids.sort();
        let snap = reader.load();
        let snap_ids: Vec<NodeId> = snap.pointers().iter().map(|p| p.id).collect();
        assert_eq!(snap_ids, ctl_ids, "reader view diverges from live list");
        // The generation gate actually published (joins changed the list)
        // and the counter surfaced it.
        assert!(h.runtime_stats().snapshots_published > 0);
    }
    for h in [b, a, seed] {
        h.shutdown();
    }
}

#[test]
fn bootstrap_unreachable_is_reported() {
    let r = spawn_node(cfg(
        0x42,
        "127.0.0.1:0",
        Some("127.0.0.1:1".parse().unwrap()), // nothing listens there
        b"",
    ));
    assert!(matches!(
        r,
        Err(peerwindow_transport::SpawnError::BootstrapUnreachable)
    ));
}
