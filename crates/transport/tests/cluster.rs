//! Cross-process robustness tests: a real `pwnode` child killed with
//! SIGKILL mid-protocol and re-admitted after restart, and a two-node
//! partition ridden out through the userspace netem shim.
//!
//! Both tests anchor every participant's clock to one shared epoch (the
//! shim-spec contract): event `origin_us` stamps are only comparable
//! across processes when they count from the same zero, and the §4.3
//! dedup origin clause — which is what re-admits a crash-restarted node
//! under its old identity — depends on that comparability.

use bytes::Bytes;
use peerwindow_core::prelude::*;
use peerwindow_faults::{Condition, FaultPlan, FaultRule, LinkSel, NodeSel};
use peerwindow_transport::{spawn_node, NodeHandle, RuntimeConfig, ShimSpec, Snapshot};
use std::net::{SocketAddr, SocketAddrV4, UdpSocket};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn cfg(id: u128, listen: SocketAddrV4, bootstrap: Option<SocketAddrV4>) -> RuntimeConfig {
    RuntimeConfig {
        protocol: ProtocolConfig {
            processing_delay_us: 0,
            probe_interval_us: 300_000,
            rpc_timeout_us: 150_000,
            bandwidth_window_us: 2_000_000,
            ..ProtocolConfig::default()
        },
        id: NodeId(id),
        listen,
        bootstrap,
        threshold_bps: 1e9,
        info: Bytes::from_static(b"in-process"),
        seed: id as u64 | 1,
        shim: None,
        clock_offset_us: 0,
    }
}

fn wait_for(handles: &[&NodeHandle], deadline: Duration, pred: impl Fn(&Snapshot) -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        let ok = handles.iter().all(|h| {
            h.snapshot(Duration::from_millis(500))
                .map(|s| pred(&s))
                .unwrap_or(false)
        });
        if ok {
            return true;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    false
}

/// Reserves `N` distinct loopback ports by holding all the binds before
/// releasing any. Racy in principle; in practice the ports stay free
/// for the nodes to claim.
fn free_ports<const N: usize>() -> [SocketAddrV4; N] {
    let socks: Vec<UdpSocket> = (0..N)
        .map(|_| UdpSocket::bind("127.0.0.1:0").expect("bind"))
        .collect();
    socks
        .iter()
        .map(|s| match s.local_addr().expect("addr") {
            SocketAddr::V4(v) => v,
            _ => unreachable!(),
        })
        .collect::<Vec<_>>()
        .try_into()
        .expect("N addresses")
}

fn spawn_pwnode(
    listen: SocketAddrV4,
    bootstrap: SocketAddrV4,
    spec_path: &std::path::Path,
) -> Child {
    Command::new(env!("CARGO_BIN_EXE_pwnode"))
        .arg("--listen")
        .arg(listen.to_string())
        .arg("--bootstrap")
        .arg(bootstrap.to_string())
        .arg("--fault-plan")
        .arg(spec_path)
        .arg("--fast")
        .arg("--budget")
        .arg("1e9")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("pwnode spawns")
}

#[test]
fn killed_child_process_is_expunged_then_readmitted_on_restart() {
    // Shared epoch: a reliable (no-fault) spec whose only job is the
    // clock anchor. The child reads it from disk; the in-process nodes
    // take the same offset directly.
    let spec = ShimSpec {
        plan: FaultPlan::reliable(1),
        epoch_unix_us: std::time::SystemTime::now()
            .duration_since(std::time::SystemTime::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0),
        roster: Vec::new(),
    };
    let spec_path =
        std::env::temp_dir().join(format!("pwnode-restart-{}.shim", std::process::id()));
    std::fs::write(&spec_path, spec.to_text()).expect("spec written");

    let mut seed_cfg = cfg(0x1111, "127.0.0.1:0".parse().unwrap(), None);
    seed_cfg.clock_offset_us = spec.wall_offset_us();
    let seed = spawn_node(seed_cfg).expect("seed starts");
    let boot = seed.local_addr;
    let mut peer_cfg = cfg(
        0x9999_0000_0000_0000_0000_0000_0000_0002,
        "127.0.0.1:0".parse().unwrap(),
        Some(boot),
    );
    peer_cfg.clock_offset_us = spec.wall_offset_us();
    let peer = spawn_node(peer_cfg).expect("peer starts");
    let survivors = [&seed, &peer];

    let [child_addr] = free_ports::<1>();
    let mut child = spawn_pwnode(child_addr, boot, &spec_path);

    // All three converge; learn the child's derived id from a survivor.
    assert!(
        wait_for(&survivors, Duration::from_secs(15), |s| s.is_active
            && s.peers.len() == 2),
        "child never joined"
    );
    let known = seed.snapshot(Duration::from_secs(1)).expect("snap");
    let child_id = known
        .peers
        .iter()
        .map(|p| p.id)
        .find(|id| *id != peer.id)
        .expect("child id visible");

    // SIGKILL mid-protocol: no leave, no drain. Survivors must detect
    // the silence (§4.1) and expunge the pointer.
    child.kill().expect("kill");
    child.wait().expect("reaped");
    assert!(
        wait_for(&survivors, Duration::from_secs(15), |s| s
            .peers
            .iter()
            .all(|p| p.id != child_id)),
        "killed child was never expunged"
    );

    // Restart on the same address → same derived identity. The §4.3
    // origin clause admits the seq-0 rejoin because its origin stamp
    // (shared epoch) is fresher than everything recorded before.
    let mut child = spawn_pwnode(child_addr, boot, &spec_path);
    assert!(
        wait_for(&survivors, Duration::from_secs(20), |s| s
            .peers
            .iter()
            .any(|p| p.id == child_id)),
        "restarted child was not re-admitted"
    );
    // No departed pointer lingers: exactly the three live ids, no dupes.
    for h in survivors {
        let s = h.snapshot(Duration::from_secs(1)).expect("snap");
        assert_eq!(s.peers.len(), 2, "unexpected peer set: {:?}", s.peers);
    }

    child.kill().expect("kill");
    child.wait().expect("reaped");
    peer.shutdown();
    seed.shutdown();
    let _ = std::fs::remove_file(&spec_path);
}

#[test]
fn two_process_partition_heals_without_false_expunge() {
    // Two runtimes, each judging its sends through the same plan: a
    // symmetric blackhole between them for 2 s, starting 1.5 s in. The
    // give-up schedule (6 backed-off attempts ≈ 9.5 s) outlasts the
    // window, so neither side may ever declare the other dead.
    let [a_addr, b_addr] = free_ports::<2>();
    let spec = ShimSpec {
        plan: FaultPlan::reliable(7).with_rule(FaultRule {
            from_us: 1_500_000,
            until_us: 3_500_000,
            links: LinkSel::between(NodeSel::One(0), NodeSel::One(1)),
            condition: Condition::Blackhole,
        }),
        epoch_unix_us: std::time::SystemTime::now()
            .duration_since(std::time::SystemTime::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0),
        roster: vec![a_addr, b_addr],
    };

    let mk = |id: u128, addr: SocketAddrV4, boot: Option<SocketAddrV4>| {
        let mut c = cfg(id, addr, boot);
        c.protocol.max_attempts = 6;
        c.shim = Some(spec.clone());
        c.clock_offset_us = spec.wall_offset_us();
        c
    };
    let a = spawn_node(mk(0x0AAA, a_addr, None)).expect("a starts");
    let b = spawn_node(mk(
        0xF000_0000_0000_0000_0000_0000_0000_0BBB,
        b_addr,
        Some(a_addr),
    ))
    .expect("b starts");
    let both = [&a, &b];
    assert!(
        wait_for(&both, Duration::from_secs(10), |s| s.is_active
            && s.peers.len() == 1),
        "pair never converged"
    );

    // Ride out the window plus one §4.1 retry gap.
    std::thread::sleep(Duration::from_secs(5));

    // Healed: both still alive, still mutually known, nobody expunged.
    assert!(
        wait_for(&both, Duration::from_secs(10), |s| s.is_active
            && s.peers.len() == 1),
        "partition was not survived"
    );
    for h in both {
        let s = h.snapshot(Duration::from_secs(1)).expect("snap");
        assert_eq!(
            s.stats.failures_detected, 0,
            "blackhole was mistaken for a crash"
        );
    }
    // The shim actually bit: probes sent into the window were swallowed.
    let dropped = a.runtime_stats().shim_dropped + b.runtime_stats().shim_dropped;
    assert!(dropped > 0, "no datagram was ever blackholed");

    b.shutdown();
    a.shutdown();
}
