//! A UDP runtime for the sans-IO [`NodeMachine`].
//!
//! One thread per node: a `UdpSocket` with a short read timeout drives the
//! machine's inputs; a timer heap realises its `SetTimer` effects; sends
//! with a processing delay are queued rather than slept on. A control
//! channel lets the embedding application change the attached info or the
//! bandwidth budget, take state snapshots, and shut the node down
//! gracefully — the same operations the paper's upper layers need (§3).
//!
//! **Scale limitation:** the §4.3 bulk peer-list download travels as one
//! datagram, so UDP caps it at ~64 KiB ≈ 2,300 pointers. That suits
//! LAN-scale systems and demos; a deployment expecting 10⁵-pointer lists
//! should carry `Download`/`DownloadReply` over a stream transport and
//! keep UDP for the (small) event/probe traffic. Oversized frames are
//! dropped rather than truncated, with an `OversizedFrame` diagnostic
//! record pushed to the log behind [`NodeHandle::take_diagnostics`] —
//! runtime errors are structured trace events, never raw prints.

use crate::codec::{decode, encode};
use bytes::Bytes;
use peerwindow_core::prelude::*;
use peerwindow_metrics::runtime::{escape_label, render_counters};
use peerwindow_trace::{CauseId, DiagCode, NodeTrace, TraceEventKind, TraceRecord};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4, UdpSocket};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender as Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Live runtime counters for one node thread, shared with the
/// application through [`NodeHandle::runtime_stats`]. All updates are
/// relaxed atomics on the node thread's I/O path — monotonic totals
/// with no cross-counter consistency promise (a snapshot may see a
/// datagram counted in but its timers not yet fired).
#[derive(Debug, Default)]
pub struct RuntimeStats {
    datagrams_in: AtomicU64,
    datagrams_out: AtomicU64,
    decode_errors: AtomicU64,
    oversized_frames: AtomicU64,
    timers_fired: AtomicU64,
    shim_dropped: AtomicU64,
    shim_duplicated: AtomicU64,
    shim_delayed: AtomicU64,
    send_retries: AtomicU64,
    backoff_exhaustions: AtomicU64,
    snapshots_published: AtomicU64,
}

impl RuntimeStats {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    // Hooks for the shim module, which shares these counters so the
    // application sees one coherent table per node.
    pub(crate) fn note_datagram_out(&self) {
        Self::bump(&self.datagrams_out);
    }
    pub(crate) fn note_shim_dropped(&self) {
        Self::bump(&self.shim_dropped);
    }
    pub(crate) fn note_shim_duplicated(&self) {
        Self::bump(&self.shim_duplicated);
    }
    pub(crate) fn note_shim_delayed(&self) {
        Self::bump(&self.shim_delayed);
    }
    pub(crate) fn note_send_retry(&self) {
        Self::bump(&self.send_retries);
    }
    pub(crate) fn note_backoff_exhausted(&self) {
        Self::bump(&self.backoff_exhaustions);
    }

    /// Point-in-time copy of every counter.
    pub fn snapshot(&self) -> RuntimeStatsSnapshot {
        RuntimeStatsSnapshot {
            datagrams_in: self.datagrams_in.load(Ordering::Relaxed),
            datagrams_out: self.datagrams_out.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
            oversized_frames: self.oversized_frames.load(Ordering::Relaxed),
            timers_fired: self.timers_fired.load(Ordering::Relaxed),
            shim_dropped: self.shim_dropped.load(Ordering::Relaxed),
            shim_duplicated: self.shim_duplicated.load(Ordering::Relaxed),
            shim_delayed: self.shim_delayed.load(Ordering::Relaxed),
            send_retries: self.send_retries.load(Ordering::Relaxed),
            backoff_exhaustions: self.backoff_exhaustions.load(Ordering::Relaxed),
            snapshots_published: self.snapshots_published.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value copy of [`RuntimeStats`], safe to hold across time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RuntimeStatsSnapshot {
    /// Datagrams received and fed to the machine (decodable or not).
    pub datagrams_in: u64,
    /// Datagrams written to the socket (immediate and delayed sends).
    pub datagrams_out: u64,
    /// Received frames the codec rejected.
    pub decode_errors: u64,
    /// Outbound frames dropped for exceeding the UDP payload cap.
    pub oversized_frames: u64,
    /// Protocol timers fired.
    pub timers_fired: u64,
    /// Outbound datagrams the netem shim swallowed (loss / blackhole).
    pub shim_dropped: u64,
    /// Outbound datagrams the shim duplicated.
    pub shim_duplicated: u64,
    /// Outbound datagrams the shim parked for delayed delivery (jitter,
    /// or the trailing copy of a duplicate).
    pub shim_delayed: u64,
    /// Socket send attempts that failed transiently and were rescheduled
    /// with backoff.
    pub send_retries: u64,
    /// Sends abandoned after the retry budget was exhausted.
    pub backoff_exhaustions: u64,
    /// Peer-list snapshots published to the lock-free serving cell
    /// (generation-gated: one per actual peer-list change).
    pub snapshots_published: u64,
}

impl RuntimeStatsSnapshot {
    /// `(name, value)` rows, in declaration order — the iteration the
    /// Prometheus renderer and table printers share.
    pub fn rows(&self) -> [(&'static str, u64); 11] {
        [
            ("datagrams_in", self.datagrams_in),
            ("datagrams_out", self.datagrams_out),
            ("decode_errors", self.decode_errors),
            ("oversized_frames", self.oversized_frames),
            ("timers_fired", self.timers_fired),
            ("shim_dropped", self.shim_dropped),
            ("shim_duplicated", self.shim_duplicated),
            ("shim_delayed", self.shim_delayed),
            ("send_retries", self.send_retries),
            ("backoff_exhaustions", self.backoff_exhaustions),
            ("snapshots_published", self.snapshots_published),
        ]
    }
}

/// Bounded channel; sends block when full (as crossbeam's `bounded` did
/// before the workspace moved to the std library's channels).
fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    std::sync::mpsc::sync_channel(cap)
}

/// Commands the application can send to a running node.
///
/// The channel is bounded (64 entries) and [`NodeHandle::control`]
/// blocks when it is full: a slow node thread exerts backpressure on
/// the controller rather than silently dropping commands.
pub enum Control {
    /// Request a state snapshot; the reply goes to the provided sender.
    /// The node thread blocks on the reply channel (never a silent
    /// `try_send` drop), so the requester must either `recv` promptly
    /// or drop its receiver — [`NodeHandle::snapshot`] does the former
    /// with a timeout.
    Snapshot(Sender<Snapshot>),
    /// Change the attached info (§3) and announce it.
    ChangeInfo(Bytes),
    /// Change the bandwidth budget (autonomy knob).
    SetThreshold(f64),
    /// Turn structured protocol tracing on or off; records land in the
    /// same log as runtime diagnostics.
    #[cfg(feature = "trace")]
    SetTracing(bool),
    /// Leave gracefully and stop the thread.
    Shutdown,
}

/// A point-in-time view of a running node.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Node id.
    pub id: NodeId,
    /// Current level.
    pub level: Level,
    /// Whether the §4.3 joining process has completed.
    pub is_active: bool,
    /// Peer-list contents.
    pub peers: Vec<Pointer>,
    /// Known top nodes.
    pub tops: Vec<Target>,
    /// Traffic counters.
    pub stats: NodeStats,
}

/// Configuration for [`spawn_node`].
pub struct RuntimeConfig {
    /// Protocol constants. For real deployments set
    /// `processing_delay_us: 0` (the 1 s §5.1 delay models slow overlay
    /// hosts, not your CPU).
    pub protocol: ProtocolConfig,
    /// Node id; derive it by hashing a stable public key.
    pub id: NodeId,
    /// UDP listen address (must be IPv4; port 0 picks an ephemeral port).
    pub listen: SocketAddrV4,
    /// Bootstrap node address; `None` starts a brand-new system (seed).
    pub bootstrap: Option<SocketAddrV4>,
    /// Bandwidth budget for node collection, bps.
    pub threshold_bps: f64,
    /// Initial attached info.
    pub info: Bytes,
    /// RNG seed (protocol choices such as which top node to report to).
    pub seed: u64,
    /// Userspace netem shim spec. `None` (the default for direct
    /// embedders) sends every datagram straight through; with a spec the
    /// outbound path is conditioned by its fault plan — see
    /// [`crate::shim`].
    pub shim: Option<crate::shim::ShimSpec>,
    /// Added to the monotonic elapsed clock, so `now_us` — and with it
    /// every event origin timestamp this node stamps — is comparable
    /// across processes that agree on a common epoch. A cluster run sets
    /// this to [`crate::shim::ShimSpec::wall_offset_us`]; standalone
    /// nodes leave it 0.
    pub clock_offset_us: u64,
}

/// Handle to a node thread.
pub struct NodeHandle {
    /// The node's id.
    pub id: NodeId,
    /// The actually-bound listen address.
    pub local_addr: SocketAddrV4,
    ctl: Sender<Control>,
    diag: Arc<Mutex<Vec<TraceRecord>>>,
    stats: Arc<RuntimeStats>,
    snapshots: SnapshotReader,
    thread: Option<JoinHandle<()>>,
}

impl NodeHandle {
    /// Sends a control command; returns `false` if the node has stopped.
    pub fn control(&self, c: Control) -> bool {
        self.ctl.send(c).is_ok()
    }

    /// A lock-free reader over the node's published peer-list snapshots
    /// (the serving layer). Unlike [`NodeHandle::snapshot`] this never
    /// round-trips through the control channel: `load()` is a few atomic
    /// operations on the calling thread, safe to hit at query rates
    /// while the node keeps serving the protocol. The node thread
    /// publishes after every peer-list change (generation-gated), so the
    /// reader's view trails the live list by at most one handled event.
    pub fn snapshot_reader(&self) -> SnapshotReader {
        self.snapshots.clone()
    }

    /// Takes a snapshot, waiting up to `timeout`.
    pub fn snapshot(&self, timeout: Duration) -> Option<Snapshot> {
        let (tx, rx) = bounded(1);
        if self.ctl.send(Control::Snapshot(tx)).is_err() {
            return None;
        }
        rx.recv_timeout(timeout).ok()
    }

    /// Drains the diagnostic log: runtime events (oversized frames,
    /// fatal errors, socket errors) and — with the `trace` feature and
    /// tracing enabled — the machine's structured protocol records. The
    /// log outlives the node thread, so terminal errors remain
    /// observable after the node stops.
    pub fn take_diagnostics(&self) -> Vec<TraceRecord> {
        let mut out = self
            .diag
            .lock()
            .map(|mut l| std::mem::take(&mut *l))
            .unwrap_or_default();
        peerwindow_trace::canonical_sort(&mut out);
        out
    }

    /// Point-in-time copy of the node thread's runtime counters. Cheap
    /// (a handful of relaxed loads), callable at any rate, and still valid after
    /// the node stops.
    pub fn runtime_stats(&self) -> RuntimeStatsSnapshot {
        self.stats.snapshot()
    }

    /// The node's runtime counters as a Prometheus text exposition page,
    /// each sample labelled with this node's id.
    pub fn prometheus(&self) -> String {
        let snap = self.runtime_stats();
        let label = format!("node=\"{}\"", escape_label(&self.id.to_string()));
        let mut out = String::new();
        for (name, v) in snap.rows() {
            render_counters(
                &mut out,
                &format!("peerwindow_node_{name}_total"),
                "Transport runtime counter.",
                &[(label.clone(), v)],
            );
        }
        out
    }

    /// Turns structured protocol tracing on or off. Returns `false` if
    /// the node has stopped.
    #[cfg(feature = "trace")]
    pub fn set_tracing(&self, on: bool) -> bool {
        self.control(Control::SetTracing(on))
    }

    /// Requests a graceful shutdown and joins the thread.
    pub fn shutdown(mut self) {
        let _ = self.ctl.send(Control::Shutdown);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for NodeHandle {
    fn drop(&mut self) {
        let _ = self.ctl.send(Control::Shutdown);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Errors from [`spawn_node`].
#[derive(Debug)]
pub enum SpawnError {
    /// Socket setup failed.
    Io(std::io::Error),
    /// The bootstrap node did not answer the discovery probe.
    BootstrapUnreachable,
}

impl From<std::io::Error> for SpawnError {
    fn from(e: std::io::Error) -> Self {
        SpawnError::Io(e)
    }
}

fn addr_of(sock: SocketAddrV4) -> Addr {
    Addr::from_v4(sock.ip().octets(), sock.port())
}

fn sock_of(addr: Addr) -> SocketAddrV4 {
    let (ip, port) = addr.to_v4();
    SocketAddrV4::new(Ipv4Addr::from(ip), port)
}

/// Spawns a PeerWindow node on its own thread. Returns once the socket is
/// bound and (for joiners) the bootstrap node has been discovered.
pub fn spawn_node(cfg: RuntimeConfig) -> Result<NodeHandle, SpawnError> {
    let socket = UdpSocket::bind(SocketAddr::V4(cfg.listen))?;
    let local = match socket.local_addr()? {
        SocketAddr::V4(v4) => v4,
        SocketAddr::V6(_) => unreachable!("bound v4"),
    };
    let my_addr = addr_of(local);
    socket.set_read_timeout(Some(Duration::from_millis(10)))?;

    // Bootstrap discovery: the §4.3 join needs the bootstrap's NodeId,
    // which we learn from a transport-level probe (every envelope carries
    // the sender id).
    let bootstrap_target = match cfg.bootstrap {
        None => None,
        Some(peer) => {
            let probe = encode(cfg.id, my_addr, &Message::Probe);
            let mut found = None;
            let mut buf = [0u8; 2048];
            'discovery: for _attempt in 0..50 {
                socket.send_to(&probe, SocketAddr::V4(peer))?;
                let deadline = Instant::now() + Duration::from_millis(100);
                while Instant::now() < deadline {
                    match socket.recv_from(&mut buf) {
                        Ok((n, _)) => {
                            if let Ok(env) = decode(&buf[..n]) {
                                if matches!(env.msg, Message::ProbeAck) {
                                    found = Some(Target {
                                        id: env.from,
                                        addr: addr_of(peer),
                                        level: Level::MAX, // unknown yet
                                    });
                                    break 'discovery;
                                }
                            }
                        }
                        Err(ref e)
                            if e.kind() == std::io::ErrorKind::WouldBlock
                                || e.kind() == std::io::ErrorKind::TimedOut => {}
                        Err(e) => return Err(SpawnError::Io(e)),
                    }
                }
            }
            Some(found.ok_or(SpawnError::BootstrapUnreachable)?)
        }
    };

    let (machine, initial) = match bootstrap_target {
        None => NodeMachine::new_seed(
            cfg.protocol,
            cfg.id,
            my_addr,
            cfg.info,
            cfg.threshold_bps,
            cfg.seed,
        ),
        Some(boot) => NodeMachine::new_joining(
            cfg.protocol,
            cfg.id,
            my_addr,
            cfg.info,
            cfg.threshold_bps,
            boot,
            cfg.seed,
        ),
    };

    let (ctl_tx, ctl_rx) = bounded(64);
    let id = cfg.id;
    let diag = Arc::new(Mutex::new(Vec::new()));
    let diag_thread = Arc::clone(&diag);
    let stats = Arc::new(RuntimeStats::default());
    let stats_thread = Arc::clone(&stats);
    // Serving layer: the node thread owns the publisher; the handle (and
    // anything it hands the reader to) loads snapshots lock-free.
    let snap_pub = SnapshotPublisher::new();
    let snap_reader = snap_pub.reader();
    // Bootstrap discovery above ran on the raw socket: a node must be
    // able to find its bootstrap even under a plan that would condition
    // that link (the shim models the network misbehaving *after* the
    // operator managed to start the process).
    let fsock =
        crate::shim::FaultingSocket::new(socket, Arc::clone(&stats), cfg.shim.as_ref(), local);
    let clock_offset_us = cfg.clock_offset_us;
    let thread = std::thread::Builder::new()
        .name(format!("pwnode-{id}"))
        .spawn(move || {
            run_loop(
                fsock,
                clock_offset_us,
                machine,
                initial,
                ctl_rx,
                diag_thread,
                stats_thread,
                snap_pub,
            )
        })
        .map_err(SpawnError::Io)?;
    Ok(NodeHandle {
        id,
        local_addr: local,
        ctl: ctl_tx,
        diag,
        stats,
        snapshots: snap_reader,
        thread: Some(thread),
    })
}

/// Timer-or-delayed-send entries, ordered by due time.
enum Due {
    Timer(Timer),
    Send(Target, Message),
    /// A judged-and-admitted frame whose socket write failed transiently
    /// (`EAGAIN`, `ECONNREFUSED`, …): retry it as-is, with backoff.
    Resend(SocketAddrV4, Vec<u8>, u32),
}

/// First resend delay; subsequent attempts back off ×4 (50 ms, 200 ms,
/// 800 ms — the same doubling-style policy as the protocol's §4.1 RPC
/// backoff, compressed to socket timescales).
const RESEND_BASE_US: u64 = 50_000;
/// Socket write attempts per frame before giving up (the protocol's own
/// RPC retry machinery owns recovery beyond the transport's budget).
const RESEND_MAX_ATTEMPTS: u32 = 3;
/// How long a shutting-down node keeps draining: long enough for the
/// §4.3 leave multicast's first retries and any shim-delayed frames to
/// flush, short enough that embedders' drop paths stay snappy.
const DRAIN_US: u64 = 300_000;

/// Runtime diagnostics, routed through the trace layer rather than
/// stderr (library code never prints — the audit lint enforces this).
/// Each event is flushed to the shared log immediately so it survives
/// the node thread.
struct Diag {
    trace: NodeTrace,
    shared: Arc<Mutex<Vec<TraceRecord>>>,
}

impl Diag {
    fn new(me: NodeId, shared: Arc<Mutex<Vec<TraceRecord>>>) -> Self {
        let mut trace = NodeTrace::new(me.0);
        trace.set_enabled(true);
        Diag { trace, shared }
    }

    fn emit(&mut self, now_us: u64, code: DiagCode) {
        self.trace.set_now(now_us);
        self.trace
            .emit(0, TraceEventKind::Diag { code }, CauseId::NONE);
        if let Ok(mut log) = self.shared.lock() {
            self.trace.drain_into(&mut log);
        }
    }
}

/// Moves the machine's buffered protocol records into the shared log.
#[cfg(feature = "trace")]
fn drain_machine(machine: &mut NodeMachine, shared: &Mutex<Vec<TraceRecord>>) {
    if let Ok(mut log) = shared.lock() {
        machine.take_trace(&mut log);
    }
}

#[allow(clippy::too_many_arguments)]
fn run_loop(
    mut fsock: crate::shim::FaultingSocket,
    clock_offset_us: u64,
    mut machine: NodeMachine,
    initial: Vec<Output>,
    ctl: Receiver<Control>,
    diag_log: Arc<Mutex<Vec<TraceRecord>>>,
    stats: Arc<RuntimeStats>,
    mut snap_pub: SnapshotPublisher,
) {
    let start = Instant::now();
    let now_us = |start: &Instant| clock_offset_us + start.elapsed().as_micros() as u64;
    let mut heap: BinaryHeap<Reverse<(u64, u64, usize)>> = BinaryHeap::new();
    let mut parked: Vec<Option<Due>> = Vec::new();
    let mut seq = 0u64;
    let mut buf = [0u8; 65_536];
    let me = machine.id();
    let my_addr = machine.addr();
    let mut stopping = false;
    // Once set, the loop keeps servicing timers, retries, and inbound
    // acks until the deadline, then exits: drain-then-close, so a leave
    // multicast (and its first retries) survives the shutdown request.
    let mut drain_until: Option<u64> = None;
    let mut recv_errors_in_a_row = 0u32;
    let mut diag = Diag::new(me, diag_log);

    let schedule = |heap: &mut BinaryHeap<Reverse<(u64, u64, usize)>>,
                    parked: &mut Vec<Option<Due>>,
                    seq: &mut u64,
                    at: u64,
                    due: Due| {
        *seq += 1;
        parked.push(Some(due));
        heap.push(Reverse((at, *seq, parked.len() - 1)));
    };

    // Judge-and-transmit one encoded frame; a transient socket failure
    // schedules the first resend rather than losing the frame.
    let transmit = |frame: Vec<u8>,
                    dest: SocketAddrV4,
                    now: u64,
                    fsock: &mut crate::shim::FaultingSocket,
                    heap: &mut BinaryHeap<Reverse<(u64, u64, usize)>>,
                    parked: &mut Vec<Option<Due>>,
                    seq: &mut u64| {
        if fsock.send_judged(now, &frame, dest).is_err() {
            stats.note_send_retry();
            schedule(
                heap,
                parked,
                seq,
                now + RESEND_BASE_US,
                Due::Resend(dest, frame, 1),
            );
        }
    };

    let process = |outs: Vec<Output>,
                   now: u64,
                   fsock: &mut crate::shim::FaultingSocket,
                   heap: &mut BinaryHeap<Reverse<(u64, u64, usize)>>,
                   parked: &mut Vec<Option<Due>>,
                   seq: &mut u64,
                   stopping: &mut bool,
                   diag: &mut Diag| {
        for o in outs {
            match o {
                Output::Send { to, msg, delay_us } => {
                    if delay_us == 0 {
                        let frame = encode(me, my_addr, &msg);
                        if frame.len() > 65_000 {
                            // Dropped rather than truncated — see the
                            // module docs on UDP download limits.
                            RuntimeStats::bump(&stats.oversized_frames);
                            diag.emit(now, DiagCode::OversizedFrame);
                        } else {
                            transmit(frame, sock_of(to.addr), now, fsock, heap, parked, seq);
                        }
                    } else {
                        schedule(heap, parked, seq, now + delay_us, Due::Send(to, msg));
                    }
                }
                Output::SetTimer { delay_us, timer } => {
                    schedule(heap, parked, seq, now + delay_us, Due::Timer(timer));
                }
                Output::Fatal(_reason) => {
                    diag.emit(now, DiagCode::Fatal);
                    *stopping = true;
                }
                // Joined / FailureDetected / LevelShifted are
                // observable through snapshots; real applications
                // would hook them here.
                _ => {}
            }
        }
    };

    // The machine's state right out of the constructor is epoch 0: a
    // reader resolved from the handle sees the node before its first
    // event rather than an empty placeholder.
    if snap_pub.maybe_publish(&machine, now_us(&start)) {
        RuntimeStats::bump(&stats.snapshots_published);
    }
    let mut outs = initial;
    loop {
        let now = now_us(&start);
        process(
            outs,
            now,
            &mut fsock,
            &mut heap,
            &mut parked,
            &mut seq,
            &mut stopping,
            &mut diag,
        );
        outs = Vec::new();
        // Serving layer: mirror any peer-list change from the events
        // handled in the previous iteration (message input, timers,
        // control commands) into the lock-free cell. Generation-gated —
        // an idle pass costs one integer compare.
        if snap_pub.maybe_publish(&machine, now) {
            RuntimeStats::bump(&stats.snapshots_published);
        }
        if stopping {
            return;
        }

        // Flush shim-delayed frames that have come due, then fire due
        // timers and delayed sends.
        let now = now_us(&start);
        fsock.pump(now);
        if let Some(deadline) = drain_until {
            if now >= deadline || (!fsock.has_pending() && heap.is_empty()) {
                return;
            }
        }
        while let Some(&Reverse((at, _, idx))) = heap.peek() {
            if at > now {
                break;
            }
            heap.pop();
            match parked[idx].take() {
                Some(Due::Timer(t)) => {
                    RuntimeStats::bump(&stats.timers_fired);
                    let o = machine.handle(now, Input::Timer(t));
                    #[cfg(feature = "trace")]
                    drain_machine(&mut machine, &diag.shared);
                    process(
                        o,
                        now,
                        &mut fsock,
                        &mut heap,
                        &mut parked,
                        &mut seq,
                        &mut stopping,
                        &mut diag,
                    );
                }
                Some(Due::Send(to, msg)) => {
                    let frame = encode(me, my_addr, &msg);
                    if frame.len() > 65_000 {
                        RuntimeStats::bump(&stats.oversized_frames);
                        diag.emit(now, DiagCode::OversizedFrame);
                    } else {
                        transmit(
                            frame,
                            sock_of(to.addr),
                            now,
                            &mut fsock,
                            &mut heap,
                            &mut parked,
                            &mut seq,
                        );
                    }
                }
                Some(Due::Resend(dest, frame, attempt)) => {
                    // Already judged and admitted: retries bypass the
                    // shim so one frame cannot be charged two verdicts.
                    match fsock.send_raw(&frame, dest) {
                        Ok(()) => {}
                        Err(_) if attempt < RESEND_MAX_ATTEMPTS => {
                            stats.note_send_retry();
                            let wait = RESEND_BASE_US << (2 * attempt);
                            schedule(
                                &mut heap,
                                &mut parked,
                                &mut seq,
                                now + wait,
                                Due::Resend(dest, frame, attempt + 1),
                            );
                        }
                        Err(_) => {
                            stats.note_backoff_exhausted();
                            diag.emit(now, DiagCode::SocketError);
                        }
                    }
                }
                None => {}
            }
            if stopping {
                return;
            }
        }

        // Control commands.
        while let Ok(c) = ctl.try_recv() {
            let now = now_us(&start);
            match c {
                Control::Snapshot(reply) => {
                    let snap = Snapshot {
                        id: machine.id(),
                        level: machine.level(),
                        is_active: machine.is_active(),
                        peers: machine.peers().iter().cloned().collect(),
                        tops: machine.tops().entries().to_vec(),
                        stats: machine.stats(),
                    };
                    // Blocking send: the requester either receives the
                    // snapshot or has dropped its receiver (in which
                    // case this returns an error immediately). Never a
                    // silent try_send drop.
                    let _ = reply.send(snap);
                }
                Control::ChangeInfo(info) => {
                    let o = machine.handle(now, Input::Command(Command::ChangeInfo(info)));
                    #[cfg(feature = "trace")]
                    drain_machine(&mut machine, &diag.shared);
                    process(
                        o,
                        now,
                        &mut fsock,
                        &mut heap,
                        &mut parked,
                        &mut seq,
                        &mut stopping,
                        &mut diag,
                    );
                }
                #[cfg(feature = "trace")]
                Control::SetTracing(on) => {
                    machine.set_tracing(on);
                }
                Control::SetThreshold(bps) => {
                    let o = machine.handle(now, Input::Command(Command::SetThreshold(bps)));
                    #[cfg(feature = "trace")]
                    drain_machine(&mut machine, &diag.shared);
                    process(
                        o,
                        now,
                        &mut fsock,
                        &mut heap,
                        &mut parked,
                        &mut seq,
                        &mut stopping,
                        &mut diag,
                    );
                }
                Control::Shutdown => {
                    if drain_until.is_none() {
                        let o = machine.handle(now, Input::Command(Command::Shutdown));
                        #[cfg(feature = "trace")]
                        drain_machine(&mut machine, &diag.shared);
                        // The leave announcement goes through the normal
                        // send path (shim, retries, delayed copies); the
                        // drain window below keeps the loop alive long
                        // enough to flush it and service the first acks.
                        process(
                            o,
                            now,
                            &mut fsock,
                            &mut heap,
                            &mut parked,
                            &mut seq,
                            &mut stopping,
                            &mut diag,
                        );
                        drain_until = Some(now + DRAIN_US);
                    }
                }
            }
        }
        // Timer fires and control commands above mutate the list too;
        // publish before blocking on the socket so readers never wait a
        // read-timeout behind a change that already happened.
        if snap_pub.maybe_publish(&machine, now_us(&start)) {
            RuntimeStats::bump(&stats.snapshots_published);
        }

        // Network input (10 ms read timeout set at bind).
        match fsock.recv_from(&mut buf) {
            Ok((n, _peer)) => {
                recv_errors_in_a_row = 0;
                RuntimeStats::bump(&stats.datagrams_in);
                match decode(&buf[..n]) {
                    Ok(env) => {
                        let now = now_us(&start);
                        let o = machine.handle(
                            now,
                            Input::Message {
                                from: env.from,
                                from_addr: env.from_addr,
                                msg: env.msg,
                            },
                        );
                        #[cfg(feature = "trace")]
                        drain_machine(&mut machine, &diag.shared);
                        outs = o;
                    }
                    Err(_) => RuntimeStats::bump(&stats.decode_errors),
                }
            }
            Err(ref e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                recv_errors_in_a_row = 0;
            }
            Err(_e) => {
                // A recv error is usually transient (Linux queues an
                // ICMP port-unreachable as ECONNREFUSED on the next
                // read after a send to a dead peer — exactly what a
                // crashed neighbour produces). Log it and keep serving;
                // only a persistently broken socket is fatal.
                diag.emit(now_us(&start), DiagCode::SocketError);
                recv_errors_in_a_row += 1;
                if recv_errors_in_a_row > 100 {
                    diag.emit(now_us(&start), DiagCode::Fatal);
                    return;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_copies_every_counter() {
        let stats = RuntimeStats::default();
        RuntimeStats::bump(&stats.datagrams_in);
        RuntimeStats::bump(&stats.datagrams_in);
        RuntimeStats::bump(&stats.datagrams_out);
        RuntimeStats::bump(&stats.decode_errors);
        RuntimeStats::bump(&stats.oversized_frames);
        RuntimeStats::bump(&stats.timers_fired);
        stats.note_shim_dropped();
        stats.note_shim_dropped();
        stats.note_shim_duplicated();
        stats.note_shim_delayed();
        stats.note_send_retry();
        stats.note_backoff_exhausted();
        RuntimeStats::bump(&stats.snapshots_published);
        let snap = stats.snapshot();
        assert_eq!(snap.datagrams_in, 2);
        assert_eq!(snap.datagrams_out, 1);
        assert_eq!(snap.decode_errors, 1);
        assert_eq!(snap.oversized_frames, 1);
        assert_eq!(snap.timers_fired, 1);
        assert_eq!(snap.shim_dropped, 2);
        assert_eq!(snap.shim_duplicated, 1);
        assert_eq!(snap.shim_delayed, 1);
        assert_eq!(snap.send_retries, 1);
        assert_eq!(snap.backoff_exhaustions, 1);
        assert_eq!(snap.snapshots_published, 1);
    }

    #[test]
    fn rows_cover_every_field_in_declaration_order() {
        let snap = RuntimeStatsSnapshot {
            datagrams_in: 1,
            datagrams_out: 2,
            decode_errors: 3,
            oversized_frames: 4,
            timers_fired: 5,
            shim_dropped: 6,
            shim_duplicated: 7,
            shim_delayed: 8,
            send_retries: 9,
            backoff_exhaustions: 10,
            snapshots_published: 11,
        };
        let rows = snap.rows();
        assert_eq!(rows[0], ("datagrams_in", 1));
        assert_eq!(rows[4], ("timers_fired", 5));
        assert_eq!(rows[5], ("shim_dropped", 6));
        assert_eq!(rows[9], ("backoff_exhaustions", 10));
        assert_eq!(rows[10], ("snapshots_published", 11));
        assert_eq!(rows.iter().map(|(_, v)| v).sum::<u64>(), 66);
    }

    #[test]
    fn prometheus_page_renders_without_a_socket() {
        // Rendering only needs the snapshot, not a live node: build the
        // page the way NodeHandle::prometheus does.
        let stats = RuntimeStats::default();
        RuntimeStats::bump(&stats.timers_fired);
        let snap = stats.snapshot();
        let label = format!("node=\"{}\"", escape_label("0xabc"));
        let mut out = String::new();
        for (name, v) in snap.rows() {
            render_counters(
                &mut out,
                &format!("peerwindow_node_{name}_total"),
                "Transport runtime counter.",
                &[(label.clone(), v)],
            );
        }
        assert!(out.contains("# TYPE peerwindow_node_timers_fired_total counter"));
        assert!(out.contains("peerwindow_node_timers_fired_total{node=\"0xabc\"} 1"));
        assert!(out.contains("peerwindow_node_datagrams_in_total{node=\"0xabc\"} 0"));
    }
}
