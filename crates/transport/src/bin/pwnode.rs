//! A standalone PeerWindow node over UDP.
//!
//! ```text
//! # start a seed node:
//! pwnode --listen 127.0.0.1:7000
//! # join it:
//! pwnode --listen 127.0.0.1:7001 --bootstrap 127.0.0.1:7000 \
//!        --budget 5000 --info "os:linux"
//! ```
//!
//! Prints a peer-list summary every few seconds. Ctrl-C to quit
//! (ungracefully — watch the other nodes detect it within a few probe
//! intervals).
//!
//! Cluster-harness flags (used by `pwcluster`):
//!
//! * `--fault-plan FILE` — a shared shim-spec file (roster + epoch +
//!   fault plan). Outbound datagrams are conditioned by the plan, and
//!   the node's clock is offset to the cluster epoch so the plan's
//!   windows (and event origin timestamps) agree across processes.
//! * `--ctl PORT` — a loopback UDP control port answering `snap` (one
//!   JSON state snapshot per datagram), `query epoch` / `query count` /
//!   `query strongest K` (served lock-free from the published peer-list
//!   snapshot, no node-thread round trip), and `stop` (graceful leave,
//!   then exit). Lets a supervisor poll and stop nodes without pipes.
//! * `--fast` — test-scale protocol cadence (0.5 s probes) so failure
//!   detection and convergence happen in seconds, not minutes.

use bytes::Bytes;
use peerwindow_core::prelude::*;
use peerwindow_trace::json::write_str;
use peerwindow_transport::{spawn_node, NodeHandle, RuntimeConfig, ShimSpec, Snapshot};
use std::net::{Ipv4Addr, SocketAddrV4, UdpSocket};
use std::time::{Duration, Instant};

struct Opts {
    cfg: RuntimeConfig,
    ctl_port: Option<u16>,
}

fn parse_args() -> Opts {
    let mut listen: SocketAddrV4 = "127.0.0.1:0".parse().unwrap();
    let mut bootstrap: Option<SocketAddrV4> = None;
    let mut budget = 50_000.0;
    let mut info = Bytes::new();
    let mut seed = 0x5EED;
    let mut fault_plan: Option<String> = None;
    let mut ctl_port = None;
    let mut fast = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--listen" => {
                listen = it
                    .next()
                    .expect("--listen ADDR")
                    .parse()
                    .expect("ipv4:port")
            }
            "--bootstrap" => {
                bootstrap = Some(
                    it.next()
                        .expect("--bootstrap ADDR")
                        .parse()
                        .expect("ipv4:port"),
                )
            }
            "--budget" => budget = it.next().expect("--budget BPS").parse().expect("number"),
            "--info" => info = Bytes::from(it.next().expect("--info STRING")),
            "--seed" => seed = it.next().expect("--seed N").parse().expect("number"),
            "--fault-plan" => fault_plan = Some(it.next().expect("--fault-plan FILE")),
            "--ctl" => ctl_port = Some(it.next().expect("--ctl PORT").parse().expect("port")),
            "--fast" => fast = true,
            other => {
                eprintln!("unknown argument {other}");
                eprintln!(
                    "usage: pwnode --listen IP:PORT [--bootstrap IP:PORT] [--budget BPS] \
                     [--info S] [--seed N] [--fault-plan FILE] [--ctl PORT] [--fast]"
                );
                std::process::exit(2);
            }
        }
    }
    // Derive the node id from the listen address + seed (a real
    // deployment would hash a persistent public key). Stable across
    // restarts of the same (addr, seed), so a crash-restarted node
    // rejoins under its old identity.
    let id = {
        let mut h = seed ^ 0x9E3779B97F4A7C15u64;
        for b in listen.to_string().bytes() {
            h = h.wrapping_mul(1099511628211).wrapping_add(b as u64);
        }
        // Finalize with a splitmix round: FNV alone leaves adjacent
        // ports adjacent in id space, which would cluster a whole
        // loopback roster under one long shared prefix.
        let mix = |mut z: u64| {
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        NodeId(((mix(h) as u128) << 64) | mix(h ^ 0x6A09E667F3BCC909) as u128)
    };
    let shim = fault_plan.map(|path| {
        ShimSpec::load(std::path::Path::new(&path)).unwrap_or_else(|e| {
            eprintln!("bad --fault-plan: {e}");
            std::process::exit(2);
        })
    });
    let clock_offset_us = shim.as_ref().map(|s| s.wall_offset_us()).unwrap_or(0);
    // `--fast` also stretches §4.1 give-up (6 backed-off attempts span
    // 0.25·(2⁶−1) ≈ 15.75 s) so a ~10 s partition window never falsely
    // expunges anyone and the halves re-converge on their own — the
    // pwchaos stub-partition-heal lesson, applied to real sockets.
    let (probe, rpc, window, attempts) = if fast {
        (500_000, 250_000, 2_000_000, 6)
    } else {
        (3_000_000, 1_000_000, 10_000_000, 3)
    };
    Opts {
        cfg: RuntimeConfig {
            protocol: ProtocolConfig {
                processing_delay_us: 0,
                probe_interval_us: probe,
                rpc_timeout_us: rpc,
                bandwidth_window_us: window,
                max_attempts: attempts,
                ..ProtocolConfig::default()
            },
            id,
            listen,
            bootstrap,
            threshold_bps: budget,
            info,
            seed,
            shim,
            clock_offset_us,
        },
        ctl_port,
    }
}

/// One `snap` reply: the node's state as a single JSON datagram, parsed
/// on the other end by `peerwindow_trace::json` (numbers are u64, so
/// ids travel as hex strings).
fn snapshot_json(s: &Snapshot, handle: &NodeHandle) -> String {
    let mut out = String::from("{\"id\":");
    write_str(&mut out, &s.id.to_string());
    out.push_str(&format!(
        ",\"level\":{},\"active\":{}",
        s.level.value(),
        u8::from(s.is_active)
    ));
    out.push_str(",\"peers\":[");
    for (i, p) in s.peers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_str(&mut out, &p.id.to_string());
    }
    out.push_str("],\"runtime\":{");
    for (i, (name, v)) in handle.runtime_stats().rows().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_str(&mut out, name);
        out.push_str(&format!(":{v}"));
    }
    out.push_str(&format!(
        "}},\"failures\":{},\"rpc_retries\":{}}}",
        s.stats.failures_detected, s.stats.rpc_retries
    ));
    out
}

/// Serves one `query …` control command straight from the lock-free
/// snapshot reader — no round trip through the node thread's control
/// channel, so queries answer at full rate even while the node is busy
/// with protocol work (and keep answering the last published state
/// during its shutdown drain).
///
/// * `query epoch` — `{"epoch":N,"at_us":N,"pointers":N}`
/// * `query count` — `{"pointers":N}`
/// * `query strongest K` — up to K pointers, strongest level first
fn query_json(reader: &SnapshotReader, args: &[&str]) -> String {
    let snap = reader.load();
    match args {
        ["epoch"] => format!(
            "{{\"epoch\":{},\"at_us\":{},\"pointers\":{}}}",
            snap.epoch,
            snap.at_us,
            snap.len()
        ),
        ["count"] => format!("{{\"pointers\":{}}}", snap.len()),
        ["strongest", k] => match k.parse::<usize>() {
            Ok(k) => {
                let mut out = format!("{{\"epoch\":{},\"strongest\":[", snap.epoch);
                for (i, p) in snap.strongest(k).iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str("{\"id\":");
                    write_str(&mut out, &p.id.to_string());
                    out.push_str(&format!(",\"level\":{}}}", p.level.value()));
                }
                out.push_str("]}");
                out
            }
            Err(_) => String::from("err strongest needs a count"),
        },
        _ => String::from("err unknown query (epoch | count | strongest K)"),
    }
}

fn print_summary(s: &Snapshot) {
    println!(
        "level {} | {} peers | active: {} | rx {} kbit, tx {} kbit",
        s.level,
        s.peers.len(),
        s.is_active,
        s.stats.rx_bits / 1000,
        s.stats.tx_bits / 1000,
    );
    for p in s.peers.iter().take(6) {
        println!(
            "  {}  {}  {:?}",
            &p.id.to_string()[..12],
            p.level,
            String::from_utf8_lossy(&p.info)
        );
    }
}

fn dump_diags_and_exit(handle: NodeHandle) -> ! {
    eprintln!("node stopped");
    // Terminal diagnostics (fatal / socket error) survive the node
    // thread; dump them as JSONL for the operator.
    eprint!(
        "{}",
        peerwindow_trace::jsonl::to_string(&handle.take_diagnostics())
    );
    std::process::exit(1);
}

fn main() {
    let opts = parse_args();
    let role = if opts.cfg.bootstrap.is_some() {
        "joining"
    } else {
        "seed"
    };
    println!("pwnode {} ({role})", opts.cfg.id);
    let ctl = opts.ctl_port.map(|port| {
        let sock =
            UdpSocket::bind(SocketAddrV4::new(Ipv4Addr::LOCALHOST, port)).unwrap_or_else(|e| {
                eprintln!("cannot bind --ctl port {port}: {e}");
                std::process::exit(2);
            });
        sock.set_read_timeout(Some(Duration::from_millis(250)))
            .expect("read timeout");
        sock
    });
    let handle = match spawn_node(opts.cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("failed to start: {e:?}");
            std::process::exit(1);
        }
    };
    println!("listening on {}", handle.local_addr);

    let mut last_print = Instant::now();
    let mut buf = [0u8; 512];
    loop {
        match &ctl {
            Some(sock) => {
                // Err is the read timeout: fall through to the
                // periodic print below.
                if let Ok((n, peer)) = sock.recv_from(&mut buf) {
                    match &buf[..n] {
                        b"snap" => {
                            let Some(s) = handle.snapshot(Duration::from_secs(1)) else {
                                dump_diags_and_exit(handle);
                            };
                            let _ = sock.send_to(snapshot_json(&s, &handle).as_bytes(), peer);
                        }
                        b"stop" => {
                            let _ = sock.send_to(b"bye", peer);
                            handle.shutdown();
                            std::process::exit(0);
                        }
                        cmd if cmd.starts_with(b"query") => {
                            let text = String::from_utf8_lossy(cmd);
                            let args: Vec<&str> = text.split_whitespace().skip(1).collect();
                            let reply = query_json(&handle.snapshot_reader(), &args);
                            let _ = sock.send_to(reply.as_bytes(), peer);
                        }
                        _ => {
                            let _ = sock.send_to(b"err unknown command", peer);
                        }
                    }
                }
            }
            None => std::thread::sleep(Duration::from_secs(3)),
        }
        if last_print.elapsed() >= Duration::from_secs(3) {
            last_print = Instant::now();
            let Some(s) = handle.snapshot(Duration::from_secs(1)) else {
                dump_diags_and_exit(handle);
            };
            print_summary(&s);
        }
    }
}
