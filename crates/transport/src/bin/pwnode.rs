//! A standalone PeerWindow node over UDP.
//!
//! ```text
//! # start a seed node:
//! pwnode --listen 127.0.0.1:7000
//! # join it:
//! pwnode --listen 127.0.0.1:7001 --bootstrap 127.0.0.1:7000 \
//!        --budget 5000 --info "os:linux"
//! ```
//!
//! Prints a peer-list summary every few seconds. Ctrl-C to quit
//! (ungracefully — watch the other nodes detect it within a few probe
//! intervals).

use bytes::Bytes;
use peerwindow_core::prelude::*;
use peerwindow_transport::{spawn_node, RuntimeConfig};
use std::net::SocketAddrV4;
use std::time::Duration;

fn parse_args() -> RuntimeConfig {
    let mut listen: SocketAddrV4 = "127.0.0.1:0".parse().unwrap();
    let mut bootstrap: Option<SocketAddrV4> = None;
    let mut budget = 50_000.0;
    let mut info = Bytes::new();
    let mut seed = 0x5EED;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--listen" => {
                listen = it
                    .next()
                    .expect("--listen ADDR")
                    .parse()
                    .expect("ipv4:port")
            }
            "--bootstrap" => {
                bootstrap = Some(
                    it.next()
                        .expect("--bootstrap ADDR")
                        .parse()
                        .expect("ipv4:port"),
                )
            }
            "--budget" => budget = it.next().expect("--budget BPS").parse().expect("number"),
            "--info" => info = Bytes::from(it.next().expect("--info STRING")),
            "--seed" => seed = it.next().expect("--seed N").parse().expect("number"),
            other => {
                eprintln!("unknown argument {other}");
                eprintln!("usage: pwnode --listen IP:PORT [--bootstrap IP:PORT] [--budget BPS] [--info S]");
                std::process::exit(2);
            }
        }
    }
    // Derive the node id from the listen address + seed (a real
    // deployment would hash a persistent public key).
    let id = {
        let mut h = seed ^ 0x9E3779B97F4A7C15u64;
        for b in listen.to_string().bytes() {
            h = h.wrapping_mul(1099511628211).wrapping_add(b as u64);
        }
        NodeId(((h as u128) << 64) | h.wrapping_mul(0xBF58476D1CE4E5B9) as u128)
    };
    RuntimeConfig {
        protocol: ProtocolConfig {
            processing_delay_us: 0,
            probe_interval_us: 3_000_000,
            rpc_timeout_us: 1_000_000,
            bandwidth_window_us: 10_000_000,
            ..ProtocolConfig::default()
        },
        id,
        listen,
        bootstrap,
        threshold_bps: budget,
        info,
        seed,
    }
}

fn main() {
    let cfg = parse_args();
    let role = if cfg.bootstrap.is_some() {
        "joining"
    } else {
        "seed"
    };
    println!("pwnode {} ({role})", cfg.id);
    let handle = match spawn_node(cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("failed to start: {e:?}");
            std::process::exit(1);
        }
    };
    println!("listening on {}", handle.local_addr);
    loop {
        std::thread::sleep(Duration::from_secs(3));
        let Some(s) = handle.snapshot(Duration::from_secs(1)) else {
            eprintln!("node stopped");
            // Terminal diagnostics (fatal / socket error) survive the
            // node thread; dump them as JSONL for the operator.
            eprint!(
                "{}",
                peerwindow_trace::jsonl::to_string(&handle.take_diagnostics())
            );
            std::process::exit(1);
        };
        println!(
            "level {} | {} peers | active: {} | rx {} kbit, tx {} kbit",
            s.level,
            s.peers.len(),
            s.is_active,
            s.stats.rx_bits / 1000,
            s.stats.tx_bits / 1000,
        );
        for p in s.peers.iter().take(6) {
            println!(
                "  {}  {}  {:?}",
                &p.id.to_string()[..12],
                p.level,
                String::from_utf8_lossy(&p.info)
            );
        }
    }
}
