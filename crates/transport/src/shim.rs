//! Userspace netem shim: the sim's fault plans, applied to real UDP.
//!
//! The chaos layer built for the simulators (`peerwindow-faults`) judges
//! every datagram at send time from per-directed-link seeded streams, so
//! a `FaultPlan` is reproducible from `(plan, seed)` alone. This module
//! carries that exact machinery onto real sockets without `tc netem` or
//! root: a [`FaultingSocket`] wraps the node's `UdpSocket` and routes
//! every outbound datagram through a `LinkConditioner` before it reaches
//! the kernel. Blackholes and loss swallow the write, jitter parks the
//! frame on a delayed queue the runtime pumps, duplication queues a
//! trailing copy — the same five conditions (and domain partitions) the
//! sims run, unmodified.
//!
//! ## The shared-spec contract
//!
//! Per-link streams are keyed by *sim actor ids* (`u32`), so every
//! process in a cluster must agree on the numbering and the time base.
//! A [`ShimSpec`] file provides both:
//!
//! * a **roster** of socket addresses — a node's actor id is its roster
//!   position, so `(src_addr, dst_addr)` maps to the same directed link
//!   in every process;
//! * an **epoch** (unix microseconds) — the plan's sim-time windows are
//!   interpreted as wall-clock offsets from this instant, so a rule
//!   `from=10s until=25s` opens and heals simultaneously cluster-wide.
//!
//! Datagrams to addresses outside the roster (e.g. an operator's
//! ad-hoc probe) bypass the conditioner.
//!
//! ## What is and is not deterministic here
//!
//! The *verdict sequence per link* is: the k-th judged datagram on a
//! directed link sees the same draws in every run with the same spec.
//! What k-th datagram that is depends on real scheduling, so — unlike
//! the DES engines — end-to-end runs are not bit-reproducible; the
//! seeded streams make the *fault process* (loss pattern shape, burst
//! lengths, duplication rate) reproducible and counters comparable
//! across runs. See DESIGN.md §"Real-transport chaos".

use crate::runtime::RuntimeStats;
use peerwindow_faults::{text, FaultModel, FaultPlan, LinkConditioner, Verdict};
use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, SocketAddrV4, UdpSocket};
use std::path::Path;
use std::sync::Arc;

/// A cluster-wide chaos spec: the fault plan plus the roster and epoch
/// that anchor it to real addresses and wall-clock time.
#[derive(Clone, Debug, PartialEq)]
pub struct ShimSpec {
    /// The seeded fault schedule, in microseconds since `epoch_unix_us`.
    pub plan: FaultPlan,
    /// Cluster time zero, microseconds since the unix epoch.
    pub epoch_unix_us: u64,
    /// Actor-id table: `roster[i]` is the listen address of sim id `i`.
    pub roster: Vec<SocketAddrV4>,
}

impl ShimSpec {
    /// Serializes the spec to its line-based file format.
    pub fn to_text(&self) -> String {
        let mut out = String::from("peerwindow-shim v1\n");
        out.push_str(&format!("epoch-unix-us {}\n", self.epoch_unix_us));
        for addr in &self.roster {
            out.push_str(&format!("node {addr}\n"));
        }
        out.push_str(&text::to_text(&self.plan));
        out
    }

    /// Parses a spec file.
    pub fn from_text(input: &str) -> Result<ShimSpec, String> {
        let mut lines = input.lines();
        match lines.next().map(str::trim) {
            Some("peerwindow-shim v1") => {}
            other => return Err(format!("bad shim header {other:?}")),
        }
        let mut epoch_unix_us = None;
        let mut roster = Vec::new();
        let mut plan_text = String::new();
        let mut in_plan = false;
        for raw in lines {
            let line = raw.trim();
            if in_plan {
                plan_text.push_str(raw);
                plan_text.push('\n');
            } else if line.is_empty() || line.starts_with('#') {
                continue;
            } else if let Some(v) = line.strip_prefix("epoch-unix-us ") {
                epoch_unix_us = Some(v.trim().parse().map_err(|_| format!("bad epoch {v:?}"))?);
            } else if let Some(v) = line.strip_prefix("node ") {
                roster.push(
                    v.trim()
                        .parse()
                        .map_err(|_| format!("bad roster address {v:?}"))?,
                );
            } else {
                // First plan line; everything from here belongs to the
                // plan parser.
                in_plan = true;
                plan_text.push_str(raw);
                plan_text.push('\n');
            }
        }
        Ok(ShimSpec {
            plan: text::from_text(&plan_text)?,
            epoch_unix_us: epoch_unix_us.ok_or("missing epoch-unix-us line")?,
            roster,
        })
    }

    /// Reads and parses a spec file from disk.
    pub fn load(path: &Path) -> Result<ShimSpec, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::from_text(&text)
    }

    /// The sim actor id of `addr`, if it is in the roster.
    pub fn index_of(&self, addr: SocketAddrV4) -> Option<u32> {
        self.roster
            .iter()
            .position(|a| *a == addr)
            .map(|i| i as u32)
    }

    /// Microseconds elapsed since the cluster epoch, per the local wall
    /// clock — the `clock_offset_us` a runtime should start from so its
    /// timeline (and the event origin timestamps it stamps) line up with
    /// every other process sharing this spec.
    pub fn wall_offset_us(&self) -> u64 {
        let now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        now.saturating_sub(self.epoch_unix_us)
    }
}

/// One frame held back by a jitter/duplicate verdict (or a failed flush
/// awaiting its retry slot).
struct Delayed {
    due_us: u64,
    dst: SocketAddrV4,
    frame: Vec<u8>,
    attempts: u8,
}

/// Conditioner state, present only when this node is on the roster.
struct Shim {
    cond: LinkConditioner,
    me: u32,
    index: BTreeMap<SocketAddrV4, u32>,
    pending: Vec<Delayed>,
}

/// Retry spacing for delayed frames whose socket write failed (transient
/// `EAGAIN`/`ECONNREFUSED`); mirrors the runtime's resend backoff base.
const PUMP_RETRY_US: u64 = 20_000;
/// Attempts per delayed frame before it is abandoned.
const PUMP_MAX_ATTEMPTS: u8 = 3;

/// A `UdpSocket` whose outbound path runs through a fault plan.
///
/// With no spec (or a local address outside the roster) every call is a
/// thin pass-through; the runtime uses one code path either way. All
/// shim verdicts are folded into the shared [`RuntimeStats`] counters
/// (`shim_dropped` / `shim_duplicated` / `shim_delayed`).
pub struct FaultingSocket {
    sock: UdpSocket,
    stats: Arc<RuntimeStats>,
    shim: Option<Shim>,
}

impl FaultingSocket {
    /// Wraps `sock`. `local` is the node's bound address, used to find
    /// its actor id in the roster; a node not on the roster sends
    /// unconditioned.
    pub fn new(
        sock: UdpSocket,
        stats: Arc<RuntimeStats>,
        spec: Option<&ShimSpec>,
        local: SocketAddrV4,
    ) -> Self {
        let shim = spec.and_then(|spec| {
            let me = spec.index_of(local)?;
            let index = spec
                .roster
                .iter()
                .enumerate()
                .map(|(i, a)| (*a, i as u32))
                .collect();
            Some(Shim {
                cond: LinkConditioner::new(spec.plan.clone()),
                me,
                index,
                pending: Vec::new(),
            })
        });
        FaultingSocket { sock, stats, shim }
    }

    /// Judges and transmits one outbound frame. Swallowed and queued
    /// frames return `Ok(())`; only an immediate socket write can fail,
    /// and the caller owns that retry.
    pub fn send_judged(&mut self, now_us: u64, frame: &[u8], dst: SocketAddrV4) -> io::Result<()> {
        let verdict = match &mut self.shim {
            Some(shim) => match shim.index.get(&dst) {
                Some(&dst_id) => shim.cond.judge(now_us, shim.me, dst_id),
                None => Verdict::Deliver { extra_delay_us: 0 },
            },
            None => Verdict::Deliver { extra_delay_us: 0 },
        };
        match verdict {
            Verdict::Drop => {
                self.stats.note_shim_dropped();
                Ok(())
            }
            Verdict::Deliver { extra_delay_us: 0 } => self.send_raw(frame, dst),
            Verdict::Deliver { extra_delay_us } => {
                self.park(now_us + extra_delay_us, dst, frame.to_vec());
                Ok(())
            }
            Verdict::Duplicate {
                extra_delay_us,
                dup_extra_delay_us,
            } => {
                self.stats.note_shim_duplicated();
                let res = if extra_delay_us == 0 {
                    self.send_raw(frame, dst)
                } else {
                    self.park(now_us + extra_delay_us, dst, frame.to_vec());
                    Ok(())
                };
                self.park(now_us + dup_extra_delay_us, dst, frame.to_vec());
                res
            }
        }
    }

    fn park(&mut self, due_us: u64, dst: SocketAddrV4, frame: Vec<u8>) {
        self.stats.note_shim_delayed();
        if let Some(shim) = &mut self.shim {
            shim.pending.push(Delayed {
                due_us,
                dst,
                frame,
                attempts: 0,
            });
        }
    }

    /// Writes a frame to the socket, bypassing the conditioner (used for
    /// retries of frames that were already judged and admitted).
    pub fn send_raw(&self, frame: &[u8], dst: SocketAddrV4) -> io::Result<()> {
        self.sock.send_to(frame, SocketAddr::V4(dst)).map(|_| {
            self.stats.note_datagram_out();
        })
    }

    /// Flushes every parked frame that has come due. Write failures are
    /// retried on later pumps ([`PUMP_MAX_ATTEMPTS`] times, spaced
    /// [`PUMP_RETRY_US`] apart) and then abandoned — the peer's §4.1/§4.2
    /// retry machinery owns recovery beyond that.
    pub fn pump(&mut self, now_us: u64) {
        let Some(shim) = &mut self.shim else { return };
        let mut i = 0;
        while i < shim.pending.len() {
            if shim.pending[i].due_us > now_us {
                i += 1;
                continue;
            }
            let d = &mut shim.pending[i];
            match self.sock.send_to(&d.frame, SocketAddr::V4(d.dst)) {
                Ok(_) => {
                    self.stats.note_datagram_out();
                    shim.pending.swap_remove(i);
                }
                Err(_) => {
                    d.attempts += 1;
                    if d.attempts >= PUMP_MAX_ATTEMPTS {
                        self.stats.note_backoff_exhausted();
                        shim.pending.swap_remove(i);
                    } else {
                        self.stats.note_send_retry();
                        d.due_us = now_us + PUMP_RETRY_US;
                        i += 1;
                    }
                }
            }
        }
    }

    /// Whether any parked frame is still awaiting its due time (the
    /// shutdown drain waits for these).
    pub fn has_pending(&self) -> bool {
        self.shim.as_ref().is_some_and(|s| !s.pending.is_empty())
    }

    /// Receives one datagram (inbound traffic is never conditioned —
    /// every fault is judged on the sender side, as in the sims).
    pub fn recv_from(&self, buf: &mut [u8]) -> io::Result<(usize, SocketAddr)> {
        self.sock.recv_from(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peerwindow_faults::{Condition, FaultRule, LinkSel, NodeSel};
    use std::time::Duration;

    fn pair() -> (UdpSocket, SocketAddrV4, UdpSocket, SocketAddrV4) {
        let a = UdpSocket::bind("127.0.0.1:0").unwrap();
        let b = UdpSocket::bind("127.0.0.1:0").unwrap();
        b.set_read_timeout(Some(Duration::from_millis(300)))
            .unwrap();
        let av4 = match a.local_addr().unwrap() {
            SocketAddr::V4(v) => v,
            _ => unreachable!(),
        };
        let bv4 = match b.local_addr().unwrap() {
            SocketAddr::V4(v) => v,
            _ => unreachable!(),
        };
        (a, av4, b, bv4)
    }

    fn spec(plan: FaultPlan, roster: Vec<SocketAddrV4>) -> ShimSpec {
        ShimSpec {
            plan,
            epoch_unix_us: 1_700_000_000_000_000,
            roster,
        }
    }

    #[test]
    fn spec_file_round_trips() {
        let s = spec(
            FaultPlan::reliable(9).with_partition(1_000_000, 2_000_000, 2, &[1]),
            vec![
                "127.0.0.1:7400".parse().unwrap(),
                "127.0.0.1:7401".parse().unwrap(),
            ],
        );
        let back = ShimSpec::from_text(&s.to_text()).expect("parses");
        assert_eq!(back, s);
        assert_eq!(back.index_of("127.0.0.1:7401".parse().unwrap()), Some(1));
        assert_eq!(back.index_of("127.0.0.1:9999".parse().unwrap()), None);
        assert!(ShimSpec::from_text("nonsense").is_err());
        assert!(ShimSpec::from_text("peerwindow-shim v1\nplan seed=1").is_err());
    }

    #[test]
    fn blackhole_window_swallows_and_heals() {
        let (a, av4, b, bv4) = pair();
        let plan = FaultPlan::reliable(1).with_rule(FaultRule {
            from_us: 100,
            until_us: 200,
            links: LinkSel::one_way(NodeSel::One(0), NodeSel::One(1)),
            condition: Condition::Blackhole,
        });
        let stats = Arc::new(RuntimeStats::default());
        let mut fs = FaultingSocket::new(
            a,
            Arc::clone(&stats),
            Some(&spec(plan, vec![av4, bv4])),
            av4,
        );
        let mut buf = [0u8; 64];
        fs.send_judged(150, b"inside", bv4).unwrap();
        assert!(b.recv_from(&mut buf).is_err(), "blackholed frame arrived");
        fs.send_judged(250, b"after", bv4).unwrap();
        let (n, _) = b.recv_from(&mut buf).expect("post-heal frame arrives");
        assert_eq!(&buf[..n], b"after");
        let snap = stats.snapshot();
        assert_eq!(snap.shim_dropped, 1);
        assert_eq!(snap.datagrams_out, 1);
    }

    #[test]
    fn duplicate_verdict_sends_the_frame_twice() {
        let (a, av4, b, bv4) = pair();
        let plan = FaultPlan::reliable(2).with_rule(FaultRule {
            from_us: 0,
            until_us: u64::MAX,
            links: LinkSel::all(),
            condition: Condition::Duplicate { p: 1.0, gap_us: 1 },
        });
        let stats = Arc::new(RuntimeStats::default());
        let mut fs = FaultingSocket::new(
            a,
            Arc::clone(&stats),
            Some(&spec(plan, vec![av4, bv4])),
            av4,
        );
        fs.send_judged(10, b"twin", bv4).unwrap();
        assert!(fs.has_pending());
        fs.pump(10_000);
        assert!(!fs.has_pending());
        let mut buf = [0u8; 64];
        for _ in 0..2 {
            let (n, _) = b.recv_from(&mut buf).expect("copy arrives");
            assert_eq!(&buf[..n], b"twin");
        }
        let snap = stats.snapshot();
        assert_eq!(snap.shim_duplicated, 1);
        assert_eq!(snap.datagrams_out, 2);
    }

    #[test]
    fn off_roster_destinations_and_nodes_bypass_the_conditioner() {
        let (a, av4, b, bv4) = pair();
        let blackhole_all = FaultPlan::reliable(3).with_rule(FaultRule {
            from_us: 0,
            until_us: u64::MAX,
            links: LinkSel::all(),
            condition: Condition::Blackhole,
        });
        let stats = Arc::new(RuntimeStats::default());
        // b is NOT on the roster: frames to it skip the plan entirely.
        let mut fs = FaultingSocket::new(
            a,
            Arc::clone(&stats),
            Some(&spec(blackhole_all.clone(), vec![av4])),
            av4,
        );
        fs.send_judged(5, b"unlisted", bv4).unwrap();
        let mut buf = [0u8; 64];
        assert!(b.recv_from(&mut buf).is_ok());
        // And a sender whose own address is off the roster is fully
        // unconditioned even toward roster members.
        let (c, cv4, d, dv4) = pair();
        let mut fs2 = FaultingSocket::new(
            c,
            Arc::new(RuntimeStats::default()),
            Some(&spec(blackhole_all, vec![dv4])),
            cv4,
        );
        fs2.send_judged(5, b"outsider", dv4).unwrap();
        assert!(d.recv_from(&mut buf).is_ok());
    }
}
