//! # peerwindow-transport
//!
//! Runs the sans-IO PeerWindow node over real UDP sockets: a versioned
//! binary wire [`codec`], a single-threaded [`runtime`] that drives
//! one `NodeMachine` per node with timers, delayed sends, and an
//! application control channel, and a userspace netem [`shim`] that
//! applies the sims' seeded fault plans to real datagrams. The `pwnode`
//! binary is a ready-to-run node for ad-hoc deployments.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod codec;
pub mod runtime;
pub mod shim;

pub use codec::{decode, encode, CodecError, Envelope};
pub use runtime::{
    spawn_node, Control, NodeHandle, RuntimeConfig, RuntimeStats, RuntimeStatsSnapshot, Snapshot,
    SpawnError,
};
pub use shim::{FaultingSocket, ShimSpec};
