//! Binary wire codec for PeerWindow messages.
//!
//! A deliberately simple, versioned, fixed-layout format — no schema
//! compiler, no reflection — so the decoder is easy to audit and fuzz.
//! Every datagram is an [`Envelope`]: sender identity plus one
//! [`Message`]. Decoding never panics on malformed input.
//!
//! ```text
//! envelope := magic(u16 = 0x5057) version(u8 = 1) sender_id(u128)
//!             sender_addr(u64) msg
//! msg      := tag(u8) body
//! ```
//!
//! Integers are little-endian; variable-size fields carry a `u32` length.

use bytes::Bytes;
use peerwindow_core::prelude::*;

/// Frame magic: "PW".
pub const MAGIC: u16 = 0x5057;
/// Wire format version.
pub const VERSION: u8 = 1;

/// A decoded datagram: who sent it and what it says.
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope {
    /// Sender's node id.
    pub from: NodeId,
    /// Sender's transport address as the sender believes it to be
    /// (packed IPv4:port; see `Addr::from_v4`).
    pub from_addr: Addr,
    /// The payload.
    pub msg: Message,
}

/// Decoding errors. Malformed input yields an error, never a panic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Frame too short for the requested read.
    Truncated,
    /// Wrong magic number.
    BadMagic,
    /// Unsupported version.
    BadVersion(u8),
    /// Unknown message tag.
    BadTag(u8),
    /// A length field exceeds the remaining frame (or a sanity cap).
    BadLength,
    /// An enum discriminant is out of range.
    BadEnum,
    /// Trailing garbage after a complete message.
    TrailingBytes,
}

impl core::fmt::Display for CodecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "frame truncated"),
            CodecError::BadMagic => write!(f, "bad magic"),
            CodecError::BadVersion(v) => write!(f, "unsupported version {v}"),
            CodecError::BadTag(t) => write!(f, "unknown message tag {t}"),
            CodecError::BadLength => write!(f, "bad length field"),
            CodecError::BadEnum => write!(f, "bad enum discriminant"),
            CodecError::TrailingBytes => write!(f, "trailing bytes"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Sanity cap on any single variable-length field (64 MiB).
const MAX_FIELD: usize = 64 << 20;

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer {
            buf: Vec::with_capacity(256),
        }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }
    fn prefix(&mut self, p: Prefix) {
        self.u128(p.bits());
        self.u8(p.len());
    }
    fn target(&mut self, t: &Target) {
        self.u128(t.id.raw());
        self.u64(t.addr.0);
        self.u8(t.level.value());
    }
    fn pointer(&mut self, p: &Pointer) {
        // Local bookkeeping (refresh stamps) never crosses the wire.
        self.u128(p.id.raw());
        self.u64(p.addr.0);
        self.u8(p.level.value());
        self.bytes(&p.info);
    }
    fn event(&mut self, e: &StateEvent) {
        self.u128(e.subject.raw());
        self.u64(e.addr.0);
        self.u8(e.level.value());
        let (kind, extra) = match e.kind {
            EventKind::Join => (0u8, 0u8),
            EventKind::Leave => (1, 0),
            EventKind::LevelShift { from } => (2, from.value()),
            EventKind::InfoChange => (3, 0),
            EventKind::Refresh => (4, 0),
        };
        self.u8(kind);
        self.u8(extra);
        self.u64(e.seq);
        self.u64(e.origin_us);
        self.bytes(&e.info);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.buf.len() - self.pos < n {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn u128(&mut self) -> Result<u128, CodecError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn bytes(&mut self) -> Result<Bytes, CodecError> {
        let n = self.u32()? as usize;
        if n > MAX_FIELD {
            return Err(CodecError::BadLength);
        }
        Ok(Bytes::copy_from_slice(self.take(n)?))
    }
    fn prefix(&mut self) -> Result<Prefix, CodecError> {
        let bits = self.u128()?;
        let len = self.u8()?;
        if len > ID_BITS {
            return Err(CodecError::BadEnum);
        }
        Ok(Prefix::new(bits, len))
    }
    fn target(&mut self) -> Result<Target, CodecError> {
        Ok(Target {
            id: NodeId(self.u128()?),
            addr: Addr(self.u64()?),
            level: Level::new(self.u8()?),
        })
    }
    fn pointer(&mut self) -> Result<Pointer, CodecError> {
        let id = NodeId(self.u128()?);
        let addr = Addr(self.u64()?);
        let level = Level::new(self.u8()?);
        let info = self.bytes()?;
        Ok(Pointer::with_info(id, addr, level, info))
    }
    fn event(&mut self) -> Result<StateEvent, CodecError> {
        let subject = NodeId(self.u128()?);
        let addr = Addr(self.u64()?);
        let level = Level::new(self.u8()?);
        let kind_tag = self.u8()?;
        let extra = self.u8()?;
        let kind = match kind_tag {
            0 => EventKind::Join,
            1 => EventKind::Leave,
            2 => EventKind::LevelShift {
                from: Level::new(extra),
            },
            3 => EventKind::InfoChange,
            4 => EventKind::Refresh,
            _ => return Err(CodecError::BadEnum),
        };
        Ok(StateEvent {
            subject,
            addr,
            level,
            kind,
            seq: self.u64()?,
            origin_us: self.u64()?,
            info: self.bytes()?,
        })
    }
    fn targets(&mut self) -> Result<Vec<Target>, CodecError> {
        let n = self.u32()? as usize;
        if n > MAX_FIELD / 25 {
            return Err(CodecError::BadLength);
        }
        (0..n).map(|_| self.target()).collect()
    }
    fn done(&self) -> Result<(), CodecError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes)
        }
    }
}

fn write_targets(w: &mut Writer, ts: &[Target]) {
    w.u32(ts.len() as u32);
    for t in ts {
        w.target(t);
    }
}

/// Encodes an envelope into a fresh buffer.
pub fn encode(from: NodeId, from_addr: Addr, msg: &Message) -> Vec<u8> {
    let mut w = Writer::new();
    w.u16(MAGIC);
    w.u8(VERSION);
    w.u128(from.raw());
    w.u64(from_addr.0);
    match msg {
        Message::Probe => w.u8(0),
        Message::ProbeAck => w.u8(1),
        Message::Report { event } => {
            w.u8(2);
            w.event(event);
        }
        Message::ReportAck { key, tops } => {
            w.u8(3);
            w.u128(key.0.raw());
            w.u64(key.1);
            write_targets(&mut w, tops);
        }
        Message::Multicast { event, step } => {
            w.u8(4);
            w.event(event);
            w.u8(*step);
        }
        Message::MulticastAck { key } => {
            w.u8(5);
            w.u128(key.0.raw());
            w.u64(key.1);
        }
        Message::FindTop { joiner } => {
            w.u8(6);
            w.u128(joiner.raw());
        }
        Message::FindTopReply { tops } => {
            w.u8(7);
            write_targets(&mut w, tops);
        }
        Message::LevelQuery => w.u8(8),
        Message::LevelQueryReply { level, cost_bps } => {
            w.u8(9);
            w.u8(level.value());
            w.f64(*cost_bps);
        }
        Message::Download { scope } => {
            w.u8(10);
            w.prefix(*scope);
        }
        Message::DownloadReply {
            scope,
            pointers,
            tops,
        } => {
            w.u8(11);
            w.prefix(*scope);
            w.u32(pointers.len() as u32);
            for p in pointers {
                w.pointer(p);
            }
            write_targets(&mut w, tops);
        }
        Message::TopListRequest => w.u8(12),
        Message::TopListReply { tops } => {
            w.u8(13);
            write_targets(&mut w, tops);
        }
    }
    w.buf
}

/// Decodes an envelope; rejects malformed or trailing-garbage frames.
pub fn decode(buf: &[u8]) -> Result<Envelope, CodecError> {
    let mut r = Reader::new(buf);
    if r.u16()? != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = r.u8()?;
    if version != VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let from = NodeId(r.u128()?);
    let from_addr = Addr(r.u64()?);
    let tag = r.u8()?;
    let msg = match tag {
        0 => Message::Probe,
        1 => Message::ProbeAck,
        2 => Message::Report { event: r.event()? },
        3 => Message::ReportAck {
            key: (NodeId(r.u128()?), r.u64()?),
            tops: r.targets()?,
        },
        4 => Message::Multicast {
            event: r.event()?,
            step: r.u8()?,
        },
        5 => Message::MulticastAck {
            key: (NodeId(r.u128()?), r.u64()?),
        },
        6 => Message::FindTop {
            joiner: NodeId(r.u128()?),
        },
        7 => Message::FindTopReply { tops: r.targets()? },
        8 => Message::LevelQuery,
        9 => Message::LevelQueryReply {
            level: Level::new(r.u8()?),
            cost_bps: r.f64()?,
        },
        10 => Message::Download { scope: r.prefix()? },
        11 => {
            let scope = r.prefix()?;
            let n = r.u32()? as usize;
            if n > MAX_FIELD / 29 {
                return Err(CodecError::BadLength);
            }
            let pointers = (0..n).map(|_| r.pointer()).collect::<Result<Vec<_>, _>>()?;
            Message::DownloadReply {
                scope,
                pointers,
                tops: r.targets()?,
            }
        }
        12 => Message::TopListRequest,
        13 => Message::TopListReply { tops: r.targets()? },
        t => return Err(CodecError::BadTag(t)),
    };
    r.done()?;
    Ok(Envelope {
        from,
        from_addr,
        msg,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(msg: &Message) {
        let buf = encode(NodeId(42), Addr(7), msg);
        let env = decode(&buf).expect("decodes");
        assert_eq!(env.from, NodeId(42));
        assert_eq!(env.from_addr, Addr(7));
        // Pointers lose their local refresh stamps on the wire.
        assert_eq!(&env.msg, msg);
    }

    fn sample_event() -> StateEvent {
        StateEvent {
            subject: NodeId(0xABCD),
            addr: Addr::from_v4([10, 0, 0, 9], 4001),
            level: Level::new(3),
            kind: EventKind::LevelShift {
                from: Level::new(5),
            },
            seq: 77,
            origin_us: 123_456_789,
            info: Bytes::from_static(b"os:linux"),
        }
    }

    #[test]
    fn all_variants_roundtrip() {
        let t = Target {
            id: NodeId(1),
            addr: Addr(2),
            level: Level::TOP,
        };
        let p = Pointer::with_info(NodeId(5), Addr(6), Level::new(2), Bytes::from_static(b"x"));
        for msg in [
            Message::Probe,
            Message::ProbeAck,
            Message::Report {
                event: sample_event(),
            },
            Message::ReportAck {
                key: (NodeId(9), 4),
                tops: vec![t, t],
            },
            Message::Multicast {
                event: sample_event(),
                step: 17,
            },
            Message::MulticastAck {
                key: (NodeId(9), 4),
            },
            Message::FindTop { joiner: NodeId(3) },
            Message::FindTopReply { tops: vec![t] },
            Message::LevelQuery,
            Message::LevelQueryReply {
                level: Level::new(2),
                cost_bps: 1234.5,
            },
            Message::Download {
                scope: Prefix::from_bits_str("1011").unwrap(),
            },
            Message::DownloadReply {
                scope: Prefix::from_bits_str("10").unwrap(),
                pointers: vec![p.clone(), p],
                tops: vec![t],
            },
            Message::TopListRequest,
            Message::TopListReply { tops: vec![] },
        ] {
            roundtrip(&msg);
        }
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(decode(&[]), Err(CodecError::Truncated));
        assert_eq!(decode(&[0, 0, 0]), Err(CodecError::BadMagic));
        let mut good = encode(NodeId(1), Addr(2), &Message::Probe);
        // Wrong version.
        let mut bad = good.clone();
        bad[2] = 99;
        assert_eq!(decode(&bad), Err(CodecError::BadVersion(99)));
        // Unknown tag.
        let n = good.len();
        good[n - 1] = 200;
        assert_eq!(decode(&good), Err(CodecError::BadTag(200)));
        // Trailing garbage.
        let mut trailing = encode(NodeId(1), Addr(2), &Message::Probe);
        trailing.push(0);
        assert_eq!(decode(&trailing), Err(CodecError::TrailingBytes));
    }

    #[test]
    fn truncation_at_every_length_is_an_error_not_a_panic() {
        let buf = encode(
            NodeId(1),
            Addr(2),
            &Message::Report {
                event: sample_event(),
            },
        );
        for cut in 0..buf.len() {
            assert!(decode(&buf[..cut]).is_err(), "cut at {cut} decoded");
        }
    }

    #[test]
    fn absurd_length_fields_are_rejected() {
        // A DownloadReply claiming 2^31 pointers must not allocate.
        let mut w = encode(NodeId(1), Addr(2), &Message::TopListRequest);
        let tag_pos = w.len() - 1;
        w[tag_pos] = 13; // TopListReply
        w.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode(&w), Err(CodecError::BadLength));
    }

    #[test]
    fn duplicated_frame_is_trailing_bytes_not_a_panic() {
        // A retransmit bug (or the shim's Duplicate verdict landing two
        // datagrams in one read on a connected stream transport) must
        // surface as a loud error, not a second silently-parsed message.
        for msg in [
            Message::Probe,
            Message::Report {
                event: sample_event(),
            },
            Message::TopListReply { tops: vec![] },
        ] {
            let one = encode(NodeId(1), Addr(2), &msg);
            let mut two = one.clone();
            two.extend_from_slice(&one);
            assert_eq!(decode(&two), Err(CodecError::TrailingBytes));
        }
    }

    #[test]
    fn frames_straddling_the_64kib_datagram_boundary_roundtrip() {
        // The runtime refuses to transmit frames over 65 000 bytes, but
        // the codec itself must stay exact on either side of 64 KiB: a
        // DownloadReply big enough to cross it still round-trips, and
        // truncating it anywhere inside the last pointer errors cleanly.
        let p = Pointer::with_info(
            NodeId(0xFEED),
            Addr(9),
            Level::new(1),
            Bytes::from(vec![0xA5u8; 1000]),
        );
        let mut pointers = Vec::new();
        let mut msg = Message::DownloadReply {
            scope: Prefix::from_bits_str("0").unwrap(),
            pointers: pointers.clone(),
            tops: vec![],
        };
        while encode(NodeId(1), Addr(2), &msg).len() <= 64 << 10 {
            pointers.push(p.clone());
            msg = Message::DownloadReply {
                scope: Prefix::from_bits_str("0").unwrap(),
                pointers: pointers.clone(),
                tops: vec![],
            };
        }
        let buf = encode(NodeId(1), Addr(2), &msg);
        assert!(buf.len() > 64 << 10 && buf.len() < (64 << 10) + 2048);
        assert_eq!(decode(&buf).unwrap().msg, msg);
        for cut in [64 << 10, buf.len() - 1, buf.len() - 500] {
            assert!(decode(&buf[..cut]).is_err(), "cut at {cut} decoded");
        }
    }

    proptest! {
        #[test]
        fn random_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            let _ = decode(&data);
        }

        #[test]
        fn single_bit_flips_never_panic_and_never_alias_the_sender(
            seq in any::<u64>(),
            step in any::<u8>(),
            bit in 0usize..2048,
        ) {
            // Corrupt one bit of a real frame: decode must not panic, and
            // if the frame still parses, a flip inside the 16-byte sender
            // id field must change the reported sender (no aliasing).
            let mut event = sample_event();
            event.seq = seq;
            let mut buf = encode(NodeId(42), Addr(7), &Message::Multicast { event, step });
            let bit = bit % (buf.len() * 8);
            buf[bit / 8] ^= 1 << (bit % 8);
            if let Ok(env) = decode(&buf) {
                let id_field = 3 * 8..(3 + 16) * 8;
                if id_field.contains(&bit) {
                    prop_assert_ne!(env.from, NodeId(42));
                }
            }
        }

        #[test]
        fn multicast_roundtrips(
            subject in any::<u128>(),
            addr in any::<u64>(),
            level in 0u8..=128,
            seq in any::<u64>(),
            origin in any::<u64>(),
            step in any::<u8>(),
            info in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            let msg = Message::Multicast {
                event: StateEvent {
                    subject: NodeId(subject),
                    addr: Addr(addr),
                    level: Level::new(level),
                    kind: EventKind::Join,
                    seq,
                    origin_us: origin,
                    info: Bytes::from(info),
                },
                step,
            };
            roundtrip(&msg);
        }
    }
}
