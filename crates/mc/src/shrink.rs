//! Counterexample minimization.
//!
//! A failing trace from the breadth-first search is already depth-
//! minimal for *its* failure, but traces from replayed scenarios (and
//! traces whose failure persists under simpler prefixes) usually carry
//! freight: ops whose removal still fails, and id-table slots no
//! remaining op touches. Shrinking is oracle-driven — every candidate
//! simplification is verified by full replay before it is kept, so the
//! reported repro is guaranteed to still fail.
//!
//! Two passes, to fixpoint:
//!
//! 1. **Op deletion** — greedily drop each op; keep the deletion when
//!    the shortened trace still fails.
//! 2. **Id canonicalization** — drop id-table slots no surviving op
//!    references (the seed slot stays), compacting the remaining ids
//!    into dense slots and re-addressing the ops; kept only if the
//!    compacted system still fails.

use crate::check::{replay, FailReason, McConfig, McFailure};
use crate::net::SweepOp;
use crate::props::Property;
use std::fmt;

/// A minimized, self-contained reproduction of a failure.
#[derive(Clone, Debug)]
pub struct Repro {
    /// The (possibly compacted) id table the trace runs over.
    pub ids: Vec<u128>,
    /// The minimized op trace.
    pub trace: Vec<SweepOp>,
    /// The failure the trace reproduces (from the final verification
    /// replay, so reason and trace always correspond).
    pub reason: FailReason,
}

impl fmt::Display for Repro {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "minimal repro ({} ops, {} ids):",
            self.trace.len(),
            self.ids.len()
        )?;
        for (k, id) in self.ids.iter().enumerate() {
            writeln!(f, "  id[{k}] = {id:#034x}")?;
        }
        for (i, op) in self.trace.iter().enumerate() {
            writeln!(f, "  {i}: {op:?}")?;
        }
        write!(f, "  => {}", self.reason)
    }
}

/// Minimizes `failure` against the replay oracle. Any failure (not just
/// an identical reason) counts as still-failing — standard shrinking
/// semantics: the simplest trace that breaks *something* is the most
/// useful report.
pub fn shrink(cfg: &McConfig, props: &[Property], failure: &McFailure) -> Repro {
    let mut cfg = cfg.clone();
    let mut trace = failure.trace.clone();
    let mut reason = failure.reason.clone();

    // Pass 1: greedy op deletion to fixpoint.
    loop {
        let mut changed = false;
        let mut i = 0;
        while i < trace.len() {
            let mut candidate = trace.clone();
            candidate.remove(i);
            if let Some(f) = replay(&cfg, props, &candidate) {
                trace = f.trace;
                reason = f.reason;
                changed = true;
                // Restart from the front: earlier ops may be removable
                // now that a later dependency is gone.
                i = 0;
            } else {
                i += 1;
            }
        }
        if !changed {
            break;
        }
    }

    // Pass 2: drop unreferenced id slots and compact.
    let mut used = vec![false; cfg.ids.len()];
    used[0] = true; // the seed always participates
    for op in &trace {
        used[op.slot()] = true;
    }
    if used.iter().any(|&u| !u) {
        let kept: Vec<usize> = (0..cfg.ids.len()).filter(|&k| used[k]).collect();
        let remap: Vec<usize> = {
            let mut r = vec![usize::MAX; cfg.ids.len()];
            for (new, &old) in kept.iter().enumerate() {
                r[old] = new;
            }
            r
        };
        let compact_ids: Vec<u128> = kept.iter().map(|&k| cfg.ids[k]).collect();
        let compact_trace: Vec<SweepOp> = trace
            .iter()
            .map(|op| op.with_slot(remap[op.slot()]))
            .collect();
        let mut compact_cfg = cfg.clone();
        compact_cfg.ids = compact_ids;
        if let Some(f) = replay(&compact_cfg, props, &compact_trace) {
            // Verified: the compacted system still fails.
            cfg = compact_cfg;
            trace = f.trace;
            reason = f.reason;
        }
    }

    Repro {
        ids: cfg.ids.clone(),
        trace,
        reason,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::McConfig;
    use crate::props::always_system_invariants;
    use peerwindow_core::invariants::check_system;

    const A: u128 = 0x2000_0000_0000_0000_0000_0000_0000_0000;
    const B: u128 = 0x6000_0000_0000_0000_0000_0000_0000_0000;
    const C: u128 = 0xa000_0000_0000_0000_0000_0000_0000_0000;
    const D: u128 = 0xe000_0000_0000_0000_0000_0000_0000_0000;

    /// A deliberately absurd property that fails as soon as the system
    /// has at least two active members — so any trace with one join
    /// "fails", and shrinking must reduce everything else away.
    fn at_most_one_member() -> Property {
        Property::Always {
            name: "at-most-one-member",
            check: |net| {
                check_system(net.active()).map_err(|v| v.to_string())?;
                if net.active().count() > 1 {
                    Err("two members".into())
                } else {
                    Ok(())
                }
            },
        }
    }

    #[test]
    fn shrinks_padded_trace_to_single_join() {
        let cfg = McConfig::new(&[A, B, C, D]);
        let padded = McFailure {
            trace: vec![
                SweepOp::Join(1),
                SweepOp::Join(2),
                SweepOp::Leave(2),
                SweepOp::Join(3),
            ],
            reason: FailReason::Property {
                name: "at-most-one-member",
                detail: "two members".into(),
            },
        };
        let repro = shrink(&cfg, &[at_most_one_member()], &padded);
        assert_eq!(repro.trace.len(), 1, "one join suffices: {repro}");
        assert_eq!(
            repro.ids.len(),
            2,
            "only the seed and the joiner remain: {repro}"
        );
        // The repro must be self-consistent: replaying it fails.
        let mut small = cfg.clone();
        small.ids = repro.ids.clone();
        assert!(crate::check::replay(&small, &[at_most_one_member()], &repro.trace).is_some());
    }

    #[test]
    fn passing_trace_survives_untouched_properties() {
        // Shrinking against a trace that actually passes the real
        // invariants collapses to the empty trace (nothing to blame) —
        // exercised here only to pin the oracle-driven behavior.
        let cfg = McConfig::new(&[A, B]);
        assert!(
            crate::check::replay(&cfg, &[always_system_invariants()], &[SweepOp::Join(1)])
                .is_none()
        );
    }
}
