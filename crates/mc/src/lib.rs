//! # peerwindow-mc — explicit-state model checking for PeerWindow
//!
//! An explicit-state model checker over the real protocol machines:
//! breadth-first exploration of membership-operation interleavings
//! (join / leave / crash / level-shift) with every event handled by an
//! actual [`peerwindow_core::node::NodeMachine`] and local invariants
//! checked after each one. Subsumes — and retires — the PR 2
//! brute-force invariant sweep.
//!
//! What it adds over the sweep:
//!
//! * **Canonical state hashing** ([`canon`]) — states are serialized
//!   under an id-relabeling canonicalization (color refinement with
//!   references by dense color-class rank) and hashed with the shared
//!   SplitMix64, so permutation-equivalent and re-reached states are
//!   explored once. Collision freedom is asserted: the visited set
//!   compares full word sequences on hash hits.
//! * **Temporal properties** ([`props`]) — `Always` / `Eventually` /
//!   `LeadsTo` with settle-bounded fairness, including the two ROADMAP
//!   properties: *partition-heal-reconverges* and
//!   *no-correct-node-permanently-expunged*, checked under
//!   [`peerwindow_faults::FaultPlan`]s injected into the net.
//! * **Counterexample minimization** ([`shrink`]) — failing traces are
//!   reduced by oracle-verified op deletion and id-table compaction
//!   before reporting.
//!
//! ```
//! use peerwindow_mc::{check, McConfig, always_system_invariants};
//!
//! const A: u128 = 0x2000_0000_0000_0000_0000_0000_0000_0000;
//! const B: u128 = 0x6000_0000_0000_0000_0000_0000_0000_0000;
//!
//! let mut cfg = McConfig::new(&[A, B]);
//! cfg.max_ops = 2;
//! let stats = check(&cfg, &[always_system_invariants()]).unwrap();
//! assert!(stats.completed);
//! ```

#![forbid(unsafe_code)]

pub mod canon;
pub mod check;
pub mod net;
pub mod props;
pub mod shrink;

pub use canon::canonical_state;
pub use check::{
    check, fair_extend, mc_protocol_config, replay, FailReason, McConfig, McFailure, McStats,
};
pub use net::{McNet, NetErr, SlotStatus, SweepOp};
pub use props::{
    always_system_invariants, eventually_no_departed_pointer, no_correct_node_permanently_expunged,
    partition_heal_reconverges, Property,
};
pub use shrink::{shrink, Repro};
