//! Temporal properties over the explored state graph.
//!
//! The checker explores quiescent states (every op settles before the
//! next). On that graph:
//!
//! * [`Property::Always`] — the check must pass in **every** visited
//!   state.
//! * [`Property::Eventually`] — from every visited state, the *fair
//!   extension* (run the net with no further operations until every
//!   installed fault rule has expired, plus a settle allowance) must
//!   satisfy the predicate. This is settle-bounded fairness: the
//!   environment stops interfering and the protocol gets its periodic
//!   timers; a state from which the predicate still fails is a genuine
//!   liveness violation, not slow convergence.
//! * [`Property::LeadsTo`] — every visited state satisfying the premise
//!   must have a fair extension satisfying the conclusion.
//!
//! Ships the two ROADMAP properties as built-ins:
//! *partition-heal-reconverges* and
//! *no-correct-node-permanently-expunged* (DESIGN.md gap 13 — the PR 4
//! absorbing counterfactual, now a checked property).

use crate::net::McNet;
use peerwindow_core::invariants::check_system;
use peerwindow_core::node::NodeMachine;

/// How a state is judged. All checks are plain `fn` pointers so
/// properties are `Copy` and the checker can own arbitrarily many.
#[derive(Clone, Copy)]
pub enum Property {
    /// Must hold in every visited state.
    Always {
        /// Property name for failure reports.
        name: &'static str,
        /// Returns a human-readable violation on failure.
        check: fn(&McNet) -> Result<(), String>,
    },
    /// The fair extension of every visited state must satisfy `pred`.
    Eventually {
        /// Property name for failure reports.
        name: &'static str,
        /// Goal predicate, evaluated on the fairly-extended net.
        pred: fn(&McNet) -> Result<(), String>,
    },
    /// Visited states satisfying `premise` must have fair extensions
    /// satisfying `conclusion`.
    LeadsTo {
        /// Property name for failure reports.
        name: &'static str,
        /// Trigger predicate, evaluated on the visited state itself.
        premise: fn(&McNet) -> bool,
        /// Goal, evaluated on the fairly-extended net.
        conclusion: fn(&McNet) -> Result<(), String>,
    },
}

impl Property {
    /// The property's report name.
    pub fn name(&self) -> &'static str {
        match self {
            Property::Always { name, .. }
            | Property::Eventually { name, .. }
            | Property::LeadsTo { name, .. } => name,
        }
    }
}

fn system_ok(net: &McNet) -> Result<(), String> {
    let machines: Vec<&NodeMachine> = net.active().collect();
    check_system(machines).map_err(|v| v.to_string())
}

fn reconverged(net: &McNet) -> Result<(), String> {
    system_ok(net)?;
    for s in 0..net.len() {
        if net.is_correct(s) && net.ever_active(s) {
            match net.machine(s) {
                Some(m) if m.is_active() => {}
                _ => {
                    return Err(format!(
                        "correct node in slot {s} was active once but is not active \
                         after the network healed"
                    ));
                }
            }
        }
    }
    Ok(())
}

/// True when some correct, once-active node is missing from another
/// active node's audience (§2 symmetry broken *against a correct node*)
/// — the observable shape of a false obituary taking effect.
fn some_correct_node_expunged(net: &McNet) -> bool {
    expunged_correct_slot(net).is_some()
}

/// The first correct once-active slot currently expunged from a correct
/// active observer's peer list, if any.
fn expunged_correct_slot(net: &McNet) -> Option<usize> {
    use peerwindow_core::level::NodeIdentity;
    for s in 0..net.len() {
        if !(net.is_correct(s) && net.ever_active(s)) {
            continue;
        }
        let Some(m) = net.machine(s) else {
            // A correct node's machine can only disappear if it was
            // never spawned; ever_active rules that out.
            return Some(s);
        };
        if !m.is_active() {
            // Sent back out of the active phase without leaving: a
            // false obituary reached the subject itself.
            return Some(s);
        }
        for o in 0..net.len() {
            if o == s || !net.is_correct(o) {
                continue;
            }
            let Some(obs) = net.machine(o).filter(|om| om.is_active()) else {
                continue;
            };
            let ident = NodeIdentity::new(obs.id(), obs.level());
            if ident.covers(m.id()) && !obs.peers().contains(m.id()) {
                return Some(s);
            }
        }
    }
    None
}

fn no_departed_pointer(net: &McNet) -> Result<(), String> {
    use peerwindow_core::id::NodeId;
    for s in 0..net.len() {
        if net.is_correct(s) || !net.ever_active(s) {
            continue;
        }
        let departed = NodeId(net.table()[s]);
        for o in 0..net.len() {
            if o == s || !net.is_correct(o) {
                continue;
            }
            let Some(obs) = net.machine(o).filter(|om| om.is_active()) else {
                continue;
            };
            if obs.peers().contains(departed) {
                return Err(format!(
                    "slot {o} still holds a pointer to departed slot {s} after \
                     the system settled (lazy detection never fired)"
                ));
            }
        }
    }
    Ok(())
}

fn not_expunged(net: &McNet) -> Result<(), String> {
    match expunged_correct_slot(net) {
        None => Ok(()),
        Some(s) => Err(format!(
            "correct node in slot {s} remains expunged after the network healed \
             and the system settled (permanent false obituary)"
        )),
    }
}

/// `Always`: §2/§4 cross-node invariants at every quiescent state.
/// Only meaningful on reliable nets — mid-partition, `MissingPeer` is
/// the *expected* transient; use [`partition_heal_reconverges`] there.
pub fn always_system_invariants() -> Property {
    Property::Always {
        name: "always-system-invariants",
        check: system_ok,
    }
}

/// `Eventually`: after every fault rule expires and the system settles,
/// cross-node invariants hold again and every correct node that ever
/// joined is still an active member — §4.3 + §4.1's promise that a heal
/// reconverges the collection.
pub fn partition_heal_reconverges() -> Property {
    Property::Eventually {
        name: "partition-heal-reconverges",
        pred: reconverged,
    }
}

/// `LeadsTo`: a correct node observed expunged (false obituary took
/// effect somewhere) is re-admitted by the time the network heals and
/// settles. With the DESIGN.md gap-13 fix the subject hears its own
/// obituary via the courtesy copy and refutes; without it, expungement
/// of a correct node is absorbing and this property fails.
pub fn no_correct_node_permanently_expunged() -> Property {
    Property::LeadsTo {
        name: "no-correct-node-permanently-expunged",
        premise: some_correct_node_expunged,
        conclusion: not_expunged,
    }
}

/// `Eventually`: once the system settles, no active node still holds a
/// pointer to a crashed or departed node — §4.5's lazy maintenance
/// promise. This is the property the depth-4 run falsified before the
/// cross-level fallback probe: a node alone in its eigenstring group
/// was in nobody's §4.1 ring, so its crash went undetected forever.
pub fn eventually_no_departed_pointer() -> Property {
    Property::Eventually {
        name: "eventually-no-departed-pointer",
        pred: no_departed_pointer,
    }
}
