//! The explicit-state checker: breadth-first search over membership-op
//! interleavings with canonical-state deduplication.
//!
//! Soundness shape: dedup prunes *re-expansion* only. Every transition
//! that is executed at all runs real machines with per-event local
//! invariant checks; `Always` properties are evaluated on every state
//! *before* the dedup decision; `Eventually`/`LeadsTo` goals are
//! evaluated on the state's fair extension. Collision freedom of the
//! canonical hash is asserted, not assumed: the visited map keeps the
//! full canonical word sequence and compares it on every hash hit.

use crate::canon::canonical_state;
use crate::net::{McNet, NetErr, SweepOp};
use crate::props::Property;
use peerwindow_core::config::{ProbeScope, ProtocolConfig};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// A model-checking run configuration.
#[derive(Clone)]
pub struct McConfig {
    /// The id table; slot 0 is the pre-seeded node.
    pub ids: Vec<u128>,
    /// Maximum operations per trace (search depth).
    pub max_ops: usize,
    /// Settle time after each operation, microseconds.
    pub settle_us: u64,
    /// Levels [`SweepOp::Shift`] may target.
    pub levels: Vec<u8>,
    /// Whether silent crashes are part of the op alphabet.
    pub allow_crash: bool,
    /// Protocol configuration for every machine.
    pub protocol: ProtocolConfig,
    /// Optional fault plan injected into every branch's network.
    pub plan: Option<peerwindow_faults::FaultPlan>,
    /// Canonical-state deduplication (off = the PR 2 brute-force mode,
    /// kept so reduction can be measured against the same engine).
    pub dedup: bool,
    /// Leading id bits every relabeling must preserve (see
    /// `peerwindow_core::invariants::prefix_class`).
    pub class_bits: u8,
    /// Expansion budget: stop expanding after this many transitions
    /// (0 = unbounded). The deterministic replacement for wall-clock
    /// comparisons between dedup and brute-force modes.
    pub max_transitions: u64,
    /// Fair-extension allowance: the goal of an `Eventually`/`LeadsTo`
    /// is evaluated after running quietly to the fault horizon plus
    /// this many settle periods.
    pub fair_settles: u64,
    /// Re-arm the DESIGN.md gap-13 bug (regression tests only).
    pub reintroduce_gap13: bool,
}

impl McConfig {
    /// A small reliable-net configuration over `ids`.
    pub fn new(ids: &[u128]) -> Self {
        McConfig {
            ids: ids.to_vec(),
            max_ops: 3,
            settle_us: 12_000_000,
            levels: vec![0],
            allow_crash: true,
            protocol: mc_protocol_config(),
            plan: None,
            dedup: true,
            class_bits: 1,
            max_transitions: 0,
            fair_settles: 4,
            reintroduce_gap13: false,
        }
    }
}

/// Protocol timings compressed so a settle period covers several probe
/// cycles (the old `sweep_protocol_config`, promoted out of the retired
/// brute-force sweep).
pub fn mc_protocol_config() -> ProtocolConfig {
    ProtocolConfig {
        probe_interval_us: 1_000_000,
        rpc_timeout_us: 300_000,
        processing_delay_us: 1_000,
        bandwidth_window_us: 5_000_000,
        probe_scope: ProbeScope::Group,
        ..ProtocolConfig::default()
    }
}

/// Counters from a completed (or budget-stopped) run.
#[derive(Clone, Debug, Default)]
pub struct McStats {
    /// States reached (pre-dedup): root + every executed transition.
    pub raw_states: u64,
    /// Distinct canonical states in the visited set.
    pub canonical_states: u64,
    /// Transitions executed (op applications, each fully settled).
    pub transitions: u64,
    /// Machine events handled and local-invariant-checked across all
    /// branches (including fair extensions).
    pub events_checked: u64,
    /// Reached states that were pruned as already-visited.
    pub pruned: u64,
    /// Whether the search exhausted the op space within the budget.
    pub completed: bool,
}

impl McStats {
    /// Raw states per canonical state: > 1 means dedup (symmetry +
    /// reconvergence) is collapsing the graph.
    pub fn reduction_factor(&self) -> f64 {
        if self.canonical_states == 0 {
            return 1.0;
        }
        self.raw_states as f64 / self.canonical_states as f64
    }
}

impl fmt::Display for McStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "raw states {}, canonical {}, reduction {:.2}x, transitions {}, \
             pruned {}, events checked {}, completed {}",
            self.raw_states,
            self.canonical_states,
            self.reduction_factor(),
            self.transitions,
            self.pruned,
            self.events_checked,
            self.completed
        )
    }
}

/// Why a run failed.
#[derive(Clone, Debug)]
pub enum FailReason {
    /// A protocol invariant (local or fatal-on-reliable-net) broke
    /// while driving the network.
    Invariant(String),
    /// A temporal property was refuted.
    Property {
        /// The refuted property's name.
        name: &'static str,
        /// Human-readable account of the refutation.
        detail: String,
    },
    /// Two distinct canonical word sequences hashed identically. The
    /// visited set refuses to continue rather than silently merging
    /// distinct states.
    HashCollision,
}

impl fmt::Display for FailReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailReason::Invariant(msg) => write!(f, "invariant violation: {msg}"),
            FailReason::Property { name, detail } => {
                write!(f, "property '{name}' refuted: {detail}")
            }
            FailReason::HashCollision => write!(f, "canonical hash collision"),
        }
    }
}

/// A failing run: the op trace that reproduces it plus the reason.
/// Feed through [`crate::shrink::shrink`] before reporting.
#[derive(Clone, Debug)]
pub struct McFailure {
    /// Operations from the initial settled seed state, in order.
    pub trace: Vec<SweepOp>,
    /// What failed.
    pub reason: FailReason,
}

impl fmt::Display for McFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} after trace {:?}", self.reason, self.trace)
    }
}

fn net_err_reason(e: NetErr) -> FailReason {
    match e {
        NetErr::Violation(v) => FailReason::Invariant(v.to_string()),
        NetErr::Fatal(id, reason) => FailReason::Invariant(format!(
            "node {id:?} died fatally on a reliable net: {reason}"
        )),
    }
}

/// Runs the net quietly (no further ops) past the fault horizon plus
/// the fairness allowance, so liveness goals are judged on a healed,
/// settled network.
pub fn fair_extend(net: &McNet, cfg: &McConfig) -> Result<McNet, NetErr> {
    let mut ext = net.clone();
    let horizon = ext.fault_horizon_us().max(ext.now());
    ext.run_until(horizon + cfg.fair_settles * cfg.settle_us)?;
    Ok(ext)
}

/// Evaluates all properties at one visited state. Returns the fair
/// extension's event count so the caller can fold it into the stats.
fn eval_props(
    net: &McNet,
    cfg: &McConfig,
    props: &[Property],
    trace: &[SweepOp],
) -> Result<u64, McFailure> {
    let mut ext_events = 0u64;
    // The fair extension is shared by every liveness property at this
    // state; build it lazily, at most once.
    let mut extension: Option<McNet> = None;
    let mut extend = |ext_events: &mut u64| -> Result<McNet, McFailure> {
        if extension.is_none() {
            let ext = fair_extend(net, cfg).map_err(|e| McFailure {
                trace: trace.to_vec(),
                reason: net_err_reason(e),
            })?;
            *ext_events += ext.events_checked() - net.events_checked();
            extension = Some(ext);
        }
        Ok(extension.clone().expect("just built"))
    };

    for p in props {
        match *p {
            Property::Always { name, check } => {
                if let Err(detail) = check(net) {
                    return Err(McFailure {
                        trace: trace.to_vec(),
                        reason: FailReason::Property { name, detail },
                    });
                }
            }
            Property::Eventually { name, pred } => {
                let ext = extend(&mut ext_events)?;
                if let Err(detail) = pred(&ext) {
                    return Err(McFailure {
                        trace: trace.to_vec(),
                        reason: FailReason::Property { name, detail },
                    });
                }
            }
            Property::LeadsTo {
                name,
                premise,
                conclusion,
            } => {
                if premise(net) {
                    let ext = extend(&mut ext_events)?;
                    if let Err(detail) = conclusion(&ext) {
                        return Err(McFailure {
                            trace: trace.to_vec(),
                            reason: FailReason::Property { name, detail },
                        });
                    }
                }
            }
        }
    }
    Ok(ext_events)
}

struct Node {
    net: McNet,
    joined: Vec<bool>,
    trace: Vec<SweepOp>,
}

/// Explores the op space breadth-first and checks `props` at every
/// reached state. Returns counters on success, the first failing trace
/// otherwise.
pub fn check(cfg: &McConfig, props: &[Property]) -> Result<McStats, McFailure> {
    let mut stats = McStats::default();
    let mut visited: BTreeMap<u64, Vec<u64>> = BTreeMap::new();

    let fail = |trace: &[SweepOp], e: NetErr| McFailure {
        trace: trace.to_vec(),
        reason: net_err_reason(e),
    };

    // Root: the seed alone, fully settled.
    let mut root = McNet::new(
        &cfg.ids,
        &cfg.protocol,
        cfg.plan.as_ref(),
        cfg.reintroduce_gap13,
    );
    root.run_until(cfg.settle_us).map_err(|e| fail(&[], e))?;
    stats.events_checked += root.events_checked();
    stats.raw_states += 1;
    stats.events_checked += eval_props(&root, cfg, props, &[])?;

    let mut joined = vec![false; cfg.ids.len()];
    joined[0] = true;

    let mut frontier: VecDeque<Node> = VecDeque::new();
    if cfg.dedup {
        let c = canonical_state(&root, cfg.class_bits);
        visited.insert(c.hash, c.words);
    }
    frontier.push_back(Node {
        net: root,
        joined,
        trace: Vec::new(),
    });

    let mut budget_hit = false;
    'search: while let Some(node) = frontier.pop_front() {
        if node.trace.len() >= cfg.max_ops {
            continue;
        }
        for op in node
            .net
            .legal_ops(&node.joined, &cfg.levels, cfg.allow_crash)
        {
            if cfg.max_transitions > 0 && stats.transitions >= cfg.max_transitions {
                budget_hit = true;
                break 'search;
            }
            let mut child = node.net.clone();
            let before = child.events_checked();
            let mut trace = node.trace.clone();
            trace.push(op);
            child
                .apply_op(op, cfg.settle_us)
                .map_err(|e| fail(&trace, e))?;
            stats.transitions += 1;
            stats.raw_states += 1;
            stats.events_checked += child.events_checked() - before;
            stats.events_checked += eval_props(&child, cfg, props, &trace)?;

            if cfg.dedup {
                let c = canonical_state(&child, cfg.class_bits);
                match visited.get(&c.hash) {
                    Some(words) if *words == c.words => {
                        stats.pruned += 1;
                        continue;
                    }
                    Some(_) => {
                        return Err(McFailure {
                            trace,
                            reason: FailReason::HashCollision,
                        });
                    }
                    None => {
                        visited.insert(c.hash, c.words);
                    }
                }
            }

            let mut joined = node.joined.clone();
            if let SweepOp::Join(k) = op {
                joined[k] = true;
            }
            frontier.push_back(Node {
                net: child,
                joined,
                trace,
            });
        }
    }

    stats.canonical_states = if cfg.dedup {
        visited.len() as u64
    } else {
        stats.raw_states
    };
    stats.completed = !budget_hit;
    Ok(stats)
}

/// Replays `trace` linearly from the settled seed state, evaluating
/// `props` at every step — the oracle [`crate::shrink`] minimizes
/// against. Returns the first failure, or `None` if the trace passes.
pub fn replay(cfg: &McConfig, props: &[Property], trace: &[SweepOp]) -> Option<McFailure> {
    let fail = |t: &[SweepOp], e: NetErr| McFailure {
        trace: t.to_vec(),
        reason: net_err_reason(e),
    };
    let mut net = McNet::new(
        &cfg.ids,
        &cfg.protocol,
        cfg.plan.as_ref(),
        cfg.reintroduce_gap13,
    );
    if let Err(e) = net.run_until(cfg.settle_us) {
        return Some(fail(&[], e));
    }
    if let Err(f) = eval_props(&net, cfg, props, &[]) {
        return Some(f);
    }
    for (i, &op) in trace.iter().enumerate() {
        if let Err(e) = net.apply_op(op, cfg.settle_us) {
            return Some(fail(&trace[..=i], e));
        }
        if let Err(f) = eval_props(&net, cfg, props, &trace[..=i]) {
            return Some(f);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::always_system_invariants;

    const A: u128 = 0x2000_0000_0000_0000_0000_0000_0000_0000;
    const B: u128 = 0x6000_0000_0000_0000_0000_0000_0000_0000;
    const C: u128 = 0xa000_0000_0000_0000_0000_0000_0000_0000;

    #[test]
    fn three_ids_depth_two_holds_invariants() {
        let mut cfg = McConfig::new(&[A, B, C]);
        cfg.max_ops = 2;
        let stats = check(&cfg, &[always_system_invariants()]).expect("no violations expected");
        assert!(stats.completed);
        assert!(stats.raw_states > 1);
        assert!(stats.canonical_states <= stats.raw_states);
    }

    #[test]
    fn dedup_prunes_reconverging_branches() {
        let mut cfg = McConfig::new(&[A, B, C]);
        cfg.max_ops = 3;
        let stats = check(&cfg, &[]).expect("clean run");
        assert!(stats.completed);
        assert!(
            stats.pruned > 0,
            "join/leave/rejoin branches must reconverge onto visited states; {stats}"
        );
        assert!(stats.reduction_factor() > 1.0, "{stats}");
    }

    #[test]
    fn brute_force_mode_counts_every_state() {
        let mut cfg = McConfig::new(&[A, B]);
        cfg.max_ops = 2;
        cfg.dedup = false;
        let stats = check(&cfg, &[]).expect("clean run");
        assert_eq!(stats.canonical_states, stats.raw_states);
        assert_eq!(stats.pruned, 0);
    }

    #[test]
    fn transition_budget_stops_search() {
        let mut cfg = McConfig::new(&[A, B, C]);
        cfg.max_ops = 4;
        cfg.dedup = false;
        cfg.max_transitions = 5;
        let stats = check(&cfg, &[]).expect("clean run");
        assert!(!stats.completed);
        assert_eq!(stats.transitions, 5);
    }
}
