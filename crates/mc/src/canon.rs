//! Canonical state hashing with id-symmetry reduction.
//!
//! Two quiescent states of the sweep net are *permutation-equivalent*
//! when one can be turned into the other by relabeling node ids within
//! their eigenstring prefix classes (§2: protocol behavior depends on
//! ids only through prefix relations up to the maximum configured
//! level, so such a relabeling commutes with every transition). The
//! checker must explore only one representative per equivalence class.
//!
//! The encoding is a color-refinement canonicalization (the 1-WL /
//! nauty-refinement idea specialized to this graph): every id-table
//! slot is an entity; its initial color hashes only relabeling-invariant
//! facts (lifecycle status, prefix class, level, flags, pending-input
//! tags); colors are then refined a few rounds through the labeled
//! peer/top reference graph; the final serialization writes each slot's
//! record with references encoded by *color rank* — dense canonical
//! indices per distinct color class — and sorts the records. The result
//! is identical for any two permutation-equivalent states. (A naive
//! "dense indices in first-seen order" relabeling is not: first-seen
//! order itself depends on the labeling.)
//!
//! Refinement may fail to split genuinely distinct slots that are
//! locally indistinguishable — that is fine for soundness: it can only
//! merge *more* states than strict permutation-equivalence, and the
//! visited set compares full word sequences on every hash hit, so a
//! hash collision is detected rather than silently pruning a distinct
//! state. What dedup prunes is re-*expansion*; every transition that is
//! executed at all is still invariant-checked.

use crate::net::{McNet, SlotStatus};
use peerwindow_core::id::NodeId;
use peerwindow_core::invariants::{hash_words, prefix_class, splitmix64, CanonicalState};
use std::collections::BTreeMap;

/// Refinement rounds. The reference graph's diameter is tiny (peer and
/// top lists are near-cliques within a level); three rounds separate
/// everything the protocol can distinguish in practice, and more rounds
/// only cost time, never soundness.
const REFINE_ROUNDS: usize = 3;

fn status_word(s: SlotStatus) -> u64 {
    match s {
        SlotStatus::Unjoined => 0,
        SlotStatus::Joining => 1,
        SlotStatus::Active => 2,
        SlotStatus::Left => 3,
        SlotStatus::Crashed => 4,
        SlotStatus::Fatal => 5,
    }
}

/// Builds the canonical projection of a quiescent `net`.
///
/// `class_bits` is the number of leading id bits that must be preserved
/// by any relabeling (the deepest configured level plus one is enough:
/// eigenstrings never look deeper). Pass 0 to treat all ids as fully
/// interchangeable (single-level systems).
pub fn canonical_state(net: &McNet, class_bits: u8) -> CanonicalState {
    let n = net.len();

    // Per-slot relabeling-invariant facts.
    let mut class = vec![0u64; n];
    let mut level = vec![0u64; n];
    let mut flags = vec![0u64; n];
    let mut status = vec![0u64; n];
    let mut pending = vec![0u64; n];
    // Labeled out-edges: (kind, recorded level, dst slot). Kind 1 =
    // peer-list entry, kind 2 = top-list entry.
    let mut edges: Vec<Vec<(u64, u64, usize)>> = vec![Vec::new(); n];
    // Unresolvable references (ids in a list that are not in the table —
    // impossible today, but the encoding must not silently drop them).
    let mut foreign = vec![0u64; n];

    let slot_of: BTreeMap<u128, usize> = net
        .table()
        .iter()
        .enumerate()
        .map(|(s, &id)| (id, s))
        .collect();

    for s in 0..n {
        status[s] = status_word(net.status(s));
        class[s] = prefix_class(NodeId(net.table()[s]), class_bits);
        if let Some(m) = net.machine(s) {
            let p = m.project(class_bits);
            level[s] = u64::from(p.level);
            flags[s] = u64::from(p.active)
                | (u64::from(p.departed) << 1)
                | (u64::from(p.believes_top) << 2);
            pending[s] = p.pending_rpcs;
            for (id, lvl) in &p.peers {
                match slot_of.get(&id.raw()) {
                    Some(&d) => edges[s].push((1, u64::from(*lvl), d)),
                    None => foreign[s] = splitmix64(foreign[s] ^ 1),
                }
            }
            for (id, lvl) in &p.tops {
                match slot_of.get(&id.raw()) {
                    Some(&d) => edges[s].push((2, u64::from(*lvl), d)),
                    None => foreign[s] = splitmix64(foreign[s] ^ 2),
                }
            }
        }
    }

    // In-flight queue shape feeds the slot colors: a slot with a probe
    // timer pending is not equivalent to one without. Tags are summed
    // into an order-insensitive per-slot multiset hash (queue order
    // between independent deliveries is a scheduling artifact).
    let mut queue_mix = vec![0u64; n];
    for (dest, tag) in net.queue_shape() {
        queue_mix[dest] = queue_mix[dest].wrapping_add(splitmix64(tag ^ 0x9e3779));
    }

    // Initial colors: everything invariant under relabeling.
    let mut color: Vec<u64> = (0..n)
        .map(|s| {
            hash_words(&[
                status[s],
                class[s],
                level[s],
                flags[s],
                pending[s],
                queue_mix[s],
                foreign[s],
            ])
        })
        .collect();

    // Refine: fold in the sorted multiset of labeled out-edge colors
    // plus the sorted multiset of labeled in-edge colors.
    for _ in 0..REFINE_ROUNDS {
        let mut incoming: Vec<Vec<u64>> = vec![Vec::new(); n];
        for (s, es) in edges.iter().enumerate() {
            for &(kind, lvl, d) in es {
                incoming[d].push(hash_words(&[kind, lvl, color[s]]));
            }
        }
        let next: Vec<u64> = (0..n)
            .map(|s| {
                let mut out: Vec<u64> = edges[s]
                    .iter()
                    .map(|&(kind, lvl, d)| hash_words(&[kind, lvl, color[d]]))
                    .collect();
                out.sort_unstable();
                let mut inc = incoming[s].clone();
                inc.sort_unstable();
                let mut words = Vec::with_capacity(2 + out.len() + inc.len());
                words.push(color[s]);
                words.extend(out);
                words.push(u64::MAX); // separator: out-multiset vs in-multiset
                words.extend(inc);
                hash_words(&words)
            })
            .collect();
        color = next;
    }

    // Dense canonical indices per distinct color class: rank colors by
    // value; every reference below is encoded by its target's rank.
    let mut distinct: Vec<u64> = color.clone();
    distinct.sort_unstable();
    distinct.dedup();
    let rank_of: BTreeMap<u64, u64> = distinct
        .iter()
        .enumerate()
        .map(|(r, &c)| (c, r as u64))
        .collect();

    // Per-slot records, references by color rank, then sorted so slot
    // order (which is labeling-dependent) vanishes from the encoding.
    let mut records: Vec<u64> = (0..n)
        .map(|s| {
            let mut out: Vec<u64> = edges[s]
                .iter()
                .map(|&(kind, lvl, d)| hash_words(&[kind, lvl, rank_of[&color[d]]]))
                .collect();
            out.sort_unstable();
            let mut words = vec![
                status[s],
                class[s],
                level[s],
                flags[s],
                pending[s],
                queue_mix[s],
                foreign[s],
                rank_of[&color[s]],
            ];
            words.extend(out);
            hash_words(&words)
        })
        .collect();
    records.sort_unstable();

    // Fault-rule phase words: the absolute clock is abstracted away
    // (two states differing only in timestamps are equivalent), but
    // which plan rules are still pending / active / spent changes the
    // future and must distinguish states.
    let now = net.now();
    let mut words = Vec::with_capacity(records.len() + 8);
    words.push(n as u64);
    words.push(u64::from(class_bits));
    words.extend(records);
    words.push(u64::MAX); // separator: records vs fault phases
    for (i, (from_us, until_us)) in net.fault_rule_windows().enumerate() {
        let phase = if now < from_us {
            0
        } else if now < until_us {
            1
        } else {
            2
        };
        words.push(hash_words(&[i as u64, phase]));
    }

    CanonicalState::from_words(words)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::mc_protocol_config;
    use crate::net::SweepOp;

    // Three ids in the same top-bit prefix class (class_bits = 1).
    const A: u128 = 0x2000_0000_0000_0000_0000_0000_0000_0000;
    const B: u128 = 0x6000_0000_0000_0000_0000_0000_0000_0000;
    const C: u128 = 0x7000_0000_0000_0000_0000_0000_0000_0000;

    fn settled_net(table: &[u128], joins: &[usize]) -> McNet {
        let mut net = McNet::new(table, &mc_protocol_config(), None, false);
        net.run_until(5_000_000).unwrap();
        for &k in joins {
            net.apply_op(SweepOp::Join(k), 8_000_000).unwrap();
        }
        net
    }

    #[test]
    fn identical_runs_hash_identically() {
        let a = settled_net(&[A, B, C], &[1]);
        let b = settled_net(&[A, B, C], &[1]);
        assert_eq!(canonical_state(&a, 1), canonical_state(&b, 1));
    }

    #[test]
    fn swapped_ids_within_class_hash_identically() {
        // Same system, but the two later ids trade table slots: the
        // second run joins the *other* id. Within one prefix class the
        // canonical encodings must coincide.
        let a = settled_net(&[A, B, C], &[1]);
        let b = settled_net(&[A, C, B], &[1]);
        assert_eq!(
            canonical_state(&a, 1).hash,
            canonical_state(&b, 1).hash,
            "id relabeling within a prefix class must not change the canonical hash"
        );
    }

    #[test]
    fn different_membership_hashes_differently() {
        let one = settled_net(&[A, B, C], &[]);
        let two = settled_net(&[A, B, C], &[1]);
        assert_ne!(canonical_state(&one, 1).hash, canonical_state(&two, 1).hash);
    }
}
