//! The model checker's concrete transition system: real [`NodeMachine`]s
//! over a deterministic mini event loop, cloneable so the search can
//! branch from any quiescent state, with optional fault-plan injection
//! (every datagram is judged by a [`LinkConditioner`] exactly like the
//! full simulators do it).
//!
//! This subsumes the PR 2 `SweepNet` that used to live in
//! `peerwindow_core::invariants`; the checker in [`crate::check`] adds
//! visited-state deduplication and temporal properties on top.

use bytes::Bytes;
use peerwindow_core::config::ProtocolConfig;
use peerwindow_core::id::NodeId;
use peerwindow_core::invariants::InvariantViolation;
use peerwindow_core::level::Level;
use peerwindow_core::messages::Message;
use peerwindow_core::node::{Command, Input, NodeMachine, Output, Timer};
use peerwindow_core::pointer::Addr;
use peerwindow_faults::{FaultModel, FaultPlan, LinkConditioner, Verdict};
use std::collections::BTreeMap;

/// One membership operation applied between quiescent states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepOp {
    /// Spawn node `k` of the id table, bootstrapping off the
    /// lowest-indexed live node.
    Join(usize),
    /// Graceful shutdown of node `k`.
    Leave(usize),
    /// Silent crash of node `k` (failure detection must clean up).
    Crash(usize),
    /// Pin node `k` to the given level (§4.3 runtime shifting).
    Shift(usize, u8),
}

impl SweepOp {
    /// The id-table slot the operation acts on.
    pub fn slot(&self) -> usize {
        match *self {
            SweepOp::Join(k) | SweepOp::Leave(k) | SweepOp::Crash(k) | SweepOp::Shift(k, _) => k,
        }
    }

    /// Returns the operation re-addressed to `slot`.
    pub fn with_slot(&self, slot: usize) -> SweepOp {
        match *self {
            SweepOp::Join(_) => SweepOp::Join(slot),
            SweepOp::Leave(_) => SweepOp::Leave(slot),
            SweepOp::Crash(_) => SweepOp::Crash(slot),
            SweepOp::Shift(_, l) => SweepOp::Shift(slot, l),
        }
    }
}

/// A violation or unexpected machine death observed while driving the net.
#[derive(Clone, Debug)]
pub enum NetErr {
    /// A protocol invariant failed after a handled event.
    Violation(InvariantViolation),
    /// A machine died with [`Output::Fatal`] on a *reliable* network.
    /// The checker only applies well-formed operations, so without
    /// faults any fatal is a protocol bug. (Under a fault plan a fatal
    /// is a legitimate outcome — a joiner whose bootstrap is unreachable
    /// gives up — and is recorded instead of raised.)
    Fatal(NodeId, &'static str),
}

/// Lifecycle a table slot is in, as the checker sees it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlotStatus {
    /// Never spawned.
    Unjoined,
    /// Spawned, join protocol still running.
    Joining,
    /// Fully joined and serving.
    Active,
    /// Graceful departure in progress or completed.
    Left,
    /// Silently crashed by a [`SweepOp::Crash`].
    Crashed,
    /// Died with [`Output::Fatal`] under a fault plan.
    Fatal,
}

/// A small deterministic event loop over real machines, cloneable so the
/// search can branch from any quiescent state.
#[derive(Clone)]
pub struct McNet {
    /// The raw id table; slot `k`'s machine runs with id `table[k]` and
    /// address `Addr(k)` (so fault-plan node selectors address slots).
    table: Vec<u128>,
    /// One slot per id-table entry; `None` until spawned.
    slots: Vec<Option<NodeMachine>>,
    /// Crashed (or fatally dead) slots silently drop all delivery.
    dead: Vec<bool>,
    /// Slots a graceful [`SweepOp::Leave`] was issued to.
    left: Vec<bool>,
    /// Slots killed by [`SweepOp::Crash`].
    crashed: Vec<bool>,
    /// Slots that died with [`Output::Fatal`] (fault plans only).
    fatal: Vec<bool>,
    /// Slots that reached the `Active` phase at least once.
    ever_active: Vec<bool>,
    /// Pending deliveries keyed by `(time, seq)` — a BTreeMap so clones
    /// iterate identically. Values carry the destination slot.
    queue: BTreeMap<(u64, u64), (usize, Input)>,
    seq: u64,
    now: u64,
    latency_us: u64,
    events_checked: u64,
    /// Judges every datagram when a plan is installed.
    cond: Option<LinkConditioner>,
    protocol: ProtocolConfig,
    /// DESIGN.md gap-13 mutation switch (regression tests only).
    gap13: bool,
}

impl McNet {
    /// A net over `table` with slot 0 as the already-running seed node.
    pub fn new(
        table: &[u128],
        protocol: &ProtocolConfig,
        plan: Option<&FaultPlan>,
        gap13: bool,
    ) -> Self {
        assert!(!table.is_empty(), "the net needs at least a seed id");
        let n = table.len();
        let mut net = McNet {
            table: table.to_vec(),
            slots: vec![None; n],
            dead: vec![false; n],
            left: vec![false; n],
            crashed: vec![false; n],
            fatal: vec![false; n],
            ever_active: vec![false; n],
            queue: BTreeMap::new(),
            seq: 0,
            now: 0,
            latency_us: 10_000,
            events_checked: 0,
            cond: plan.map(|p| LinkConditioner::new(p.clone())),
            protocol: protocol.clone(),
            gap13,
        };
        let (mut m, outs) = NodeMachine::new_seed(
            protocol.clone(),
            NodeId(table[0]),
            Addr(0),
            Bytes::new(),
            1e9,
            1,
        );
        if gap13 {
            m.reintroduce_gap13_false_obituary_bug();
        }
        net.slots[0] = Some(m);
        net.ever_active[0] = true;
        // Seed start-up outputs are timers only; `Fatal` is impossible.
        let _ = net.enqueue(0, outs);
        net
    }

    /// The raw id table.
    pub fn table(&self) -> &[u128] {
        &self.table
    }

    /// Number of table slots.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the table is empty (never true; kept for API hygiene).
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Current simulated time, microseconds.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Machine events handled (and local-invariant-checked) so far.
    pub fn events_checked(&self) -> u64 {
        self.events_checked
    }

    /// The live machine in `slot`, if any.
    pub fn machine(&self, slot: usize) -> Option<&NodeMachine> {
        match &self.slots[slot] {
            Some(m) if !self.dead[slot] => Some(m),
            _ => None,
        }
    }

    /// Live, fully-joined machines.
    pub fn active(&self) -> impl Iterator<Item = &NodeMachine> + '_ {
        (0..self.slots.len()).filter_map(|s| self.machine(s).filter(|m| m.is_active()))
    }

    /// The checker's view of `slot`'s lifecycle.
    pub fn status(&self, slot: usize) -> SlotStatus {
        if self.fatal[slot] {
            return SlotStatus::Fatal;
        }
        if self.crashed[slot] {
            return SlotStatus::Crashed;
        }
        if self.left[slot] || self.slots[slot].as_ref().is_some_and(NodeMachine::has_left) {
            return SlotStatus::Left;
        }
        match &self.slots[slot] {
            None => SlotStatus::Unjoined,
            Some(m) if m.is_active() => SlotStatus::Active,
            Some(_) => SlotStatus::Joining,
        }
    }

    /// A *correct* node never crashed, never left, and never died: the
    /// subjects of the no-permanent-expungement liveness property.
    pub fn is_correct(&self, slot: usize) -> bool {
        !self.crashed[slot] && !self.left[slot] && !self.fatal[slot]
    }

    /// Whether `slot` ever completed the join protocol.
    pub fn ever_active(&self, slot: usize) -> bool {
        self.ever_active[slot]
    }

    /// The latest finite deactivation time over the installed plan's
    /// rules — the instant after which the network is permanently clean
    /// (never-healing rules are excluded: they cannot be waited out).
    pub fn fault_horizon_us(&self) -> u64 {
        match &self.cond {
            None => 0,
            Some(c) => c
                .plan()
                .rules
                .iter()
                .filter(|r| r.until_us != u64::MAX)
                .map(|r| r.until_us)
                .max()
                .unwrap_or(0),
        }
    }

    /// The `(from_us, until_us)` activation window of every installed
    /// fault rule, in plan order (empty without a plan). The canonical
    /// encoding folds each rule's *phase* relative to the current clock
    /// into the state so pending faults distinguish futures.
    pub fn fault_rule_windows(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.cond
            .iter()
            .flat_map(|c| c.plan().rules.iter().map(|r| (r.from_us, r.until_us)))
    }

    /// Pending queue shape: `(destination slot, input tag)` per entry,
    /// in delivery order. Tags identify the timer/message kind only —
    /// tokens and payloads are deliberately excluded so the canonical
    /// projection quotients over them.
    pub fn queue_shape(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.queue
            .values()
            .map(|(dest, input)| (*dest, input_tag(input)))
    }

    fn enqueue(&mut self, from: usize, outs: Vec<Output>) -> Result<(), NetErr> {
        for o in outs {
            match o {
                Output::Send { to, msg, delay_us } => {
                    let dest = to.addr.0 as usize;
                    let sender = self.slots[from].as_ref();
                    let (id, addr) = match sender {
                        Some(m) => (m.id(), m.addr()),
                        None => continue,
                    };
                    let depart = self.now + delay_us;
                    // Judged once at send time, exactly like the sims.
                    let verdict = match &mut self.cond {
                        Some(c) => c.judge(depart, from as u32, dest as u32),
                        None => Verdict::Deliver { extra_delay_us: 0 },
                    };
                    let input = Input::Message {
                        from: id,
                        from_addr: addr,
                        msg,
                    };
                    match verdict {
                        Verdict::Drop => {}
                        Verdict::Deliver { extra_delay_us } => {
                            self.seq += 1;
                            let at = depart + self.latency_us + extra_delay_us;
                            self.queue.insert((at, self.seq), (dest, input));
                        }
                        Verdict::Duplicate {
                            extra_delay_us,
                            dup_extra_delay_us,
                        } => {
                            self.seq += 1;
                            let at = depart + self.latency_us + extra_delay_us;
                            self.queue.insert((at, self.seq), (dest, input.clone()));
                            self.seq += 1;
                            let at2 = depart + self.latency_us + dup_extra_delay_us;
                            self.queue.insert((at2, self.seq), (dest, input));
                        }
                    }
                }
                Output::SetTimer { delay_us, timer } => {
                    self.seq += 1;
                    self.queue
                        .insert((self.now + delay_us, self.seq), (from, Input::Timer(timer)));
                }
                Output::Fatal(reason) => {
                    let id = self.slots[from].as_ref().map(NodeMachine::id);
                    if self.cond.is_some() {
                        // Under faults a machine may legitimately give up
                        // (e.g. a joiner whose bootstrap is unreachable).
                        // Record the death; liveness properties decide
                        // whether it matters.
                        self.dead[from] = true;
                        self.fatal[from] = true;
                    } else {
                        return Err(NetErr::Fatal(id.unwrap_or(NodeId(0)), reason));
                    }
                }
                Output::Joined | Output::FailureDetected { .. } | Output::LevelShifted { .. } => {}
            }
        }
        Ok(())
    }

    /// Drives one input into `slot`, checking local invariants afterwards.
    fn step(&mut self, slot: usize, input: Input) -> Result<(), NetErr> {
        let Some(m) = self.slots[slot].as_mut() else {
            return Ok(());
        };
        let outs = m.handle(self.now, input);
        m.check_invariants().map_err(NetErr::Violation)?;
        if m.is_active() {
            self.ever_active[slot] = true;
        }
        self.events_checked += 1;
        self.enqueue(slot, outs)
    }

    /// Delivers everything due up to `t_us`, then advances the clock.
    pub fn run_until(&mut self, t_us: u64) -> Result<(), NetErr> {
        while let Some((&(at, _), _)) = self.queue.first_key_value() {
            if at > t_us {
                break;
            }
            let Some(((at, _), (dest, input))) = self.queue.pop_first() else {
                break;
            };
            self.now = at;
            if self.dead[dest] {
                continue;
            }
            self.step(dest, input)?;
        }
        self.now = t_us;
        Ok(())
    }

    /// Applies one operation and settles for `settle_us`.
    pub fn apply_op(&mut self, op: SweepOp, settle_us: u64) -> Result<(), NetErr> {
        match op {
            SweepOp::Join(k) => {
                // Re-joining or joining over a live slot is a no-op (the
                // shrinker replays arbitrary op subsets; `legal_ops`
                // never emits it).
                if self.slots[k].is_none() {
                    let boot = self.active().next().map(|m| m.as_target());
                    if let Some(boot) = boot {
                        let (mut m, outs) = NodeMachine::new_joining(
                            self.protocol.clone(),
                            NodeId(self.table[k]),
                            Addr(k as u64),
                            Bytes::new(),
                            1e9,
                            boot,
                            k as u64 + 1,
                        );
                        if self.gap13 {
                            m.reintroduce_gap13_false_obituary_bug();
                        }
                        self.slots[k] = Some(m);
                        self.enqueue(k, outs)?;
                    }
                }
            }
            SweepOp::Leave(k) => {
                if self.machine(k).is_some() {
                    self.left[k] = true;
                    self.step(k, Input::Command(Command::Shutdown))?;
                }
            }
            SweepOp::Crash(k) => {
                if self.slots[k].is_some() {
                    self.dead[k] = true;
                    self.crashed[k] = true;
                }
            }
            SweepOp::Shift(k, l) => {
                if self.machine(k).is_some() {
                    self.step(k, Input::Command(Command::SetLevel(Level::new(l))))?;
                }
            }
        }
        let deadline = self.now + settle_us;
        self.run_until(deadline)
    }

    /// Enumerates the well-formed operations available from a quiescent
    /// state. Legality keeps the system well-formed (these are
    /// environment constraints, not protocol assumptions): each id joins
    /// at most once, at least one live node always remains, and the last
    /// active top-level node can neither depart nor shift down (a
    /// partition with no top is outside the protocol's §4 envelope).
    pub fn legal_ops(&self, joined: &[bool], levels: &[u8], allow_crash: bool) -> Vec<SweepOp> {
        let mut ops = Vec::new();
        let live: Vec<usize> = (0..self.slots.len())
            .filter(|&s| self.machine(s).is_some_and(NodeMachine::is_active))
            .collect();
        let tops: Vec<usize> = live
            .iter()
            .copied()
            .filter(|&s| self.machine(s).is_some_and(|m| m.level().is_top()))
            .collect();

        // Joins: any id not yet spawned, while a bootstrap exists.
        if !live.is_empty() {
            for (k, &already) in joined.iter().enumerate() {
                if !already {
                    ops.push(SweepOp::Join(k));
                }
            }
        }

        for &k in &live {
            let is_last_top = tops.len() == 1 && tops[0] == k;
            // Departures: keep at least one live node, and never remove
            // the last top-level node.
            if live.len() > 1 && !is_last_top {
                ops.push(SweepOp::Leave(k));
                if allow_crash {
                    ops.push(SweepOp::Crash(k));
                }
            }
            // Shifts: to any configured level other than the current one;
            // the last top may not shift off level 0.
            let cur = self
                .machine(k)
                .map(|m| m.level().value())
                .unwrap_or(u8::MAX);
            for &l in levels {
                if l != cur && !(is_last_top && l != 0) {
                    ops.push(SweepOp::Shift(k, l));
                }
            }
        }
        ops
    }

    /// Order-insensitive digest of the quiescent membership view, for
    /// counting distinct raw states (FNV-1a over machine summaries in
    /// slot order — the PR 2 fingerprint, kept for continuity).
    pub fn membership_fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for s in 0..self.slots.len() {
            match self.machine(s) {
                Some(m) if m.is_active() => {
                    mix(&m.id().raw().to_le_bytes());
                    mix(&[m.level().value()]);
                    for p in m.peers().iter() {
                        mix(&p.id.raw().to_le_bytes());
                        mix(&[p.level.value()]);
                    }
                    mix(&[0xfe]);
                }
                _ => mix(&[0xff]),
            }
        }
        h
    }
}

/// A small stable tag per queued input kind. Payloads, RPC tokens, and
/// exact due times are deliberately not part of the tag: the canonical
/// projection wants the *shape* of the in-flight queue, quotiented over
/// everything that varies between permutation-equivalent runs.
fn input_tag(input: &Input) -> u64 {
    match input {
        Input::Timer(t) => match t {
            Timer::Probe => 1,
            Timer::RpcTimeout(_) => 2,
            Timer::Adapt => 3,
            Timer::Refresh => 4,
            Timer::Expire => 5,
            Timer::Reconcile => 6,
        },
        Input::Message { msg, .. } => match msg {
            Message::Probe => 10,
            Message::ProbeAck => 11,
            Message::Report { .. } => 12,
            Message::ReportAck { .. } => 13,
            Message::Multicast { .. } => 14,
            Message::MulticastAck { .. } => 15,
            Message::FindTop { .. } => 16,
            Message::FindTopReply { .. } => 17,
            Message::LevelQuery => 18,
            Message::LevelQueryReply { .. } => 19,
            Message::Download { .. } => 20,
            Message::DownloadReply { .. } => 21,
            Message::TopListRequest => 22,
            Message::TopListReply { .. } => 23,
        },
        Input::Command(_) => 30,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::mc_protocol_config;

    const A: u128 = 0x2000_0000_0000_0000_0000_0000_0000_0000;
    const B: u128 = 0x6000_0000_0000_0000_0000_0000_0000_0000;

    #[test]
    fn seed_settles_and_is_active() {
        let mut net = McNet::new(&[A, B], &mc_protocol_config(), None, false);
        net.run_until(10_000_000).unwrap();
        assert_eq!(net.status(0), SlotStatus::Active);
        assert_eq!(net.status(1), SlotStatus::Unjoined);
        assert!(net.is_correct(0));
    }

    #[test]
    fn join_and_crash_lifecycle() {
        let mut net = McNet::new(&[A, B], &mc_protocol_config(), None, false);
        net.run_until(10_000_000).unwrap();
        net.apply_op(SweepOp::Join(1), 10_000_000).unwrap();
        assert_eq!(net.status(1), SlotStatus::Active);
        assert!(net.ever_active(1));
        net.apply_op(SweepOp::Crash(1), 10_000_000).unwrap();
        assert_eq!(net.status(1), SlotStatus::Crashed);
        assert!(!net.is_correct(1));
        // The seed must have detected the crash and cleaned up.
        assert!(net.machine(0).unwrap().peers().is_empty());
    }

    #[test]
    fn fault_plan_blackhole_stops_join() {
        let plan = FaultPlan::reliable(7).with_rule(peerwindow_faults::FaultRule {
            from_us: 0,
            until_us: u64::MAX,
            links: peerwindow_faults::LinkSel::all(),
            condition: peerwindow_faults::Condition::Blackhole,
        });
        let mut net = McNet::new(&[A, B], &mc_protocol_config(), Some(&plan), false);
        net.run_until(10_000_000).unwrap();
        net.apply_op(SweepOp::Join(1), 30_000_000).unwrap();
        // The joiner can never reach its bootstrap: it either still
        // retries or died fatally; it must not be active.
        assert_ne!(net.status(1), SlotStatus::Active);
    }
}
