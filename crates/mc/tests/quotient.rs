//! Property-based evidence that canonicalization is a true quotient:
//!
//! 1. **Permutation invariance** — relabeling the node ids of a
//!    reachable state by any permutation that preserves eigenstring
//!    prefix classes leaves the canonical hash unchanged.
//! 2. **Function + collision audit** — equal raw states canonicalize
//!    identically, and across everything these cases reach, distinct
//!    canonical word sequences never collide in SplitMix64 (the same
//!    assertion the checker's visited set enforces at scale).

use peerwindow_mc::{canonical_state, mc_protocol_config, McNet, SweepOp};
use proptest::prelude::*;
use std::collections::BTreeMap;

const CLASS_BITS: u8 = 1;
const SETTLE_US: u64 = 12_000_000;

/// Builds an id from its top-bit prefix class and 63 random tail bits
/// (bits below the class are exactly what a relabeling may scramble).
fn make_id(class: u8, tail: u64) -> u128 {
    (u128::from(class & 1) << 127) | (u128::from(tail) << 63) | 1
}

/// Replays `picks` as indices into `legal_ops` at each step, so every
/// generated trace is well-formed by construction. Returns the settled
/// net and the concrete ops chosen.
fn run_picks(table: &[u128], picks: &[usize]) -> (McNet, Vec<SweepOp>) {
    let mut net = McNet::new(table, &mc_protocol_config(), None, false);
    net.run_until(SETTLE_US).expect("reliable net");
    let mut joined = vec![false; table.len()];
    joined[0] = true;
    let mut ops = Vec::new();
    for &pick in picks {
        let legal = net.legal_ops(&joined, &[0], true);
        if legal.is_empty() {
            break;
        }
        let op = legal[pick % legal.len()];
        net.apply_op(op, SETTLE_US).expect("reliable net");
        if let SweepOp::Join(k) = op {
            joined[k] = true;
        }
        ops.push(op);
    }
    (net, ops)
}

/// Replays previously chosen concrete ops on a (relabeled) table.
fn run_ops(table: &[u128], ops: &[SweepOp]) -> McNet {
    let mut net = McNet::new(table, &mc_protocol_config(), None, false);
    net.run_until(SETTLE_US).expect("reliable net");
    for &op in ops {
        net.apply_op(op, SETTLE_US).expect("reliable net");
    }
    net
}

/// Applies a within-class permutation to the slot→id assignment:
/// `perm_seed` drives a Fisher–Yates shuffle of the slots inside each
/// prefix class, and the relabeled table maps slot `k` to the id that
/// `π(k)` held. Roles (slot 0 seed, join order, addresses, RNG seeds)
/// stay with the slots, so the resulting run is the original state with
/// ids renamed — exactly the symmetry the canonical encoding quotients.
fn relabel_within_classes(table: &[u128], perm_seed: u64) -> Vec<u128> {
    let mut rng = perm_seed | 1;
    let mut next = move || {
        // xorshift64 — any deterministic scramble works here.
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let mut out = table.to_vec();
    for class in 0..=1u8 {
        let slots: Vec<usize> = (0..table.len())
            .filter(|&k| (table[k] >> 127) as u8 == class)
            .collect();
        let mut ids: Vec<u128> = slots.iter().map(|&k| table[k]).collect();
        for i in (1..ids.len()).rev() {
            let j = (next() as usize) % (i + 1);
            ids.swap(i, j);
        }
        for (&slot, &id) in slots.iter().zip(ids.iter()) {
            out[slot] = id;
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn within_class_id_permutation_preserves_canonical_hash(
        tails in proptest::collection::vec(1u64..u64::MAX, 4),
        classes in proptest::collection::vec(0u8..2, 4),
        picks in proptest::collection::vec(0usize..64, 0..4),
        perm_seed in 1u64..u64::MAX,
    ) {
        let mut table: Vec<u128> = classes
            .iter()
            .zip(tails.iter())
            .map(|(&c, &t)| make_id(c, t))
            .collect();
        table.sort_unstable();
        table.dedup();
        prop_assume!(table.len() == 4);

        let (net, ops) = run_picks(&table, &picks);
        let relabeled = relabel_within_classes(&table, perm_seed);
        let net2 = run_ops(&relabeled, &ops);

        let c1 = canonical_state(&net, CLASS_BITS);
        let c2 = canonical_state(&net2, CLASS_BITS);
        prop_assert_eq!(
            c1.hash, c2.hash,
            "within-class relabeling changed the canonical hash; ops {:?}, table {:?} vs {:?}",
            ops, table, relabeled
        );
        prop_assert_eq!(c1.words, c2.words);
    }

    #[test]
    fn canonicalization_is_a_function_and_hashes_do_not_collide(
        tails in proptest::collection::vec(1u64..u64::MAX, 4),
        picks_a in proptest::collection::vec(0usize..64, 0..4),
        picks_b in proptest::collection::vec(0usize..64, 0..4),
    ) {
        let mut table: Vec<u128> = tails
            .iter()
            .enumerate()
            .map(|(i, &t)| make_id((i % 2) as u8, t))
            .collect();
        table.sort_unstable();
        table.dedup();
        prop_assume!(table.len() == 4);

        // hash → canonical words: any rebinding is a SplitMix64
        // collision between genuinely distinct states — the assertion
        // the checker's visited set enforces, here audited directly.
        let mut by_hash: BTreeMap<u64, Vec<u64>> = BTreeMap::new();

        let mut audit = |picks: &[usize]| -> Result<Vec<(u64, u64)>, proptest::test_runner::TestCaseError> {
            let mut states = Vec::new();
            let mut net = McNet::new(&table, &mc_protocol_config(), None, false);
            net.run_until(SETTLE_US).expect("reliable net");
            let mut joined = vec![false; table.len()];
            joined[0] = true;
            for &pick in picks {
                let legal = net.legal_ops(&joined, &[0], true);
                if legal.is_empty() {
                    break;
                }
                let op = legal[pick % legal.len()];
                net.apply_op(op, SETTLE_US).expect("reliable net");
                if let SweepOp::Join(k) = op {
                    joined[k] = true;
                }

                let c = canonical_state(&net, CLASS_BITS);
                if let Some(words) = by_hash.get(&c.hash) {
                    prop_assert_eq!(
                        words.clone(), c.words.clone(),
                        "distinct canonical states collided in SplitMix64"
                    );
                } else {
                    by_hash.insert(c.hash, c.words.clone());
                }
                states.push((net.membership_fingerprint(), c.hash));
            }
            Ok(states)
        };

        // Collision audit across two independent traces over the same
        // table, plus determinism: replaying the same trace visits the
        // same raw states and the same canonical states, in order
        // (canonicalization is a function of the state, not the path
        // timing that produced it).
        let first = audit(&picks_a)?;
        let again = audit(&picks_a)?;
        prop_assert_eq!(first, again, "replaying the same trace diverged");
        audit(&picks_b)?;
    }
}
