//! Table rendering and CSV emission for experiment reports.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple column-oriented results table that renders to aligned
/// markdown and to CSV.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column names.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the arity differs from the header's.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned markdown table.
    pub fn to_markdown(&self) -> String {
        let ncol = self.header.len();
        let mut width = vec![0usize; ncol];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            out.push('|');
            for (i, c) in cells.iter().enumerate() {
                let pad = width[i] - c.chars().count();
                let _ = write!(out, " {}{} |", c, " ".repeat(pad));
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        out.push('|');
        for w in &width {
            let _ = write!(out, "{}|", "-".repeat(w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    /// Renders CSV (RFC-4180-ish: quotes fields containing commas/quotes).
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.header.iter().map(&esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(&esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV form to `path`, creating parent directories.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        fs::write(path, self.to_csv())
    }
}

/// Formats a float compactly for tables (3 significant-ish decimals,
/// scientific for very small magnitudes).
pub fn fmt_f64(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 10_000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else if x.abs() >= 0.001 {
        format!("{x:.5}")
    } else {
        format!("{x:.3e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_is_aligned() {
        let mut t = Table::new(["level", "nodes"]);
        t.row(["0", "54321"]).row(["10", "7"]);
        let md = t.to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(lines[0].contains("level"));
        assert!(lines[3].contains("10"));
    }

    #[test]
    fn csv_escapes_properly() {
        let mut t = Table::new(["a", "b"]);
        t.row(["x,y", "say \"hi\""]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_is_checked() {
        Table::new(["a", "b"]).row(["only one"]);
    }

    #[test]
    fn write_csv_creates_dirs() {
        let dir = std::env::temp_dir().join("pw_metrics_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("deep/out.csv");
        let mut t = Table::new(["x"]);
        t.row(["1"]);
        t.write_csv(&path).unwrap();
        assert!(path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(12345.6), "12346");
        assert_eq!(fmt_f64(3.14159), "3.14");
        assert_eq!(fmt_f64(0.00123), "0.00123");
        assert!(fmt_f64(0.0000012).contains('e'));
    }
}
