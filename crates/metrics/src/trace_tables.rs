//! Table rendering for the trace layer's counter registry, sampled
//! series, and per-class bandwidth accounting.
//!
//! `peerwindow-trace` stays dependency-free and presentation-agnostic;
//! this module is where its aggregates meet the workspace's markdown/CSV
//! [`Table`] machinery.

use crate::table::{fmt_f64, Table};
use peerwindow_trace::{BandwidthRow, CounterRegistry, SampleSeries};

/// Renders a registry's counters as a `counter | value` table,
/// name-ascending.
pub fn counter_table(reg: &CounterRegistry) -> Table {
    let mut t = Table::new(["counter", "value"]);
    for (name, value) in reg.counters() {
        t.row([name.to_string(), value.to_string()]);
    }
    t
}

/// Renders a registry's gauges as a `gauge | value` table,
/// name-ascending.
pub fn gauge_table(reg: &CounterRegistry) -> Table {
    let mut t = Table::new(["gauge", "value"]);
    for (name, value) in reg.gauges() {
        t.row([name.to_string(), fmt_f64(value)]);
    }
    t
}

/// Renders a sim-time sample series as `at_us | metric | value` rows in
/// sampling order.
pub fn series_table(series: &SampleSeries) -> Table {
    let mut t = Table::new(["at_us", "metric", "value"]);
    for (at_us, name, value) in series.rows() {
        t.row([at_us.to_string(), name.clone(), fmt_f64(*value)]);
    }
    t
}

/// Renders per-message-class bandwidth rows (from
/// [`peerwindow_trace::bandwidth_by_class`]) as a
/// `class | msgs | bits` table.
pub fn bandwidth_table(rows: &[BandwidthRow]) -> Table {
    let mut t = Table::new(["class", "msgs", "bits"]);
    for r in rows {
        t.row([
            r.class.name().to_string(),
            r.msgs.to_string(),
            r.bits.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_tables_render_sorted() {
        let mut reg = CounterRegistry::new();
        reg.add("msgs.probe", 3);
        reg.add("bits.probe", 384);
        reg.set_gauge("peers.mean", 12.5);
        let c = counter_table(&reg).to_markdown();
        let bits_at = c.find("bits.probe").unwrap();
        let msgs_at = c.find("msgs.probe").unwrap();
        assert!(bits_at < msgs_at, "counters are name-ascending");
        let g = gauge_table(&reg).to_markdown();
        assert!(g.contains("peers.mean") && g.contains("12.50"));
    }

    #[test]
    fn series_table_keeps_sampling_order() {
        let mut reg = CounterRegistry::new();
        reg.add("events", 1);
        let mut s = SampleSeries::new();
        s.sample(1_000, &reg);
        reg.add("events", 1);
        s.sample(2_000, &reg);
        let t = series_table(&s);
        assert_eq!(t.len(), 2);
        let csv = t.to_csv();
        assert!(csv.contains("1000,events,1") && csv.contains("2000,events,2"));
    }

    #[test]
    fn bandwidth_table_uses_class_names() {
        let rows = vec![BandwidthRow {
            class: peerwindow_trace::MsgClass::Probe,
            msgs: 7,
            bits: 896,
        }];
        let md = bandwidth_table(&rows).to_markdown();
        assert!(md.contains("probe") && md.contains("896"));
    }
}
