//! Fixed-bucket and integer histograms.

use serde::Serialize;

/// A counting histogram over u64 categories (e.g. nodes per level).
#[derive(Clone, Debug, Default, Serialize)]
pub struct CountHistogram {
    counts: Vec<u64>,
}

impl CountHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments category `k`.
    pub fn add(&mut self, k: usize) {
        if self.counts.len() <= k {
            self.counts.resize(k + 1, 0);
        }
        self.counts[k] += 1;
    }

    /// Decrements category `k` (saturating).
    pub fn sub(&mut self, k: usize) {
        if let Some(c) = self.counts.get_mut(k) {
            *c = c.saturating_sub(1);
        }
    }

    /// Count in category `k`.
    pub fn get(&self, k: usize) -> u64 {
        self.counts.get(k).copied().unwrap_or(0)
    }

    /// Total count.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Number of categories (highest seen + 1).
    pub fn categories(&self) -> usize {
        self.counts.len()
    }

    /// Fraction of the total in category `k` (0 when empty).
    pub fn fraction(&self, k: usize) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.get(k) as f64 / t as f64
        }
    }

    /// Iterates `(category, count)` pairs including zeros up to the max.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts.iter().copied().enumerate()
    }
}

/// A histogram over logarithmically spaced value buckets, for
/// latency/size distributions.
///
/// Out-of-range mass is explicit: samples below `min` land in the
/// underflow counter, samples at or beyond bucket [`Self::MAX_BUCKETS`]
/// (or non-finite samples) in the overflow counter, so `total()` always
/// equals the number of `add` calls and `counts` stays bounded.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct LogHistogram {
    base: f64,
    min: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl LogHistogram {
    /// Hard cap on in-range buckets. With `min = 1, base = 2` this
    /// covers values up to 2^96 — anything beyond is overflow, not an
    /// unbounded `Vec` resize.
    pub const MAX_BUCKETS: usize = 96;

    /// Buckets: `[min·base^k, min·base^(k+1))`.
    pub fn new(min: f64, base: f64) -> Self {
        assert!(min > 0.0 && base > 1.0);
        LogHistogram {
            base,
            min,
            counts: Vec::new(),
            underflow: 0,
            overflow: 0,
        }
    }

    /// Rebuilds a histogram from exported parts (the JSONL parser's
    /// constructor). Panics on invalid geometry or an over-long bucket
    /// vector, mirroring `new`'s contract.
    pub fn from_parts(
        min: f64,
        base: f64,
        counts: Vec<u64>,
        underflow: u64,
        overflow: u64,
    ) -> Self {
        assert!(min > 0.0 && base > 1.0);
        assert!(counts.len() <= Self::MAX_BUCKETS);
        LogHistogram {
            base,
            min,
            counts,
            underflow,
            overflow,
        }
    }

    /// Adds a sample. NaN and `+inf` count as overflow (they fit no
    /// bucket); negatives and anything below `min` as underflow.
    pub fn add(&mut self, x: f64) {
        if x < self.min {
            self.underflow += 1;
            return;
        }
        if !x.is_finite() {
            // NaN fails the `< min` test above but floors to bucket 0
            // through the cast; +inf would demand a usize::MAX resize.
            self.overflow += 1;
            return;
        }
        let k = ((x / self.min).ln() / self.base.ln()).floor() as usize;
        if k >= Self::MAX_BUCKETS {
            self.overflow += 1;
            return;
        }
        if self.counts.len() <= k {
            self.counts.resize(k + 1, 0);
        }
        self.counts[k] += 1;
    }

    /// Total samples (including underflow and overflow).
    pub fn total(&self) -> u64 {
        self.underflow + self.overflow + self.counts.iter().sum::<u64>()
    }

    /// Lower edge of the first bucket.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Geometric bucket growth factor.
    pub fn base(&self) -> f64 {
        self.base
    }

    /// Samples below `min`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples beyond the last representable bucket (or non-finite).
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// In-range bucket counts (bucket `k` covers
    /// `[min·base^k, min·base^(k+1))`).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Folds another histogram with identical geometry into this one.
    ///
    /// Merging is element-wise `u64` addition, so any merge order (and
    /// any grouping) produces the identical histogram — per-shard slots
    /// can aggregate into a global report in whatever order threads
    /// finish. A proptest pins this. Panics if geometries differ.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert!(
            self.min == other.min && self.base == other.base,
            "merge requires identical bucket geometry ({}/{} vs {}/{})",
            self.min,
            self.base,
            other.min,
            other.base
        );
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
    }

    /// Approximate quantile via bucket interpolation (`q` in `[0,1]`).
    ///
    /// The target rank is floored at 1 sample so `q = 0` reports where
    /// the smallest sample actually lies instead of unconditionally
    /// claiming the underflow region. A target inside the underflow
    /// region reports `min` (the tightest known upper bound); inside
    /// the overflow region, the cap edge `min·base^MAX_BUCKETS` (the
    /// tightest known lower bound).
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut acc = self.underflow;
        if acc >= target {
            return self.min;
        }
        for (k, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                // Geometric midpoint of the bucket.
                return self.min * self.base.powf(k as f64 + 0.5);
            }
        }
        if self.overflow > 0 {
            return self.min * self.base.powi(Self::MAX_BUCKETS as i32);
        }
        self.min * self.base.powi(self.counts.len() as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_histogram_add_sub() {
        let mut h = CountHistogram::new();
        h.add(0);
        h.add(0);
        h.add(3);
        assert_eq!(h.get(0), 2);
        assert_eq!(h.get(3), 1);
        assert_eq!(h.get(9), 0);
        assert_eq!(h.total(), 3);
        assert!((h.fraction(0) - 2.0 / 3.0).abs() < 1e-12);
        h.sub(0);
        assert_eq!(h.get(0), 1);
        h.sub(7); // out of range: no-op
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn log_histogram_quantiles() {
        let mut h = LogHistogram::new(1.0, 2.0);
        for i in 1..=1000u32 {
            h.add(i as f64);
        }
        assert_eq!(h.total(), 1000);
        let med = h.quantile(0.5);
        assert!(med > 250.0 && med < 1000.0, "median {med}");
        let p99 = h.quantile(0.99);
        assert!(p99 >= med);
    }

    #[test]
    fn log_histogram_underflow() {
        let mut h = LogHistogram::new(10.0, 10.0);
        h.add(1.0);
        h.add(100.0);
        assert_eq!(h.total(), 2);
        assert_eq!(h.quantile(0.25), 10.0); // underflow clamps to min
    }

    #[test]
    fn log_histogram_non_finite_and_huge_samples_are_overflow() {
        let mut h = LogHistogram::new(1.0, 2.0);
        h.add(f64::NAN);
        h.add(f64::INFINITY);
        h.add(1e300); // beyond bucket MAX_BUCKETS at base 2
        assert_eq!(h.overflow(), 3);
        assert_eq!(h.total(), 3);
        assert!(
            h.bucket_counts().is_empty(),
            "nothing misfiled into bucket 0"
        );
        h.add(-1.0); // negatives are underflow, not panics
        assert_eq!(h.underflow(), 1);
    }

    #[test]
    fn log_histogram_quantile_edges() {
        // q=0 with an empty underflow region must not claim `min`.
        let mut h = LogHistogram::new(1.0, 2.0);
        h.add(100.0); // bucket 6
        let q0 = h.quantile(0.0);
        assert!(
            q0 > 1.0,
            "q=0 reports the smallest sample's bucket, got {q0}"
        );
        // A target inside the overflow region reports the cap edge.
        h.add(f64::INFINITY);
        let q1 = h.quantile(1.0);
        assert_eq!(q1, 1.0 * 2.0f64.powi(LogHistogram::MAX_BUCKETS as i32));
    }

    #[test]
    fn log_histogram_merge_matches_direct_accumulation() {
        let mut direct = LogHistogram::new(1.0, 2.0);
        let mut a = LogHistogram::new(1.0, 2.0);
        let mut b = LogHistogram::new(1.0, 2.0);
        for i in 1..=100u32 {
            let x = (i * i) as f64 / 3.0;
            direct.add(x);
            if i % 2 == 0 {
                a.add(x)
            } else {
                b.add(x)
            }
        }
        let mut merged = LogHistogram::new(1.0, 2.0);
        merged.merge(&b);
        merged.merge(&a);
        assert_eq!(merged, direct);
    }

    #[test]
    #[should_panic(expected = "identical bucket geometry")]
    fn log_histogram_merge_rejects_mismatched_geometry() {
        let mut a = LogHistogram::new(1.0, 2.0);
        a.merge(&LogHistogram::new(10.0, 2.0));
    }

    #[test]
    fn log_histogram_from_parts_round_trips_accessors() {
        let h = LogHistogram::from_parts(1.0, 2.0, vec![3, 0, 7], 2, 1);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.base(), 2.0);
        assert_eq!(h.bucket_counts(), &[3, 0, 7]);
        assert_eq!(h.underflow(), 2);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 13);
    }

    mod merge_order {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            // Satellite contract: per-shard → global aggregation must
            // not depend on which shard's histogram merges first. Every
            // partition of the samples, merged in every order, reports
            // the exact same value at every quantile.
            #[test]
            fn merge_order_never_changes_any_quantile(
                raw in proptest::collection::vec(1u64..1_000_000_000_000, 1..200),
                assignment in proptest::collection::vec(0usize..4, 1..200),
                order in Just([3usize, 0, 2, 1]),
            ) {
                let mut direct = LogHistogram::new(1.0, 2.0);
                let mut parts: Vec<LogHistogram> =
                    (0..4).map(|_| LogHistogram::new(1.0, 2.0)).collect();
                for (i, &r) in raw.iter().enumerate() {
                    let x = r as f64 / 97.0; // cover underflow (< 1.0) and wide range
                    direct.add(x);
                    parts[assignment[i % assignment.len()]].add(x);
                }
                let mut fwd = LogHistogram::new(1.0, 2.0);
                for p in &parts {
                    fwd.merge(p);
                }
                let mut shuffled = LogHistogram::new(1.0, 2.0);
                for &i in &order {
                    shuffled.merge(&parts[i]);
                }
                prop_assert_eq!(&fwd, &direct);
                for q in [0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 1.0] {
                    prop_assert_eq!(fwd.quantile(q), shuffled.quantile(q));
                    prop_assert_eq!(fwd.quantile(q), direct.quantile(q));
                }
            }
        }
    }
}
