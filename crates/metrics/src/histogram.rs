//! Fixed-bucket and integer histograms.

use serde::Serialize;

/// A counting histogram over u64 categories (e.g. nodes per level).
#[derive(Clone, Debug, Default, Serialize)]
pub struct CountHistogram {
    counts: Vec<u64>,
}

impl CountHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments category `k`.
    pub fn add(&mut self, k: usize) {
        if self.counts.len() <= k {
            self.counts.resize(k + 1, 0);
        }
        self.counts[k] += 1;
    }

    /// Decrements category `k` (saturating).
    pub fn sub(&mut self, k: usize) {
        if let Some(c) = self.counts.get_mut(k) {
            *c = c.saturating_sub(1);
        }
    }

    /// Count in category `k`.
    pub fn get(&self, k: usize) -> u64 {
        self.counts.get(k).copied().unwrap_or(0)
    }

    /// Total count.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Number of categories (highest seen + 1).
    pub fn categories(&self) -> usize {
        self.counts.len()
    }

    /// Fraction of the total in category `k` (0 when empty).
    pub fn fraction(&self, k: usize) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.get(k) as f64 / t as f64
        }
    }

    /// Iterates `(category, count)` pairs including zeros up to the max.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts.iter().copied().enumerate()
    }
}

/// A histogram over logarithmically spaced value buckets, for
/// latency/size distributions.
#[derive(Clone, Debug, Serialize)]
pub struct LogHistogram {
    base: f64,
    min: f64,
    counts: Vec<u64>,
    underflow: u64,
}

impl LogHistogram {
    /// Buckets: `[min·base^k, min·base^(k+1))`.
    pub fn new(min: f64, base: f64) -> Self {
        assert!(min > 0.0 && base > 1.0);
        LogHistogram {
            base,
            min,
            counts: Vec::new(),
            underflow: 0,
        }
    }

    /// Adds a sample.
    pub fn add(&mut self, x: f64) {
        if x < self.min {
            self.underflow += 1;
            return;
        }
        let k = ((x / self.min).ln() / self.base.ln()).floor() as usize;
        if self.counts.len() <= k {
            self.counts.resize(k + 1, 0);
        }
        self.counts[k] += 1;
    }

    /// Total samples (including underflow).
    pub fn total(&self) -> u64 {
        self.underflow + self.counts.iter().sum::<u64>()
    }

    /// Approximate quantile via bucket interpolation (`q` in `[0,1]`).
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut acc = self.underflow;
        if acc >= target {
            return self.min;
        }
        for (k, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                // Geometric midpoint of the bucket.
                return self.min * self.base.powf(k as f64 + 0.5);
            }
        }
        self.min * self.base.powi(self.counts.len() as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_histogram_add_sub() {
        let mut h = CountHistogram::new();
        h.add(0);
        h.add(0);
        h.add(3);
        assert_eq!(h.get(0), 2);
        assert_eq!(h.get(3), 1);
        assert_eq!(h.get(9), 0);
        assert_eq!(h.total(), 3);
        assert!((h.fraction(0) - 2.0 / 3.0).abs() < 1e-12);
        h.sub(0);
        assert_eq!(h.get(0), 1);
        h.sub(7); // out of range: no-op
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn log_histogram_quantiles() {
        let mut h = LogHistogram::new(1.0, 2.0);
        for i in 1..=1000u32 {
            h.add(i as f64);
        }
        assert_eq!(h.total(), 1000);
        let med = h.quantile(0.5);
        assert!(med > 250.0 && med < 1000.0, "median {med}");
        let p99 = h.quantile(0.99);
        assert!(p99 >= med);
    }

    #[test]
    fn log_histogram_underflow() {
        let mut h = LogHistogram::new(10.0, 10.0);
        h.add(1.0);
        h.add(100.0);
        assert_eq!(h.total(), 2);
        assert_eq!(h.quantile(0.25), 10.0); // underflow clamps to min
    }
}
