//! Streaming statistics (Welford) and per-level aggregation.

use serde::Serialize;

/// Count / mean / variance / min / max over a stream of samples, in O(1)
/// memory (Welford's algorithm).
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct StreamingStat {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl StreamingStat {
    /// Empty accumulator.
    pub fn new() -> Self {
        StreamingStat {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let d = x - self.mean;
        self.mean += d / self.count as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (+∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &StreamingStat) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let d = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += d * n2 / n;
        self.m2 += other.m2 + d * d * n1 * n2 / n;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// One [`StreamingStat`] per PeerWindow level, growing on demand.
#[derive(Clone, Debug, Default, Serialize)]
pub struct PerLevel {
    stats: Vec<StreamingStat>,
}

impl PerLevel {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sample at `level`.
    pub fn push(&mut self, level: u8, x: f64) {
        let l = level as usize;
        if self.stats.len() <= l {
            self.stats.resize_with(l + 1, StreamingStat::new);
        }
        self.stats[l].push(x);
    }

    /// The accumulator for `level`, if any sample was recorded.
    pub fn level(&self, level: u8) -> Option<&StreamingStat> {
        self.stats.get(level as usize).filter(|s| s.count() > 0)
    }

    /// Number of level slots (highest level with data + 1).
    pub fn levels(&self) -> usize {
        self.stats.len()
    }

    /// Iterates `(level, stat)` over levels that saw samples.
    pub fn iter(&self) -> impl Iterator<Item = (u8, &StreamingStat)> + '_ {
        self.stats
            .iter()
            .enumerate()
            .filter(|(_, s)| s.count() > 0)
            .map(|(l, s)| (l as u8, s))
    }

    /// Grand total across levels.
    pub fn overall(&self) -> StreamingStat {
        let mut acc = StreamingStat::new();
        for s in &self.stats {
            acc.merge(s);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = StreamingStat::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stat_is_sane() {
        let s = StreamingStat::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn merge_equals_concatenation() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = StreamingStat::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = StreamingStat::new();
        let mut b = StreamingStat::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn per_level_routes_samples() {
        let mut p = PerLevel::new();
        p.push(0, 1.0);
        p.push(0, 3.0);
        p.push(3, 10.0);
        assert_eq!(p.level(0).unwrap().mean(), 2.0);
        assert!(p.level(1).is_none());
        assert_eq!(p.level(3).unwrap().count(), 1);
        assert_eq!(p.levels(), 4);
        let pairs: Vec<u8> = p.iter().map(|(l, _)| l).collect();
        assert_eq!(pairs, vec![0, 3]);
        assert_eq!(p.overall().count(), 3);
    }
}
