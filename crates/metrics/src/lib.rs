//! # peerwindow-metrics
//!
//! Statistics and reporting utilities shared by the PeerWindow simulator,
//! baselines, and the figure-reproduction harness: streaming accumulators,
//! per-level tables, histograms, terminal plots, markdown/CSV rendering,
//! and table views over the trace layer's counter registry.
//!
//! The [`runtime`] module is the wall-clock side: a compiled-out-by-
//! default [`runtime::MetricsSink`] the engines record into, phase
//! profilers, merged run reports, and their JSONL/Prometheus exports.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod histogram;
pub mod plot;
pub mod runtime;
pub mod stream;
pub mod table;
pub mod trace_tables;

pub use histogram::{CountHistogram, LogHistogram};
pub use plot::{bar_chart, scatter};
pub use stream::{PerLevel, StreamingStat};
pub use table::{fmt_f64, Table};
pub use trace_tables::{bandwidth_table, counter_table, gauge_table, series_table};
