//! Terminal plots for experiment reports.
//!
//! EXPERIMENTS.md quotes figures as monospace charts so the shapes the
//! paper plots (distributions per level, error-vs-scale trends) are
//! visible without a plotting toolchain. Two forms: horizontal bar charts
//! (categorical x) and scatter/line charts on linear or log axes.

/// Renders a horizontal bar chart: one row per `(label, value)`.
///
/// Bars are scaled to `width` characters against the maximum value; each
/// row shows the label, the bar, and the numeric value.
pub fn bar_chart(rows: &[(String, f64)], width: usize) -> String {
    let max = rows.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
    let label_w = rows
        .iter()
        .map(|(l, _)| l.chars().count())
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    for (label, value) in rows {
        let filled = if max > 0.0 {
            ((value / max) * width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{label:<label_w$} |{}{} {value:.4}\n",
            "█".repeat(filled),
            " ".repeat(width - filled.min(width)),
        ));
    }
    out
}

/// Axis scale for [`scatter`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Linear axis.
    Linear,
    /// Log₁₀ axis (non-positive values are clamped to the minimum).
    Log,
}

fn project(v: f64, min: f64, max: f64, scale: Scale, extent: usize) -> usize {
    let (v, min, max) = match scale {
        Scale::Linear => (v, min, max),
        Scale::Log => (v.max(min).log10(), min.log10(), max.log10()),
    };
    if max <= min {
        return 0;
    }
    (((v - min) / (max - min)) * (extent.saturating_sub(1)) as f64).round() as usize
}

/// Renders an ASCII scatter plot of `(x, y)` points on a `width`×`height`
/// character canvas, with the given axis scales. Points are `*`; the
/// corners are annotated with the axis ranges.
pub fn scatter(points: &[(f64, f64)], width: usize, height: usize, xs: Scale, ys: Scale) -> String {
    if points.is_empty() {
        return String::from("(no data)\n");
    }
    let positive_floor = |s: Scale, vals: &mut dyn Iterator<Item = f64>| -> (f64, f64) {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for v in vals {
            if s == Scale::Log && v <= 0.0 {
                continue;
            }
            min = min.min(v);
            max = max.max(v);
        }
        if !min.is_finite() {
            (1e-9, 1.0)
        } else {
            (min, max)
        }
    };
    let (xmin, xmax) = positive_floor(xs, &mut points.iter().map(|p| p.0));
    let (ymin, ymax) = positive_floor(ys, &mut points.iter().map(|p| p.1));
    let mut grid = vec![vec![' '; width]; height];
    for &(x, y) in points {
        let cx = project(x, xmin, xmax, xs, width).min(width - 1);
        let cy = project(y, ymin, ymax, ys, height).min(height - 1);
        grid[height - 1 - cy][cx] = '*';
    }
    let mut out = String::new();
    out.push_str(&format!("{ymax:>10.3e} ┤"));
    out.push_str(&grid[0].iter().collect::<String>());
    out.push('\n');
    for row in &grid[1..height - 1] {
        out.push_str("           │");
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str(&format!("{ymin:>10.3e} ┤"));
    out.push_str(&grid[height - 1].iter().collect::<String>());
    out.push('\n');
    out.push_str(&format!(
        "           └{}\n            {:<.3e}{}{:>.3e}\n",
        "─".repeat(width),
        xmin,
        " ".repeat(width.saturating_sub(18)),
        xmax
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_chart_scales_to_max() {
        let rows = vec![
            ("L0".to_string(), 0.5),
            ("L1".to_string(), 0.25),
            ("L2".to_string(), 0.0),
        ];
        let s = bar_chart(&rows, 20);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].matches('█').count(), 20);
        assert_eq!(lines[1].matches('█').count(), 10);
        assert_eq!(lines[2].matches('█').count(), 0);
        assert!(lines[0].contains("0.5000"));
    }

    #[test]
    fn bar_chart_handles_empty_and_zero() {
        assert_eq!(bar_chart(&[], 10), "");
        let s = bar_chart(&[("x".to_string(), 0.0)], 10);
        assert!(s.contains("|"));
    }

    #[test]
    fn scatter_plots_extremes_at_corners() {
        let pts = vec![(1.0, 1.0), (10.0, 100.0)];
        let s = scatter(&pts, 30, 8, Scale::Linear, Scale::Linear);
        let lines: Vec<&str> = s.lines().collect();
        // First data row (top) holds the max-y point at the right edge.
        assert!(lines[0].trim_end().ends_with('*'));
        // Bottom data row holds the min point just after the axis.
        assert!(lines[7].contains('*'));
        assert!(s.contains('└'));
    }

    #[test]
    fn log_scale_spreads_decades_evenly() {
        // Points one decade apart must be evenly spaced on a log axis.
        let pts = vec![(1.0, 1.0), (1.0, 10.0), (1.0, 100.0)];
        let s = scatter(&pts, 10, 9, Scale::Linear, Scale::Log);
        let rows_with_star: Vec<usize> = s
            .lines()
            .enumerate()
            .filter(|(_, l)| l.contains('*'))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(rows_with_star.len(), 3);
        let d1 = rows_with_star[1] - rows_with_star[0];
        let d2 = rows_with_star[2] - rows_with_star[1];
        assert_eq!(d1, d2, "decades not evenly spaced: {rows_with_star:?}");
    }

    #[test]
    fn scatter_empty_is_graceful() {
        assert_eq!(
            scatter(&[], 10, 5, Scale::Linear, Scale::Linear),
            "(no data)\n"
        );
    }
}
