//! The wall-clock layer: every `std::time::Instant` read in the
//! workspace's deterministic side lives in this file.
//!
//! The audit lint's `wall-clock` rule allows `Instant::now` only under
//! `crates/metrics/src/runtime` (plus the inherently wall-clock
//! transport/bench crates), so engine code cannot acquire a timestamp
//! except through [`Stopwatch`] / [`Profiler`] — and those only *record*
//! durations; nothing here can feed time back into scheduling.

use std::cell::RefCell;
use std::time::Instant;

/// A lap timer: `mark` stamps an origin, `lap_ns` returns the elapsed
/// nanoseconds since the last stamp and restamps. Successive laps
/// partition wall-clock time exactly — no gap, no overlap — which is
/// what makes the engine's attribution fractions sum to 1.
#[derive(Clone, Copy, Debug, Default)]
pub struct Stopwatch {
    last: Option<Instant>,
}

impl Stopwatch {
    /// Stamps (or restamps) the lap origin.
    #[inline]
    pub fn mark(&mut self) {
        self.last = Some(Instant::now());
    }

    /// Nanoseconds since the last `mark`/`lap_ns`, restamping the
    /// origin. Returns 0 (and stamps) if never marked.
    #[inline]
    pub fn lap_ns(&mut self) -> u64 {
        let now = Instant::now();
        let ns = match self.last {
            Some(t) => now.duration_since(t).as_nanos() as u64,
            None => 0,
        };
        self.last = Some(now);
        ns
    }
}

/// A phase-scoped wall-clock profiler for harness code (perfbaseline,
/// CLIs): open a [`ProfSpan`] around each named phase, read the merged
/// per-phase totals at the end. Phases keep first-open order; reopening
/// a name accumulates into the same entry. Single-threaded by design
/// (interior mutability via `RefCell`), which is all the harnesses need.
#[derive(Debug, Default)]
pub struct Profiler {
    phases: RefCell<Vec<(String, u64)>>,
}

impl Profiler {
    /// An empty profiler.
    pub fn new() -> Self {
        Profiler::default()
    }

    /// Opens an RAII span; the elapsed time is attributed to `name`
    /// when the span drops.
    pub fn span(&self, name: &str) -> ProfSpan<'_> {
        ProfSpan {
            prof: self,
            name: name.to_string(),
            t0: Instant::now(),
        }
    }

    /// Adds `ns` to phase `name` directly.
    pub fn add_ns(&self, name: &str, ns: u64) {
        let mut phases = self.phases.borrow_mut();
        if let Some(entry) = phases.iter_mut().find(|(n, _)| n == name) {
            entry.1 += ns;
        } else {
            phases.push((name.to_string(), ns));
        }
    }

    /// Merged `(phase, total_ns)` pairs in first-open order.
    pub fn report(&self) -> Vec<(String, u64)> {
        self.phases.borrow().clone()
    }

    /// Total nanoseconds across all phases.
    pub fn total_ns(&self) -> u64 {
        self.phases.borrow().iter().map(|(_, ns)| ns).sum()
    }
}

/// RAII guard from [`Profiler::span`]: attributes its lifetime's
/// wall-clock duration to the named phase on drop.
#[derive(Debug)]
pub struct ProfSpan<'a> {
    prof: &'a Profiler,
    name: String,
    t0: Instant,
}

impl Drop for ProfSpan<'_> {
    fn drop(&mut self) {
        let ns = self.t0.elapsed().as_nanos() as u64;
        self.prof.add_ns(&self.name, ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_laps_are_monotone_and_restamp() {
        let mut w = Stopwatch::default();
        assert_eq!(w.lap_ns(), 0, "unmarked stopwatch attributes nothing");
        w.mark();
        std::hint::black_box((0..1000).sum::<u64>());
        let a = w.lap_ns();
        let b = w.lap_ns();
        // The second lap only covers the instant between the two calls.
        assert!(b <= a + 1_000_000, "lap origin must restamp ({a} vs {b})");
    }

    #[test]
    fn profiler_merges_reopened_phases_in_first_open_order() {
        let p = Profiler::new();
        p.add_ns("load", 10);
        p.add_ns("run", 5);
        p.add_ns("load", 7);
        assert_eq!(
            p.report(),
            vec![("load".to_string(), 17), ("run".to_string(), 5)]
        );
        assert_eq!(p.total_ns(), 22);
    }

    #[test]
    fn span_attributes_on_drop() {
        let p = Profiler::new();
        {
            let _s = p.span("phase");
            std::hint::black_box((0..1000).sum::<u64>());
        }
        assert_eq!(p.report().len(), 1);
        assert_eq!(p.report()[0].0, "phase");
    }
}
