//! Merged per-run reports: the aggregation target every
//! [`MetricsSink`](super::MetricsSink) folds into, with a table
//! renderer, a JSONL export whose parser is an exact inverse (pinned by
//! `pwstat roundtrip` in CI), and a Prometheus text exposition.

use super::prom::{escape_label, render_counters};
use super::{Counter, SampleKind, TimeCat, GROUPS};
use crate::histogram::LogHistogram;
use crate::table::Table;

/// Per-shard breakdown attached to a [`RunReport`].
#[derive(Clone, Debug, PartialEq)]
pub struct ShardReport {
    /// Shard index.
    pub shard: u64,
    /// Events this shard executed.
    pub events: u64,
    /// Cross-shard messages this shard sent.
    pub handoff_msgs: u64,
    /// Events still pending at report time.
    pub pending: u64,
    /// Active scheduler backend (`heap` / `wheel`).
    pub backend: String,
    /// Wheel↔heap crossover migrations.
    pub migrations: u64,
    /// Singleton-slot wheel fast-path hits.
    pub fast_hits: u64,
}

/// A merged wall-clock report for one engine run: total time per
/// [`TimeCat`], counters, sample distributions, and per-shard rows.
///
/// Reports are additive — every slot folds in with plain `+=` /
/// histogram merges — so the merged result is independent of fold
/// order (pinned by the histogram merge proptest).
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// Run label (e.g. `fanout_modulo_4`).
    pub name: String,
    /// Shard count of the run.
    pub shards: u64,
    /// Worker-thread count of the run.
    pub workers: u64,
    /// `(category, total ns)` per [`TimeCat`], canonical order.
    pub time_ns: Vec<(String, u64)>,
    /// `(counter, value)` per [`Counter`], canonical order.
    pub counters: Vec<(String, u64)>,
    /// `(sample, distribution)` per [`SampleKind`], canonical order.
    pub hists: Vec<(String, LogHistogram)>,
    /// Per-shard rows (empty when metrics were compiled out).
    pub per_shard: Vec<ShardReport>,
}

impl RunReport {
    /// An empty report with every canonical key present (so folds are
    /// pure additions and exports have a stable shape).
    pub fn new(name: &str, shards: u64, workers: u64) -> Self {
        RunReport {
            name: name.to_string(),
            shards,
            workers,
            time_ns: TimeCat::ALL
                .iter()
                .map(|c| (c.name().to_string(), 0))
                .collect(),
            counters: Counter::ALL
                .iter()
                .map(|c| (c.name().to_string(), 0))
                .collect(),
            hists: SampleKind::ALL
                .iter()
                .map(|s| (s.name().to_string(), LogHistogram::new(1.0, 2.0)))
                .collect(),
            per_shard: Vec::new(),
        }
    }

    /// Adds `ns` to category `cat` (creating the row if unknown).
    pub fn add_time_ns(&mut self, cat: &str, ns: u64) {
        if let Some(e) = self.time_ns.iter_mut().find(|(n, _)| n == cat) {
            e.1 += ns;
        } else {
            self.time_ns.push((cat.to_string(), ns));
        }
    }

    /// Adds `v` to counter `name` (creating the row if unknown).
    pub fn add_counter(&mut self, name: &str, v: u64) {
        if let Some(e) = self.counters.iter_mut().find(|(n, _)| n == name) {
            e.1 += v;
        } else {
            self.counters.push((name.to_string(), v));
        }
    }

    /// Merges `h` into the distribution `name`.
    pub fn merge_hist(&mut self, name: &str, h: &LogHistogram) {
        if let Some(e) = self.hists.iter_mut().find(|(n, _)| n == name) {
            e.1.merge(h);
        } else {
            let mut fresh = LogHistogram::new(h.min(), h.base());
            fresh.merge(h);
            self.hists.push((name.to_string(), fresh));
        }
    }

    /// Value of counter `name` (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Total attributed wall-clock nanoseconds across all categories.
    pub fn total_time_ns(&self) -> u64 {
        self.time_ns.iter().map(|(_, ns)| ns).sum()
    }

    /// Coarse attribution: `(group, fraction)` for the four groups in
    /// [`GROUPS`] order. Because the recorder is lap-based the
    /// fractions sum to 1.0 (within float rounding) whenever any time
    /// was recorded; an empty report yields all zeros.
    pub fn attribution(&self) -> Vec<(&'static str, f64)> {
        let total = self.total_time_ns();
        let mut grouped = [0u64; GROUPS.len()];
        for (cat, ns) in &self.time_ns {
            let group = TimeCat::ALL
                .iter()
                .find(|c| c.name() == cat)
                .map(|c| c.group())
                .unwrap_or("other");
            let gi = GROUPS
                .iter()
                .position(|g| *g == group)
                .unwrap_or(GROUPS.len() - 1);
            grouped[gi] += ns;
        }
        GROUPS
            .iter()
            .zip(grouped)
            .map(|(g, ns)| {
                (
                    *g,
                    if total == 0 {
                        0.0
                    } else {
                        ns as f64 / total as f64
                    },
                )
            })
            .collect()
    }

    /// Fraction of attributed time in group `g` (see [`GROUPS`]).
    pub fn frac(&self, g: &str) -> f64 {
        self.attribution()
            .into_iter()
            .find(|(name, _)| *name == g)
            .map(|(_, f)| f)
            .unwrap_or(0.0)
    }

    /// Shard rows sorted by events descending, truncated to `n`.
    pub fn top_shards(&self, n: usize) -> Vec<&ShardReport> {
        let mut rows: Vec<&ShardReport> = self.per_shard.iter().collect();
        rows.sort_by(|a, b| b.events.cmp(&a.events).then(a.shard.cmp(&b.shard)));
        rows.truncate(n);
        rows
    }

    /// Renders the report as markdown tables (attribution, phase times,
    /// counters, distributions, top-`top` shards).
    pub fn render(&self, top: usize) -> String {
        let mut out = String::new();
        let total_ms = self.total_time_ns() as f64 / 1e6;
        out.push_str(&format!(
            "# run {} — shards={} workers={} measured={:.2} ms\n\n",
            self.name, self.shards, self.workers, total_ms
        ));

        let mut attr = Table::new(vec!["group", "fraction"]);
        for (g, f) in self.attribution() {
            attr.row(vec![g.to_string(), format!("{f:.3}")]);
        }
        out.push_str(&attr.to_markdown());

        let mut phases = Table::new(vec!["phase", "ms", "share"]);
        let total = self.total_time_ns().max(1);
        for (cat, ns) in &self.time_ns {
            phases.row(vec![
                cat.clone(),
                format!("{:.3}", *ns as f64 / 1e6),
                format!("{:.3}", *ns as f64 / total as f64),
            ]);
        }
        out.push('\n');
        out.push_str(&phases.to_markdown());

        let mut ctr = Table::new(vec!["counter", "value"]);
        for (name, v) in &self.counters {
            ctr.row(vec![name.clone(), v.to_string()]);
        }
        out.push('\n');
        out.push_str(&ctr.to_markdown());

        let mut dist = Table::new(vec![
            "sample", "count", "p50", "p90", "p99", "under", "over",
        ]);
        for (name, h) in &self.hists {
            dist.row(vec![
                name.clone(),
                h.total().to_string(),
                format!("{:.1}", h.quantile(0.5)),
                format!("{:.1}", h.quantile(0.9)),
                format!("{:.1}", h.quantile(0.99)),
                h.underflow().to_string(),
                h.overflow().to_string(),
            ]);
        }
        out.push('\n');
        out.push_str(&dist.to_markdown());

        if !self.per_shard.is_empty() {
            let mut tbl = Table::new(vec![
                "shard",
                "events",
                "handoff",
                "pending",
                "backend",
                "migrations",
                "fast_hits",
            ]);
            for s in self.top_shards(top) {
                tbl.row(vec![
                    s.shard.to_string(),
                    s.events.to_string(),
                    s.handoff_msgs.to_string(),
                    s.pending.to_string(),
                    s.backend.clone(),
                    s.migrations.to_string(),
                    s.fast_hits.to_string(),
                ]);
            }
            out.push('\n');
            out.push_str(&tbl.to_markdown());
        }
        out
    }

    /// Serialises the report as JSON Lines. [`parse_jsonl`] is the
    /// exact inverse: `to_jsonl ∘ parse_jsonl ∘ to_jsonl == to_jsonl`
    /// byte for byte (checked by `pwstat roundtrip`).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"rec\":\"run\",\"name\":\"{}\",\"shards\":{},\"workers\":{}}}\n",
            escape_json(&self.name),
            self.shards,
            self.workers
        ));
        for (cat, ns) in &self.time_ns {
            out.push_str(&format!(
                "{{\"rec\":\"time\",\"cat\":\"{}\",\"ns\":{}}}\n",
                escape_json(cat),
                ns
            ));
        }
        for (name, v) in &self.counters {
            out.push_str(&format!(
                "{{\"rec\":\"ctr\",\"name\":\"{}\",\"v\":{}}}\n",
                escape_json(name),
                v
            ));
        }
        for (name, h) in &self.hists {
            let counts: Vec<String> = h.bucket_counts().iter().map(|c| c.to_string()).collect();
            out.push_str(&format!(
                "{{\"rec\":\"hist\",\"name\":\"{}\",\"min\":{},\"base\":{},\"underflow\":{},\"overflow\":{},\"counts\":[{}]}}\n",
                escape_json(name),
                h.min(),
                h.base(),
                h.underflow(),
                h.overflow(),
                counts.join(",")
            ));
        }
        for s in &self.per_shard {
            out.push_str(&format!(
                "{{\"rec\":\"shard\",\"shard\":{},\"events\":{},\"handoff_msgs\":{},\"pending\":{},\"backend\":\"{}\",\"migrations\":{},\"fast_hits\":{}}}\n",
                s.shard,
                s.events,
                s.handoff_msgs,
                s.pending,
                escape_json(&s.backend),
                s.migrations,
                s.fast_hits
            ));
        }
        out.push_str("{\"rec\":\"end\"}\n");
        out
    }
}

fn escape_json(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn unescape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            if let Some(n) = chars.next() {
                out.push(n);
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn str_field(line: &str, key: &str) -> Result<String, String> {
    let pat = format!("\"{key}\":\"");
    let start = line
        .find(&pat)
        .ok_or_else(|| format!("missing string field {key:?} in {line:?}"))?
        + pat.len();
    let bytes = line.as_bytes();
    let mut i = start;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return Ok(unescape_json(&line[start..i])),
            _ => i += 1,
        }
    }
    Err(format!("unterminated string field {key:?} in {line:?}"))
}

fn raw_num_field<'a>(line: &'a str, key: &str) -> Result<&'a str, String> {
    let pat = format!("\"{key}\":");
    let start = line
        .find(&pat)
        .ok_or_else(|| format!("missing numeric field {key:?} in {line:?}"))?
        + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}', ']']).unwrap_or(rest.len());
    Ok(rest[..end].trim())
}

fn u64_field(line: &str, key: &str) -> Result<u64, String> {
    raw_num_field(line, key)?
        .parse()
        .map_err(|e| format!("bad u64 {key:?} in {line:?}: {e}"))
}

fn f64_field(line: &str, key: &str) -> Result<f64, String> {
    raw_num_field(line, key)?
        .parse()
        .map_err(|e| format!("bad f64 {key:?} in {line:?}: {e}"))
}

fn counts_field(line: &str) -> Result<Vec<u64>, String> {
    let pat = "\"counts\":[";
    let start = line
        .find(pat)
        .ok_or_else(|| format!("missing counts array in {line:?}"))?
        + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(']')
        .ok_or_else(|| format!("unterminated counts array in {line:?}"))?;
    let body = &rest[..end];
    if body.is_empty() {
        return Ok(Vec::new());
    }
    body.split(',')
        .map(|t| {
            t.trim()
                .parse()
                .map_err(|e| format!("bad count {t:?} in {line:?}: {e}"))
        })
        .collect()
}

/// Parses a JSONL export produced by [`RunReport::to_jsonl`] (one or
/// more concatenated reports). Exact inverse of the exporter; any
/// malformed line is an error, not a skip.
pub fn parse_jsonl(text: &str) -> Result<Vec<RunReport>, String> {
    let mut reports = Vec::new();
    let mut cur: Option<RunReport> = None;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let rec = str_field(line, "rec").map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let err = |e: String| format!("line {}: {e}", lineno + 1);
        match rec.as_str() {
            "run" => {
                if cur.is_some() {
                    return Err(err("new run before end of previous".to_string()));
                }
                let mut r = RunReport::new(
                    &str_field(line, "name").map_err(err)?,
                    u64_field(line, "shards").map_err(err)?,
                    u64_field(line, "workers").map_err(err)?,
                );
                // Start from truly empty rows: the exporter writes every
                // row it has, so parsing must not pre-seed defaults.
                r.time_ns.clear();
                r.counters.clear();
                r.hists.clear();
                cur = Some(r);
            }
            "time" => {
                let r = cur
                    .as_mut()
                    .ok_or_else(|| err("time outside run".to_string()))?;
                r.time_ns.push((
                    str_field(line, "cat").map_err(err)?,
                    u64_field(line, "ns").map_err(err)?,
                ));
            }
            "ctr" => {
                let r = cur
                    .as_mut()
                    .ok_or_else(|| err("ctr outside run".to_string()))?;
                r.counters.push((
                    str_field(line, "name").map_err(err)?,
                    u64_field(line, "v").map_err(err)?,
                ));
            }
            "hist" => {
                let r = cur
                    .as_mut()
                    .ok_or_else(|| err("hist outside run".to_string()))?;
                let h = LogHistogram::from_parts(
                    f64_field(line, "min").map_err(err)?,
                    f64_field(line, "base").map_err(err)?,
                    counts_field(line).map_err(err)?,
                    u64_field(line, "underflow").map_err(err)?,
                    u64_field(line, "overflow").map_err(err)?,
                );
                r.hists.push((str_field(line, "name").map_err(err)?, h));
            }
            "shard" => {
                let r = cur
                    .as_mut()
                    .ok_or_else(|| err("shard outside run".to_string()))?;
                r.per_shard.push(ShardReport {
                    shard: u64_field(line, "shard").map_err(err)?,
                    events: u64_field(line, "events").map_err(err)?,
                    handoff_msgs: u64_field(line, "handoff_msgs").map_err(err)?,
                    pending: u64_field(line, "pending").map_err(err)?,
                    backend: str_field(line, "backend").map_err(err)?,
                    migrations: u64_field(line, "migrations").map_err(err)?,
                    fast_hits: u64_field(line, "fast_hits").map_err(err)?,
                });
            }
            "end" => {
                let r = cur
                    .take()
                    .ok_or_else(|| err("end outside run".to_string()))?;
                reports.push(r);
            }
            other => return Err(err(format!("unknown record kind {other:?}"))),
        }
    }
    if cur.is_some() {
        return Err("truncated export: run without end record".to_string());
    }
    Ok(reports)
}

/// Renders one or more run reports as a Prometheus text exposition
/// page: per-phase time, counters, and per-shard event counters.
pub fn prometheus(reports: &[RunReport]) -> String {
    let mut out = String::new();
    let mut time: Vec<(String, u64)> = Vec::new();
    let mut shard_events: Vec<(String, u64)> = Vec::new();
    let mut by_counter: Vec<(String, Vec<(String, u64)>)> = Vec::new();
    for r in reports {
        let run = escape_label(&r.name);
        for (cat, ns) in &r.time_ns {
            time.push((format!("run=\"{run}\",cat=\"{}\"", escape_label(cat)), *ns));
        }
        for (name, v) in &r.counters {
            let idx = match by_counter.iter().position(|(n, _)| n == name) {
                Some(i) => i,
                None => {
                    by_counter.push((name.clone(), Vec::new()));
                    by_counter.len() - 1
                }
            };
            by_counter[idx].1.push((format!("run=\"{run}\""), *v));
        }
        for s in &r.per_shard {
            shard_events.push((format!("run=\"{run}\",shard=\"{}\"", s.shard), s.events));
        }
    }
    render_counters(
        &mut out,
        "peerwindow_engine_time_ns_total",
        "Wall-clock nanoseconds attributed to each engine phase.",
        &time,
    );
    for (name, fam) in &by_counter {
        render_counters(
            &mut out,
            &format!("peerwindow_engine_{name}_total"),
            "Engine runtime counter.",
            fam,
        );
    }
    render_counters(
        &mut out,
        "peerwindow_engine_shard_events_total",
        "Events executed per shard.",
        &shard_events,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::super::{Counter, MetricsSink, SampleKind, ShardSlot, TimeCat};
    use super::*;

    fn sample_report() -> RunReport {
        let mut slot = ShardSlot::enabled_slot();
        slot.add(Counter::Events, 120);
        slot.add(Counter::Windows, 4);
        slot.add(Counter::HandoffMsgs, 9);
        slot.add(Counter::HandoffBatches, 3);
        slot.observe(SampleKind::EventsPerWindow, 30.0);
        slot.observe(SampleKind::WindowWidthUs, 1000.0);
        slot.mark();
        std::hint::black_box((0..5000).sum::<u64>());
        slot.lap(TimeCat::Execute);
        slot.lap(TimeCat::WaitPlan);
        let mut r = RunReport::new("sample", 2, 2);
        slot.fold_into(&mut r);
        r.per_shard.push(ShardReport {
            shard: 0,
            events: 80,
            handoff_msgs: 9,
            pending: 0,
            backend: "wheel".to_string(),
            migrations: 1,
            fast_hits: 40,
        });
        r.per_shard.push(ShardReport {
            shard: 1,
            events: 40,
            handoff_msgs: 0,
            pending: 2,
            backend: "heap".to_string(),
            migrations: 0,
            fast_hits: 0,
        });
        r
    }

    #[test]
    fn attribution_fractions_sum_to_one_when_time_recorded() {
        let r = sample_report();
        assert!(r.total_time_ns() > 0);
        let sum: f64 = r.attribution().iter().map(|(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-9, "fractions sum {sum}");
    }

    #[test]
    fn empty_report_attribution_is_all_zero() {
        let r = RunReport::new("empty", 1, 1);
        for (_, f) in r.attribution() {
            assert_eq!(f, 0.0);
        }
    }

    #[test]
    fn jsonl_round_trips_byte_identical() {
        let r = sample_report();
        let text = r.to_jsonl();
        let parsed = parse_jsonl(&text).expect("parse");
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0], r);
        assert_eq!(
            parsed[0].to_jsonl(),
            text,
            "export must be an exact inverse"
        );
    }

    #[test]
    fn jsonl_concatenated_reports_parse_in_order() {
        let a = sample_report();
        let b = RunReport::new("second", 1, 1);
        let text = format!("{}{}", a.to_jsonl(), b.to_jsonl());
        let parsed = parse_jsonl(&text).expect("parse");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].name, "sample");
        assert_eq!(parsed[1].name, "second");
    }

    #[test]
    fn jsonl_truncation_and_garbage_are_errors() {
        let r = sample_report();
        let text = r.to_jsonl();
        let truncated = &text[..text.len() - "{\"rec\":\"end\"}\n".len()];
        assert!(parse_jsonl(truncated).is_err());
        assert!(parse_jsonl("{\"rec\":\"bogus\"}\n").is_err());
    }

    #[test]
    fn render_includes_attribution_and_top_shards() {
        let r = sample_report();
        let out = r.render(1);
        assert!(out.contains("barrier_wait"));
        assert!(
            out.contains("wheel"),
            "top-1 keeps the busiest shard:\n{out}"
        );
        assert!(!out.contains("heap"), "top-1 drops the idle shard:\n{out}");
    }

    #[test]
    fn prometheus_page_has_type_headers_and_run_labels() {
        let r = sample_report();
        let page = prometheus(std::slice::from_ref(&r));
        assert!(page.contains("# TYPE peerwindow_engine_time_ns_total counter"));
        assert!(page.contains("run=\"sample\",cat=\"execute\""));
        assert!(page.contains("peerwindow_engine_events_total{run=\"sample\"} 120"));
        assert!(
            page.contains("peerwindow_engine_shard_events_total{run=\"sample\",shard=\"0\"} 80")
        );
    }

    #[test]
    fn counter_names_round_trip_through_report_keys() {
        let r = RunReport::new("x", 1, 1);
        for c in Counter::ALL {
            assert_eq!(r.counter(c.name()), 0);
        }
    }
}
