//! Prometheus text exposition (version 0.0.4) rendering.
//!
//! Kept deliberately tiny: counters only, `# TYPE` headers, optional
//! label sets. Used by [`super::report::prometheus`] for engine run
//! reports and by the transport runtime for live node counters.

use std::fmt::Write as _;

/// Renders one counter family in Prometheus text exposition format.
///
/// `samples` is `(label_set, value)` where `label_set` is the inner
/// part of the braces (e.g. `id="3",dir="in"`) or empty for a bare
/// metric. Appends to `out` so families can be chained into one page.
pub fn render_counters(out: &mut String, name: &str, help: &str, samples: &[(String, u64)]) {
    if samples.is_empty() {
        return;
    }
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    for (labels, v) in samples {
        if labels.is_empty() {
            let _ = writeln!(out, "{name} {v}");
        } else {
            let _ = writeln!(out, "{name}{{{labels}}} {v}");
        }
    }
}

/// Escapes a label value per the exposition format (backslash, quote,
/// newline).
pub fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_type_header_and_labelled_samples() {
        let mut out = String::new();
        render_counters(
            &mut out,
            "pw_datagrams_total",
            "Datagrams seen.",
            &[("dir=\"in\"".to_string(), 3), (String::new(), 9)],
        );
        assert!(out.contains("# TYPE pw_datagrams_total counter"));
        assert!(out.contains("pw_datagrams_total{dir=\"in\"} 3"));
        assert!(out.contains("pw_datagrams_total 9"));
    }

    #[test]
    fn empty_family_renders_nothing() {
        let mut out = String::new();
        render_counters(&mut out, "x", "h", &[]);
        assert!(out.is_empty());
    }

    #[test]
    fn label_escaping_covers_quotes_and_newlines() {
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
