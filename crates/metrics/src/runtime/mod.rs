//! Runtime (wall-clock) observability for the simulation engines.
//!
//! Everything else in `peerwindow-metrics` measures *simulated* quantities
//! — protocol counters, sim-time latencies, per-level tables. This module
//! is the complementary layer: where does every wall-clock microsecond of
//! an engine run go? Barrier waits, scheduler migrations, cross-shard
//! handoff, event execution — the attribution a scaling investigation
//! needs before it can blame anything.
//!
//! The design mirrors the trace layer's compiled-out discipline
//! (`peerwindow_trace::TraceSink`):
//!
//! * [`MetricsSink`] is the static-dispatch recording interface. Engines
//!   are written against it generically and guard every instrumentation
//!   site with `if M::ACTIVE && sink.enabled() { … }`.
//! * [`NoopMetrics`] is the zero-sized compiled-out implementation: every
//!   method an empty `#[inline(always)]` body, `ACTIVE = false`, so the
//!   guard const-folds and monomorphisation deletes the site outright. A
//!   default build carries no metrics code at all (a bench test pins the
//!   overhead at noise level).
//! * [`ShardSlot`] is the real recorder: one per shard (and one per
//!   worker thread for the time-line), cache-line padded so two workers'
//!   slots never false-share, all plain `u64`s and [`LogHistogram`]s —
//!   **lock-free on the hot path by construction**, because a slot is
//!   only ever touched by the one thread that owns it. Aggregation
//!   happens at report time by folding slots into a [`RunReport`].
//!
//! Wall-clock reads (`std::time::Instant`) are confined to the [`clock`]
//! submodule — the audit lint's `wall-clock` rule allows them *only*
//! under `crates/metrics/src/runtime`, so a stray `Instant` in an engine
//! hot path still fails the lint. Timing is write-only observation: no
//! measured duration ever feeds back into scheduling, which is why
//! determinism fingerprints are byte-identical with metrics on or off
//! (pinned by the workspace determinism tests).

pub mod clock;
pub mod prom;
pub mod report;

pub use clock::{ProfSpan, Profiler, Stopwatch};
pub use prom::{escape_label, render_counters};
pub use report::{parse_jsonl, prometheus, RunReport, ShardReport};

use crate::histogram::LogHistogram;

/// Monotonic counters an engine increments on its hot path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Counter {
    /// Events executed (per shard).
    Events,
    /// Lookahead windows committed (engine-wide; recorded once per
    /// window by the leader/sequential loop).
    Windows,
    /// Cross-shard messages handed off through the mailbox matrix.
    HandoffMsgs,
    /// Non-empty per-destination batches flushed (one mailbox swap each).
    HandoffBatches,
}

impl Counter {
    /// Every counter, in canonical report order.
    pub const ALL: [Counter; 4] = [
        Counter::Events,
        Counter::Windows,
        Counter::HandoffMsgs,
        Counter::HandoffBatches,
    ];

    /// Stable snake-case name (JSONL field / Prometheus label).
    pub fn name(self) -> &'static str {
        match self {
            Counter::Events => "events",
            Counter::Windows => "windows",
            Counter::HandoffMsgs => "handoff_msgs",
            Counter::HandoffBatches => "handoff_batches",
        }
    }
}

/// Wall-clock time categories, the phases of the engines' window loop.
///
/// The recorder is lap-based ([`MetricsSink::lap`] attributes everything
/// since the previous lap to one category and restamps), so a worker's
/// whole run partitions exactly into these buckets — the attribution
/// fractions sum to 1 by construction, nothing is double-counted and
/// nothing leaks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimeCat {
    /// Window coordination: posting shard minima, leader planning.
    Coord,
    /// Spinning in the pre-plan barrier (waiting for slow siblings).
    WaitPlan,
    /// Spinning in the post-plan barrier (waiting for the leader).
    WaitPublish,
    /// Executing local events (`run_window_shard`).
    Execute,
    /// Flushing per-destination buckets into mailbox slots.
    Flush,
    /// Spinning in the pre-merge barrier.
    WaitCommit,
    /// Draining the mailbox column and committing the canonical merge.
    Merge,
}

impl TimeCat {
    /// Every category, in canonical report order.
    pub const ALL: [TimeCat; 7] = [
        TimeCat::Coord,
        TimeCat::WaitPlan,
        TimeCat::WaitPublish,
        TimeCat::Execute,
        TimeCat::Flush,
        TimeCat::WaitCommit,
        TimeCat::Merge,
    ];

    /// Stable snake-case name (JSONL field / Prometheus label).
    pub fn name(self) -> &'static str {
        match self {
            TimeCat::Coord => "coord",
            TimeCat::WaitPlan => "wait_plan",
            TimeCat::WaitPublish => "wait_publish",
            TimeCat::Execute => "execute",
            TimeCat::Flush => "flush",
            TimeCat::WaitCommit => "wait_commit",
            TimeCat::Merge => "merge",
        }
    }

    /// The coarse attribution group this category rolls up into
    /// (`barrier_wait` / `execute` / `handoff` / `other`).
    pub fn group(self) -> &'static str {
        match self {
            TimeCat::WaitPlan | TimeCat::WaitPublish | TimeCat::WaitCommit => "barrier_wait",
            TimeCat::Execute => "execute",
            TimeCat::Flush | TimeCat::Merge => "handoff",
            TimeCat::Coord => "other",
        }
    }
}

/// The coarse attribution groups, in reporting order.
pub const GROUPS: [&str; 4] = ["barrier_wait", "execute", "handoff", "other"];

/// Distribution samples an engine observes per window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SampleKind {
    /// Committed window width in µs.
    WindowWidthUs,
    /// Events a shard executed in one window (only non-idle windows).
    EventsPerWindow,
    /// Pending-queue depth at the end of a shard's window.
    QueueDepth,
    /// Messages in one flushed mailbox batch.
    HandoffBatch,
}

impl SampleKind {
    /// Every sample kind, in canonical report order.
    pub const ALL: [SampleKind; 4] = [
        SampleKind::WindowWidthUs,
        SampleKind::EventsPerWindow,
        SampleKind::QueueDepth,
        SampleKind::HandoffBatch,
    ];

    /// Stable snake-case name (JSONL field / Prometheus label).
    pub fn name(self) -> &'static str {
        match self {
            SampleKind::WindowWidthUs => "window_width_us",
            SampleKind::EventsPerWindow => "events_per_window",
            SampleKind::QueueDepth => "queue_depth",
            SampleKind::HandoffBatch => "handoff_batch",
        }
    }
}

/// Bucket geometry shared by every runtime histogram: powers of two from
/// 1, so per-shard histograms merge exactly (same `min`, same `base`).
fn runtime_hist() -> LogHistogram {
    LogHistogram::new(1.0, 2.0)
}

/// A statically-dispatched runtime-metrics sink, so engine hot loops can
/// be generic over "metered" vs "unmetered" and have the unmetered
/// instantiation *compiled out* rather than branching per site.
///
/// [`ShardSlot`] is the real recorder; [`NoopMetrics`] is the zero-sized
/// compiled-out one. Embedders guard every site with
/// `if M::ACTIVE && sink.enabled() { … }` — const-false for the no-op,
/// one predictable branch for a runtime-disabled real slot.
pub trait MetricsSink: Default + Send {
    /// `false` for sinks that discard everything; lets embedders skip
    /// whole instrumentation blocks at compile time.
    const ACTIVE: bool;

    /// Turns recording on or off at runtime.
    fn set_enabled(&mut self, on: bool);

    /// Whether the sink currently records (always `false` for no-ops).
    fn enabled(&self) -> bool;

    /// Stamps the lap origin without attributing anything (call once
    /// before the first [`Self::lap`] of a timing sequence).
    fn mark(&mut self);

    /// Attributes all wall-clock time since the previous `mark`/`lap`
    /// to `cat`, then restamps. The one wall-clock read per call lives
    /// in [`clock::Stopwatch`].
    fn lap(&mut self, cat: TimeCat);

    /// Adds `n` to counter `c`.
    fn add(&mut self, c: Counter, n: u64);

    /// Records a distribution sample.
    fn observe(&mut self, s: SampleKind, v: f64);

    /// Current value of counter `c` (0 for no-ops).
    fn get(&self, c: Counter) -> u64;

    /// Folds another slot of the same shape into this one (per-worker →
    /// engine aggregation at the end of a threaded run).
    fn absorb(&mut self, other: Self);

    /// Adds this slot's totals into a run report (no-ops add nothing).
    fn fold_into(&self, report: &mut RunReport);
}

/// The compiled-out metrics sink: zero-sized, every method an empty
/// inline body. An engine monomorphised over `NoopMetrics` contains no
/// metrics state, no branch, and no wall-clock reads at all.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoopMetrics;

impl MetricsSink for NoopMetrics {
    const ACTIVE: bool = false;

    #[inline(always)]
    fn set_enabled(&mut self, _on: bool) {}

    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn mark(&mut self) {}

    #[inline(always)]
    fn lap(&mut self, _cat: TimeCat) {}

    #[inline(always)]
    fn add(&mut self, _c: Counter, _n: u64) {}

    #[inline(always)]
    fn observe(&mut self, _s: SampleKind, _v: f64) {}

    #[inline(always)]
    fn get(&self, _c: Counter) -> u64 {
        0
    }

    #[inline(always)]
    fn absorb(&mut self, _other: Self) {}

    #[inline(always)]
    fn fold_into(&self, _report: &mut RunReport) {}
}

/// The real per-shard (and per-worker) recorder.
///
/// Aligned to 128 bytes — two cache lines, covering adjacent-line
/// prefetchers — so a `Vec<ShardSlot>` or slot-in-shard layout never
/// false-shares between the threads that own neighbouring slots. All
/// fields are plain (no atomics): a slot has exactly one writer.
#[derive(Clone, Debug)]
#[repr(align(128))]
pub struct ShardSlot {
    enabled: bool,
    watch: Stopwatch,
    counters: [u64; Counter::ALL.len()],
    time_ns: [u64; TimeCat::ALL.len()],
    hists: [LogHistogram; SampleKind::ALL.len()],
}

impl Default for ShardSlot {
    fn default() -> Self {
        ShardSlot {
            enabled: false,
            watch: Stopwatch::default(),
            counters: [0; Counter::ALL.len()],
            time_ns: [0; TimeCat::ALL.len()],
            hists: std::array::from_fn(|_| runtime_hist()),
        }
    }
}

impl ShardSlot {
    /// A fresh slot with recording already enabled.
    pub fn enabled_slot() -> Self {
        ShardSlot {
            enabled: true,
            ..Default::default()
        }
    }

    /// Total wall-clock nanoseconds attributed so far, across categories.
    pub fn total_ns(&self) -> u64 {
        self.time_ns.iter().sum()
    }

    /// Nanoseconds attributed to one category.
    pub fn time_ns(&self, cat: TimeCat) -> u64 {
        self.time_ns[cat as usize]
    }

    /// Read access to one sample distribution.
    pub fn hist(&self, s: SampleKind) -> &LogHistogram {
        &self.hists[s as usize]
    }
}

impl MetricsSink for ShardSlot {
    const ACTIVE: bool = true;

    #[inline]
    fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
        if on {
            self.watch.mark();
        }
    }

    #[inline]
    fn enabled(&self) -> bool {
        self.enabled
    }

    #[inline]
    fn mark(&mut self) {
        if self.enabled {
            self.watch.mark();
        }
    }

    #[inline]
    fn lap(&mut self, cat: TimeCat) {
        if self.enabled {
            self.time_ns[cat as usize] += self.watch.lap_ns();
        }
    }

    #[inline]
    fn add(&mut self, c: Counter, n: u64) {
        if self.enabled {
            self.counters[c as usize] += n;
        }
    }

    #[inline]
    fn observe(&mut self, s: SampleKind, v: f64) {
        if self.enabled {
            self.hists[s as usize].add(v);
        }
    }

    #[inline]
    fn get(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    fn absorb(&mut self, other: Self) {
        for (mine, theirs) in self.counters.iter_mut().zip(other.counters) {
            *mine += theirs;
        }
        for (mine, theirs) in self.time_ns.iter_mut().zip(other.time_ns) {
            *mine += theirs;
        }
        for (mine, theirs) in self.hists.iter_mut().zip(&other.hists) {
            mine.merge(theirs);
        }
    }

    fn fold_into(&self, report: &mut RunReport) {
        for cat in TimeCat::ALL {
            report.add_time_ns(cat.name(), self.time_ns[cat as usize]);
        }
        for c in Counter::ALL {
            report.add_counter(c.name(), self.counters[c as usize]);
        }
        for s in SampleKind::ALL {
            report.merge_hist(s.name(), &self.hists[s as usize]);
        }
    }
}

/// A hub of per-shard slots for embedders that don't weave slots into
/// their own structures (the transport runtime, harness-level callers):
/// index a slot mutably from its owning thread, fold them all at report
/// time. The hub itself holds no locks — slot disjointness is the
/// caller's (structural) responsibility, exactly as with the engines'
/// slot-per-shard layout.
#[derive(Debug, Default)]
pub struct MetricsHub {
    slots: Vec<ShardSlot>,
}

impl MetricsHub {
    /// A hub with `n` slots, recording from the start.
    pub fn with_slots(n: usize) -> Self {
        MetricsHub {
            slots: (0..n).map(|_| ShardSlot::enabled_slot()).collect(),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the hub has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Mutable access to one slot (call only from its owning thread).
    pub fn slot(&mut self, i: usize) -> &mut ShardSlot {
        &mut self.slots[i]
    }

    /// Folds every slot into `report`.
    pub fn fold_into(&self, report: &mut RunReport) {
        for s in &self.slots {
            s.fold_into(report);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_zero_sized_and_inert() {
        assert_eq!(std::mem::size_of::<NoopMetrics>(), 0);
        assert!(!NoopMetrics::ACTIVE);
        let mut n = NoopMetrics;
        n.set_enabled(true);
        assert!(!n.enabled());
        n.add(Counter::Events, 5);
        assert_eq!(n.get(Counter::Events), 0);
        let mut r = RunReport::new("x", 1, 1);
        n.fold_into(&mut r);
        assert_eq!(r.counter("events"), 0);
    }

    #[test]
    fn slot_records_only_when_enabled() {
        let mut s = ShardSlot::default();
        s.add(Counter::Events, 3);
        s.observe(SampleKind::EventsPerWindow, 3.0);
        assert_eq!(s.get(Counter::Events), 0);
        s.set_enabled(true);
        s.add(Counter::Events, 3);
        s.observe(SampleKind::EventsPerWindow, 3.0);
        assert_eq!(s.get(Counter::Events), 3);
        assert_eq!(s.hist(SampleKind::EventsPerWindow).total(), 1);
    }

    #[test]
    fn laps_partition_time_across_categories() {
        let mut s = ShardSlot::enabled_slot();
        s.mark();
        std::hint::black_box((0..2000).sum::<u64>());
        s.lap(TimeCat::Execute);
        std::hint::black_box((0..2000).sum::<u64>());
        s.lap(TimeCat::Merge);
        let total = s.total_ns();
        assert_eq!(
            total,
            s.time_ns(TimeCat::Execute) + s.time_ns(TimeCat::Merge),
            "laps must not double-count"
        );
    }

    #[test]
    fn absorb_sums_counters_and_merges_hists() {
        let mut a = ShardSlot::enabled_slot();
        let mut b = ShardSlot::enabled_slot();
        a.add(Counter::HandoffMsgs, 2);
        b.add(Counter::HandoffMsgs, 5);
        a.observe(SampleKind::HandoffBatch, 4.0);
        b.observe(SampleKind::HandoffBatch, 16.0);
        a.absorb(b);
        assert_eq!(a.get(Counter::HandoffMsgs), 7);
        assert_eq!(a.hist(SampleKind::HandoffBatch).total(), 2);
    }

    #[test]
    fn slots_are_cache_line_padded() {
        assert!(std::mem::align_of::<ShardSlot>() >= 128);
        assert_eq!(std::mem::size_of::<ShardSlot>() % 128, 0);
    }

    #[test]
    fn hub_slots_fold_into_one_report() {
        let mut hub = MetricsHub::with_slots(3);
        for i in 0..3 {
            hub.slot(i).add(Counter::Events, (i as u64 + 1) * 10);
        }
        let mut r = RunReport::new("hub", 3, 3);
        hub.fold_into(&mut r);
        assert_eq!(r.counter("events"), 60);
    }

    #[test]
    fn every_time_cat_rolls_up_into_a_known_group() {
        for cat in TimeCat::ALL {
            assert!(GROUPS.contains(&cat.group()), "{cat:?}");
        }
    }
}
