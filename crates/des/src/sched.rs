//! Adaptive event-queue: binary heap for shallow queues, timing wheel for
//! deep ones.
//!
//! BENCH_PR4 exposed the cost of committing to a single queue
//! representation: the hierarchical timing wheel ([`crate::wheel`]) wins
//! 4.8× on 100k resident timers but loses 5× to a plain binary heap when
//! the queue is shallow (`seq_ping_1m`, depth 1) — every pop pays the
//! wheel's cascade bookkeeping to move one event. [`AdaptiveScheduler`]
//! holds both representations behind one enum and switches by resident
//! event count with hysteresis:
//!
//! * start on the **heap** (O(log n) but with a tiny constant at small n);
//! * at [`WHEEL_UP`] pending events, migrate everything into a **wheel**
//!   (O(1) amortised, wins big once n is in the tens of thousands);
//! * when the queue drains back to [`HEAP_DOWN`], migrate back.
//!
//! The thresholds are a 4× apart, so oscillating across the boundary
//! costs at least `WHEEL_UP - HEAP_DOWN` queue operations between two
//! O(n log n) migrations — migration cost is amortised to O(log n) per
//! operation even for adversarial workloads.
//!
//! **Ordering is representation-independent.** Events are totally ordered
//! by `(timestamp, FIFO insertion sequence)` exactly as in both
//! underlying queues, and migrations preserve that order: heap→wheel
//! drains the heap in `(at, seq)` order so the wheel's own FIFO counter
//! reproduces the tie order; wheel→heap pops the wheel in order and
//! re-stamps ascending sequence numbers. A proptest below drives random
//! workloads (including forced crossovers in both directions) through the
//! adaptive queue, a pinned heap, and a pinned wheel, and requires
//! byte-identical pop sequences — which is what lets the engines swap
//! representations mid-run without perturbing a single fingerprint.

use crate::time::SimTime;
use crate::wheel::EventWheel;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Pending-event count at which an adaptive queue migrates heap → wheel.
pub const WHEEL_UP: usize = 4096;

/// Pending-event count at which an adaptive queue migrates wheel → heap.
/// Kept 4× below [`WHEEL_UP`] so the crossover has hysteresis.
pub const HEAP_DOWN: usize = 1024;

/// Queue-representation policy for an engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SchedKind {
    /// Switch between heap and wheel by resident-event count (default).
    #[default]
    Adaptive,
    /// Always use the binary heap (best for shallow queues).
    Heap,
    /// Always use the timing wheel (best for 10⁴+ resident timers).
    Wheel,
}

/// Which representation currently holds the pending events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ActiveBackend {
    /// Events live in the binary heap.
    Heap,
    /// Events live in the timing wheel.
    Wheel,
}

impl ActiveBackend {
    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ActiveBackend::Heap => "heap",
            ActiveBackend::Wheel => "wheel",
        }
    }
}

/// Point-in-time scheduler shape, surfaced by runtime-metrics reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SchedStats {
    /// Pending events.
    pub pending: u64,
    /// Representation currently holding them.
    pub backend: ActiveBackend,
    /// Heap↔wheel crossover migrations so far.
    pub migrations: u64,
    /// Wheel singleton-slot fast-path hits so far.
    pub fast_hits: u64,
}

/// A heap entry; the ordering ignores the payload entirely (`seq` is
/// unique, so `(at, seq)` is a total order).
struct HeapEntry<E> {
    at: u64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    /// Reversed `(at, seq)` so `BinaryHeap`'s max-heap pops the minimum.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

enum Backend<E> {
    Heap(BinaryHeap<HeapEntry<E>>),
    // Boxed: the wheel's slot array is ~9 KB, and heap-mode schedulers
    // (the common shallow-queue case) shouldn't carry it inline.
    Wheel(Box<EventWheel<E>>),
}

/// A deterministic `(SimTime, FIFO seq)` priority queue that adapts its
/// representation to the queue depth. Drop-in replacement for
/// [`EventWheel`] in both engines; see the module docs for the policy.
pub struct AdaptiveScheduler<E> {
    kind: SchedKind,
    backend: Backend<E>,
    /// Time of the most recent pop; schedules are clamped to it so the
    /// clock is monotone across migrations.
    now: u64,
    /// FIFO counter for heap entries (the wheel keeps its own; migrations
    /// re-stamp, preserving relative order).
    seq: u64,
    migrations: u64,
    /// Wheel singleton-slot fast-path hits from wheels already retired by
    /// wheel→heap migrations; the live wheel's count is added on read.
    fast_hits_base: u64,
}

impl<E> Default for AdaptiveScheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> AdaptiveScheduler<E> {
    /// An empty adaptive queue at time zero (heap representation).
    pub fn new() -> Self {
        Self::with_kind(SchedKind::Adaptive)
    }

    /// An empty queue pinned to (or starting under) the given policy.
    pub fn with_kind(kind: SchedKind) -> Self {
        let backend = match kind {
            SchedKind::Adaptive | SchedKind::Heap => Backend::Heap(BinaryHeap::new()),
            SchedKind::Wheel => Backend::Wheel(Box::default()),
        };
        AdaptiveScheduler {
            kind,
            backend,
            now: 0,
            seq: 0,
            migrations: 0,
            fast_hits_base: 0,
        }
    }

    /// The queue's representation policy.
    #[inline]
    pub fn kind(&self) -> SchedKind {
        self.kind
    }

    /// The representation currently holding the events.
    #[inline]
    pub fn backend(&self) -> ActiveBackend {
        match self.backend {
            Backend::Heap(_) => ActiveBackend::Heap,
            Backend::Wheel(_) => ActiveBackend::Wheel,
        }
    }

    /// Number of representation migrations so far.
    #[inline]
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Wheel singleton-slot fast-path hits across the queue's lifetime
    /// (accumulated over migrations; always 0 while pinned to the heap).
    #[inline]
    pub fn fast_hits(&self) -> u64 {
        self.fast_hits_base
            + match &self.backend {
                Backend::Heap(_) => 0,
                Backend::Wheel(w) => w.fast_hits(),
            }
    }

    /// A point-in-time snapshot of the queue's shape for runtime-metrics
    /// reports.
    pub fn stats(&self) -> SchedStats {
        SchedStats {
            pending: self.len() as u64,
            backend: self.backend(),
            migrations: self.migrations(),
            fast_hits: self.fast_hits(),
        }
    }

    /// Re-pins the queue to a new policy, migrating the pending events
    /// immediately if the current representation disagrees. Safe at any
    /// point: ordering is preserved across the migration.
    pub fn set_kind(&mut self, kind: SchedKind) {
        self.kind = kind;
        match kind {
            SchedKind::Heap => self.migrate_to_heap(),
            SchedKind::Wheel => self.migrate_to_wheel(),
            SchedKind::Adaptive => {}
        }
    }

    /// Time of the most recent pop (events before this are gone).
    #[inline]
    pub fn now(&self) -> SimTime {
        SimTime(self.now)
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Heap(h) => h.len(),
            Backend::Wheel(w) => w.len(),
        }
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn migrate_to_wheel(&mut self) {
        let Backend::Heap(heap) = &mut self.backend else {
            return;
        };
        // Drain in (at, seq) order: the wheel's own FIFO counter then
        // reproduces the heap's tie order exactly.
        let mut entries: Vec<HeapEntry<E>> = std::mem::take(heap).into_vec();
        entries.sort_unstable_by_key(|e| (e.at, e.seq));
        let mut wheel = EventWheel::with_now(self.now);
        for e in entries {
            wheel.schedule(SimTime(e.at), e.event);
        }
        self.backend = Backend::Wheel(Box::new(wheel));
        self.migrations += 1;
    }

    fn migrate_to_heap(&mut self) {
        let Backend::Wheel(wheel) = &mut self.backend else {
            return;
        };
        self.fast_hits_base += wheel.fast_hits();
        let mut heap = BinaryHeap::with_capacity(wheel.len());
        // Popping the wheel yields ascending (at, FIFO) order; re-stamping
        // with ascending fresh seqs preserves it.
        while let Some((at, event)) = wheel.pop() {
            self.seq += 1;
            heap.push(HeapEntry {
                at: at.as_micros(),
                seq: self.seq,
                event,
            });
        }
        self.backend = Backend::Heap(heap);
        self.migrations += 1;
    }

    /// Schedules `event` at `at` (clamped to `now`), assigning it the next
    /// FIFO position.
    #[inline]
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let at = at.as_micros().max(self.now);
        match &mut self.backend {
            Backend::Heap(h) => {
                self.seq += 1;
                h.push(HeapEntry {
                    at,
                    seq: self.seq,
                    event,
                });
                if self.kind == SchedKind::Adaptive && h.len() >= WHEEL_UP {
                    self.migrate_to_wheel();
                }
            }
            Backend::Wheel(w) => w.schedule(SimTime(at), event),
        }
    }

    /// Time of the next pending event without mutating the queue.
    #[inline]
    pub fn peek_min_at(&self) -> Option<SimTime> {
        match &self.backend {
            Backend::Heap(h) => h.peek().map(|e| SimTime(e.at)),
            Backend::Wheel(w) => w.peek_min_at(),
        }
    }

    /// Pops the earliest event if its time is `<= limit`.
    #[inline]
    pub fn pop_until(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        let popped = match &mut self.backend {
            Backend::Heap(h) => {
                let top = h.peek()?;
                if top.at > limit.as_micros() {
                    return None;
                }
                let e = h.pop().expect("peeked entry must pop");
                Some((SimTime(e.at), e.event))
            }
            Backend::Wheel(w) => w.pop_until(limit),
        };
        if let Some((at, _)) = &popped {
            self.now = at.as_micros();
            if self.kind == SchedKind::Adaptive
                && matches!(self.backend, Backend::Wheel(_))
                && self.len() <= HEAP_DOWN
            {
                self.migrate_to_heap();
            }
        }
        popped
    }

    /// Pops the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_until(SimTime::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn drain(q: &mut AdaptiveScheduler<u32>) -> Vec<(u64, u32)> {
        let mut got = Vec::new();
        while let Some((at, ev)) = q.pop() {
            got.push((at.as_micros(), ev));
        }
        got
    }

    #[test]
    fn ties_pop_in_fifo_order_on_every_backend() {
        for kind in [SchedKind::Adaptive, SchedKind::Heap, SchedKind::Wheel] {
            let mut q = AdaptiveScheduler::with_kind(kind);
            q.schedule(SimTime(50), 1u32);
            q.schedule(SimTime(10), 2);
            q.schedule(SimTime(50), 3);
            q.schedule(SimTime(10), 4);
            assert_eq!(
                drain(&mut q),
                vec![(10, 2), (10, 4), (50, 1), (50, 3)],
                "{kind:?}"
            );
        }
    }

    #[test]
    fn adaptive_migrates_up_and_down_with_hysteresis() {
        let mut q = AdaptiveScheduler::new();
        assert_eq!(q.backend(), ActiveBackend::Heap);
        for i in 0..WHEEL_UP as u64 {
            q.schedule(SimTime(i * 3 + 1), i as u32);
        }
        assert_eq!(
            q.backend(),
            ActiveBackend::Wheel,
            "must migrate at {WHEEL_UP}"
        );
        assert_eq!(q.migrations(), 1);
        // Draining down to HEAP_DOWN migrates back exactly once.
        let mut popped = 0usize;
        while q.len() > HEAP_DOWN {
            q.pop().expect("events pending");
            popped += 1;
        }
        assert_eq!(q.backend(), ActiveBackend::Heap);
        assert_eq!(q.migrations(), 2);
        assert_eq!(popped, WHEEL_UP - HEAP_DOWN);
        // The remainder still pops in order.
        let rest = drain(&mut q);
        assert_eq!(rest.len(), HEAP_DOWN);
        assert!(rest.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(q.migrations(), 2, "no further thrashing");
    }

    #[test]
    fn pinned_kinds_never_migrate() {
        for (kind, backend) in [
            (SchedKind::Heap, ActiveBackend::Heap),
            (SchedKind::Wheel, ActiveBackend::Wheel),
        ] {
            let mut q = AdaptiveScheduler::with_kind(kind);
            for i in 0..2 * WHEEL_UP as u64 {
                q.schedule(SimTime(i + 1), i as u32);
            }
            assert_eq!(q.backend(), backend);
            while q.pop().is_some() {}
            assert_eq!(q.backend(), backend);
            assert_eq!(q.migrations(), 0);
        }
    }

    #[test]
    fn set_kind_repins_mid_stream_without_reordering() {
        let mut reference = AdaptiveScheduler::with_kind(SchedKind::Heap);
        let mut q = AdaptiveScheduler::with_kind(SchedKind::Heap);
        for i in 0..1000u64 {
            let at = SimTime((i * 7919) % 5000);
            reference.schedule(at, i as u32);
            q.schedule(at, i as u32);
        }
        for _ in 0..100 {
            assert_eq!(q.pop(), reference.pop());
        }
        q.set_kind(SchedKind::Wheel);
        assert_eq!(q.backend(), ActiveBackend::Wheel);
        for _ in 0..100 {
            assert_eq!(q.pop(), reference.pop());
        }
        q.set_kind(SchedKind::Heap);
        assert_eq!(q.backend(), ActiveBackend::Heap);
        assert_eq!(drain(&mut q), drain(&mut reference));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Random interleavings of schedules and bounded pops — including
        /// bursts that force heap→wheel crossovers and drains that force
        /// the way back — pop byte-identically on the adaptive queue, a
        /// pinned heap, and a pinned wheel.
        #[test]
        fn all_backends_pop_identically(ops in proptest::collection::vec(
            (0u8..10, any::<u64>()), 1..60usize,
        )) {
            let mut adaptive = AdaptiveScheduler::with_kind(SchedKind::Adaptive);
            let mut heap = AdaptiveScheduler::with_kind(SchedKind::Heap);
            let mut wheel = AdaptiveScheduler::with_kind(SchedKind::Wheel);
            let mut payload = 0u32;
            let schedule = |at: u64,
                                a: &mut AdaptiveScheduler<u32>,
                                h: &mut AdaptiveScheduler<u32>,
                                w: &mut AdaptiveScheduler<u32>,
                                payload: &mut u32| {
                *payload += 1;
                a.schedule(SimTime(at), *payload);
                h.schedule(SimTime(at), *payload);
                w.schedule(SimTime(at), *payload);
            };
            for (kind, raw) in ops {
                match kind {
                    // A burst big enough to cross WHEEL_UP (with ties and
                    // spread-out timestamps), forcing an upward migration.
                    0 => {
                        for i in 0..(WHEEL_UP as u64 + raw % 64) {
                            let at = adaptive.now().as_micros()
                                + (i.wrapping_mul(raw | 1)) % 50_000;
                            schedule(at, &mut adaptive, &mut heap, &mut wheel, &mut payload);
                        }
                    }
                    // A drain deep enough to cross HEAP_DOWN back down.
                    1 => {
                        for _ in 0..(WHEEL_UP + 256) {
                            let got = adaptive.pop();
                            prop_assert_eq!(got, heap.pop());
                            prop_assert_eq!(got, wheel.pop());
                            if got.is_none() {
                                break;
                            }
                        }
                    }
                    // Ordinary schedules: ties, near, mid, far, overflow-range.
                    2..=6 => {
                        let delta = match kind {
                            2 => raw % 4,
                            3 => raw % 64,
                            4 => raw % 100_000,
                            5 => raw % (1 << 36),
                            _ => raw % (1 << 45),
                        };
                        let at = adaptive.now().as_micros().saturating_add(delta);
                        schedule(at, &mut adaptive, &mut heap, &mut wheel, &mut payload);
                    }
                    // Absolute (possibly past) times: all three clamp alike.
                    7 => {
                        let at = raw % 200_000;
                        schedule(at, &mut adaptive, &mut heap, &mut wheel, &mut payload);
                    }
                    // Bounded pops.
                    _ => {
                        let limit = adaptive
                            .peek_min_at()
                            .map_or(0, |t| t.as_micros().saturating_add(raw % 5_000));
                        for _ in 0..(raw % 8 + 1) {
                            let got = adaptive.pop_until(SimTime(limit));
                            prop_assert_eq!(got, heap.pop_until(SimTime(limit)));
                            prop_assert_eq!(got, wheel.pop_until(SimTime(limit)));
                        }
                    }
                }
                prop_assert_eq!(adaptive.len(), heap.len());
                prop_assert_eq!(adaptive.len(), wheel.len());
            }
            // Full drain must agree to the last event.
            loop {
                let got = adaptive.pop();
                prop_assert_eq!(got, heap.pop());
                prop_assert_eq!(got, wheel.pop());
                if got.is_none() {
                    break;
                }
            }
        }
    }
}
