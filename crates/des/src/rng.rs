//! Deterministic random-number utilities.
//!
//! Simulations need many independent random streams (one per node, one per
//! workload generator) that are stable across runs and across
//! parallelization choices. [`DetRng`] is a SplitMix64 generator;
//! [`DetRng::for_stream`] derives decorrelated per-stream seeds from a
//! master seed, so adding a node never perturbs another node's stream.

/// A small, fast, deterministic RNG (SplitMix64).
#[derive(Clone, Debug)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        DetRng { state: seed }
    }

    /// Derives an independent stream: same `(master, stream)` always yields
    /// the same sequence, and distinct streams are decorrelated.
    pub fn for_stream(master: u64, stream: u64) -> Self {
        let mut r = DetRng::new(master ^ stream.wrapping_mul(0x9E3779B97F4A7C15));
        r.next_u64(); // discard the correlated first output
        r
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Next 128-bit value (two draws).
    pub fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Lemire-style rejection-free multiply-shift is fine here: the
        // modulo bias for n ≪ 2^64 is negligible for simulation purposes,
        // but we use widening multiply to avoid it anyway.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Exponential with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Standard normal via Box–Muller.
    pub fn normal(&mut self) -> f64 {
        let u1 = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Lognormal with parameters `mu`, `sigma` (of the underlying normal).
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal()).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_stream_independent() {
        let a: Vec<u64> = {
            let mut r = DetRng::for_stream(42, 7);
            (0..5).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = DetRng::for_stream(42, 7);
            (0..5).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = DetRng::for_stream(42, 8);
            (0..5).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = DetRng::new(1);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut r = DetRng::new(2);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = DetRng::new(3);
        let n = 200_000;
        let mean = 5.0;
        let sum: f64 = (0..n).map(|_| r.exponential(mean)).sum();
        let got = sum / n as f64;
        assert!((got - mean).abs() < 0.05 * mean, "mean {got}");
    }

    #[test]
    fn lognormal_median_is_exp_mu() {
        let mut r = DetRng::new(4);
        let n = 100_001;
        let mut xs: Vec<f64> = (0..n).map(|_| r.lognormal(2.0, 1.0)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[n / 2];
        let expect = 2.0f64.exp();
        assert!(
            (median - expect).abs() < 0.1 * expect,
            "median {median} vs {expect}"
        );
    }

    #[test]
    fn normal_moments() {
        let mut r = DetRng::new(5);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean: f64 = xs.iter().sum::<f64>() / n as f64;
        let var: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
