//! Conservative parallel discrete-event engine (the ONSP substitute).
//!
//! The paper ran its experiments on ONSP, a parallel discrete-event
//! platform using MPI across a 16-server cluster. This module provides the
//! shared-memory analogue: actors are partitioned into shards, each shard
//! owns a private event queue, and execution proceeds in barrier-
//! synchronised *windows* of length equal to the *lookahead* — the minimum
//! cross-shard message latency. Within a window every shard processes its
//! local events independently (in parallel via rayon); messages to other
//! shards are buffered and merged at the barrier in a canonical order, so
//! a run is **bit-deterministic for a fixed shard count**, and the *set*
//! of deliveries is identical across shard counts (asserted by tests).
//!
//! Correctness rests on the classic conservative-synchronisation argument:
//! a message sent during window `[w, w+δ)` to another shard carries a
//! timestamp `≥ w+δ` (enforced by assertion), so no shard can receive a
//! message that should have pre-empted work it already did.

use crate::time::SimTime;
use rayon::prelude::*;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Shard-local simulation logic: the state of all actors owned by one
/// shard, plus the message handler.
pub trait ShardLogic: Send {
    /// Inter-actor message type.
    type Msg: Send;

    /// Delivers `msg` to `actor` at time `now`; follow-up sends go into
    /// `out`.
    fn handle(&mut self, now: SimTime, actor: u32, msg: Self::Msg, out: &mut Outbox<Self::Msg>);

    /// An order-insensitive digest of the shard's state, for cross-run and
    /// cross-shard-count validation.
    fn fingerprint(&self) -> u64 {
        0
    }
}

/// Collects the sends emitted by a handler.
pub struct Outbox<M> {
    now: SimTime,
    sends: Vec<(SimTime, u32, M)>,
}

impl<M> Outbox<M> {
    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Sends `msg` to `actor` after `delay_us`. Cross-shard sends must
    /// respect the engine's lookahead (checked at the barrier).
    #[inline]
    pub fn send(&mut self, delay_us: u64, actor: u32, msg: M) {
        self.sends.push((self.now + delay_us, actor, msg));
    }
}

struct Scheduled<M> {
    at: SimTime,
    seq: u64,
    actor: u32,
    msg: M,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

struct Shard<L: ShardLogic> {
    logic: L,
    queue: BinaryHeap<Scheduled<L::Msg>>,
    seq: u64,
    processed: u64,
}

/// A buffered cross-shard message with its canonical merge key.
struct Remote<M> {
    at: SimTime,
    src_shard: u32,
    src_seq: u64,
    actor: u32,
    msg: M,
}

/// The parallel engine: `S` shards advancing in lockstep windows.
pub struct ParallelEngine<L: ShardLogic> {
    shards: Vec<Shard<L>>,
    lookahead_us: u64,
    now: SimTime,
}

impl<L: ShardLogic> ParallelEngine<L> {
    /// Builds an engine over the given shard logics. `lookahead_us` must be
    /// a lower bound on every cross-shard message delay (for PeerWindow
    /// topologies: the minimum link latency, 1 ms).
    ///
    /// # Panics
    /// Panics if `shards` is empty or `lookahead_us == 0`.
    pub fn new(shards: Vec<L>, lookahead_us: u64) -> Self {
        assert!(!shards.is_empty(), "need at least one shard");
        assert!(lookahead_us > 0, "lookahead must be positive");
        ParallelEngine {
            shards: shards
                .into_iter()
                .map(|logic| Shard {
                    logic,
                    queue: BinaryHeap::new(),
                    seq: 0,
                    processed: 0,
                })
                .collect(),
            lookahead_us,
            now: SimTime::ZERO,
        }
    }

    /// Number of shards.
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `actor` (static modulo partition).
    #[inline]
    pub fn shard_of(&self, actor: u32) -> usize {
        actor as usize % self.shards.len()
    }

    /// Current window start time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed across shards.
    pub fn processed(&self) -> u64 {
        self.shards.iter().map(|s| s.processed).sum()
    }

    /// Read access to a shard's logic.
    pub fn logic(&self, shard: usize) -> &L {
        &self.shards[shard].logic
    }

    /// Combined order-insensitive fingerprint of all shards.
    pub fn fingerprint(&self) -> u64 {
        self.shards
            .iter()
            .fold(0u64, |acc, s| acc.wrapping_add(s.logic.fingerprint()))
    }

    /// Schedules an initial message (setup).
    pub fn schedule(&mut self, at: SimTime, actor: u32, msg: L::Msg) {
        let shard = self.shard_of(actor);
        let s = &mut self.shards[shard];
        s.seq += 1;
        let seq = s.seq;
        s.queue.push(Scheduled {
            at: at.max(self.now),
            seq,
            actor,
            msg,
        });
    }

    /// Runs windows until simulated time reaches `until` or all queues
    /// drain.
    pub fn run_until(&mut self, until: SimTime)
    where
        L::Msg: Send,
    {
        while self.now < until {
            let earliest = self
                .shards
                .iter()
                .filter_map(|s| s.queue.peek().map(|e| e.at))
                .min();
            let Some(earliest) = earliest else {
                break; // all queues empty
            };
            if earliest >= until {
                break;
            }
            // Skip idle gaps: jump the window to the earliest pending event.
            let window_start = self.now.max(earliest);
            let window_end = (window_start + self.lookahead_us).min(until);
            let n = self.shards.len() as u32;
            let lookahead = self.lookahead_us;
            // Phase 1: parallel local processing; collect cross-shard sends.
            let outgoing: Vec<Vec<Remote<L::Msg>>> = self
                .shards
                .par_iter_mut()
                .enumerate()
                .map(|(shard_idx, shard)| {
                    let mut remote = Vec::new();
                    let mut out = Outbox {
                        now: SimTime::ZERO,
                        sends: Vec::new(),
                    };
                    while let Some(head) = shard.queue.peek() {
                        if head.at >= window_end {
                            break;
                        }
                        let ev = shard.queue.pop().expect("peeked");
                        shard.processed += 1;
                        out.now = ev.at;
                        shard.logic.handle(ev.at, ev.actor, ev.msg, &mut out);
                        for (at, actor, msg) in out.sends.drain(..) {
                            if actor % n == shard_idx as u32 {
                                shard.seq += 1;
                                let seq = shard.seq;
                                shard.queue.push(Scheduled {
                                    at,
                                    seq,
                                    actor,
                                    msg,
                                });
                            } else {
                                assert!(
                                    at >= window_end || at.as_micros() >= ev.at.as_micros() + lookahead,
                                    "cross-shard send violates lookahead: at {at:?}, window ends {window_end:?}"
                                );
                                shard.seq += 1;
                                remote.push(Remote {
                                    at,
                                    src_shard: shard_idx as u32,
                                    src_seq: shard.seq,
                                    actor,
                                    msg,
                                });
                            }
                        }
                    }
                    remote
                })
                .collect();
            // Phase 2 (barrier): merge cross-shard messages canonically.
            let mut inbound: Vec<Vec<Remote<L::Msg>>> =
                (0..self.shards.len()).map(|_| Vec::new()).collect();
            for batch in outgoing {
                for r in batch {
                    let dest = r.actor as usize % self.shards.len();
                    inbound[dest].push(r);
                }
            }
            for (dest, mut batch) in inbound.into_iter().enumerate() {
                batch.sort_by_key(|r| (r.at, r.src_shard, r.src_seq));
                let shard = &mut self.shards[dest];
                for r in batch {
                    shard.seq += 1;
                    let seq = shard.seq;
                    shard.queue.push(Scheduled {
                        at: r.at,
                        seq,
                        actor: r.actor,
                        msg: r.msg,
                    });
                }
            }
            self.now = window_end;
        }
        self.now = self.now.max(until);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy gossip: each delivery increments a counter and, while `hops`
    /// remain, forwards to two pseudo-random actors with ≥ lookahead delay.
    struct Gossip {
        actors: u32,
        digest: u64,
        deliveries: u64,
    }

    #[derive(Clone)]
    struct G {
        hops: u32,
        token: u64,
    }

    impl ShardLogic for Gossip {
        type Msg = G;
        fn handle(&mut self, now: SimTime, actor: u32, msg: G, out: &mut Outbox<G>) {
            self.deliveries += 1;
            // Order-insensitive digest: commutative sum of delivery hashes.
            let h = (now.as_micros() ^ (actor as u64) << 32 ^ msg.token)
                .wrapping_mul(0x9E3779B97F4A7C15);
            self.digest = self.digest.wrapping_add(h);
            if msg.hops > 0 {
                for k in 0..2u64 {
                    let t = msg.token.wrapping_mul(6364136223846793005).wrapping_add(k);
                    let dst = (t % self.actors as u64) as u32;
                    let delay = 1_000 + (t % 5_000);
                    out.send(
                        delay,
                        dst,
                        G {
                            hops: msg.hops - 1,
                            token: t,
                        },
                    );
                }
            }
        }
        fn fingerprint(&self) -> u64 {
            self.digest.wrapping_add(self.deliveries)
        }
    }

    fn run(shards: usize, actors: u32) -> (u64, u64) {
        let logics: Vec<Gossip> = (0..shards)
            .map(|_| Gossip {
                actors,
                digest: 0,
                deliveries: 0,
            })
            .collect();
        let mut e = ParallelEngine::new(logics, 1_000);
        for i in 0..4 {
            e.schedule(SimTime(i as u64 * 13), i, G { hops: 8, token: i as u64 + 1 });
        }
        e.run_until(SimTime::from_secs(10));
        let deliveries: u64 = (0..shards).map(|s| e.logic(s).deliveries).sum();
        (e.fingerprint(), deliveries)
    }

    #[test]
    fn fixed_shard_count_is_deterministic() {
        assert_eq!(run(4, 64), run(4, 64));
        assert_eq!(run(7, 64), run(7, 64));
    }

    #[test]
    fn delivery_set_is_invariant_across_shard_counts() {
        let (f1, d1) = run(1, 64);
        let (f4, d4) = run(4, 64);
        let (f8, d8) = run(8, 64);
        assert_eq!(d1, d4);
        assert_eq!(d1, d8);
        assert_eq!(f1, f4, "digest differs between 1 and 4 shards");
        assert_eq!(f1, f8, "digest differs between 1 and 8 shards");
        // The cascade actually ran: 4 roots × (2^9 - 1) deliveries each.
        assert_eq!(d1, 4 * 511);
    }

    #[test]
    fn windows_skip_idle_gaps() {
        // One event far in the future must not require millions of windows.
        struct Noop;
        impl ShardLogic for Noop {
            type Msg = ();
            fn handle(&mut self, _: SimTime, _: u32, _: (), _: &mut Outbox<()>) {}
        }
        let mut e = ParallelEngine::new(vec![Noop, Noop], 1_000);
        e.schedule(SimTime::from_secs(3600), 0, ());
        e.run_until(SimTime::from_secs(7200));
        assert_eq!(e.processed(), 1);
    }

    #[test]
    #[should_panic(expected = "lookahead")]
    fn cross_shard_send_below_lookahead_panics() {
        struct Bad;
        impl ShardLogic for Bad {
            type Msg = u32;
            fn handle(&mut self, _: SimTime, actor: u32, hops: u32, out: &mut Outbox<u32>) {
                if hops > 0 {
                    out.send(1, actor + 1, hops - 1); // 1 µs < lookahead
                }
            }
        }
        let mut e = ParallelEngine::new(vec![Bad, Bad], 1_000);
        e.schedule(SimTime::ZERO, 0, 1);
        e.run_until(SimTime::from_secs(1));
    }
}
