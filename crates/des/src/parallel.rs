//! Conservative parallel discrete-event engine (the ONSP substitute).
//!
//! The paper ran its experiments on ONSP, a parallel discrete-event
//! platform using MPI across a 16-server cluster. This module provides the
//! shared-memory analogue: actors are partitioned into shards, each shard
//! owns a private event queue (an adaptive heap/wheel scheduler, see
//! [`crate::sched`]), and execution proceeds in synchronised *windows* of
//! length equal to the *lookahead* — the minimum cross-shard message
//! latency, i.e. the minimum of the latency matrix for PeerWindow
//! topologies. Within a window every shard processes its local events
//! independently; messages to other shards are buffered, handed off in
//! per-destination batches, and merged in a canonical order, so a run is
//! **bit-deterministic for any shard and worker count**, and the *set* of
//! deliveries is identical across shard counts (asserted by tests).
//!
//! ## Window protocol
//!
//! Earlier revisions spawned a fresh set of scoped threads for every
//! window and merged all cross-shard traffic on the coordinating thread —
//! a full OS-level barrier (two thread lifecycles plus a join) per
//! lookahead window, which made throughput *drop* as shards were added.
//! The engine now runs a fixed worker pool for the whole of
//! [`ParallelEngine::run_until`], with windows sequenced by a
//! sense-reversing **spin barrier** (a pair of `std` atomics; a window
//! transition costs a fetch-add and a few cache-line bounces instead of
//! thread spawns) and cross-shard handoff through a **mailbox matrix**:
//! one padded slot per (source, destination) shard pair. A source flushes
//! each non-empty per-destination bucket into its mailbox slot once per
//! window (a `Vec` swap — the batch moves, not the messages), and after
//! the phase barrier each destination drains its mailbox column, sorts the
//! batch by the canonical `(at, src_shard, src_seq)` key, and schedules it
//! into its own queue. Every slot is written only by its source's worker
//! during phase 1 and read only by its destination's worker during phase
//! 2, with a barrier between — the slot mutexes are therefore *never
//! contended* (each `lock` is a single uncontended atomic exchange; the
//! mutex exists to satisfy the compiler, the barrier is what excludes
//! concurrent access).
//!
//! Worker panics (e.g. a lookahead violation) poison the barrier: peers
//! drain out cleanly instead of spinning forever, and the original panic
//! payload is re-thrown by the coordinating thread.
//!
//! With a single worker (or a single shard) the engine takes a dedicated
//! sequential path with no atomics, no mutexes, and no threads at all —
//! the path a 1-core host measures — which is bit-identical to the
//! threaded path because window boundaries and merge order are pure
//! functions of simulated time, never of scheduling.
//!
//! Actor placement is pluggable through [`ShardMap`]; the default
//! [`ModuloShardMap`] reproduces the historical `actor % shards`
//! partition, while topology-aware maps (e.g. grouping overlay addresses
//! by transit-stub domain) can cut cross-shard traffic dramatically.
//!
//! Correctness rests on the classic conservative-synchronisation argument:
//! a message sent during window `[w, w+δ)` to another shard carries a
//! timestamp `≥ w+δ` (enforced by assertion), so no shard can receive a
//! message that should have pre-empted work it already did.

use crate::emetrics::EngineMetrics;
use crate::sched::{AdaptiveScheduler, SchedKind};
use crate::time::SimTime;
use peerwindow_metrics::runtime::{
    Counter, MetricsSink, RunReport, SampleKind, ShardReport, TimeCat,
};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Shard-local simulation logic: the state of all actors owned by one
/// shard, plus the message handler.
pub trait ShardLogic: Send {
    /// Inter-actor message type.
    type Msg: Send;

    /// Delivers `msg` to `actor` at time `now`; follow-up sends go into
    /// `out`.
    fn handle(&mut self, now: SimTime, actor: u32, msg: Self::Msg, out: &mut Outbox<Self::Msg>);

    /// An order-insensitive digest of the shard's state, for cross-run and
    /// cross-shard-count validation.
    fn fingerprint(&self) -> u64 {
        0
    }
}

/// Maps actors to shards. Implementations must be pure functions of
/// `(actor, shards)` — the partition is consulted on every send, from
/// worker threads, and must never change during a run.
pub trait ShardMap: Sync {
    /// The shard owning `actor` when `shards` shards exist. Must return a
    /// value in `0..shards`.
    fn shard_of(&self, actor: u32, shards: usize) -> usize;
}

/// The default static partition: `actor % shards`.
#[derive(Clone, Copy, Debug, Default)]
pub struct ModuloShardMap;

impl ShardMap for ModuloShardMap {
    #[inline]
    fn shard_of(&self, actor: u32, shards: usize) -> usize {
        actor as usize % shards
    }
}

/// Collects the sends emitted by a handler.
pub struct Outbox<M> {
    now: SimTime,
    sends: Vec<(SimTime, u32, M)>,
}

impl<M> Outbox<M> {
    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Sends `msg` to `actor` after `delay_us`. Cross-shard sends must
    /// respect the engine's lookahead (checked at the window boundary).
    #[inline]
    pub fn send(&mut self, delay_us: u64, actor: u32, msg: M) {
        self.sends.push((self.now + delay_us, actor, msg));
    }
}

/// A cross-shard message in flight, keyed for the canonical
/// `(at, src_shard, src_seq)` merge ordering.
struct Inbound<M> {
    at: SimTime,
    src_shard: u32,
    src_seq: u64,
    actor: u32,
    msg: M,
}

/// Pads a mailbox slot to its own cache line so two sources flushing
/// adjacent slots never false-share.
#[repr(align(64))]
struct MailSlot<M>(Mutex<Vec<Inbound<M>>>);

/// The sense-reversing spin barrier sequencing window phases. `wait`
/// returns `true` for exactly one caller per generation (the "leader", the
/// last to arrive), which is where the per-window coordination — picking
/// the next window bound — runs.
struct SpinBarrier {
    arrived: AtomicUsize,
    generation: AtomicUsize,
    parties: usize,
    /// Set by a panicking worker's drop guard; spinners drain out cleanly
    /// instead of waiting for a generation that will never come.
    poisoned: AtomicBool,
}

impl SpinBarrier {
    fn new(parties: usize) -> Self {
        SpinBarrier {
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            parties,
            poisoned: AtomicBool::new(false),
        }
    }

    /// Blocks until all parties arrive. Returns `Some(true)` for the
    /// leader, `Some(false)` for everyone else, and `None` when the
    /// barrier was poisoned (the caller must abandon the run).
    fn wait(&self) -> Option<bool> {
        // audit: ordering — Acquire pairs with the leader's AcqRel bump:
        // the generation observed here is the round this arrival joins.
        let gen = self.generation.load(Ordering::Acquire);
        // audit: ordering — AcqRel: the Release half publishes this
        // worker's pre-barrier writes; the leader's final Acquire on the
        // same RMW chain observes all of them before planning the window.
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            // Reset before releasing the generation so early risers can't
            // race the counter of the next round.
            // audit: ordering — Relaxed is enough: the store is ordered
            // before the generation bump below, which is what spinners
            // synchronize on; nobody reads `arrived` outside a round.
            self.arrived.store(0, Ordering::Relaxed);
            // audit: ordering — the Release half publishes the reset (and
            // the leader's window plan, stored before the second wait)
            // to every spinner's Acquire load below.
            self.generation.fetch_add(1, Ordering::AcqRel);
            return Some(true);
        }
        let mut spins = 0u32;
        // audit: ordering — Acquire pairs with the leader's bump so the
        // leader's writes are visible the moment the spin exits.
        while self.generation.load(Ordering::Acquire) == gen {
            // audit: ordering — pairs with the PoisonGuard Release store;
            // the unwinding worker's writes are visible before we drain.
            if self.poisoned.load(Ordering::Acquire) {
                return None;
            }
            spins += 1;
            if spins < 128 {
                std::hint::spin_loop();
            } else {
                // Oversubscribed hosts (workers > cores) must still make
                // progress; yielding keeps the barrier correct there at
                // the cost of a syscall per slice.
                std::thread::yield_now();
            }
        }
        Some(false)
    }
}

/// Marks the barrier poisoned if its worker unwinds, so sibling workers
/// stop spinning and drain out.
struct PoisonGuard<'a>(&'a SpinBarrier);

impl Drop for PoisonGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            // audit: ordering — Release pairs with the spinners' Acquire
            // poison check so they observe the flag (and everything the
            // panicking worker wrote) before abandoning the run.
            self.0.poisoned.store(true, Ordering::Release);
        }
    }
}

struct Shard<L: ShardLogic> {
    logic: L,
    queue: AdaptiveScheduler<(u32, L::Msg)>,
    /// Orders this shard's cross-shard sends within a window.
    send_seq: u64,
    processed: u64,
    /// Persistent outbox reused across every handled event.
    outbox: Outbox<L::Msg>,
    /// Persistent per-destination buckets for cross-shard sends
    /// (`remote[dest]`), filled during phase 1, batch-flushed at the
    /// window boundary.
    remote: Vec<Vec<Inbound<L::Msg>>>,
    /// Destinations whose bucket went non-empty this window, so the flush
    /// and the sequential merge touch only live buckets instead of
    /// scanning all `shards²` pairs.
    dirty: Vec<u32>,
    /// Phase-2 merge scratch (the threaded path needs one per shard, the
    /// sequential path reuses shard 0's).
    merge: Vec<Inbound<L::Msg>>,
    /// Per-shard runtime-metrics slot (cache-line padded; a ZST unless
    /// the `runtime-metrics` feature is on). Only ever touched by the
    /// worker that owns this shard, so recording is lock-free.
    stats: EngineMetrics,
}

/// Runs one shard's share of a window: drain local events below
/// `window_end`, keeping local follow-ups and bucketing cross-shard sends
/// by destination.
fn run_window_shard<L: ShardLogic, M: ShardMap>(
    shard_idx: usize,
    shard: &mut Shard<L>,
    map: &M,
    shards: usize,
    window_end: SimTime,
    lookahead_us: u64,
) {
    // `window_end` is exclusive; `pop_until` is inclusive.
    let limit = SimTime(window_end.as_micros() - 1);
    let processed_before = shard.processed;
    while let Some((now, (actor, msg))) = shard.queue.pop_until(limit) {
        shard.processed += 1;
        shard.outbox.now = now;
        shard.logic.handle(now, actor, msg, &mut shard.outbox);
        for (at, dst_actor, m) in shard.outbox.sends.drain(..) {
            let dest = map.shard_of(dst_actor, shards);
            if dest == shard_idx {
                shard.queue.schedule(at, (dst_actor, m));
            } else {
                assert!(
                    at >= window_end || at.as_micros() >= now.as_micros() + lookahead_us,
                    "cross-shard send violates lookahead: at {at:?}, window ends {window_end:?}"
                );
                shard.send_seq += 1;
                let bucket = &mut shard.remote[dest];
                if bucket.is_empty() {
                    shard.dirty.push(dest as u32);
                }
                bucket.push(Inbound {
                    at,
                    src_shard: shard_idx as u32,
                    src_seq: shard.send_seq,
                    actor: dst_actor,
                    msg: m,
                });
            }
        }
    }
    shard.send_seq = 0;
    // Per-window (not per-event) metrics cadence: one counter add and two
    // histogram observes per non-idle window keeps the enabled overhead
    // inside the release gate.
    if EngineMetrics::ACTIVE && shard.stats.enabled() {
        let delta = shard.processed - processed_before;
        if delta > 0 {
            shard.stats.add(Counter::Events, delta);
            shard
                .stats
                .observe(SampleKind::EventsPerWindow, delta as f64);
            shard
                .stats
                .observe(SampleKind::QueueDepth, shard.queue.len() as f64);
        }
    }
}

/// Sorts a destination's merged batch canonically and schedules it. The
/// `(at, src_shard, src_seq)` key is unique, so the resulting insertion
/// order — and with it the destination queue's FIFO tie-break — is a pure
/// function of the traffic, independent of which worker merged it or in
/// which order the batches were gathered.
fn commit_merge<L: ShardLogic>(shard: &mut Shard<L>) {
    shard
        .merge
        .sort_unstable_by_key(|r| (r.at, r.src_shard, r.src_seq));
    for r in shard.merge.drain(..) {
        shard.queue.schedule(r.at, (r.actor, r.msg));
    }
}

/// Shared per-run coordination state for the threaded path.
struct WindowCtrl {
    barrier: SpinBarrier,
    /// `fetch_min` target for the earliest pending event across shards;
    /// `u64::MAX` means "no pending events".
    next_min: AtomicU64,
    /// End of the window being executed (valid between the plan and
    /// commit barriers).
    window_end: AtomicU64,
    /// Committed simulated time (the leader advances it window by window).
    now_us: AtomicU64,
    /// Set by the leader when no window remains before `until`.
    done: AtomicBool,
}

/// The parallel engine: `S` shards advancing in lockstep windows, with an
/// actor partition given by `M`.
pub struct ParallelEngine<L: ShardLogic, M: ShardMap = ModuloShardMap> {
    shards: Vec<Shard<L>>,
    map: M,
    lookahead_us: u64,
    now: SimTime,
    workers: usize,
    /// Mailbox matrix, `mail[src * n + dest]`; see the module docs for the
    /// phase-disjoint access discipline that keeps every lock uncontended.
    mail: Vec<MailSlot<L::Msg>>,
    /// Engine-level runtime-metrics timeline: the sequential path records
    /// into it directly; the threaded path absorbs each worker's private
    /// timeline into it when the pool drains.
    metrics: EngineMetrics,
}

impl<L: ShardLogic> ParallelEngine<L, ModuloShardMap> {
    /// Builds an engine over the given shard logics with the default
    /// modulo partition. `lookahead_us` must be a lower bound on every
    /// cross-shard message delay (for PeerWindow topologies: the minimum
    /// link latency, 1 ms).
    ///
    /// # Panics
    /// Panics if `shards` is empty or `lookahead_us == 0`.
    pub fn new(shards: Vec<L>, lookahead_us: u64) -> Self {
        Self::with_map(shards, lookahead_us, ModuloShardMap)
    }
}

impl<L: ShardLogic, M: ShardMap> ParallelEngine<L, M> {
    /// Builds an engine with an explicit actor-to-shard partition.
    ///
    /// # Panics
    /// Panics if `shards` is empty or `lookahead_us == 0`.
    pub fn with_map(shards: Vec<L>, lookahead_us: u64, map: M) -> Self {
        assert!(!shards.is_empty(), "need at least one shard");
        assert!(lookahead_us > 0, "lookahead must be positive");
        let n = shards.len();
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n);
        ParallelEngine {
            shards: shards
                .into_iter()
                .map(|logic| Shard {
                    logic,
                    queue: AdaptiveScheduler::new(),
                    send_seq: 0,
                    processed: 0,
                    outbox: Outbox {
                        now: SimTime::ZERO,
                        sends: Vec::new(),
                    },
                    remote: (0..n).map(|_| Vec::new()).collect(),
                    dirty: Vec::new(),
                    merge: Vec::new(),
                    // Without the runtime-metrics feature this is the
                    // Noop ZST; `default()` is the one spelling that
                    // compiles under both cfgs.
                    #[allow(clippy::default_constructed_unit_structs)]
                    stats: EngineMetrics::default(),
                })
                .collect(),
            map,
            lookahead_us,
            now: SimTime::ZERO,
            workers,
            mail: (0..n * n)
                .map(|_| MailSlot(Mutex::new(Vec::new())))
                .collect(),
            #[allow(clippy::default_constructed_unit_structs)]
            metrics: EngineMetrics::default(),
        }
    }

    /// Number of shards.
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of worker threads `run_until` will use (1 means the
    /// sequential path). Defaults to `min(available cores, shards)`.
    #[inline]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Overrides the worker count (clamped to `1..=shards`). The result
    /// of a run is bit-identical for every worker count — this exists so
    /// tests can exercise the threaded window protocol on small hosts and
    /// benchmarks can measure scaling honestly.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.clamp(1, self.shards.len());
    }

    /// Re-pins every shard queue's representation policy (see
    /// [`SchedKind`]); pending events migrate immediately. Determinism is
    /// unaffected — ordering is representation-independent.
    pub fn set_sched_kind(&mut self, kind: SchedKind) {
        for shard in &mut self.shards {
            shard.queue.set_kind(kind);
        }
    }

    /// The shard owning `actor` under the engine's partition.
    #[inline]
    pub fn shard_of(&self, actor: u32) -> usize {
        self.map.shard_of(actor, self.shards.len())
    }

    /// Current window start time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed across shards.
    pub fn processed(&self) -> u64 {
        self.shards.iter().map(|s| s.processed).sum()
    }

    /// Read access to a shard's logic.
    pub fn logic(&self, shard: usize) -> &L {
        &self.shards[shard].logic
    }

    /// Mutable access to a shard's logic (harness configuration between
    /// windows — e.g. toggling tracing — never during a window).
    pub fn logic_mut(&mut self, shard: usize) -> &mut L {
        &mut self.shards[shard].logic
    }

    /// Samples engine-level counters into a trace registry.
    #[cfg(feature = "trace")]
    pub fn sample_into(&self, reg: &mut peerwindow_trace::CounterRegistry) {
        reg.set("engine.processed", self.processed());
        reg.set_gauge("engine.shards", self.shards.len() as f64);
        reg.set_gauge("engine.workers", self.workers as f64);
        reg.set_gauge(
            "engine.pending",
            self.shards.iter().map(|s| s.queue.len()).sum::<usize>() as f64,
        );
    }

    /// Combined order-insensitive fingerprint of all shards.
    pub fn fingerprint(&self) -> u64 {
        self.shards
            .iter()
            .fold(0u64, |acc, s| acc.wrapping_add(s.logic.fingerprint()))
    }

    /// Turns runtime-metrics recording on or off. A no-op (and never any
    /// overhead) unless the `runtime-metrics` feature is compiled in;
    /// wall-clock reads are write-only observation either way, so the
    /// run's fingerprint is byte-identical with metrics on or off.
    pub fn set_metrics_enabled(&mut self, on: bool) {
        self.metrics.set_enabled(on);
        for shard in &mut self.shards {
            shard.stats.set_enabled(on);
        }
    }

    /// Whether runtime metrics are currently recording (always `false`
    /// when compiled out).
    pub fn metrics_enabled(&self) -> bool {
        self.metrics.enabled()
    }

    /// Builds the merged wall-clock run report: per-phase time, counters,
    /// distributions, and per-shard scheduler shape. Empty (all zeros, no
    /// shard rows) when the `runtime-metrics` feature is compiled out.
    pub fn metrics_report(&self, name: &str) -> RunReport {
        let mut r = RunReport::new(name, self.shards.len() as u64, self.workers as u64);
        self.metrics.fold_into(&mut r);
        for (i, shard) in self.shards.iter().enumerate() {
            shard.stats.fold_into(&mut r);
            if EngineMetrics::ACTIVE && shard.stats.enabled() {
                let st = shard.queue.stats();
                r.per_shard.push(ShardReport {
                    shard: i as u64,
                    events: shard.processed,
                    handoff_msgs: shard.stats.get(Counter::HandoffMsgs),
                    pending: st.pending,
                    backend: st.backend.name().to_string(),
                    migrations: st.migrations,
                    fast_hits: st.fast_hits,
                });
            }
        }
        r
    }

    /// Schedules an initial message (setup).
    ///
    /// `at` is clamped to the engine's current time: scheduling into the
    /// past would violate the windows already committed, so a past `at`
    /// is delivered at `now()` instead. Schedule setup events before
    /// calling [`Self::run_until`] to avoid the clamp.
    pub fn schedule(&mut self, at: SimTime, actor: u32, msg: L::Msg) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past (at {at:?} < now {:?}); the event will be clamped to now()",
            self.now
        );
        let shard = self.map.shard_of(actor, self.shards.len());
        self.shards[shard]
            .queue
            .schedule(at.max(self.now), (actor, msg));
    }

    /// Runs windows until simulated time reaches `until` or all queues
    /// drain.
    pub fn run_until(&mut self, until: SimTime) {
        if self.workers <= 1 || self.shards.len() == 1 {
            self.run_until_sequential(until);
        } else {
            self.run_until_threaded(until);
        }
        self.now = self.now.max(until);
    }

    /// The no-thread path: all shards on the calling thread, no atomics,
    /// no locks. Bit-identical to the threaded path.
    fn run_until_sequential(&mut self, until: SimTime) {
        let n = self.shards.len();
        let metrics_on = EngineMetrics::ACTIVE && self.metrics.enabled();
        if metrics_on {
            self.metrics.mark();
        }
        while self.now < until {
            let earliest = self
                .shards
                .iter()
                .filter_map(|s| s.queue.peek_min_at())
                .min();
            let Some(earliest) = earliest else {
                break; // all queues empty
            };
            if earliest >= until {
                break;
            }
            // Skip idle gaps: jump the window to the earliest pending event.
            let window_start = self.now.max(earliest);
            let window_end = (window_start + self.lookahead_us).min(until);
            if metrics_on {
                self.metrics.lap(TimeCat::Coord);
            }

            // Phase 1: local processing per shard.
            for (idx, shard) in self.shards.iter_mut().enumerate() {
                run_window_shard(idx, shard, &self.map, n, window_end, self.lookahead_us);
            }
            if metrics_on {
                self.metrics.lap(TimeCat::Execute);
                self.metrics.add(Counter::Windows, 1);
                self.metrics.observe(
                    SampleKind::WindowWidthUs,
                    (window_end.as_micros() - window_start.as_micros()) as f64,
                );
            }

            // Phase 2: gather each source's dirty buckets into the
            // destinations' merge buffers, then commit each destination
            // canonically. Append order across sources is irrelevant —
            // the sort key is unique — so draining by source is fine.
            for src in 0..n {
                for k in 0..self.shards[src].dirty.len() {
                    let dest = self.shards[src].dirty[k] as usize;
                    let mut bucket = std::mem::take(&mut self.shards[src].remote[dest]);
                    if metrics_on {
                        let stats = &mut self.shards[src].stats;
                        stats.add(Counter::HandoffMsgs, bucket.len() as u64);
                        stats.add(Counter::HandoffBatches, 1);
                        stats.observe(SampleKind::HandoffBatch, bucket.len() as f64);
                    }
                    self.shards[dest].merge.append(&mut bucket);
                    self.shards[src].remote[dest] = bucket; // keep capacity
                }
                self.shards[src].dirty.clear();
            }
            for shard in &mut self.shards {
                if !shard.merge.is_empty() {
                    commit_merge(shard);
                }
            }
            if metrics_on {
                self.metrics.lap(TimeCat::Merge);
            }
            self.now = window_end;
        }
    }

    /// The worker-pool path: one thread per worker for the whole run,
    /// windows sequenced by the spin barrier, handoff via the mailbox
    /// matrix.
    fn run_until_threaded(&mut self, until: SimTime) {
        let n = self.shards.len();
        let workers = self.workers.min(n);
        let chunk = n.div_ceil(workers);
        // chunks_mut(chunk) yields ceil(n/chunk) slices, which can be fewer
        // than `workers` (e.g. 5 shards / 4 workers -> chunk 2 -> 3 threads).
        // The barrier must be sized to the threads that actually arrive or
        // every wait spins forever.
        let spawned = n.div_ceil(chunk);
        let ctrl = WindowCtrl {
            barrier: SpinBarrier::new(spawned),
            next_min: AtomicU64::new(u64::MAX),
            window_end: AtomicU64::new(0),
            now_us: AtomicU64::new(self.now.as_micros()),
            done: AtomicBool::new(false),
        };
        let map = &self.map;
        let mail = &self.mail[..];
        let lookahead = self.lookahead_us;
        let until_us = until.as_micros();
        let metrics_on = EngineMetrics::ACTIVE && self.metrics.enabled();

        let timelines = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(spawned);
            for (c, shards) in self.shards.chunks_mut(chunk).enumerate() {
                let ctrl = &ctrl;
                handles.push(scope.spawn(move || {
                    let _guard = PoisonGuard(&ctrl.barrier);
                    let base = c * chunk;
                    // Each worker keeps a private lap-based timeline and
                    // returns it; the pool owner absorbs them after the
                    // join. Laps partition the worker's wall-clock time
                    // exactly, so attribution fractions sum to 1.
                    #[allow(clippy::default_constructed_unit_structs)]
                    let mut tl = EngineMetrics::default();
                    if metrics_on {
                        tl.set_enabled(true);
                    }
                    loop {
                        // Post the earliest pending time of the owned
                        // shards, then elect a leader to plan the window.
                        for shard in shards.iter() {
                            if let Some(t) = shard.queue.peek_min_at() {
                                // audit: ordering — AcqRel: concurrent
                                // posts chain through the RMW, and the
                                // barrier that follows publishes the min
                                // to the leader.
                                ctrl.next_min.fetch_min(t.as_micros(), Ordering::AcqRel);
                            }
                        }
                        if metrics_on {
                            tl.lap(TimeCat::Coord);
                        }
                        let Some(leader) = ctrl.barrier.wait() else {
                            return tl;
                        };
                        if metrics_on {
                            tl.lap(TimeCat::WaitPlan);
                        }
                        if leader {
                            // audit: ordering — AcqRel: the Acquire half
                            // sees every post from before the barrier;
                            // the Release half resets the slate for the
                            // posts of the next round.
                            let earliest = ctrl.next_min.swap(u64::MAX, Ordering::AcqRel);
                            if earliest >= until_us {
                                // audit: ordering — Release; readers take
                                // the barrier's Acquire edge before their
                                // `done` check, Release keeps the pair
                                // self-contained even without it.
                                ctrl.done.store(true, Ordering::Release);
                            } else {
                                // audit: ordering — only the leader ever
                                // stores `now_us`, and its own last store
                                // is visible to itself; Acquire also
                                // covers the first round's constructor
                                // store.
                                let start = ctrl.now_us.load(Ordering::Acquire).max(earliest);
                                let end = start.saturating_add(lookahead).min(until_us);
                                // audit: ordering — Release pairs with
                                // the workers' Acquire loads after the
                                // second barrier wait.
                                ctrl.window_end.store(end, Ordering::Release);
                                // audit: ordering — Release: published to
                                // the scope parent's Acquire load at the
                                // end of the run.
                                ctrl.now_us.store(end, Ordering::Release);
                                // Exactly one worker (the leader) records
                                // the committed window, so window counts
                                // and widths are not multiplied by the
                                // worker count.
                                if metrics_on {
                                    tl.add(Counter::Windows, 1);
                                    tl.observe(SampleKind::WindowWidthUs, (end - start) as f64);
                                }
                            }
                        }
                        if ctrl.barrier.wait().is_none() {
                            return tl;
                        }
                        if metrics_on {
                            tl.lap(TimeCat::WaitPublish);
                        }
                        // audit: ordering — Acquire pairs with the
                        // leader's Release store; the barrier generation
                        // bump already ordered it, this keeps the flag
                        // readable on its own.
                        if ctrl.done.load(Ordering::Acquire) {
                            return tl;
                        }
                        // audit: ordering — Acquire pairs with the
                        // leader's Release store of this round's bound.
                        let window_end = SimTime(ctrl.window_end.load(Ordering::Acquire));

                        // Phase 1: local events, then batch-flush each
                        // dirty bucket into its mailbox slot (a Vec swap;
                        // the slot's previous — empty — vector comes back
                        // so capacity is recycled).
                        for (j, shard) in shards.iter_mut().enumerate() {
                            let idx = base + j;
                            run_window_shard(idx, shard, map, n, window_end, lookahead);
                            if metrics_on {
                                tl.lap(TimeCat::Execute);
                            }
                            for dest in shard.dirty.drain(..) {
                                if metrics_on {
                                    let len = shard.remote[dest as usize].len() as u64;
                                    shard.stats.add(Counter::HandoffMsgs, len);
                                    shard.stats.add(Counter::HandoffBatches, 1);
                                    shard.stats.observe(SampleKind::HandoffBatch, len as f64);
                                }
                                let slot = &mail[idx * n + dest as usize];
                                let mut cell =
                                    slot.0.lock().expect("mailbox poisoned by sibling panic");
                                debug_assert!(cell.is_empty());
                                std::mem::swap(&mut *cell, &mut shard.remote[dest as usize]);
                            }
                            if metrics_on {
                                tl.lap(TimeCat::Flush);
                            }
                        }
                        if ctrl.barrier.wait().is_none() {
                            return tl;
                        }
                        if metrics_on {
                            tl.lap(TimeCat::WaitCommit);
                        }

                        // Phase 2: each destination drains its mailbox
                        // column and commits the canonical merge into its
                        // own queue.
                        for (j, shard) in shards.iter_mut().enumerate() {
                            let idx = base + j;
                            for src in 0..n {
                                let slot = &mail[src * n + idx];
                                let mut cell =
                                    slot.0.lock().expect("mailbox poisoned by sibling panic");
                                shard.merge.append(&mut cell);
                            }
                            if !shard.merge.is_empty() {
                                commit_merge(shard);
                            }
                        }
                        if metrics_on {
                            tl.lap(TimeCat::Merge);
                        }
                        // No barrier needed before the next plan phase: a
                        // worker only posts minima for shards it owns, and
                        // those were last touched by this same worker.
                    }
                }));
            }
            // Join explicitly so a panicking shard (e.g. a lookahead
            // violation) propagates its own payload instead of the
            // scope's generic message. Workers that drained out due to a
            // sibling's poison return cleanly, so the only Err payload is
            // the original panic.
            let mut panic = None;
            let mut timelines = Vec::with_capacity(spawned);
            for h in handles {
                match h.join() {
                    Ok(tl) => timelines.push(tl),
                    Err(p) => {
                        panic.get_or_insert(p);
                    }
                }
            }
            if let Some(p) = panic {
                std::panic::resume_unwind(p);
            }
            timelines
        });
        for tl in timelines {
            self.metrics.absorb(tl);
        }
        // audit: ordering — Acquire pairs with the leader's Release
        // stores; `scope` joining every worker already provides the
        // happens-before edge, the explicit ordering documents it.
        self.now = SimTime(ctrl.now_us.load(Ordering::Acquire)).max(self.now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy gossip: each delivery increments a counter and, while `hops`
    /// remain, forwards to two pseudo-random actors with ≥ lookahead delay.
    struct Gossip {
        actors: u32,
        digest: u64,
        deliveries: u64,
    }

    #[derive(Clone)]
    struct G {
        hops: u32,
        token: u64,
    }

    impl ShardLogic for Gossip {
        type Msg = G;
        fn handle(&mut self, now: SimTime, actor: u32, msg: G, out: &mut Outbox<G>) {
            self.deliveries += 1;
            // Order-insensitive digest: commutative sum of delivery hashes.
            let h = (now.as_micros() ^ (actor as u64) << 32 ^ msg.token)
                .wrapping_mul(0x9E3779B97F4A7C15);
            self.digest = self.digest.wrapping_add(h);
            if msg.hops > 0 {
                for k in 0..2u64 {
                    let t = msg.token.wrapping_mul(6364136223846793005).wrapping_add(k);
                    let dst = (t % self.actors as u64) as u32;
                    let delay = 1_000 + (t % 5_000);
                    out.send(
                        delay,
                        dst,
                        G {
                            hops: msg.hops - 1,
                            token: t,
                        },
                    );
                }
            }
        }
        fn fingerprint(&self) -> u64 {
            self.digest.wrapping_add(self.deliveries)
        }
    }

    /// Groups actors into contiguous blocks, round-robin over shards — a
    /// stand-in for locality-aware partitions.
    struct BlockMap {
        block: u32,
    }

    impl ShardMap for BlockMap {
        fn shard_of(&self, actor: u32, shards: usize) -> usize {
            (actor / self.block) as usize % shards
        }
    }

    fn run_full<M: ShardMap>(shards: usize, actors: u32, map: M, workers: usize) -> (u64, u64) {
        let logics: Vec<Gossip> = (0..shards)
            .map(|_| Gossip {
                actors,
                digest: 0,
                deliveries: 0,
            })
            .collect();
        let mut e = ParallelEngine::with_map(logics, 1_000, map);
        e.set_workers(workers);
        for i in 0..4 {
            e.schedule(
                SimTime(i as u64 * 13),
                i,
                G {
                    hops: 8,
                    token: i as u64 + 1,
                },
            );
        }
        e.run_until(SimTime::from_secs(10));
        let deliveries: u64 = (0..shards).map(|s| e.logic(s).deliveries).sum();
        (e.fingerprint(), deliveries)
    }

    fn run_with_map<M: ShardMap>(shards: usize, actors: u32, map: M) -> (u64, u64) {
        run_full(shards, actors, map, 1)
    }

    fn run(shards: usize, actors: u32) -> (u64, u64) {
        run_with_map(shards, actors, ModuloShardMap)
    }

    #[test]
    fn fixed_shard_count_is_deterministic() {
        assert_eq!(run(4, 64), run(4, 64));
        assert_eq!(run(7, 64), run(7, 64));
    }

    #[test]
    fn delivery_set_is_invariant_across_shard_counts() {
        let (f1, d1) = run(1, 64);
        let (f4, d4) = run(4, 64);
        let (f8, d8) = run(8, 64);
        assert_eq!(d1, d4);
        assert_eq!(d1, d8);
        assert_eq!(f1, f4, "digest differs between 1 and 4 shards");
        assert_eq!(f1, f8, "digest differs between 1 and 8 shards");
        // The cascade actually ran: 4 roots × (2^9 - 1) deliveries each.
        assert_eq!(d1, 4 * 511);
    }

    /// The threaded window protocol (spin barrier + mailbox matrix) is
    /// bit-identical to the sequential path for every worker count, even
    /// oversubscribed on a small host.
    #[test]
    fn worker_count_never_changes_the_run() {
        let sequential = run_full(8, 64, ModuloShardMap, 1);
        for workers in [2usize, 3, 8] {
            assert_eq!(
                sequential,
                run_full(8, 64, ModuloShardMap, workers),
                "digest differs between 1 and {workers} workers"
            );
        }
    }

    /// Shard/worker combinations where chunking spawns fewer threads than
    /// `workers` (5 shards / 4 workers -> chunk 2 -> 3 threads; 8 shards /
    /// 6 workers -> chunk 2 -> 4 threads). The barrier must be sized to
    /// the spawned count or the run hangs forever.
    #[test]
    fn uneven_chunking_spawns_fewer_threads_than_workers() {
        let sequential = run_full(5, 64, ModuloShardMap, 1);
        for workers in [3usize, 4] {
            assert_eq!(
                sequential,
                run_full(5, 64, ModuloShardMap, workers),
                "digest differs between 1 and {workers} workers at 5 shards"
            );
        }
        let sequential = run_full(8, 64, ModuloShardMap, 1);
        for workers in [5usize, 6, 7] {
            assert_eq!(
                sequential,
                run_full(8, 64, ModuloShardMap, workers),
                "digest differs between 1 and {workers} workers at 8 shards"
            );
        }
    }

    #[test]
    fn delivery_set_is_invariant_across_shard_maps() {
        let (f_mod, d_mod) = run(4, 64);
        let (f_blk, d_blk) = run_with_map(4, 64, BlockMap { block: 16 });
        let (f_blk3, d_blk3) = run_with_map(3, 64, BlockMap { block: 8 });
        assert_eq!(d_mod, d_blk);
        assert_eq!(d_mod, d_blk3);
        assert_eq!(f_mod, f_blk, "digest differs between modulo and block maps");
        assert_eq!(f_mod, f_blk3, "digest differs for block map at 3 shards");
    }

    #[test]
    fn windows_skip_idle_gaps() {
        // One event far in the future must not require millions of windows.
        struct Noop;
        impl ShardLogic for Noop {
            type Msg = ();
            fn handle(&mut self, _: SimTime, _: u32, _: (), _: &mut Outbox<()>) {}
        }
        let mut e = ParallelEngine::new(vec![Noop, Noop], 1_000);
        e.schedule(SimTime::from_secs(3600), 0, ());
        e.run_until(SimTime::from_secs(7200));
        assert_eq!(e.processed(), 1);
    }

    #[test]
    #[should_panic(expected = "lookahead")]
    fn cross_shard_send_below_lookahead_panics() {
        struct Bad;
        impl ShardLogic for Bad {
            type Msg = u32;
            fn handle(&mut self, _: SimTime, actor: u32, hops: u32, out: &mut Outbox<u32>) {
                if hops > 0 {
                    out.send(1, actor + 1, hops - 1); // 1 µs < lookahead
                }
            }
        }
        let mut e = ParallelEngine::new(vec![Bad, Bad], 1_000);
        e.schedule(SimTime::ZERO, 0, 1);
        e.run_until(SimTime::from_secs(1));
    }

    /// A lookahead violation inside a worker thread must surface as the
    /// original panic — not hang the barrier, not a generic scope panic.
    #[test]
    #[should_panic(expected = "lookahead")]
    fn threaded_panic_propagates_and_never_deadlocks() {
        struct Bad;
        impl ShardLogic for Bad {
            type Msg = u32;
            fn handle(&mut self, _: SimTime, actor: u32, hops: u32, out: &mut Outbox<u32>) {
                if hops > 0 {
                    out.send(1, actor + 1, hops - 1);
                }
            }
        }
        let mut e = ParallelEngine::new(vec![Bad, Bad, Bad, Bad], 1_000);
        e.set_workers(4);
        e.schedule(SimTime::ZERO, 0, 1);
        e.run_until(SimTime::from_secs(1));
    }
}
