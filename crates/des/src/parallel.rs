//! Conservative parallel discrete-event engine (the ONSP substitute).
//!
//! The paper ran its experiments on ONSP, a parallel discrete-event
//! platform using MPI across a 16-server cluster. This module provides the
//! shared-memory analogue: actors are partitioned into shards, each shard
//! owns a private event queue (a hierarchical timing wheel, see
//! [`crate::wheel`]), and execution proceeds in barrier-synchronised
//! *windows* of length equal to the *lookahead* — the minimum cross-shard
//! message latency. Within a window every shard processes its local events
//! independently (on scoped std threads when more than one core is
//! available); messages to other shards are buffered and merged at the
//! barrier in a canonical order, so a run is **bit-deterministic for a
//! fixed shard count**, and the *set* of deliveries is identical across
//! shard counts (asserted by tests).
//!
//! Window processing is allocation-free in steady state: each shard keeps
//! a persistent outbox and per-destination remote buckets that are filled
//! during phase 1, and the engine keeps one reusable merge buffer per
//! destination shard for the phase-2 barrier merge.
//!
//! Actor placement is pluggable through [`ShardMap`]; the default
//! [`ModuloShardMap`] reproduces the historical `actor % shards`
//! partition, while topology-aware maps (e.g. grouping overlay addresses
//! by transit-stub domain) can cut cross-shard traffic dramatically.
//!
//! Correctness rests on the classic conservative-synchronisation argument:
//! a message sent during window `[w, w+δ)` to another shard carries a
//! timestamp `≥ w+δ` (enforced by assertion), so no shard can receive a
//! message that should have pre-empted work it already did.

use crate::time::SimTime;
use crate::wheel::EventWheel;

/// Shard-local simulation logic: the state of all actors owned by one
/// shard, plus the message handler.
pub trait ShardLogic: Send {
    /// Inter-actor message type.
    type Msg: Send;

    /// Delivers `msg` to `actor` at time `now`; follow-up sends go into
    /// `out`.
    fn handle(&mut self, now: SimTime, actor: u32, msg: Self::Msg, out: &mut Outbox<Self::Msg>);

    /// An order-insensitive digest of the shard's state, for cross-run and
    /// cross-shard-count validation.
    fn fingerprint(&self) -> u64 {
        0
    }
}

/// Maps actors to shards. Implementations must be pure functions of
/// `(actor, shards)` — the partition is consulted on every send, from
/// worker threads, and must never change during a run.
pub trait ShardMap: Sync {
    /// The shard owning `actor` when `shards` shards exist. Must return a
    /// value in `0..shards`.
    fn shard_of(&self, actor: u32, shards: usize) -> usize;
}

/// The default static partition: `actor % shards`.
#[derive(Clone, Copy, Debug, Default)]
pub struct ModuloShardMap;

impl ShardMap for ModuloShardMap {
    #[inline]
    fn shard_of(&self, actor: u32, shards: usize) -> usize {
        actor as usize % shards
    }
}

/// Collects the sends emitted by a handler.
pub struct Outbox<M> {
    now: SimTime,
    sends: Vec<(SimTime, u32, M)>,
}

impl<M> Outbox<M> {
    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Sends `msg` to `actor` after `delay_us`. Cross-shard sends must
    /// respect the engine's lookahead (checked at the barrier).
    #[inline]
    pub fn send(&mut self, delay_us: u64, actor: u32, msg: M) {
        self.sends.push((self.now + delay_us, actor, msg));
    }
}

/// A buffered cross-shard message; the source shard is implicit in which
/// bucket it sits in during phase 1 and recorded explicitly at the merge.
struct Remote<M> {
    at: SimTime,
    src_seq: u64,
    actor: u32,
    msg: M,
}

/// A cross-shard message in a destination merge buffer, keyed for the
/// canonical `(at, src_shard, src_seq)` ordering.
struct Inbound<M> {
    at: SimTime,
    src_shard: u32,
    src_seq: u64,
    actor: u32,
    msg: M,
}

struct Shard<L: ShardLogic> {
    logic: L,
    wheel: EventWheel<(u32, L::Msg)>,
    /// Orders this shard's cross-shard sends within a window.
    send_seq: u64,
    processed: u64,
    /// Persistent outbox reused across every handled event.
    outbox: Outbox<L::Msg>,
    /// Persistent per-destination buckets for cross-shard sends
    /// (`remote[dest]`), filled during phase 1, drained at the barrier.
    remote: Vec<Vec<Remote<L::Msg>>>,
}

/// Runs one shard's share of a window: drain local events below
/// `window_end`, keeping local follow-ups and bucketing cross-shard sends
/// by destination.
fn run_window_shard<L: ShardLogic, M: ShardMap>(
    shard_idx: usize,
    shard: &mut Shard<L>,
    map: &M,
    shards: usize,
    window_end: SimTime,
    lookahead_us: u64,
) {
    // `window_end` is exclusive; `pop_until` is inclusive.
    let limit = SimTime(window_end.as_micros() - 1);
    while let Some((now, (actor, msg))) = shard.wheel.pop_until(limit) {
        shard.processed += 1;
        shard.outbox.now = now;
        shard.logic.handle(now, actor, msg, &mut shard.outbox);
        for (at, dst_actor, m) in shard.outbox.sends.drain(..) {
            let dest = map.shard_of(dst_actor, shards);
            if dest == shard_idx {
                shard.wheel.schedule(at, (dst_actor, m));
            } else {
                assert!(
                    at >= window_end || at.as_micros() >= now.as_micros() + lookahead_us,
                    "cross-shard send violates lookahead: at {at:?}, window ends {window_end:?}"
                );
                shard.send_seq += 1;
                shard.remote[dest].push(Remote {
                    at,
                    src_seq: shard.send_seq,
                    actor: dst_actor,
                    msg: m,
                });
            }
        }
    }
}

/// The parallel engine: `S` shards advancing in lockstep windows, with an
/// actor partition given by `M`.
pub struct ParallelEngine<L: ShardLogic, M: ShardMap = ModuloShardMap> {
    shards: Vec<Shard<L>>,
    map: M,
    lookahead_us: u64,
    now: SimTime,
    workers: usize,
    /// Persistent phase-2 merge buffers, one per destination shard.
    merge: Vec<Vec<Inbound<L::Msg>>>,
}

impl<L: ShardLogic> ParallelEngine<L, ModuloShardMap> {
    /// Builds an engine over the given shard logics with the default
    /// modulo partition. `lookahead_us` must be a lower bound on every
    /// cross-shard message delay (for PeerWindow topologies: the minimum
    /// link latency, 1 ms).
    ///
    /// # Panics
    /// Panics if `shards` is empty or `lookahead_us == 0`.
    pub fn new(shards: Vec<L>, lookahead_us: u64) -> Self {
        Self::with_map(shards, lookahead_us, ModuloShardMap)
    }
}

impl<L: ShardLogic, M: ShardMap> ParallelEngine<L, M> {
    /// Builds an engine with an explicit actor-to-shard partition.
    ///
    /// # Panics
    /// Panics if `shards` is empty or `lookahead_us == 0`.
    pub fn with_map(shards: Vec<L>, lookahead_us: u64, map: M) -> Self {
        assert!(!shards.is_empty(), "need at least one shard");
        assert!(lookahead_us > 0, "lookahead must be positive");
        let n = shards.len();
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n);
        ParallelEngine {
            shards: shards
                .into_iter()
                .map(|logic| Shard {
                    logic,
                    wheel: EventWheel::new(),
                    send_seq: 0,
                    processed: 0,
                    outbox: Outbox {
                        now: SimTime::ZERO,
                        sends: Vec::new(),
                    },
                    remote: (0..n).map(|_| Vec::new()).collect(),
                })
                .collect(),
            map,
            lookahead_us,
            now: SimTime::ZERO,
            workers,
            merge: (0..n).map(|_| Vec::new()).collect(),
        }
    }

    /// Number of shards.
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `actor` under the engine's partition.
    #[inline]
    pub fn shard_of(&self, actor: u32) -> usize {
        self.map.shard_of(actor, self.shards.len())
    }

    /// Current window start time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed across shards.
    pub fn processed(&self) -> u64 {
        self.shards.iter().map(|s| s.processed).sum()
    }

    /// Read access to a shard's logic.
    pub fn logic(&self, shard: usize) -> &L {
        &self.shards[shard].logic
    }

    /// Mutable access to a shard's logic (harness configuration between
    /// windows — e.g. toggling tracing — never during a window).
    pub fn logic_mut(&mut self, shard: usize) -> &mut L {
        &mut self.shards[shard].logic
    }

    /// Samples engine-level counters into a trace registry.
    #[cfg(feature = "trace")]
    pub fn sample_into(&self, reg: &mut peerwindow_trace::CounterRegistry) {
        reg.set("engine.processed", self.processed());
        reg.set_gauge("engine.shards", self.shards.len() as f64);
        reg.set_gauge(
            "engine.pending",
            self.shards.iter().map(|s| s.wheel.len()).sum::<usize>() as f64,
        );
    }

    /// Combined order-insensitive fingerprint of all shards.
    pub fn fingerprint(&self) -> u64 {
        self.shards
            .iter()
            .fold(0u64, |acc, s| acc.wrapping_add(s.logic.fingerprint()))
    }

    /// Schedules an initial message (setup).
    ///
    /// `at` is clamped to the engine's current time: scheduling into the
    /// past would violate the windows already committed, so a past `at`
    /// is delivered at `now()` instead. Schedule setup events before
    /// calling [`Self::run_until`] to avoid the clamp.
    pub fn schedule(&mut self, at: SimTime, actor: u32, msg: L::Msg) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past (at {at:?} < now {:?}); the event will be clamped to now()",
            self.now
        );
        let shard = self.map.shard_of(actor, self.shards.len());
        self.shards[shard]
            .wheel
            .schedule(at.max(self.now), (actor, msg));
    }

    /// Runs windows until simulated time reaches `until` or all queues
    /// drain.
    pub fn run_until(&mut self, until: SimTime) {
        let n = self.shards.len();
        while self.now < until {
            let earliest = self
                .shards
                .iter()
                .filter_map(|s| s.wheel.peek_min_at())
                .min();
            let Some(earliest) = earliest else {
                break; // all queues empty
            };
            if earliest >= until {
                break;
            }
            // Skip idle gaps: jump the window to the earliest pending event.
            let window_start = self.now.max(earliest);
            let window_end = (window_start + self.lookahead_us).min(until);
            let lookahead = self.lookahead_us;

            // Phase 1: independent local processing per shard.
            if self.workers <= 1 {
                for (idx, shard) in self.shards.iter_mut().enumerate() {
                    run_window_shard(idx, shard, &self.map, n, window_end, lookahead);
                }
            } else {
                let map = &self.map;
                let chunk = n.div_ceil(self.workers);
                std::thread::scope(|scope| {
                    let mut handles = Vec::with_capacity(self.workers);
                    for (c, shards) in self.shards.chunks_mut(chunk).enumerate() {
                        handles.push(scope.spawn(move || {
                            for (j, shard) in shards.iter_mut().enumerate() {
                                run_window_shard(
                                    c * chunk + j,
                                    shard,
                                    map,
                                    n,
                                    window_end,
                                    lookahead,
                                );
                            }
                        }));
                    }
                    // Join explicitly so a panicking shard (e.g. a
                    // lookahead violation) propagates its own payload
                    // instead of the scope's generic panic message.
                    let mut panic = None;
                    for h in handles {
                        if let Err(p) = h.join() {
                            panic.get_or_insert(p);
                        }
                    }
                    if let Some(p) = panic {
                        std::panic::resume_unwind(p);
                    }
                });
            }

            // Phase 2 (barrier): merge cross-shard messages canonically
            // into each destination wheel, reusing the merge buffers.
            for dest in 0..n {
                let buf = &mut self.merge[dest];
                debug_assert!(buf.is_empty());
                for (src, shard) in self.shards.iter_mut().enumerate() {
                    for r in shard.remote[dest].drain(..) {
                        buf.push(Inbound {
                            at: r.at,
                            src_shard: src as u32,
                            src_seq: r.src_seq,
                            actor: r.actor,
                            msg: r.msg,
                        });
                    }
                }
                buf.sort_unstable_by_key(|r| (r.at, r.src_shard, r.src_seq));
                let wheel = &mut self.shards[dest].wheel;
                for r in buf.drain(..) {
                    wheel.schedule(r.at, (r.actor, r.msg));
                }
            }
            for shard in &mut self.shards {
                shard.send_seq = 0;
            }
            self.now = window_end;
        }
        self.now = self.now.max(until);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy gossip: each delivery increments a counter and, while `hops`
    /// remain, forwards to two pseudo-random actors with ≥ lookahead delay.
    struct Gossip {
        actors: u32,
        digest: u64,
        deliveries: u64,
    }

    #[derive(Clone)]
    struct G {
        hops: u32,
        token: u64,
    }

    impl ShardLogic for Gossip {
        type Msg = G;
        fn handle(&mut self, now: SimTime, actor: u32, msg: G, out: &mut Outbox<G>) {
            self.deliveries += 1;
            // Order-insensitive digest: commutative sum of delivery hashes.
            let h = (now.as_micros() ^ (actor as u64) << 32 ^ msg.token)
                .wrapping_mul(0x9E3779B97F4A7C15);
            self.digest = self.digest.wrapping_add(h);
            if msg.hops > 0 {
                for k in 0..2u64 {
                    let t = msg.token.wrapping_mul(6364136223846793005).wrapping_add(k);
                    let dst = (t % self.actors as u64) as u32;
                    let delay = 1_000 + (t % 5_000);
                    out.send(
                        delay,
                        dst,
                        G {
                            hops: msg.hops - 1,
                            token: t,
                        },
                    );
                }
            }
        }
        fn fingerprint(&self) -> u64 {
            self.digest.wrapping_add(self.deliveries)
        }
    }

    /// Groups actors into contiguous blocks, round-robin over shards — a
    /// stand-in for locality-aware partitions.
    struct BlockMap {
        block: u32,
    }

    impl ShardMap for BlockMap {
        fn shard_of(&self, actor: u32, shards: usize) -> usize {
            (actor / self.block) as usize % shards
        }
    }

    fn run_with_map<M: ShardMap>(shards: usize, actors: u32, map: M) -> (u64, u64) {
        let logics: Vec<Gossip> = (0..shards)
            .map(|_| Gossip {
                actors,
                digest: 0,
                deliveries: 0,
            })
            .collect();
        let mut e = ParallelEngine::with_map(logics, 1_000, map);
        for i in 0..4 {
            e.schedule(
                SimTime(i as u64 * 13),
                i,
                G {
                    hops: 8,
                    token: i as u64 + 1,
                },
            );
        }
        e.run_until(SimTime::from_secs(10));
        let deliveries: u64 = (0..shards).map(|s| e.logic(s).deliveries).sum();
        (e.fingerprint(), deliveries)
    }

    fn run(shards: usize, actors: u32) -> (u64, u64) {
        run_with_map(shards, actors, ModuloShardMap)
    }

    #[test]
    fn fixed_shard_count_is_deterministic() {
        assert_eq!(run(4, 64), run(4, 64));
        assert_eq!(run(7, 64), run(7, 64));
    }

    #[test]
    fn delivery_set_is_invariant_across_shard_counts() {
        let (f1, d1) = run(1, 64);
        let (f4, d4) = run(4, 64);
        let (f8, d8) = run(8, 64);
        assert_eq!(d1, d4);
        assert_eq!(d1, d8);
        assert_eq!(f1, f4, "digest differs between 1 and 4 shards");
        assert_eq!(f1, f8, "digest differs between 1 and 8 shards");
        // The cascade actually ran: 4 roots × (2^9 - 1) deliveries each.
        assert_eq!(d1, 4 * 511);
    }

    #[test]
    fn delivery_set_is_invariant_across_shard_maps() {
        let (f_mod, d_mod) = run(4, 64);
        let (f_blk, d_blk) = run_with_map(4, 64, BlockMap { block: 16 });
        let (f_blk3, d_blk3) = run_with_map(3, 64, BlockMap { block: 8 });
        assert_eq!(d_mod, d_blk);
        assert_eq!(d_mod, d_blk3);
        assert_eq!(f_mod, f_blk, "digest differs between modulo and block maps");
        assert_eq!(f_mod, f_blk3, "digest differs for block map at 3 shards");
    }

    #[test]
    fn windows_skip_idle_gaps() {
        // One event far in the future must not require millions of windows.
        struct Noop;
        impl ShardLogic for Noop {
            type Msg = ();
            fn handle(&mut self, _: SimTime, _: u32, _: (), _: &mut Outbox<()>) {}
        }
        let mut e = ParallelEngine::new(vec![Noop, Noop], 1_000);
        e.schedule(SimTime::from_secs(3600), 0, ());
        e.run_until(SimTime::from_secs(7200));
        assert_eq!(e.processed(), 1);
    }

    #[test]
    #[should_panic(expected = "lookahead")]
    fn cross_shard_send_below_lookahead_panics() {
        struct Bad;
        impl ShardLogic for Bad {
            type Msg = u32;
            fn handle(&mut self, _: SimTime, actor: u32, hops: u32, out: &mut Outbox<u32>) {
                if hops > 0 {
                    out.send(1, actor + 1, hops - 1); // 1 µs < lookahead
                }
            }
        }
        let mut e = ParallelEngine::new(vec![Bad, Bad], 1_000);
        e.schedule(SimTime::ZERO, 0, 1);
        e.run_until(SimTime::from_secs(1));
    }
}
