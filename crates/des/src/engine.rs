//! Sequential discrete-event engine.
//!
//! A deterministic event loop: events are totally ordered by
//! `(timestamp, insertion sequence)`, so two runs with the same inputs
//! produce bit-identical traces. The engine is generic over the
//! simulation's event type; the simulation schedules follow-up events
//! through the [`Scheduler`] handed to its handler.
//!
//! The pending-event queue is an [`AdaptiveScheduler`]: a binary heap
//! while the queue is shallow, a hierarchical timing wheel once resident
//! timers pile up, switching by pending-event count with hysteresis and
//! with `(timestamp, FIFO)` ordering semantics identical in every
//! representation (see [`crate::sched`]). [`Engine::with_sched`] pins the
//! representation explicitly when a workload's shape is known up front.

use crate::sched::{AdaptiveScheduler, SchedKind};
use crate::time::SimTime;

/// A simulation driven by the engine.
pub trait Simulation {
    /// The event payload.
    type Event;

    /// Handles one event at time `now`, scheduling follow-ups via `sched`.
    fn handle(&mut self, now: SimTime, event: Self::Event, sched: &mut Scheduler<'_, Self::Event>);
}

/// Scheduling interface passed to [`Simulation::handle`].
pub struct Scheduler<'a, E> {
    now: SimTime,
    queue: &'a mut AdaptiveScheduler<E>,
}

impl<E> Scheduler<'_, E> {
    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire `delay_us` from now.
    #[inline]
    pub fn schedule(&mut self, delay_us: u64, event: E) {
        self.schedule_at(self.now + delay_us, event);
    }

    /// Schedules `event` at absolute time `at` (clamped to now).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        self.queue.schedule(at.max(self.now), event);
    }
}

/// Engine run statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Events processed so far.
    pub processed: u64,
    /// High-water mark of the pending-event queue.
    pub max_queue: usize,
}

/// The sequential discrete-event engine.
pub struct Engine<S: Simulation> {
    sim: S,
    now: SimTime,
    queue: AdaptiveScheduler<S::Event>,
    stats: EngineStats,
}

impl<S: Simulation> Engine<S> {
    /// Wraps a simulation with an empty event queue at time zero, under
    /// the default adaptive queue policy.
    pub fn new(sim: S) -> Self {
        Self::with_sched(sim, SchedKind::Adaptive)
    }

    /// Wraps a simulation with an explicit queue-representation policy
    /// (pin [`SchedKind::Heap`] for known-shallow workloads,
    /// [`SchedKind::Wheel`] for known-deep ones; benchmarking the two
    /// against each other is what `perfbaseline` does).
    pub fn with_sched(sim: S, kind: SchedKind) -> Self {
        Engine {
            sim,
            now: SimTime::ZERO,
            queue: AdaptiveScheduler::with_kind(kind),
            stats: EngineStats::default(),
        }
    }

    /// Re-pins the queue representation, migrating pending events if
    /// needed. Ordering (and therefore determinism) is unaffected.
    pub fn set_sched_kind(&mut self, kind: SchedKind) {
        self.queue.set_kind(kind);
    }

    /// Representation migrations performed by the queue so far.
    pub fn sched_migrations(&self) -> u64 {
        self.queue.migrations()
    }

    /// Snapshot of the adaptive queue's state: pending count, active
    /// backend, migrations, and singleton-slot fast-path hits.
    pub fn sched_stats(&self) -> crate::sched::SchedStats {
        self.queue.stats()
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The simulation state.
    #[inline]
    pub fn sim(&self) -> &S {
        &self.sim
    }

    /// Mutable simulation state (for setup between runs).
    #[inline]
    pub fn sim_mut(&mut self) -> &mut S {
        &mut self.sim
    }

    /// Consumes the engine, returning the simulation.
    pub fn into_sim(self) -> S {
        self.sim
    }

    /// Engine statistics.
    #[inline]
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Number of pending events.
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Samples engine-level counters into a trace registry.
    #[cfg(feature = "trace")]
    pub fn sample_into(&self, reg: &mut peerwindow_trace::CounterRegistry) {
        reg.set("engine.processed", self.stats.processed);
        reg.set("engine.max_queue", self.stats.max_queue as u64);
        reg.set_gauge("engine.pending", self.queue.len() as f64);
        reg.set("engine.sched_migrations", self.queue.migrations());
    }

    /// Schedules an event `delay_us` after the current time (setup or
    /// external stimulus).
    pub fn schedule(&mut self, delay_us: u64, event: S::Event) {
        self.schedule_at(self.now + delay_us, event);
    }

    /// Schedules an event at an absolute time.
    pub fn schedule_at(&mut self, at: SimTime, event: S::Event) {
        self.queue.schedule(at.max(self.now), event);
        self.stats.max_queue = self.stats.max_queue.max(self.queue.len());
    }

    fn dispatch(&mut self, at: SimTime, event: S::Event) {
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        self.stats.processed += 1;
        let mut sched = Scheduler {
            now: at,
            queue: &mut self.queue,
        };
        self.sim.handle(at, event, &mut sched);
        self.stats.max_queue = self.stats.max_queue.max(self.queue.len());
    }

    /// Processes a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((at, event)) = self.queue.pop() else {
            return false;
        };
        self.dispatch(at, event);
        true
    }

    /// Runs until the queue is empty or the next event is after `until`.
    /// The clock is left at `min(until, time of last processed event)`…
    /// more precisely it advances to `until` when the simulation outlives
    /// the bound, so periodic sampling of `now()` is monotone.
    pub fn run_until(&mut self, until: SimTime) {
        while let Some((at, event)) = self.queue.pop_until(until) {
            self.dispatch(at, event);
        }
        self.now = self.now.max(until);
    }

    /// Runs until the event queue drains completely.
    pub fn run_to_completion(&mut self) {
        while self.step() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts events and records the order they arrive in.
    struct Recorder {
        log: Vec<(u64, u32)>,
        respawn: bool,
    }

    impl Simulation for Recorder {
        type Event = u32;
        fn handle(&mut self, now: SimTime, event: u32, sched: &mut Scheduler<'_, u32>) {
            self.log.push((now.as_micros(), event));
            if self.respawn && event < 10 {
                sched.schedule(100, event + 1);
            }
        }
    }

    #[test]
    fn events_fire_in_time_order_with_fifo_ties() {
        let mut e = Engine::new(Recorder {
            log: vec![],
            respawn: false,
        });
        e.schedule_at(SimTime(50), 1);
        e.schedule_at(SimTime(10), 2);
        e.schedule_at(SimTime(50), 3); // same time as 1, inserted later
        e.schedule_at(SimTime(20), 4);
        e.run_to_completion();
        assert_eq!(
            e.sim().log,
            vec![(10, 2), (20, 4), (50, 1), (50, 3)],
            "ties must preserve insertion order"
        );
    }

    #[test]
    fn handlers_can_schedule_followups() {
        let mut e = Engine::new(Recorder {
            log: vec![],
            respawn: true,
        });
        e.schedule_at(SimTime(0), 0);
        e.run_to_completion();
        assert_eq!(e.sim().log.len(), 11);
        assert_eq!(e.sim().log.last(), Some(&(1000, 10)));
        assert_eq!(e.stats().processed, 11);
    }

    #[test]
    fn run_until_stops_at_bound_and_advances_clock() {
        let mut e = Engine::new(Recorder {
            log: vec![],
            respawn: true,
        });
        e.schedule_at(SimTime(0), 0);
        e.run_until(SimTime(450));
        assert_eq!(e.sim().log.len(), 5); // t = 0,100,200,300,400
        assert_eq!(e.now(), SimTime(450));
        e.run_until(SimTime(2_000));
        assert_eq!(e.sim().log.len(), 11);
        assert_eq!(e.now(), SimTime(2_000));
    }

    #[test]
    fn schedule_in_past_is_clamped() {
        let mut e = Engine::new(Recorder {
            log: vec![],
            respawn: false,
        });
        e.schedule_at(SimTime(100), 1);
        e.run_until(SimTime(100));
        e.schedule_at(SimTime(10), 2); // in the past
        e.run_to_completion();
        assert_eq!(e.sim().log, vec![(100, 1), (100, 2)]);
    }

    #[test]
    fn determinism_two_identical_runs() {
        let run = || {
            let mut e = Engine::new(Recorder {
                log: vec![],
                respawn: true,
            });
            for i in 0..5 {
                e.schedule_at(SimTime(i * 7), i as u32);
            }
            e.run_to_completion();
            e.into_sim().log
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn all_sched_kinds_produce_identical_logs() {
        let run = |kind: SchedKind| {
            let mut e = Engine::with_sched(
                Recorder {
                    log: vec![],
                    respawn: true,
                },
                kind,
            );
            for i in 0..8 {
                e.schedule_at(SimTime(i * 37), i as u32);
            }
            e.run_to_completion();
            e.into_sim().log
        };
        let adaptive = run(SchedKind::Adaptive);
        assert_eq!(adaptive, run(SchedKind::Heap));
        assert_eq!(adaptive, run(SchedKind::Wheel));
    }

    #[test]
    fn stats_track_queue_high_water() {
        let mut e = Engine::new(Recorder {
            log: vec![],
            respawn: false,
        });
        for i in 0..100 {
            e.schedule_at(SimTime(i), i as u32);
        }
        assert_eq!(e.stats().max_queue, 100);
        e.run_to_completion();
        assert_eq!(e.stats().processed, 100);
    }
}
