//! Simulated time.
//!
//! Time is a monotone `u64` microsecond counter starting at zero. All of
//! PeerWindow's constants (millisecond link latencies, second-scale
//! processing delays, hour-scale lifetimes) are exactly representable, and
//! a `u64` of microseconds spans ~584,000 years of simulation.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// An instant of simulated time, in microseconds since the start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);
    /// The end of time (useful as an "infinite" run bound).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Builds from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Builds from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Microseconds since time zero.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since time zero, as a float (reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating difference.
    #[inline]
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, us: u64) -> SimTime {
        SimTime(self.0 + us)
    }
}

impl AddAssign<u64> for SimTime {
    #[inline]
    fn add_assign(&mut self, us: u64) {
        self.0 += us;
    }
}

impl Sub for SimTime {
    type Output = u64;
    #[inline]
    fn sub(self, other: SimTime) -> u64 {
        self.0 - other.0
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimTime::from_micros(7).as_micros(), 7);
        assert!((SimTime::from_secs(3).as_secs_f64() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1);
        assert_eq!((t + 500_000).as_micros(), 1_500_000);
        assert_eq!(SimTime::from_secs(2) - t, 1_000_000);
        assert_eq!(t.saturating_sub(SimTime::from_secs(5)), SimTime::ZERO);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimTime::ZERO < SimTime::MAX);
    }
}
