//! # peerwindow-des
//!
//! Deterministic discrete-event simulation, substituting for the paper's
//! ONSP platform ([17]: a parallel overlay-network simulator using MPI on
//! a 16-server cluster).
//!
//! * [`engine`] — the sequential engine: a single totally-ordered event
//!   queue; bit-deterministic.
//! * [`parallel`] — the conservative sharded engine: actors partitioned
//!   across shards, barrier-synchronised lookahead windows, rayon for the
//!   intra-window parallelism (threads standing in for ONSP's MPI ranks).
//! * [`time`] — µs-resolution simulated time.
//! * [`rng`] — deterministic per-stream random numbers.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod parallel;
pub mod rng;
pub mod time;

pub use engine::{Engine, EngineStats, Scheduler, Simulation};
pub use parallel::{Outbox, ParallelEngine, ShardLogic};
pub use rng::DetRng;
pub use time::SimTime;
