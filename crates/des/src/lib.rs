//! # peerwindow-des
//!
//! Deterministic discrete-event simulation, substituting for the paper's
//! ONSP platform ([17]: a parallel overlay-network simulator using MPI on
//! a 16-server cluster).
//!
//! * [`engine`] — the sequential engine: a single totally-ordered event
//!   queue; bit-deterministic.
//! * [`wheel`] — the hierarchical timing wheel backing both engines'
//!   event queues: O(1) amortised schedule/pop with `(time, FIFO)`
//!   ordering identical to the binary heap it replaced.
//! * [`parallel`] — the conservative sharded engine: actors partitioned
//!   across shards via a pluggable [`ShardMap`], barrier-synchronised
//!   lookahead windows, scoped std threads for the intra-window
//!   parallelism (standing in for ONSP's MPI ranks).
//! * [`time`] — µs-resolution simulated time.
//! * [`rng`] — deterministic per-stream random numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod parallel;
pub mod rng;
pub mod time;
pub mod wheel;

pub use engine::{Engine, EngineStats, Scheduler, Simulation};
pub use parallel::{ModuloShardMap, Outbox, ParallelEngine, ShardLogic, ShardMap};
pub use rng::DetRng;
pub use time::SimTime;
pub use wheel::EventWheel;
