//! # peerwindow-des
//!
//! Deterministic discrete-event simulation, substituting for the paper's
//! ONSP platform ([17]: a parallel overlay-network simulator using MPI on
//! a 16-server cluster).
//!
//! * [`engine`] — the sequential engine: a single totally-ordered event
//!   queue; bit-deterministic.
//! * [`sched`] — the adaptive event queue both engines run on: a binary
//!   heap while shallow, the timing wheel once resident timers pile up,
//!   switching by pending count with hysteresis and `(time, FIFO)`
//!   ordering identical in every representation.
//! * [`wheel`] — the hierarchical timing wheel backing the deep end of
//!   the adaptive queue: O(1) amortised schedule/pop with `(time, FIFO)`
//!   ordering identical to the binary heap.
//! * [`parallel`] — the conservative sharded engine: actors partitioned
//!   across shards via a pluggable [`ShardMap`], lookahead windows
//!   sequenced by a spin barrier over a persistent worker pool, batched
//!   cross-shard handoff through a mailbox matrix (standing in for
//!   ONSP's MPI ranks).
//! * [`emetrics`] — compile-time selection of the engines' runtime-metrics
//!   sink (`runtime-metrics` feature): the real `ShardSlot` when on, a
//!   Noop ZST when off, so default builds carry no metrics code at all.
//! * [`time`] — µs-resolution simulated time.
//! * [`rng`] — deterministic per-stream random numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod emetrics;
pub mod engine;
pub mod parallel;
pub mod rng;
pub mod sched;
pub mod time;
pub mod wheel;

pub use emetrics::{runtime_metrics_active, EngineMetrics};
pub use engine::{Engine, EngineStats, Scheduler, Simulation};
pub use parallel::{ModuloShardMap, Outbox, ParallelEngine, ShardLogic, ShardMap};
pub use rng::DetRng;
pub use sched::{ActiveBackend, AdaptiveScheduler, SchedKind, SchedStats, HEAP_DOWN, WHEEL_UP};
pub use time::SimTime;
pub use wheel::EventWheel;
