//! Hierarchical timing-wheel event queue.
//!
//! The engines' hot path is `schedule` / `pop-min`; a binary heap makes
//! both O(log n) in the pending-event count, which dominates engine time
//! once simulations hold 10⁴–10⁵ outstanding timers (every PeerWindow node
//! keeps probe and window timers alive). [`EventWheel`] replaces the heap
//! with a Tokio/Kafka-style hierarchical timing wheel: six levels of 64
//! slots, each level covering 64× the span of the one below, with a `u64`
//! occupancy bitmap per level so the next event is found with a couple of
//! `trailing_zeros` instructions. `schedule` and `pop` are O(1) amortised;
//! events further than `64^6` µs (~19 h of simulated time) ahead go to a
//! small overflow heap and migrate into the wheel as the clock approaches.
//!
//! Determinism is identical to the heap it replaces: events are totally
//! ordered by `(timestamp, insertion sequence)`. The wheel owns the
//! sequence counter; ties on a tick are served in FIFO insertion order
//! regardless of which slot, cascade, or overflow path an event travelled.
//! The clock jumps directly to the next pending event, so sparse schedules
//! (one timer hours out) cost one cascade, not millions of empty ticks —
//! the property the parallel engine's idle-gap skipping relies on.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Number of wheel levels.
const LEVELS: usize = 6;
/// log2 of the slot count per level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Events at `now + delta` with `delta ^ now` at or above this bit go to
/// the overflow heap.
const WHEEL_SPAN_BITS: u32 = SLOT_BITS * LEVELS as u32;

struct Entry<E> {
    at: u64,
    seq: u64,
    event: E,
}

/// Overflow entries, min-ordered by `(at, seq)` under `BinaryHeap`'s
/// max-heap semantics.
struct Overflow<E>(Entry<E>);

impl<E> PartialEq for Overflow<E> {
    fn eq(&self, other: &Self) -> bool {
        self.0.at == other.0.at && self.0.seq == other.0.seq
    }
}
impl<E> Eq for Overflow<E> {}
impl<E> PartialOrd for Overflow<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Overflow<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.0.at, other.0.seq).cmp(&(self.0.at, self.0.seq))
    }
}

/// A deterministic timing-wheel priority queue over `(SimTime, FIFO seq)`.
///
/// Drop-in replacement for the engines' former `BinaryHeap` queues; see
/// the module docs for the level/cascade design.
pub struct EventWheel<E> {
    /// All pending events have `at >= now`; events at exactly `now` live
    /// in `cur`.
    now: u64,
    seq: u64,
    len: usize,
    /// `slots[level][slot]` holds events whose highest bit-group differing
    /// from `now` is `level`; a level-0 slot holds exactly one tick.
    slots: [[Vec<Entry<E>>; SLOTS]; LEVELS],
    /// Per-level occupancy bitmaps (bit `s` = slot `s` non-empty).
    occupied: [u64; LEVELS],
    overflow: BinaryHeap<Overflow<E>>,
    /// Events at exactly `now` as `(seq, payload)`, sorted by `seq`;
    /// `cur[..cur_pos]` are already served (payload taken).
    cur: Vec<(u64, Option<E>)>,
    cur_pos: usize,
    /// Reusable buffer for cascading a slot without losing its capacity.
    scratch: Vec<Entry<E>>,
    /// Times the singleton-slot fast path fired in `advance_to`. Derived
    /// purely from queue contents, so it is deterministic and safe to
    /// surface in runtime-metrics reports.
    fast_hits: u64,
}

impl<E> Default for EventWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventWheel<E> {
    /// An empty wheel at time zero.
    pub fn new() -> Self {
        Self::with_now(0)
    }

    /// An empty wheel whose clock starts at `now_us`, so entries migrated
    /// from another representation (see [`crate::sched`]) classify into
    /// tight levels immediately instead of relative to time zero.
    pub(crate) fn with_now(now_us: u64) -> Self {
        EventWheel {
            now: now_us,
            seq: 0,
            len: 0,
            slots: std::array::from_fn(|_| std::array::from_fn(|_| Vec::new())),
            occupied: [0; LEVELS],
            overflow: BinaryHeap::new(),
            cur: Vec::new(),
            cur_pos: 0,
            scratch: Vec::new(),
            fast_hits: 0,
        }
    }

    /// Time of the most recent pop (events before this are gone).
    #[inline]
    pub fn now(&self) -> SimTime {
        SimTime(self.now)
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Level of an event given the xor of its time with `now`
    /// (`diff != 0`).
    #[inline]
    fn level_of(diff: u64) -> usize {
        ((63 - diff.leading_zeros()) / SLOT_BITS) as usize
    }

    fn insert(&mut self, e: Entry<E>) {
        debug_assert!(e.at >= self.now);
        if e.at == self.now {
            self.cur.push((e.seq, Some(e.event)));
            return;
        }
        let diff = e.at ^ self.now;
        if diff >> WHEEL_SPAN_BITS != 0 {
            self.overflow.push(Overflow(e));
            return;
        }
        let level = Self::level_of(diff);
        let slot = ((e.at >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        self.occupied[level] |= 1 << slot;
        self.slots[level][slot].push(e);
    }

    /// Schedules `event` at `at` (clamped to `now`), assigning it the next
    /// FIFO sequence number.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let at = at.as_micros().max(self.now);
        self.seq += 1;
        self.len += 1;
        let seq = self.seq;
        self.insert(Entry { at, seq, event });
    }

    /// Earliest time among the wheel levels and the overflow heap,
    /// ignoring `cur`.
    fn next_filed_time(&self) -> Option<u64> {
        let mut best: Option<u64> = None;
        for level in 0..LEVELS {
            let occ = self.occupied[level];
            if occ == 0 {
                continue;
            }
            // The lowest non-empty level holds the minimum: a level-g
            // event's group-g digit exceeds now's, so it is later than
            // every event filed below g.
            let slot = occ.trailing_zeros() as usize;
            if level == 0 {
                // A level-0 slot is a single tick in now's 64-tick block.
                best = Some((self.now & !(SLOTS as u64 - 1)) | slot as u64);
            } else {
                // Lowest occupied slot has the smallest group digit; scan
                // its entries for the earliest tick.
                let m = self.slots[level][slot]
                    .iter()
                    .map(|e| e.at)
                    .min()
                    .expect("occupied slot is non-empty");
                best = Some(m);
            }
            break;
        }
        match (best, self.overflow.peek()) {
            (Some(w), Some(o)) => Some(w.min(o.0.at)),
            (Some(w), None) => Some(w),
            (None, Some(o)) => Some(o.0.at),
            (None, None) => None,
        }
    }

    /// Time of the next pending event without mutating the wheel (the
    /// parallel engine peeks every shard before committing to a window).
    pub fn peek_min_at(&self) -> Option<SimTime> {
        if self.cur_pos < self.cur.len() {
            return Some(SimTime(self.now));
        }
        self.next_filed_time().map(SimTime)
    }

    /// Jumps the clock to `t` (the minimum pending time) and gathers every
    /// event at exactly `t` into `cur`, cascading as needed.
    fn advance_to(&mut self, t: u64) {
        debug_assert!(t > self.now);
        let diff = t ^ self.now;
        let level = if diff >> WHEEL_SPAN_BITS != 0 {
            LEVELS // beyond the wheel: every level is empty (see below)
        } else {
            Self::level_of(diff)
        };
        self.now = t;
        self.cur.clear();
        self.cur_pos = 0;
        // Only the slot matching t's digit at the highest differing level
        // can hold events whose classification changes: `t` is a lower
        // bound on every pending event, so levels below `level` are empty,
        // and events elsewhere on `level` or above keep their slot.
        if level < LEVELS {
            let slot = ((t >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
            if self.occupied[level] & (1 << slot) != 0 {
                self.occupied[level] &= !(1 << slot);
                // Shallow-queue fast path: when the advancing slot holds
                // exactly the one event we jumped to and nothing waits in
                // overflow, it lands straight in `cur` — no scratch swap,
                // no re-file, no overflow scan, no tie sort. A depth-1
                // chain workload (schedule → pop → schedule …) takes this
                // path on every single pop; without it each pop pays the
                // full cascade machinery to move one event, the
                // `seq_ping_1m` pathology BENCH_PR4 measured at 5× slower
                // than a heap.
                let sv = &mut self.slots[level][slot];
                if sv.len() == 1 && sv[0].at == t && self.overflow.is_empty() {
                    let e = sv.pop().expect("slot length checked");
                    self.cur.push((e.seq, Some(e.event)));
                    self.fast_hits += 1;
                    return;
                }
                let mut batch = std::mem::take(&mut self.scratch);
                std::mem::swap(&mut batch, &mut self.slots[level][slot]);
                for e in batch.drain(..) {
                    self.insert(e);
                }
                self.scratch = batch;
            }
        } else {
            debug_assert!(self.occupied.iter().all(|&o| o == 0));
        }
        // Overflow events now inside the wheel's span migrate in. The heap
        // is (at, seq)-ordered, so the in-span events form its prefix.
        let span_end = t | ((1u64 << WHEEL_SPAN_BITS) - 1);
        while let Some(top) = self.overflow.peek() {
            if top.0.at > span_end {
                break;
            }
            let Overflow(e) = self.overflow.pop().expect("peeked");
            self.insert(e);
        }
        // Ties on a tick are FIFO by seq no matter which path (direct
        // file, cascade, overflow) brought them here.
        if self.cur.len() > 1 {
            self.cur.sort_unstable_by_key(|&(seq, _)| seq);
        }
    }

    /// Pops the earliest event if its time is `<= limit`.
    pub fn pop_until(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        if self.cur_pos >= self.cur.len() {
            let t = self.next_filed_time()?;
            if t > limit.as_micros() {
                return None;
            }
            self.advance_to(t);
        } else if self.now > limit.as_micros() {
            return None;
        }
        let event = self.cur[self.cur_pos].1.take().expect("unserved cur entry");
        self.cur_pos += 1;
        self.len -= 1;
        Some((SimTime(self.now), event))
    }

    /// Pops the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_until(SimTime(u64::MAX))
    }

    /// Times the singleton-slot fast path fired (see `advance_to`).
    #[inline]
    pub fn fast_hits(&self) -> u64 {
        self.fast_hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::cmp::Reverse;

    /// The heap the wheel replaced, kept as a reference model: same
    /// clamping, same FIFO seq assignment.
    struct HeapRef {
        now: u64,
        seq: u64,
        heap: BinaryHeap<Reverse<(u64, u64, u32)>>,
    }

    impl HeapRef {
        fn new() -> Self {
            HeapRef {
                now: 0,
                seq: 0,
                heap: BinaryHeap::new(),
            }
        }
        fn schedule(&mut self, at: u64, event: u32) {
            let at = at.max(self.now);
            self.seq += 1;
            self.heap.push(Reverse((at, self.seq, event)));
        }
        fn pop_until(&mut self, limit: u64) -> Option<(u64, u32)> {
            let &Reverse((at, _, ev)) = self.heap.peek()?;
            if at > limit {
                return None;
            }
            self.heap.pop();
            self.now = at;
            Some((at, ev))
        }
    }

    #[test]
    fn ties_pop_in_fifo_order() {
        let mut w = EventWheel::new();
        w.schedule(SimTime(50), 1u32);
        w.schedule(SimTime(10), 2);
        w.schedule(SimTime(50), 3);
        w.schedule(SimTime(10), 4);
        let mut got = Vec::new();
        while let Some((at, ev)) = w.pop() {
            got.push((at.as_micros(), ev));
        }
        assert_eq!(got, vec![(10, 2), (10, 4), (50, 1), (50, 3)]);
        assert!(w.is_empty());
    }

    #[test]
    fn far_future_events_survive_overflow() {
        let mut w = EventWheel::new();
        let far = 1u64 << 40; // beyond the 2^36 µs wheel span
        w.schedule(SimTime(far), 1u32);
        w.schedule(SimTime(5), 2);
        w.schedule(SimTime(far), 3);
        w.schedule(SimTime(far + 1), 4);
        assert_eq!(w.pop(), Some((SimTime(5), 2)));
        assert_eq!(w.pop(), Some((SimTime(far), 1)));
        assert_eq!(w.pop(), Some((SimTime(far), 3)));
        assert_eq!(w.pop(), Some((SimTime(far + 1), 4)));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn peek_matches_pop_and_does_not_mutate() {
        let mut w = EventWheel::new();
        for i in [900u64, 3, 70, 1 << 37, 70] {
            w.schedule(SimTime(i), i as u32);
        }
        while let Some(t) = w.peek_min_at() {
            assert_eq!(w.peek_min_at(), Some(t), "peek must be idempotent");
            let (at, _) = w.pop().expect("peeked, must pop");
            assert_eq!(at, t);
        }
        assert!(w.is_empty());
    }

    #[test]
    fn pop_until_respects_limit() {
        let mut w = EventWheel::new();
        w.schedule(SimTime(100), 1u32);
        w.schedule(SimTime(200), 2);
        assert_eq!(w.pop_until(SimTime(99)), None);
        assert_eq!(w.pop_until(SimTime(100)), Some((SimTime(100), 1)));
        assert_eq!(w.pop_until(SimTime(150)), None);
        assert_eq!(w.len(), 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Under any interleaving of schedules (including far-future
        /// overflow deltas and past times that clamp) and bounded pops,
        /// the wheel pops the byte-identical sequence to the heap.
        #[test]
        fn pops_identical_to_heap_reference(ops in proptest::collection::vec(
            (0u8..8, any::<u64>()), 1..200usize,
        )) {
            let mut wheel = EventWheel::new();
            let mut heap = HeapRef::new();
            let mut payload = 0u32;
            for (kind, raw) in ops {
                match kind {
                    // Schedule at now + small/medium/large/overflow delta.
                    0..=4 => {
                        let delta = match kind {
                            0 => raw % 4,            // same-tick ties
                            1 => raw % 64,           // level 0
                            2 => raw % 100_000,      // mid levels
                            3 => raw % (1 << 36),    // top level
                            _ => raw % (1 << 45),    // overflow territory
                        };
                        payload += 1;
                        let at = wheel.now().as_micros().saturating_add(delta);
                        wheel.schedule(SimTime(at), payload);
                        heap.schedule(at, payload);
                    }
                    // Schedule at an absolute (possibly past) time: clamps.
                    5 => {
                        payload += 1;
                        let at = raw % 200_000;
                        wheel.schedule(SimTime(at), payload);
                        heap.schedule(at, payload);
                    }
                    // Pop a bounded batch.
                    _ => {
                        let limit = heap
                            .heap
                            .peek()
                            .map_or(0, |&Reverse((at, _, _))| at.saturating_add(raw % 5_000));
                        for _ in 0..(raw % 8 + 1) {
                            let got = wheel.pop_until(SimTime(limit));
                            let want = heap.pop_until(limit).map(|(t, e)| (SimTime(t), e));
                            prop_assert_eq!(got, want);
                        }
                    }
                }
                prop_assert_eq!(wheel.len(), heap.heap.len());
            }
            // Drain: full order must match exactly.
            loop {
                let got = wheel.pop();
                let want = heap.pop_until(u64::MAX).map(|(t, e)| (SimTime(t), e));
                prop_assert_eq!(got, want);
                if want.is_none() {
                    break;
                }
            }
        }
    }
}
