//! Compile-time selection of the engines' runtime-metrics sink.
//!
//! The engines record wall-clock runtime metrics (barrier waits, handoff
//! volume, window shapes — see `peerwindow_metrics::runtime`) through the
//! [`MetricsSink`](peerwindow_metrics::runtime::MetricsSink) trait. This
//! module picks the implementation at compile time: the real cache-line-
//! padded `ShardSlot` under the `runtime-metrics` feature, the `NoopMetrics`
//! ZST otherwise — so a default build carries no metrics state, branches,
//! or wall-clock reads at all, exactly like the trace layer's `NoopTrace`.
//!
//! Report types (`RunReport`) are unconditional: callers can always ask
//! for a report; compiled out it is simply empty.

/// The engine's metrics sink: `ShardSlot` with `runtime-metrics`, the
/// `NoopMetrics` ZST without.
#[cfg(feature = "runtime-metrics")]
pub use peerwindow_metrics::runtime::ShardSlot as EngineMetrics;

/// The engine's metrics sink: `ShardSlot` with `runtime-metrics`, the
/// `NoopMetrics` ZST without.
#[cfg(not(feature = "runtime-metrics"))]
pub use peerwindow_metrics::runtime::NoopMetrics as EngineMetrics;

/// Whether the `runtime-metrics` feature is compiled into this build
/// (i.e. whether enabling metrics on an engine can record anything).
pub fn runtime_metrics_active() -> bool {
    cfg!(feature = "runtime-metrics")
}
