//! # peerwindow-workload
//!
//! Synthetic workloads calibrated to the Gnutella measurement study the
//! paper builds on (Saroiu et al. [13]): heavy-tailed session lifetimes
//! (figure 6 of [13]; mean ≈ 135 min), access-bandwidth mixture (figure 3
//! of [13]; 20 % below 1 Mbps), Poisson join arrivals balancing the
//! departure rate, the §5.1 bandwidth-threshold policy, and the §5.3
//! `Lifetime_Rate` scaling knob.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bandwidth;
pub mod churn;
pub mod lifetime;

pub use bandwidth::{BandwidthDist, Bucket};
pub use churn::{ChurnConfig, NodeSpec};
pub use lifetime::LifetimeDist;
