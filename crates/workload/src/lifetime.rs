//! Node lifetime (session duration) distributions.
//!
//! §5.1 requires lifetimes matching the Gnutella measurements of Saroiu et
//! al. ([13], figure 6), whose raw traces are not available. The paper
//! consumes two anchors: the average lifetime ≈ 135 minutes, and a heavy
//! right tail (median well below the mean). A lognormal with median 60 min
//! and mean 135 min reproduces both; `Lifetime_Rate` (§5.3) scales
//! every sample linearly.

use rand::Rng;

/// Seconds in a minute (readability).
const MIN: f64 = 60.0;

/// A lifetime distribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LifetimeDist {
    /// Lognormal calibrated to the Gnutella measurement ([13] fig 6):
    /// median 60 min, mean 135 min.
    Gnutella,
    /// Exponential with the given mean (seconds) — used by ablations.
    Exponential {
        /// Mean lifetime in seconds.
        mean_s: f64,
    },
    /// Deterministic lifetime (tests).
    Fixed {
        /// The constant lifetime in seconds.
        secs: f64,
    },
}

impl LifetimeDist {
    /// Lognormal parameters for [`LifetimeDist::Gnutella`]:
    /// `median = e^mu`, `mean = e^(mu + sigma²/2)`.
    fn gnutella_params() -> (f64, f64) {
        let median = 60.0 * MIN;
        let mean = 135.0 * MIN;
        let mu = median.ln();
        let sigma = (2.0 * (mean / median).ln()).sqrt();
        (mu, sigma)
    }

    /// Mean of the distribution in seconds (before rate scaling).
    pub fn mean_s(&self) -> f64 {
        match self {
            LifetimeDist::Gnutella => 135.0 * MIN,
            LifetimeDist::Exponential { mean_s } => *mean_s,
            LifetimeDist::Fixed { secs } => *secs,
        }
    }

    /// Draws one lifetime in seconds, scaled by `rate` (§5.3's
    /// `Lifetime_Rate`; 1.0 is the common case).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, rate: f64) -> f64 {
        let base = match self {
            LifetimeDist::Gnutella => {
                let (mu, sigma) = Self::gnutella_params();
                let z: f64 = sample_standard_normal(rng);
                (mu + sigma * z).exp()
            }
            LifetimeDist::Exponential { mean_s } => {
                let u: f64 = loop {
                    let u = rng.gen::<f64>();
                    if u > 0.0 {
                        break u;
                    }
                };
                -mean_s * u.ln()
            }
            LifetimeDist::Fixed { secs } => *secs,
        };
        // Floor at 10 s: measurement studies cannot observe sub-probe
        // sessions, and zero-length lifetimes break event ordering.
        (base * rate).max(10.0 * rate.min(1.0))
    }
}

fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Box–Muller.
    let u1: f64 = loop {
        let u = rng.gen::<f64>();
        if u > 0.0 {
            break u;
        }
    };
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn gnutella_mean_is_135_minutes() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 400_000;
        let sum: f64 = (0..n)
            .map(|_| LifetimeDist::Gnutella.sample(&mut rng, 1.0))
            .sum();
        let mean = sum / n as f64 / MIN;
        assert!((mean - 135.0).abs() < 5.0, "mean {mean} min");
    }

    #[test]
    fn gnutella_median_is_60_minutes() {
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 100_001;
        let mut xs: Vec<f64> = (0..n)
            .map(|_| LifetimeDist::Gnutella.sample(&mut rng, 1.0))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[n / 2] / MIN;
        assert!((median - 60.0).abs() < 3.0, "median {median} min");
    }

    #[test]
    fn lifetime_rate_scales_linearly() {
        let mut a = SmallRng::seed_from_u64(3);
        let mut b = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            let x = LifetimeDist::Gnutella.sample(&mut a, 1.0);
            let y = LifetimeDist::Gnutella.sample(&mut b, 0.1);
            assert!((y - x * 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn exponential_and_fixed() {
        let mut rng = SmallRng::seed_from_u64(4);
        let d = LifetimeDist::Exponential { mean_s: 100.0 };
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng, 1.0)).sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 3.0, "mean {mean}");
        assert_eq!(
            LifetimeDist::Fixed { secs: 42.0 }.sample(&mut rng, 2.0),
            84.0
        );
    }

    #[test]
    fn samples_are_floored() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..10_000 {
            assert!(LifetimeDist::Gnutella.sample(&mut rng, 1.0) >= 10.0);
        }
    }
}
