//! Churn generation: who joins when, with what capacity, for how long.
//!
//! §5.1's workload: a 100,000-node system in steady state — joins arrive
//! in a Poisson process whose rate balances the departure rate
//! (`N / mean_lifetime`), every node draws a lifetime and a bandwidth from
//! the Gnutella distributions, the user bandwidth threshold is
//! `max(1 % · bandwidth, 500 bps)`, and each node changes its state once
//! mid-lifetime (`m = 3`: join + leave + one info change).

use crate::bandwidth::BandwidthDist;
use crate::lifetime::LifetimeDist;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Everything the simulator needs to instantiate one node.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeSpec {
    /// Raw 128-bit identifier (uniform — consistent hashing of a key).
    pub id_raw: u128,
    /// Total access bandwidth, bps.
    pub bandwidth_bps: f64,
    /// PeerWindow bandwidth threshold, bps (§5.1 policy).
    pub threshold_bps: f64,
    /// Total session lifetime, seconds.
    pub lifetime_s: f64,
    /// Offset within the lifetime at which the node changes its attached
    /// info (the third state change of `m = 3`).
    pub info_change_at_s: f64,
}

/// Churn workload configuration.
#[derive(Clone, Debug)]
pub struct ChurnConfig {
    /// Target steady-state population.
    pub n: usize,
    /// Lifetime distribution.
    pub lifetime: LifetimeDist,
    /// §5.3 `Lifetime_Rate` multiplier.
    pub lifetime_rate: f64,
    /// Bandwidth distribution.
    pub bandwidth: BandwidthDist,
    /// Threshold as a fraction of total bandwidth (§5.1: 0.01).
    pub threshold_frac: f64,
    /// Threshold floor in bps (§5.1: 500).
    pub threshold_floor_bps: f64,
    /// Master seed.
    pub seed: u64,
}

impl ChurnConfig {
    /// The paper's common configuration at population `n`.
    pub fn paper_common(n: usize, seed: u64) -> Self {
        ChurnConfig {
            n,
            lifetime: LifetimeDist::Gnutella,
            lifetime_rate: 1.0,
            bandwidth: BandwidthDist::gnutella(),
            threshold_frac: 0.01,
            threshold_floor_bps: 500.0,
            seed,
        }
    }

    /// Mean lifetime after rate scaling, seconds.
    pub fn mean_lifetime_s(&self) -> f64 {
        self.lifetime.mean_s() * self.lifetime_rate
    }

    /// Steady-state join (= leave) rate, nodes per second.
    pub fn join_rate_per_s(&self) -> f64 {
        self.n as f64 / self.mean_lifetime_s()
    }

    fn spec<R: Rng + ?Sized>(&self, rng: &mut R, lifetime_s: f64) -> NodeSpec {
        let bandwidth_bps = self.bandwidth.sample(rng);
        let threshold_bps = (self.threshold_frac * bandwidth_bps).max(self.threshold_floor_bps);
        NodeSpec {
            id_raw: ((rng.gen::<u64>() as u128) << 64) | rng.gen::<u64>() as u128,
            bandwidth_bps,
            threshold_bps,
            lifetime_s,
            info_change_at_s: rng.gen::<f64>() * lifetime_s,
        }
    }

    /// The initial steady-state population: `n` nodes whose lifetimes are
    /// **length-biased** (a snapshot observes long-lived nodes more often)
    /// with the observation point uniform inside each lifetime. Returns
    /// `(spec, residual_lifetime_s)` pairs: the node leaves `residual`
    /// seconds after the simulation starts.
    pub fn initial_population(&self) -> Vec<(NodeSpec, f64)> {
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0xA5A5_5A5A_1234_8765);
        let mean = self.mean_lifetime_s();
        // Acceptance–rejection for the length-biased draw, capped at 20×
        // the mean (samples beyond the cap are accepted outright; the
        // slight under-weighting of that extreme tail is negligible).
        let cap = 20.0 * mean;
        let mut out = Vec::with_capacity(self.n);
        while out.len() < self.n {
            let l = self.lifetime.sample(&mut rng, self.lifetime_rate);
            let accept = (l / cap).min(1.0);
            if rng.gen::<f64>() < accept {
                let spec = self.spec(&mut rng, l);
                let residual = rng.gen::<f64>() * l;
                out.push((spec, residual));
            }
        }
        out
    }

    /// Poisson arrivals over `[0, duration_s)`: `(arrival_time_s, spec)`,
    /// time-ordered.
    pub fn arrivals(&self, duration_s: f64) -> Vec<(f64, NodeSpec)> {
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0x0F0F_F0F0_9876_4321);
        let rate = self.join_rate_per_s();
        let mut t = 0.0;
        let mut out = Vec::with_capacity((rate * duration_s * 1.1) as usize + 4);
        loop {
            let u: f64 = loop {
                let u = rng.gen::<f64>();
                if u > 0.0 {
                    break u;
                }
            };
            t += -u.ln() / rate;
            if t >= duration_s {
                break;
            }
            let l = self.lifetime.sample(&mut rng, self.lifetime_rate);
            let spec = self.spec(&mut rng, l);
            out.push((t, spec));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_rate_balances_departures() {
        let c = ChurnConfig::paper_common(100_000, 1);
        // 100000 nodes / 8100 s ≈ 12.35 joins/s.
        assert!((c.join_rate_per_s() - 12.345).abs() < 0.01);
    }

    #[test]
    fn arrivals_have_poisson_rate() {
        let c = ChurnConfig::paper_common(10_000, 2);
        let dur = 2_000.0;
        let arr = arr_count(&c, dur);
        let expect = c.join_rate_per_s() * dur; // ≈ 2469
        assert!(
            (arr as f64 - expect).abs() < 5.0 * expect.sqrt(),
            "got {arr}, expected ≈{expect}"
        );
    }

    fn arr_count(c: &ChurnConfig, dur: f64) -> usize {
        let a = c.arrivals(dur);
        assert!(a.windows(2).all(|w| w[0].0 <= w[1].0), "not time-ordered");
        a.len()
    }

    #[test]
    fn initial_population_is_length_biased() {
        let c = ChurnConfig::paper_common(30_000, 3);
        let pop = c.initial_population();
        assert_eq!(pop.len(), 30_000);
        let mean_observed: f64 =
            pop.iter().map(|(s, _)| s.lifetime_s).sum::<f64>() / pop.len() as f64;
        // Length-biased mean = E[L²]/E[L] > E[L]; for our lognormal
        // (σ² ≈ 1.62) the ratio is e^{σ²} ≈ 5. Just assert it is clearly
        // above the plain mean.
        assert!(
            mean_observed > 1.8 * c.mean_lifetime_s(),
            "observed mean {mean_observed} not length-biased"
        );
        // Residuals lie within the lifetime.
        for (s, r) in &pop {
            assert!(*r >= 0.0 && *r <= s.lifetime_s);
        }
    }

    #[test]
    fn thresholds_follow_paper_policy() {
        let c = ChurnConfig::paper_common(5_000, 4);
        for (s, _) in c.initial_population() {
            let expect = (0.01 * s.bandwidth_bps).max(500.0);
            assert!((s.threshold_bps - expect).abs() < 1e-9);
            assert!(s.threshold_bps >= 500.0);
            assert!(s.info_change_at_s <= s.lifetime_s);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = ChurnConfig::paper_common(1_000, 9).initial_population();
        let b = ChurnConfig::paper_common(1_000, 9).initial_population();
        assert_eq!(a, b);
        let c = ChurnConfig::paper_common(1_000, 10).initial_population();
        assert_ne!(a, c);
    }

    #[test]
    fn lifetime_rate_scales_arrival_rate() {
        let mut c = ChurnConfig::paper_common(10_000, 5);
        let base = c.join_rate_per_s();
        c.lifetime_rate = 0.1;
        assert!((c.join_rate_per_s() - base * 10.0).abs() < 1e-9);
    }
}
