//! Node bandwidth distributions.
//!
//! §5.1 draws node bandwidths from the Gnutella measurements ([13],
//! figure 3). Two anchors from the paper's own reading of that figure
//! drive everything downstream: *"only 20 % of nodes' available bandwidth
//! is less than 1 Mbps"*, and enough mass above ≈3.7 Mbps that more than
//! half the nodes can afford level 0 in the common 100k-node system
//! (figure 5). The piecewise log-uniform mixture below hits both anchors;
//! its buckets correspond to the access technologies of 2002 (modem,
//! DSL/cable, T1, T3/campus).

use rand::Rng;

/// A bandwidth bucket: log-uniform between `lo` and `hi` bps with
/// probability `p`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Bucket {
    /// Lower edge, bps.
    pub lo: f64,
    /// Upper edge, bps.
    pub hi: f64,
    /// Probability mass.
    pub p: f64,
}

/// A piecewise log-uniform bandwidth distribution.
#[derive(Clone, Debug, PartialEq)]
pub struct BandwidthDist {
    buckets: Vec<Bucket>,
}

impl BandwidthDist {
    /// The Gnutella-calibrated default (see module docs):
    ///
    /// | range | mass | technology |
    /// |---|---|---|
    /// | 28.8–128 kbps | 8 % | modem / ISDN |
    /// | 128 kbps–1 Mbps | 12 % | low DSL |
    /// | 1–3.5 Mbps | 25 % | DSL / cable |
    /// | 3.5–10 Mbps | 35 % | high cable / T1+ |
    /// | 10–100 Mbps | 20 % | campus / T3 |
    pub fn gnutella() -> Self {
        BandwidthDist {
            buckets: vec![
                Bucket {
                    lo: 28_800.0,
                    hi: 128_000.0,
                    p: 0.08,
                },
                Bucket {
                    lo: 128_000.0,
                    hi: 1_000_000.0,
                    p: 0.12,
                },
                Bucket {
                    lo: 1_000_000.0,
                    hi: 3_500_000.0,
                    p: 0.25,
                },
                Bucket {
                    lo: 3_500_000.0,
                    hi: 10_000_000.0,
                    p: 0.35,
                },
                Bucket {
                    lo: 10_000_000.0,
                    hi: 100_000_000.0,
                    p: 0.20,
                },
            ],
        }
    }

    /// A degenerate single-bucket distribution (tests, homogeneous
    /// baselines).
    pub fn constant(bps: f64) -> Self {
        BandwidthDist {
            buckets: vec![Bucket {
                lo: bps,
                hi: bps,
                p: 1.0,
            }],
        }
    }

    /// Builds from explicit buckets.
    ///
    /// # Panics
    /// Panics if the masses do not sum to ≈1 or any bucket is malformed.
    pub fn from_buckets(buckets: Vec<Bucket>) -> Self {
        let total: f64 = buckets.iter().map(|b| b.p).sum();
        assert!((total - 1.0).abs() < 1e-9, "bucket masses sum to {total}");
        for b in &buckets {
            assert!(b.lo > 0.0 && b.hi >= b.lo && b.p >= 0.0, "bad bucket {b:?}");
        }
        BandwidthDist { buckets }
    }

    /// The buckets.
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// Draws one node bandwidth in bps.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let mut u: f64 = rng.gen();
        for b in &self.buckets {
            if u < b.p || std::ptr::eq(b, self.buckets.last().unwrap()) {
                if b.hi <= b.lo {
                    return b.lo;
                }
                let v: f64 = rng.gen();
                return (b.lo.ln() + v * (b.hi.ln() - b.lo.ln())).exp();
            }
            u -= b.p;
        }
        unreachable!("masses sum to 1");
    }

    /// Exact CDF at `bps` (for calibration checks and analytic level
    /// predictions).
    pub fn cdf(&self, bps: f64) -> f64 {
        let mut acc = 0.0;
        for b in &self.buckets {
            if bps >= b.hi {
                acc += b.p;
            } else if bps > b.lo {
                let frac = (bps.ln() - b.lo.ln()) / (b.hi.ln() - b.lo.ln());
                acc += b.p * frac;
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn paper_anchor_20_percent_below_1mbps() {
        let d = BandwidthDist::gnutella();
        let c = d.cdf(1_000_000.0);
        assert!((c - 0.20).abs() < 1e-9, "P(<1Mbps) = {c}");
    }

    #[test]
    fn paper_anchor_majority_can_afford_level_0() {
        // Level 0 in the common 100k system needs ≈3.7 Mbps total
        // bandwidth (1 % threshold ≥ 37 kbps maintenance cost).
        let d = BandwidthDist::gnutella();
        let frac_above = 1.0 - d.cdf(3_700_000.0);
        assert!(frac_above > 0.5, "P(≥3.7Mbps) = {frac_above}");
        assert!(frac_above < 0.62, "P(≥3.7Mbps) = {frac_above}");
    }

    #[test]
    fn samples_match_cdf() {
        let d = BandwidthDist::gnutella();
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 200_000;
        for probe in [100_000.0, 1_000_000.0, 3_500_000.0, 10_000_000.0] {
            let below = (0..n).filter(|_| d.sample(&mut rng) < probe).count() as f64 / n as f64;
            let expect = d.cdf(probe);
            assert!(
                (below - expect).abs() < 0.01,
                "cdf({probe}) sampled {below} vs exact {expect}"
            );
        }
    }

    #[test]
    fn samples_stay_in_support() {
        let d = BandwidthDist::gnutella();
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..100_000 {
            let x = d.sample(&mut rng);
            assert!((28_800.0..=100_000_000.0).contains(&x), "sample {x}");
        }
    }

    #[test]
    fn constant_distribution() {
        let d = BandwidthDist::constant(56_000.0);
        let mut rng = SmallRng::seed_from_u64(3);
        assert_eq!(d.sample(&mut rng), 56_000.0);
        assert_eq!(d.cdf(56_000.0), 1.0);
        assert_eq!(d.cdf(55_999.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "bucket masses")]
    fn from_buckets_validates_mass() {
        BandwidthDist::from_buckets(vec![Bucket {
            lo: 1.0,
            hi: 2.0,
            p: 0.5,
        }]);
    }
}
