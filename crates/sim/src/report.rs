//! Run reports: the per-level rows behind every §5 figure.

use peerwindow_metrics::{fmt_f64, Table};
use serde::Serialize;

/// Aggregates for one level (one row of figures 5–8).
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct LevelRow {
    /// Level value (0 = top).
    pub level: u8,
    /// Mean live nodes at this level over the measurement samples.
    pub nodes: f64,
    /// Fraction of the population at this level (figure 5 / 9 / 11).
    pub node_fraction: f64,
    /// Smallest correct peer-list size observed (figure 6).
    pub list_min: f64,
    /// Mean correct peer-list size (figure 6).
    pub list_mean: f64,
    /// Largest correct peer-list size (figure 6).
    pub list_max: f64,
    /// Time-averaged peer-list error rate (figure 7).
    pub error_rate: f64,
    /// Mean per-node input bandwidth for list maintenance, bps (figure 8).
    pub in_bps: f64,
    /// Mean per-node output bandwidth, bps (figure 8).
    pub out_bps: f64,
}

/// The full result of one oracle-mode run.
#[derive(Clone, Debug, Default, Serialize)]
pub struct OracleReport {
    /// Per-level rows, level-ascending.
    pub rows: Vec<LevelRow>,
    /// Live population at the end of the run.
    pub n_final: usize,
    /// State-changing events processed during measurement.
    pub events: u64,
    /// Multicast deliveries during measurement.
    pub deliveries: u64,
    /// Population-wide average error rate (figures 10 / 12).
    pub avg_error_rate: f64,
    /// Mean multicast tree depth over measured events.
    pub mean_tree_depth: f64,
    /// Largest tree depth seen.
    pub max_tree_depth: u32,
    /// Mean end-to-end multicast delay (origin → last delivery), seconds.
    pub mean_multicast_delay_s: f64,
    /// Level shifts performed by the adaptation loop during measurement.
    pub level_shifts: u64,
    /// Datagrams dropped by the network fault layer over the whole run
    /// (0 when no fault model was installed).
    pub dropped: u64,
    /// Datagrams duplicated by the network fault layer.
    pub duplicated: u64,
    /// Measurement window length, seconds.
    pub measure_s: f64,
    /// Shift transition counters (`oracle.shift.{from}->{to}` → count)
    /// over the whole run, name-ascending. Replaces the old
    /// `PW_DEBUG_SHIFTS` stderr dump.
    pub shift_counters: Vec<(String, u64)>,
}

impl OracleReport {
    /// Renders the per-level rows as a table (figures 5–8 in columns).
    pub fn to_table(&self) -> Table {
        let mut t = Table::new([
            "level",
            "nodes",
            "fraction",
            "list_min",
            "list_mean",
            "list_max",
            "error_rate",
            "in_bps",
            "out_bps",
        ]);
        for r in &self.rows {
            t.row([
                r.level.to_string(),
                fmt_f64(r.nodes),
                fmt_f64(r.node_fraction),
                fmt_f64(r.list_min),
                fmt_f64(r.list_mean),
                fmt_f64(r.list_max),
                fmt_f64(r.error_rate),
                fmt_f64(r.in_bps),
                fmt_f64(r.out_bps),
            ]);
        }
        t
    }

    /// The row for `level`, if present.
    pub fn level(&self, level: u8) -> Option<&LevelRow> {
        self.rows.iter().find(|r| r.level == level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_one_row_per_level() {
        let rep = OracleReport {
            rows: vec![
                LevelRow {
                    level: 0,
                    nodes: 10.0,
                    node_fraction: 0.5,
                    ..Default::default()
                },
                LevelRow {
                    level: 2,
                    nodes: 10.0,
                    node_fraction: 0.5,
                    ..Default::default()
                },
            ],
            ..Default::default()
        };
        let t = rep.to_table();
        assert_eq!(t.len(), 2);
        assert!(rep.level(2).is_some());
        assert!(rep.level(1).is_none());
    }
}
