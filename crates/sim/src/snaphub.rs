//! Snapshot publication hub shared by the simulation harnesses.
//!
//! Both [`crate::FullSim`] and [`crate::ParallelFullSim`] can mirror each
//! machine's peer list into a lock-free
//! [`peerwindow_core::snapshot::Published`] cell after every handled
//! event. The hub owns one [`SnapshotPublisher`] per slot/actor, all
//! registered in a single [`SnapshotDirectory`] so observers (query
//! engines, tests) resolve readers by actor id without touching the
//! simulation.
//!
//! Publication is **pure observation**: generation gating means a publish
//! only happens when a machine's peer list actually changed, and nothing
//! in the machine or the event order is affected — the simulation
//! fingerprint is byte-identical with snapshots on or off (asserted by
//! the `query_consistency` workspace tests at 1 and 4 shards).

use std::sync::Arc;

use peerwindow_core::prelude::*;

/// One publisher per slot, all under one directory.
///
/// Publishers live in a slot-indexed vector, not a map: `publish` runs
/// once per handled event on the engine hot path, and the common
/// nothing-changed case must cost an index plus one integer compare —
/// a map lookup per event is measurable at millions of events/second.
pub(crate) struct SnapshotHub {
    dir: Arc<SnapshotDirectory>,
    publishers: Vec<Option<SnapshotPublisher>>,
    /// Total snapshots actually published (generation-gated).
    published: u64,
}

impl SnapshotHub {
    /// A hub with a fresh directory.
    pub fn new() -> Self {
        Self::with_directory(Arc::new(SnapshotDirectory::new()))
    }

    /// A hub publishing into an existing directory — the parallel sim
    /// gives every shard its own hub but one shared directory.
    pub fn with_directory(dir: Arc<SnapshotDirectory>) -> Self {
        SnapshotHub {
            dir,
            publishers: Vec::new(),
            published: 0,
        }
    }

    /// The shared directory handle.
    pub fn directory(&self) -> Arc<SnapshotDirectory> {
        Arc::clone(&self.dir)
    }

    /// Publishes `slot`'s current peer list if its generation moved since
    /// the last publish. Registers the slot on first sight.
    pub fn publish(&mut self, slot: u32, m: &NodeMachine, now_us: u64) -> bool {
        let i = slot as usize;
        if i >= self.publishers.len() {
            self.publishers.resize_with(i + 1, || None);
        }
        let p = self.publishers[i].get_or_insert_with(|| self.dir.register(slot));
        let did = p.maybe_publish(m, now_us);
        if did {
            self.published += 1;
        }
        did
    }

    /// A reader for `slot`'s cell, if that slot ever published.
    pub fn reader(&self, slot: u32) -> Option<SnapshotReader> {
        self.dir.reader(slot)
    }

    /// Snapshots published through this hub so far.
    pub fn published(&self) -> u64 {
        self.published
    }
}
