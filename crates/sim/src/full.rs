//! Full-fidelity simulation: every node runs the real sans-IO
//! [`NodeMachine`] over the discrete-event engine.
//!
//! This is the ground-truth validation substrate for oracle mode (and the
//! embedding example for real deployments): joins execute the actual §4.3
//! four-step process, failures are detected by actual probe timeouts, and
//! multicast flows hop by hop with acknowledgements and redirection.
//! Memory is O(Σ peer-list sizes), so use it for populations up to a few
//! thousand; the oracle mode covers the 100,000-node experiments.
//!
//! Events sit on the sequential engine's hierarchical timing wheel
//! (`peerwindow_des::EventWheel`), so scheduling cost is O(1) amortised
//! regardless of how many timers and deliveries are in flight. For
//! multi-core runs of the same protocol, see [`crate::parallel_full`],
//! which shards this world across a `ParallelEngine` with a pluggable
//! `ShardMap`.

use bytes::Bytes;
use peerwindow_core::prelude::*;
use peerwindow_des::{DetRng, Engine, Scheduler, SimTime, Simulation};
use peerwindow_faults::{FaultCounters, FaultModel, FaultPlan, LinkConditioner, Verdict};
use peerwindow_topology::NetworkModel;
use peerwindow_workload::NodeSpec;
// BTreeMap, not HashMap: `spawn_joiner` picks a bootstrap by *iterating*
// this map, so its order must be a pure function of the membership or two
// identically-seeded runs bootstrap off different nodes and diverge.
use std::collections::BTreeMap;

/// Events of the full-fidelity world.
enum FEv {
    /// Network delivery of a message to the node in `to_slot`.
    Deliver {
        to_slot: u32,
        from: NodeId,
        from_addr: Addr,
        msg: Message,
    },
    /// A node-machine timer fires.
    Timer { slot: u32, timer: Timer },
    /// Silent departure (crash) — the slot just stops responding.
    Crash { slot: u32 },
    /// Graceful departure.
    Graceful { slot: u32 },
    /// Application info change.
    SetInfo { slot: u32, info: Bytes },
    /// Application budget change (autonomy: the user retunes it).
    SetThreshold { slot: u32, bps: f64 },
    /// Explicit level pin.
    SetLevel { slot: u32, level: Level },
}

/// Notable things that happened (for tests and reports).
#[derive(Clone, Debug, Default)]
pub struct FullLog {
    /// Slots that completed joining.
    pub joined: Vec<u32>,
    /// `(detector slot, dead id)` failure detections.
    pub failures: Vec<(u32, NodeId)>,
    /// Fatal errors `(slot, reason)`.
    pub fatals: Vec<(u32, &'static str)>,
    /// Level shifts `(slot, from, to)`.
    pub shifts: Vec<(u32, Level, Level)>,
    /// Local invariant violations `(slot, description)` — only populated
    /// when the `invariants` feature is on (every machine is checked
    /// after every handled event).
    pub invariant_violations: Vec<(u32, String)>,
}

struct FullWorld {
    protocol: ProtocolConfig,
    net: Box<dyn NetworkModel>,
    machines: Vec<Option<NodeMachine>>,
    /// Ground truth: id → slot for *live* nodes (crashed nodes removed at
    /// crash time; gracefully-left at shutdown time).
    live: BTreeMap<NodeId, u32>,
    log: FullLog,
    rng: DetRng,
    /// Harness seed, kept so the `set_loss` shim can derive a plan seed.
    seed: u64,
    /// Network fault model ("Internet asynchrony", §4.6, generalised to
    /// burst loss / jitter / duplication / partitions). `None` means a
    /// perfectly reliable network with zero per-datagram overhead. Every
    /// datagram is judged at *send* time — the same point the parallel
    /// engine judges, which is what keeps the two engines
    /// fingerprint-compatible under one [`FaultPlan`]. Stored concretely
    /// (not `Box<dyn FaultModel>`) so the reliable fast path inlines into
    /// the send loop; the trait remains the documented engine-facing
    /// contract, exercised through [`FaultModel::judge`] below.
    faults: Option<LinkConditioner>,
    /// Lock-free snapshot publication (the serving layer): when enabled,
    /// every machine's peer list is mirrored into a `Published` cell
    /// after every handled event. Pure observation — generation-gated,
    /// never touches the machines, fingerprint-invariant.
    snapshots: Option<crate::snaphub::SnapshotHub>,
    /// Per-slot counter for harness-emitted fault records' `seq` field
    /// (kept in a reserved high-bit space; see `trace_fault`).
    #[cfg(feature = "trace")]
    fault_seq: Vec<u64>,
    /// Whether structured tracing is on (applied to existing machines and
    /// inherited by later spawns).
    #[cfg(feature = "trace")]
    tracing: bool,
    /// Collected trace records (drained from machines after every event).
    #[cfg(feature = "trace")]
    trace_log: Vec<peerwindow_trace::TraceRecord>,
    /// Message counters by class, updated as records drain; gauges are
    /// refreshed by [`FullSim::sample_metrics`].
    #[cfg(feature = "trace")]
    registry: peerwindow_trace::CounterRegistry,
}

impl FullWorld {
    /// Drains one machine's trace buffer into the world log, folding the
    /// message records into the counter registry as they pass.
    #[cfg(feature = "trace")]
    fn drain_trace(&mut self, slot: u32) {
        if !self.tracing {
            return;
        }
        let Some(m) = self
            .machines
            .get_mut(slot as usize)
            .and_then(Option::as_mut)
        else {
            return;
        };
        let start = self.trace_log.len();
        m.take_trace(&mut self.trace_log);
        for r in &self.trace_log[start..] {
            if let peerwindow_trace::TraceEventKind::MsgSend { class, bits, .. } = r.kind {
                self.registry.add(&format!("msgs.{}", class.name()), 1);
                self.registry.add(&format!("bits.{}", class.name()), bits);
            }
        }
    }

    /// Records what the fault layer did to one datagram `from → to`.
    /// Harness records use the sender as `node` and a `seq` with the high
    /// bit set: machine seqs are emission counters (nowhere near 2^63),
    /// so the `(at_us, node, seq)` canonical key stays collision-free
    /// without the machine knowing the harness exists.
    #[cfg(feature = "trace")]
    fn trace_fault(
        &mut self,
        now_us: u64,
        slot: u32,
        from: NodeId,
        level: u8,
        to: NodeId,
        fault: peerwindow_trace::FaultClass,
    ) {
        if !self.tracing {
            return;
        }
        if self.fault_seq.len() <= slot as usize {
            self.fault_seq.resize(slot as usize + 1, 0);
        }
        let seq = (1 << 63) | self.fault_seq[slot as usize];
        self.fault_seq[slot as usize] += 1;
        self.trace_log.push(peerwindow_trace::TraceRecord {
            at_us: now_us,
            node: from.raw(),
            seq,
            level,
            cause: peerwindow_trace::CauseId::NONE,
            kind: peerwindow_trace::TraceEventKind::NetFault {
                to: to.raw(),
                fault,
            },
        });
    }

    /// Applies the fault model to one outgoing datagram: the delivery
    /// delays to schedule (empty = dropped, two = duplicated), each
    /// already including base latency and jitter.
    #[allow(clippy::too_many_arguments)] // sender identity is four scalars (slot/id/level/addr); bundling them would be pure ceremony
    fn judge_send(
        &mut self,
        now_us: u64,
        #[allow(unused_variables)] slot: u32,
        #[allow(unused_variables)] from: NodeId,
        #[allow(unused_variables)] level: u8,
        from_addr: Addr,
        to: &Target,
        delay_us: u64,
    ) -> [Option<u64>; 2] {
        let latency = self.net.latency_us(from_addr.0 as u32, to.addr.0 as u32);
        let base = delay_us + latency;
        let mut deliveries = [Some(base), None];
        if let Some(f) = self.faults.as_mut() {
            match f.judge(now_us, from_addr.0 as u32, to.addr.0 as u32) {
                Verdict::Deliver { extra_delay_us } => {
                    deliveries[0] = Some(base + extra_delay_us);
                }
                Verdict::Drop => {
                    deliveries[0] = None;
                    #[cfg(feature = "trace")]
                    self.trace_fault(
                        now_us,
                        slot,
                        from,
                        level,
                        to.id,
                        peerwindow_trace::FaultClass::Dropped,
                    );
                }
                Verdict::Duplicate {
                    extra_delay_us,
                    dup_extra_delay_us,
                } => {
                    deliveries = [Some(base + extra_delay_us), Some(base + dup_extra_delay_us)];
                    #[cfg(feature = "trace")]
                    self.trace_fault(
                        now_us,
                        slot,
                        from,
                        level,
                        to.id,
                        peerwindow_trace::FaultClass::Duplicated,
                    );
                }
            }
        }
        deliveries
    }

    fn process_outputs(
        &mut self,
        now: SimTime,
        slot: u32,
        outs: Vec<Output>,
        sched: &mut Scheduler<'_, FEv>,
    ) {
        // Drain before anything can take the machine out of its slot
        // (fatal, leave-reap below): the records of its last handled
        // event must survive it.
        #[cfg(feature = "trace")]
        self.drain_trace(slot);
        let Some(machine) = self.machines[slot as usize].as_ref() else {
            return;
        };
        // `process_outputs` runs directly after every `m.handle(..)`, so
        // checking here covers each machine after each event it absorbs.
        #[cfg(feature = "invariants")]
        if let Err(v) = machine.check_invariants() {
            self.log.invariant_violations.push((slot, v.to_string()));
        }
        let from = machine.id();
        let from_addr = machine.addr();
        let from_level = machine.level().value();
        for o in outs {
            match o {
                Output::Send { to, msg, delay_us } => {
                    let [first, dup] = self.judge_send(
                        now.as_micros(),
                        slot,
                        from,
                        from_level,
                        from_addr,
                        &to,
                        delay_us,
                    );
                    let to_slot = to.addr.0 as u32;
                    if let Some(d) = dup {
                        sched.schedule(
                            d,
                            FEv::Deliver {
                                to_slot,
                                from,
                                from_addr,
                                msg: msg.clone(),
                            },
                        );
                    }
                    if let Some(d) = first {
                        sched.schedule(
                            d,
                            FEv::Deliver {
                                to_slot,
                                from,
                                from_addr,
                                msg,
                            },
                        );
                    }
                }
                Output::SetTimer { delay_us, timer } => {
                    sched.schedule(delay_us, FEv::Timer { slot, timer });
                }
                Output::Joined => self.log.joined.push(slot),
                Output::FailureDetected { dead } => self.log.failures.push((slot, dead)),
                Output::LevelShifted { from, to } => self.log.shifts.push((slot, from, to)),
                Output::Fatal(reason) => {
                    self.log.fatals.push((slot, reason));
                    if let Some(m) = self.machines[slot as usize].take() {
                        self.live.remove(&m.id());
                    }
                }
            }
        }
        // A graceful leaver stays in its slot while it drains its
        // departure announcement (see `FEv::Graceful`); once the machine
        // reports Left the drain is over and the slot is reaped, so
        // `machines()` never yields a departed node's stale state.
        if self.machines[slot as usize]
            .as_ref()
            .is_some_and(NodeMachine::has_left)
        {
            self.machines[slot as usize] = None;
        }
        // Serving layer: mirror the (possibly changed) peer list into the
        // slot's published cell. Runs after the reap so a departed node
        // never publishes again — readers keep its last live epoch.
        if let (Some(hub), Some(m)) = (
            self.snapshots.as_mut(),
            self.machines[slot as usize].as_ref(),
        ) {
            hub.publish(slot, m, now.as_micros());
        }
    }
}

impl Simulation for FullWorld {
    type Event = FEv;
    fn handle(&mut self, now: SimTime, event: FEv, sched: &mut Scheduler<'_, FEv>) {
        match event {
            FEv::Deliver {
                to_slot,
                from,
                from_addr,
                msg,
            } => {
                // Loss/duplication/jitter were already decided at send
                // time (see `judge_send`); a delivery event is a datagram
                // that made it.
                let Some(m) = self
                    .machines
                    .get_mut(to_slot as usize)
                    .and_then(Option::as_mut)
                else {
                    return; // crashed or never existed: silent drop
                };
                let outs = m.handle(
                    now.as_micros(),
                    Input::Message {
                        from,
                        from_addr,
                        msg,
                    },
                );
                self.process_outputs(now, to_slot, outs, sched);
            }
            FEv::Timer { slot, timer } => {
                let Some(m) = self
                    .machines
                    .get_mut(slot as usize)
                    .and_then(Option::as_mut)
                else {
                    return;
                };
                let outs = m.handle(now.as_micros(), Input::Timer(timer));
                self.process_outputs(now, slot, outs, sched);
            }
            FEv::Crash { slot } => {
                if let Some(m) = self.machines[slot as usize].take() {
                    self.live.remove(&m.id());
                }
            }
            FEv::Graceful { slot } => {
                // The machine stays in its slot: it drains its departure
                // announcement (retries, redirects) and silences itself.
                // Taking it out here would abandon the Leave multicast's
                // RPC state mid-flight. It leaves `live` at once, though —
                // it has announced departure, so ground truth no longer
                // counts it.
                if let Some(m) = self
                    .machines
                    .get_mut(slot as usize)
                    .and_then(Option::as_mut)
                {
                    let id = m.id();
                    let outs = m.handle(now.as_micros(), Input::Command(Command::Shutdown));
                    self.live.remove(&id);
                    self.process_outputs(now, slot, outs, sched);
                }
            }
            FEv::SetInfo { slot, info } => {
                if let Some(m) = self
                    .machines
                    .get_mut(slot as usize)
                    .and_then(Option::as_mut)
                {
                    let outs = m.handle(now.as_micros(), Input::Command(Command::ChangeInfo(info)));
                    self.process_outputs(now, slot, outs, sched);
                }
            }
            FEv::SetThreshold { slot, bps } => {
                if let Some(m) = self
                    .machines
                    .get_mut(slot as usize)
                    .and_then(Option::as_mut)
                {
                    let outs =
                        m.handle(now.as_micros(), Input::Command(Command::SetThreshold(bps)));
                    self.process_outputs(now, slot, outs, sched);
                }
            }
            FEv::SetLevel { slot, level } => {
                if let Some(m) = self
                    .machines
                    .get_mut(slot as usize)
                    .and_then(Option::as_mut)
                {
                    let outs = m.handle(now.as_micros(), Input::Command(Command::SetLevel(level)));
                    self.process_outputs(now, slot, outs, sched);
                }
            }
        }
    }
}

/// A full-fidelity simulation harness.
pub struct FullSim {
    engine: Engine<FullWorld>,
}

impl FullSim {
    /// Creates an empty world.
    pub fn new(protocol: ProtocolConfig, net: Box<dyn NetworkModel>, seed: u64) -> Self {
        FullSim {
            engine: Engine::new(FullWorld {
                protocol,
                net,
                machines: Vec::new(),
                live: BTreeMap::new(),
                log: FullLog::default(),
                rng: DetRng::for_stream(seed, 0xF00D),
                seed,
                faults: None,
                snapshots: None,
                #[cfg(feature = "trace")]
                fault_seq: Vec::new(),
                #[cfg(feature = "trace")]
                tracing: false,
                #[cfg(feature = "trace")]
                trace_log: Vec::new(),
                #[cfg(feature = "trace")]
                registry: peerwindow_trace::CounterRegistry::new(),
            }),
        }
    }

    /// Re-pins the engine queue's representation policy (heap, wheel, or
    /// adaptive — see [`peerwindow_des::SchedKind`]). Determinism is
    /// unaffected; this is a performance knob for known workload shapes
    /// (a protocol run with every node holding resident probe timers is
    /// the wheel's case; the adaptive default finds it on its own).
    pub fn set_sched_kind(&mut self, kind: peerwindow_des::SchedKind) {
        self.engine.set_sched_kind(kind);
    }

    /// Turns structured tracing on for every current and future machine.
    /// Records emitted by a joiner's *constructor* (its initial FindTop)
    /// predate the machine entering the world and are not captured.
    #[cfg(feature = "trace")]
    pub fn enable_tracing(&mut self, on: bool) {
        let world = self.engine.sim_mut();
        world.tracing = on;
        for m in world.machines.iter_mut().flatten() {
            m.set_tracing(on);
        }
    }

    /// Turns lock-free snapshot publication on for every current and
    /// future machine (the serving layer): each machine's peer list is
    /// mirrored into a per-slot [`Published`] cell after every handled
    /// event, generation-gated so unchanged lists cost one integer
    /// compare. Returns the directory observers resolve readers from.
    ///
    /// Publication is pure observation — the simulation outcome
    /// (fingerprints included) is identical with snapshots on or off.
    pub fn enable_snapshots(&mut self) -> std::sync::Arc<SnapshotDirectory> {
        let now_us = self.engine.now().as_micros();
        let world = self.engine.sim_mut();
        let hub = world
            .snapshots
            .get_or_insert_with(crate::snaphub::SnapshotHub::new);
        for (slot, m) in world.machines.iter().enumerate() {
            if let Some(m) = m.as_ref() {
                hub.publish(slot as u32, m, now_us);
            }
        }
        hub.directory()
    }

    /// A lock-free reader over `slot`'s published peer-list snapshots.
    /// `None` until [`FullSim::enable_snapshots`] has run and the slot
    /// has published at least once.
    pub fn snapshot_reader(&self, slot: u32) -> Option<SnapshotReader> {
        self.engine.sim().snapshots.as_ref()?.reader(slot)
    }

    /// Total snapshots published so far (0 when publication is off).
    pub fn snapshots_published(&self) -> u64 {
        self.engine
            .sim()
            .snapshots
            .as_ref()
            .map_or(0, crate::snaphub::SnapshotHub::published)
    }

    /// Flushes every machine's buffer and returns the collected records
    /// in canonical `(at_us, node, seq)` order, clearing the world log.
    #[cfg(feature = "trace")]
    pub fn take_trace(&mut self) -> Vec<peerwindow_trace::TraceRecord> {
        let world = self.engine.sim_mut();
        for slot in 0..world.machines.len() as u32 {
            world.drain_trace(slot);
        }
        let mut log = std::mem::take(&mut world.trace_log);
        peerwindow_trace::canonical_sort(&mut log);
        log
    }

    /// Refreshes the gauge side of the registry (live nodes, mean
    /// peer-list size, RPC retries, engine depth) and returns it for
    /// sampling into a [`peerwindow_trace::SampleSeries`].
    #[cfg(feature = "trace")]
    pub fn sample_metrics(&mut self) -> &peerwindow_trace::CounterRegistry {
        let processed = self.engine.stats().processed;
        let pending = self.engine.pending() as f64;
        let world = self.engine.sim_mut();
        for slot in 0..world.machines.len() as u32 {
            world.drain_trace(slot);
        }
        let (count, peer_sum, retries) = world
            .machines
            .iter()
            .flatten()
            .filter(|m| m.is_active())
            .fold((0u64, 0u64, 0u64), |(c, p, r), m| {
                (c + 1, p + m.peers().len() as u64, r + m.stats().rpc_retries)
            });
        world
            .registry
            .set_gauge("nodes.live", world.live.len() as f64);
        world.registry.set_gauge(
            "peers.mean",
            if count > 0 {
                peer_sum as f64 / count as f64
            } else {
                0.0
            },
        );
        world.registry.set("rpc.retries", retries);
        world.registry.set("engine.processed", processed);
        world.registry.set_gauge("engine.pending", pending);
        if let Some(f) = world.faults.as_ref() {
            let c = f.counters();
            world.registry.set("faults.judged", c.judged);
            world.registry.set("faults.dropped", c.dropped);
            world.registry.set("faults.duplicated", c.duplicated);
            world.registry.set("faults.jittered", c.jittered);
        }
        &self.engine.sim().registry
    }

    /// Sets a uniform per-datagram loss probability (0.0 = reliable
    /// network). Back-compat shim: installs the degenerate uniform-loss
    /// [`FaultPlan`], replacing any installed fault model (and resetting
    /// its counters).
    pub fn set_loss(&mut self, loss: f64) {
        let loss = loss.clamp(0.0, 1.0);
        if loss <= 0.0 {
            self.engine.sim_mut().faults = None;
        } else {
            let seed = self.engine.sim().seed ^ 0xFA_0175;
            self.set_fault_plan(FaultPlan::uniform_loss(seed, loss));
        }
    }

    /// Installs a network fault plan (replacing any previous model,
    /// counters included). Install before running the scenario: the
    /// per-link random streams start fresh.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.engine.sim_mut().faults = Some(LinkConditioner::new(plan));
    }

    /// Removes the fault model entirely (reliable network, zero
    /// per-datagram overhead).
    pub fn clear_faults(&mut self) {
        self.engine.sim_mut().faults = None;
    }

    /// Fault-layer totals (zeros when no model is installed).
    pub fn fault_counters(&self) -> FaultCounters {
        self.engine
            .sim()
            .faults
            .as_ref()
            .map(|f| f.counters())
            .unwrap_or_default()
    }

    /// Datagrams dropped by the fault layer so far.
    pub fn dropped(&self) -> u64 {
        self.fault_counters().dropped
    }

    /// Events processed by the underlying engine.
    pub fn processed(&self) -> u64 {
        self.engine.stats().processed
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// The event log.
    pub fn log(&self) -> &FullLog {
        &self.engine.sim().log
    }

    /// Spawns the genesis node (already active at level 0). Returns its
    /// slot.
    pub fn spawn_seed(&mut self, id: NodeId, threshold_bps: f64, info: Bytes) -> u32 {
        let world = self.engine.sim_mut();
        let slot = world.machines.len() as u32;
        let seed = world.rng.next_u64();
        let (m, outs) = NodeMachine::new_seed(
            world.protocol.clone(),
            id,
            Addr(slot as u64),
            info,
            threshold_bps,
            seed,
        );
        world.live.insert(id, slot);
        world.machines.push(Some(m));
        #[cfg(feature = "trace")]
        if world.tracing {
            if let Some(m) = world.machines[slot as usize].as_mut() {
                m.set_tracing(true);
            }
        }
        self.drain_initial(slot, outs);
        slot
    }

    /// Spawns a joining node bootstrapping off a random live node.
    /// Returns its slot, or `None` if nobody is alive to bootstrap from.
    pub fn spawn_joiner(&mut self, id: NodeId, threshold_bps: f64, info: Bytes) -> Option<u32> {
        let world = self.engine.sim_mut();
        let n = world.live.len();
        if n == 0 {
            return None;
        }
        let pick = world.rng.below(n as u64) as usize;
        let boot_slot = *world.live.values().nth(pick)?;
        let boot = world.machines[boot_slot as usize].as_ref()?.as_target();
        let slot = world.machines.len() as u32;
        let seed = world.rng.next_u64();
        let (m, outs) = NodeMachine::new_joining(
            world.protocol.clone(),
            id,
            Addr(slot as u64),
            info,
            threshold_bps,
            boot,
            seed,
        );
        world.live.insert(id, slot);
        world.machines.push(Some(m));
        #[cfg(feature = "trace")]
        if world.tracing {
            if let Some(m) = world.machines[slot as usize].as_mut() {
                m.set_tracing(true);
            }
        }
        self.drain_initial(slot, outs);
        Some(slot)
    }

    fn drain_initial(&mut self, slot: u32, outs: Vec<Output>) {
        // Two phases: read the world to translate outputs, then schedule.
        let now_us = self.engine.now().as_micros();
        let mut items: Vec<(u64, FEv)> = Vec::new();
        {
            let world = self.engine.sim_mut();
            let (from, from_addr, from_level) = match world.machines[slot as usize].as_ref() {
                Some(m) => (m.id(), m.addr(), m.level().value()),
                None => return,
            };
            for o in outs {
                match o {
                    Output::Send { to, msg, delay_us } => {
                        let deliveries = world
                            .judge_send(now_us, slot, from, from_level, from_addr, &to, delay_us);
                        for d in deliveries.into_iter().flatten() {
                            items.push((
                                d,
                                FEv::Deliver {
                                    to_slot: to.addr.0 as u32,
                                    from,
                                    from_addr,
                                    msg: msg.clone(),
                                },
                            ));
                        }
                    }
                    Output::SetTimer { delay_us, timer } => {
                        items.push((delay_us, FEv::Timer { slot, timer }));
                    }
                    Output::Joined => world.log.joined.push(slot),
                    Output::FailureDetected { dead } => world.log.failures.push((slot, dead)),
                    Output::LevelShifted { from, to } => world.log.shifts.push((slot, from, to)),
                    Output::Fatal(reason) => world.log.fatals.push((slot, reason)),
                }
            }
            // A freshly spawned machine gets an epoch-0 snapshot at once
            // so readers resolved right after the spawn see its state.
            if let (Some(hub), Some(m)) = (
                world.snapshots.as_mut(),
                world.machines[slot as usize].as_ref(),
            ) {
                hub.publish(slot, m, now_us);
            }
        }
        for (delay, ev) in items {
            self.engine.schedule(delay, ev);
        }
    }

    /// Schedules a silent crash of `slot` after `delay_us`.
    pub fn crash_after(&mut self, slot: u32, delay_us: u64) {
        self.engine.schedule(delay_us, FEv::Crash { slot });
    }

    /// Schedules a graceful departure of `slot` after `delay_us`.
    pub fn leave_after(&mut self, slot: u32, delay_us: u64) {
        self.engine.schedule(delay_us, FEv::Graceful { slot });
    }

    /// Schedules an info change on `slot` after `delay_us`.
    pub fn set_info_after(&mut self, slot: u32, delay_us: u64, info: Bytes) {
        self.engine.schedule(delay_us, FEv::SetInfo { slot, info });
    }

    /// Schedules a bandwidth-threshold change on `slot` after `delay_us`
    /// (the §2 autonomy knob).
    pub fn set_threshold_after(&mut self, slot: u32, delay_us: u64, bps: f64) {
        self.engine
            .schedule(delay_us, FEv::SetThreshold { slot, bps });
    }

    /// Schedules an explicit level pin on `slot` after `delay_us`.
    pub fn set_level_after(&mut self, slot: u32, delay_us: u64, level: Level) {
        self.engine
            .schedule(delay_us, FEv::SetLevel { slot, level });
    }

    /// Spawns one node per [`NodeSpec`], seeds first, then runs churn:
    /// each node crashes (silently) at the end of its lifetime.
    pub fn populate(&mut self, specs: &[NodeSpec]) -> Vec<u32> {
        let mut slots = Vec::with_capacity(specs.len());
        for (i, s) in specs.iter().enumerate() {
            let id = NodeId(s.id_raw);
            let slot = if i == 0 {
                self.spawn_seed(id, s.threshold_bps, Bytes::new())
            } else {
                match self.spawn_joiner(id, s.threshold_bps, Bytes::new()) {
                    Some(sl) => sl,
                    None => continue,
                }
            };
            slots.push(slot);
        }
        slots
    }

    /// Advances simulated time.
    pub fn run_until(&mut self, t: SimTime) {
        self.engine.run_until(t);
    }

    /// Runs until the event queue drains (careful: periodic timers never
    /// drain; prefer [`FullSim::run_until`]).
    pub fn run_for(&mut self, delta_us: u64) {
        let t = self.engine.now() + delta_us;
        self.engine.run_until(t);
    }

    /// Live node count.
    pub fn live_count(&self) -> usize {
        self.engine.sim().live.len()
    }

    /// Read access to a machine.
    pub fn machine(&self, slot: u32) -> Option<&NodeMachine> {
        self.engine.sim().machines.get(slot as usize)?.as_ref()
    }

    /// Runs the full invariant suite right now: local checks on every
    /// live machine plus the cross-node quiescent checks. Call at a
    /// settled point — mid-multicast the system checks legitimately fail.
    #[cfg(feature = "invariants")]
    pub fn check_invariants(&self) -> Result<(), peerwindow_core::invariants::InvariantViolation> {
        for (_, m) in self.machines() {
            m.check_invariants()?;
        }
        peerwindow_core::invariants::check_system(self.machines().map(|(_, m)| m))
    }

    /// Iterates `(slot, machine)` over live machines.
    pub fn machines(&self) -> impl Iterator<Item = (u32, &NodeMachine)> + '_ {
        self.engine
            .sim()
            .machines
            .iter()
            .enumerate()
            .filter_map(|(i, m)| m.as_ref().map(|m| (i as u32, m)))
    }

    /// Ground-truth live identities (id, level) from the machines
    /// themselves.
    pub fn ground_truth(&self) -> Vec<NodeIdentity> {
        self.machines()
            .filter(|(_, m)| m.is_active())
            .map(|(_, m)| NodeIdentity::new(m.id(), m.level()))
            .collect()
    }

    /// A per-level summary in the same shape as the oracle's report rows
    /// (node counts, list sizes, mean traffic), computed from the live
    /// machines — used to cross-validate the two fidelities.
    pub fn report(&self, elapsed_s: f64) -> crate::report::OracleReport {
        use peerwindow_metrics::StreamingStat;
        let mut by_level: std::collections::BTreeMap<u8, (u64, StreamingStat, f64, f64)> =
            Default::default();
        let mut n = 0u64;
        for (_, m) in self.machines().filter(|(_, m)| m.is_active()) {
            n += 1;
            let e = by_level
                .entry(m.level().value())
                .or_insert_with(|| (0, StreamingStat::new(), 0.0, 0.0));
            e.0 += 1;
            e.1.push(m.peers().len() as f64);
            e.2 += m.stats().rx_bits as f64;
            e.3 += m.stats().tx_bits as f64;
        }
        let rows = by_level
            .into_iter()
            .map(|(level, (count, sizes, rx, tx))| crate::report::LevelRow {
                level,
                nodes: count as f64,
                node_fraction: count as f64 / n.max(1) as f64,
                list_min: sizes.min(),
                list_mean: sizes.mean(),
                list_max: sizes.max(),
                error_rate: 0.0, // measured via accuracy(), not time-weighted
                in_bps: rx / count as f64 / elapsed_s.max(1e-9),
                out_bps: tx / count as f64 / elapsed_s.max(1e-9),
            })
            .collect();
        let c = self.fault_counters();
        crate::report::OracleReport {
            rows,
            n_final: n as usize,
            measure_s: elapsed_s,
            dropped: c.dropped,
            duplicated: c.duplicated,
            ..Default::default()
        }
    }

    /// Partition-aware settle check (§4.4): audits every active
    /// machine's peer list against the part structure of the current
    /// ground truth. After a network partition heals, a recovered system
    /// returns to `parts == 1` with [`PartAudit::is_settled`].
    pub fn part_audit(&self) -> PartAudit {
        let views: Vec<(NodeIdentity, Vec<NodeId>)> = self
            .machines()
            .filter(|(_, m)| m.is_active())
            .map(|(_, m)| {
                (
                    NodeIdentity::new(m.id(), m.level()),
                    m.peers().iter().map(|p| p.id).collect(),
                )
            })
            .collect();
        audit_parts(&views)
    }

    /// Order-sensitive digest of the complete simulation state: every
    /// slot's machine identity, level, activity, traffic counters, peer
    /// list (ids, levels, refresh stamps, in id order) and top list, plus
    /// the log lengths and the engine clock. Two runs of the same seeded
    /// scenario must produce bit-identical fingerprints — the determinism
    /// regression tests assert exactly that.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over a canonical serialisation of the state.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        mix(self.engine.now().as_micros());
        let world = self.engine.sim();
        for (slot, m) in world.machines.iter().enumerate() {
            mix(slot as u64);
            let Some(m) = m else {
                mix(u64::MAX);
                continue;
            };
            mix(m.id().raw() as u64);
            mix((m.id().raw() >> 64) as u64);
            mix(m.level().value() as u64);
            mix(m.is_active() as u64);
            let s = m.stats();
            mix(s.rx_msgs);
            mix(s.tx_msgs);
            mix(s.events_applied);
            mix(s.events_duped);
            for p in m.peers().iter() {
                mix(p.id.raw() as u64);
                mix((p.id.raw() >> 64) as u64);
                mix(p.level.value() as u64);
                mix(p.last_refresh_us);
            }
            for t in m.tops().entries() {
                mix(t.id.raw() as u64);
                mix(t.level.value() as u64);
            }
        }
        mix(world.log.joined.len() as u64);
        mix(world.log.failures.len() as u64);
        mix(world.log.shifts.len() as u64);
        let c = world
            .faults
            .as_ref()
            .map(|f| f.counters())
            .unwrap_or_default();
        mix(c.judged);
        mix(c.dropped);
        mix(c.duplicated);
        mix(c.jittered);
        h
    }

    /// Peer-list accuracy of every active machine against ground truth:
    /// returns `(total_correct_entries, missing, stale)` summed over
    /// machines. `missing` = live in-scope nodes absent from the list;
    /// `stale` = listed nodes that are no longer live.
    pub fn accuracy(&self) -> (usize, usize, usize) {
        let truth = self.ground_truth();
        let live: std::collections::BTreeSet<NodeId> = truth.iter().map(|n| n.id).collect();
        let mut correct = 0;
        let mut missing = 0;
        let mut stale = 0;
        for (_, m) in self.machines().filter(|(_, m)| m.is_active()) {
            let scope = m.eigenstring();
            for t in &truth {
                if t.id != m.id() && scope.contains(t.id) {
                    correct += 1;
                    if !m.peers().contains(t.id) {
                        missing += 1;
                    }
                }
            }
            for p in m.peers().iter() {
                if !live.contains(&p.id) {
                    stale += 1;
                }
            }
        }
        (correct, missing, stale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peerwindow_topology::UniformNetwork;

    fn quick_protocol() -> ProtocolConfig {
        ProtocolConfig {
            probe_interval_us: 2_000_000,
            rpc_timeout_us: 500_000,
            processing_delay_us: 10_000,
            bandwidth_window_us: 10_000_000,
            ..ProtocolConfig::default()
        }
    }

    fn net() -> Box<dyn NetworkModel> {
        Box::new(UniformNetwork { latency_us: 20_000 })
    }

    #[test]
    fn thirty_nodes_converge_to_full_knowledge() {
        let mut sim = FullSim::new(quick_protocol(), net(), 7);
        let mut rng = DetRng::new(42);
        let seed_id = NodeId(rng.next_u128());
        sim.spawn_seed(seed_id, 1e9, Bytes::new());
        for k in 1..30 {
            sim.run_for(500_000);
            sim.spawn_joiner(NodeId(rng.next_u128()), 1e9, Bytes::new())
                .unwrap();
            let _ = k;
        }
        sim.run_for(30_000_000);
        assert_eq!(sim.live_count(), 30);
        assert!(
            sim.log().fatals.is_empty(),
            "fatals: {:?}",
            sim.log().fatals
        );
        let (correct, missing, stale) = sim.accuracy();
        assert_eq!(correct, 30 * 29);
        assert_eq!(missing, 0, "missing pointers");
        assert_eq!(stale, 0, "stale pointers");
    }

    #[test]
    fn crash_is_detected_and_propagated_everywhere() {
        let mut sim = FullSim::new(quick_protocol(), net(), 8);
        let mut rng = DetRng::new(1);
        sim.spawn_seed(NodeId(rng.next_u128()), 1e9, Bytes::new());
        let mut slots = vec![];
        for _ in 1..12 {
            sim.run_for(400_000);
            slots.push(
                sim.spawn_joiner(NodeId(rng.next_u128()), 1e9, Bytes::new())
                    .unwrap(),
            );
        }
        sim.run_for(20_000_000);
        let victim = slots[4];
        let victim_id = sim.machine(victim).unwrap().id();
        sim.crash_after(victim, 0);
        // probe interval 2 s + 3 × 0.5 s timeouts + propagation ≪ 30 s
        sim.run_for(30_000_000);
        assert_eq!(sim.live_count(), 11);
        assert!(!sim.log().failures.is_empty());
        let (_, missing, stale) = sim.accuracy();
        assert_eq!(stale, 0, "stale pointer to {victim_id} survived");
        assert_eq!(missing, 0);
    }

    #[test]
    fn graceful_leave_propagates_without_probe_delay() {
        let mut sim = FullSim::new(quick_protocol(), net(), 9);
        let mut rng = DetRng::new(2);
        sim.spawn_seed(NodeId(rng.next_u128()), 1e9, Bytes::new());
        let mut slots = vec![];
        for _ in 0..8 {
            sim.run_for(400_000);
            slots.push(
                sim.spawn_joiner(NodeId(rng.next_u128()), 1e9, Bytes::new())
                    .unwrap(),
            );
        }
        sim.run_for(10_000_000);
        sim.leave_after(slots[2], 0);
        sim.run_for(5_000_000);
        assert_eq!(sim.live_count(), 8);
        let (_, missing, stale) = sim.accuracy();
        assert_eq!((missing, stale), (0, 0));
    }

    #[test]
    fn info_changes_reach_all_audience_members() {
        let mut sim = FullSim::new(quick_protocol(), net(), 10);
        let mut rng = DetRng::new(3);
        sim.spawn_seed(NodeId(rng.next_u128()), 1e9, Bytes::new());
        let mut slots = vec![];
        for _ in 0..6 {
            sim.run_for(400_000);
            slots.push(
                sim.spawn_joiner(NodeId(rng.next_u128()), 1e9, Bytes::new())
                    .unwrap(),
            );
        }
        sim.run_for(10_000_000);
        let subject = sim.machine(slots[0]).unwrap().id();
        sim.set_info_after(slots[0], 0, Bytes::from_static(b"load:0.1"));
        sim.run_for(5_000_000);
        for (_, m) in sim.machines() {
            if m.id() == subject {
                continue;
            }
            let p = m.peers().get(subject).expect("subject known");
            assert_eq!(&p.info[..], b"load:0.1");
        }
    }
}
