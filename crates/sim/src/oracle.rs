//! Oracle-mode simulation: the paper's §5 experiments at full scale.
//!
//! A single ground-truth [`Directory`] stands in for every node's correct
//! peer list (the paper's own memory trick); multicast trees are planned
//! per event by [`crate::plan::plan_event`] with per-hop latency from a
//! [`NetworkModel`]; peer-list errors are accounted *time-weighted*: each
//! audience member's list is wrong about the subject from the event's
//! origin until its own delivery instant, so
//! `error_rate = Σ staleness / (window · Σ list sizes)` — exactly the
//! quantity figures 7/10/12 plot.
//!
//! Approximations relative to full fidelity (validated against the
//! full-fidelity machine simulation in `tests/full_vs_oracle.rs`):
//! deliveries are planned from the membership snapshot at the event's
//! origin (nodes departing during the ~25 s dissemination window —
//! ≈ 0.3 % of deliveries in the common configuration — are not re-routed),
//! and the joining download transfer is accounted as bulk bytes rather
//! than simulated hop by hop.

use crate::directory::{AudienceEntry, Directory};
use crate::plan::{plan_event, Rmq};
use crate::report::{LevelRow, OracleReport};
use peerwindow_core::model::ModelParams;
use peerwindow_core::prelude::{Level, NodeId, ProtocolConfig};
use peerwindow_des::{DetRng, Engine, Scheduler, SimTime, Simulation};
use peerwindow_metrics::StreamingStat;
use peerwindow_topology::{
    NetworkModel, Topology, TransitStubNetwork, TransitStubParams, UniformNetwork,
};
use peerwindow_workload::{ChurnConfig, NodeSpec};

/// Which latency model backs the run.
#[derive(Clone, Debug)]
pub enum NetworkConfig {
    /// Constant latency (fast; unit tests and sweeps).
    Uniform {
        /// One-way latency, µs.
        latency_us: u64,
    },
    /// Full transit-stub topology (§5.1).
    TransitStub {
        /// Generation parameters.
        params: TransitStubParams,
        /// Topology seed.
        seed: u64,
    },
}

impl NetworkConfig {
    fn build(&self) -> Box<dyn NetworkModel> {
        match self {
            NetworkConfig::Uniform { latency_us } => Box::new(UniformNetwork {
                latency_us: *latency_us,
            }),
            NetworkConfig::TransitStub { params, seed } => {
                let topo = Topology::generate(*params, *seed);
                Box::new(TransitStubNetwork::build(&topo))
            }
        }
    }
}

/// Configuration of one oracle run.
#[derive(Clone, Debug)]
pub struct OracleConfig {
    /// Workload (population, lifetimes, bandwidths).
    pub churn: ChurnConfig,
    /// Protocol constants.
    pub protocol: ProtocolConfig,
    /// Latency model.
    pub network: NetworkConfig,
    /// Warm-up before measurement starts, seconds.
    pub warmup_s: f64,
    /// Measurement window, seconds.
    pub measure_s: f64,
    /// Level-adaptation tick interval, seconds.
    pub adapt_interval_s: f64,
    /// Metric sampling interval, seconds.
    pub sample_interval_s: f64,
    /// Fraction of departures that are announced (graceful) rather than
    /// silent. The paper's §4.1 machinery targets silent failures; real
    /// systems see a mixture. 0.0 (default) is the worst case: every
    /// leave must be detected by ring probing.
    pub graceful_fraction: f64,
    /// Master seed for protocol randomness (tops, detection phases).
    pub seed: u64,
    /// Extra scripted arrivals (flash crowds): `(at_s, how_many)` — that
    /// many fresh nodes join uniformly within one second of `at_s`.
    pub flash_crowds: Vec<(f64, usize)>,
}

impl OracleConfig {
    /// The paper's common configuration (§5.1) at population `n`, with a
    /// full transit-stub network.
    pub fn paper_common(n: usize, seed: u64) -> Self {
        OracleConfig {
            churn: ChurnConfig::paper_common(n, seed),
            protocol: ProtocolConfig::default(),
            network: NetworkConfig::TransitStub {
                params: TransitStubParams::default(),
                seed,
            },
            warmup_s: 30.0,
            measure_s: 120.0,
            adapt_interval_s: 60.0,
            sample_interval_s: 20.0,
            graceful_fraction: 0.0,
            seed,
            flash_crowds: Vec::new(),
        }
    }

    /// Same, but with a uniform-latency network — ~2× faster setup, used
    /// by sweeps where topology detail is not the variable under study.
    pub fn paper_common_uniform(n: usize, seed: u64) -> Self {
        OracleConfig {
            network: NetworkConfig::Uniform { latency_us: 80_000 },
            ..Self::paper_common(n, seed)
        }
    }

    fn model(&self) -> ModelParams {
        ModelParams {
            lifetime_s: self.churn.mean_lifetime_s(),
            changes_per_lifetime: 3.0,
            redundancy: 1.0,
            msg_bits: self.protocol.event_msg_bits as f64,
        }
    }
}

/// Simulation events (macro level: one per state change, not per hop).
enum Ev {
    Arrive(u32),
    Depart(NodeId),
    InfoChange(NodeId),
    AdaptTick,
    Sample,
}

/// Event kinds for internal accounting.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ChangeKind {
    Join,
    Leave,
    Info,
    Shift,
}

struct OracleSim {
    cfg: OracleConfig,
    model: ModelParams,
    dir: Directory,
    net: Box<dyn NetworkModel>,
    rng: DetRng,
    arrivals: Vec<(f64, NodeSpec)>,
    // Reused buffers.
    audience: Vec<AudienceEntry>,
    rmq: Rmq,
    // Measurement state.
    measure_start_us: u64,
    measure_end_us: u64,
    errsec_per_level: Vec<f64>,
    events: u64,
    deliveries: u64,
    depth_stat: StreamingStat,
    delay_stat: StreamingStat,
    level_shifts: u64,
    adapt_ticks: u64,
    /// Events initiated during the current adaptation window (drives the
    /// measured global event rate).
    events_this_window: u64,
    /// Measured events/s over the last adaptation window; 0 before the
    /// first tick (the analytic rate is used instead).
    measured_event_rate: f64,
    // Sampling accumulators.
    samples: u64,
    nodes_per_level: Vec<f64>,
    list_stats: Vec<StreamingStat>,
    sum_list_per_level: Vec<f64>,
    /// Level-shift transition counts, `oracle.shift.{from}->{to}`.
    shift_registry: peerwindow_trace::CounterRegistry,
}

impl OracleSim {
    fn in_measure(&self, t_us: u64) -> bool {
        (self.measure_start_us..self.measure_end_us).contains(&t_us)
    }

    fn grow_levels(&mut self, level: u8) {
        let l = level as usize;
        if self.errsec_per_level.len() <= l {
            self.errsec_per_level.resize(l + 1, 0.0);
            self.nodes_per_level.resize(l + 1, 0.0);
            self.list_stats.resize_with(l + 1, StreamingStat::new);
            self.sum_list_per_level.resize(l + 1, 0.0);
        }
    }

    /// Stable level for a node with the given budget — the §4.3 estimate:
    /// a top node reports its *measured* cost `W_T = R_total · i`, and the
    /// joiner takes `l = ceil(log2(W_T / W))`. Before the first adaptation
    /// window the analytic rate `3N/L` stands in for the measurement.
    fn stable_level(&self, threshold_bps: f64) -> Level {
        let r = if self.measured_event_rate > 0.0 {
            self.measured_event_rate
        } else {
            3.0 * self.dir.len().max(2) as f64 / self.model.lifetime_s
        };
        let cost_top = r * self.cfg.protocol.event_msg_bits as f64;
        if cost_top <= threshold_bps || threshold_bps <= 0.0 {
            Level::TOP
        } else {
            Level::new((cost_top / threshold_bps).log2().ceil().clamp(0.0, 128.0) as u8)
        }
    }

    /// Plans and accounts one multicast. `origin_us` is when the state
    /// changed (staleness is measured from here); `report_at_us` when a
    /// top node holds the event (origin + detection + report latency).
    fn multicast(&mut self, subject: NodeId, origin_us: u64, report_at_us: u64, kind: ChangeKind) {
        let Some(root) = self
            .dir
            .random_top_for(subject, |n| self.rng.below(n as u64) as usize)
        else {
            return; // singleton system: nobody to tell
        };
        let event_bits = self.cfg.protocol.event_msg_bits
            + match kind {
                ChangeKind::Info => 64, // small attached payload
                _ => 0,
            };
        let ack_bits = self.cfg.protocol.ack_msg_bits;
        let processing = self.cfg.protocol.processing_delay_us;
        let measuring = self.in_measure(origin_us);
        self.events_this_window += 1;
        if measuring {
            self.events += 1;
        }
        // Borrow dance: move the buffers out, work, put them back.
        let mut audience = std::mem::take(&mut self.audience);
        let mut rmq = std::mem::take(&mut self.rmq);
        self.dir.collect_audience(subject, &mut audience);
        if audience.is_empty() {
            self.audience = audience;
            self.rmq = rmq;
            return;
        }
        let root_idx = audience
            .binary_search_by_key(&root.raw(), |e| e.id)
            .expect("root is an audience member");
        // Account the report hop into the root as the first delivery.
        let max_level_seen = audience.iter().map(|e| e.level).max().unwrap_or(0);
        self.grow_levels(max_level_seen);
        {
            let r = &audience[root_idx];
            let slot = &mut self.dir.slot_mut(r.slot);
            slot.rx_window_bits += event_bits;
            if measuring {
                slot.rx_measure_bits += event_bits;
            }
        }
        if measuring {
            self.errsec_per_level[audience[root_idx].level as usize] +=
                (report_at_us - origin_us) as f64 / 1e6;
        }
        let root_step = audience[root_idx].level;
        let mut max_depth = 0u32;
        let mut last_at = report_at_us;
        let mut errsec = std::mem::take(&mut self.errsec_per_level);
        let mut deliveries = 0u64;
        {
            let dir = &mut self.dir;
            let net = &*self.net;
            // plan_event passes slot ids; addresses were copied into the
            // audience entries, so latency lookups never touch `dir`.
            // audit: ordered — key lookups only, never iterated
            let slots_to_addr: std::collections::HashMap<u32, u32> =
                audience.iter().map(|e| (e.slot, e.addr)).collect();
            plan_event(
                &audience,
                &mut rmq,
                root_idx,
                root_step,
                report_at_us,
                processing,
                |a_slot, b_slot| {
                    let a = slots_to_addr[&a_slot];
                    let b = slots_to_addr[&b_slot];
                    net.latency_us(a, b)
                },
                |d| {
                    deliveries += 1;
                    max_depth = max_depth.max(d.depth);
                    last_at = last_at.max(d.at_us);
                    let child = &audience[d.child];
                    let parent = &audience[d.parent];
                    {
                        let s = dir.slot_mut(child.slot);
                        s.rx_window_bits += event_bits;
                        if measuring {
                            s.rx_measure_bits += event_bits;
                            s.tx_measure_bits += ack_bits;
                        }
                    }
                    if measuring {
                        let s = dir.slot_mut(parent.slot);
                        s.tx_measure_bits += event_bits;
                        s.rx_measure_bits += ack_bits;
                        errsec[child.level as usize] += (d.at_us - origin_us) as f64 / 1e6;
                    }
                },
            );
        }
        self.errsec_per_level = errsec;
        if measuring {
            self.deliveries += deliveries;
            self.depth_stat.push(max_depth as f64);
            self.delay_stat.push((last_at - origin_us) as f64 / 1e6);
        }
        audience.clear();
        self.audience = audience;
        self.rmq = rmq;
    }

    fn handle_arrive(&mut self, now: SimTime, idx: u32, sched: &mut Scheduler<'_, Ev>) {
        let spec = self.arrivals[idx as usize].1.clone();
        let id = NodeId(spec.id_raw);
        if self.dir.get(id).is_some() {
            return; // astronomically unlikely id collision
        }
        let level = self.stable_level(spec.threshold_bps);
        let addr = self.rng.below(u32::MAX as u64) as u32;
        self.grow_levels(level.value());
        self.dir
            .join(id, addr, level, spec.threshold_bps, spec.bandwidth_bps);
        // Join process delay before the join event reaches a top node:
        // find-top + level query + download round trips (~4 RTTs).
        let rtt = 2 * 80_000u64;
        let report_at = now.as_micros() + 4 * rtt;
        self.multicast(id, now.as_micros(), report_at, ChangeKind::Join);
        sched.schedule((spec.lifetime_s * 1e6) as u64, Ev::Depart(id));
        sched.schedule((spec.info_change_at_s * 1e6) as u64, Ev::InfoChange(id));
    }

    fn handle_depart(&mut self, now: SimTime, id: NodeId) {
        if self.dir.leave(id).is_none() {
            return;
        }
        let report_latency = 40_000 + self.rng.below(120_000); // reporter → top
        let report_at = if self.rng.next_f64() < self.cfg.graceful_fraction {
            // Announced departure: the leaver itself reports on its way out.
            now.as_micros() + report_latency
        } else {
            // §4.1 detection: the ring predecessor notices after a
            // probe-phase delay plus the probe retry timeouts, then
            // reports to a top node.
            let phase = self.rng.below(self.cfg.protocol.probe_interval_us);
            let timeouts = self.cfg.protocol.max_attempts as u64 * self.cfg.protocol.rpc_timeout_us;
            now.as_micros() + phase + timeouts + report_latency
        };
        self.multicast(id, now.as_micros(), report_at, ChangeKind::Leave);
    }

    fn handle_info_change(&mut self, now: SimTime, id: NodeId) {
        if self.dir.get(id).is_none() {
            return; // already departed (warm-start scheduling slack)
        }
        let report_latency = 40_000 + self.rng.below(120_000);
        self.multicast(
            id,
            now.as_micros(),
            now.as_micros() + report_latency,
            ChangeKind::Info,
        );
    }

    fn handle_adapt(&mut self, now: SimTime) {
        let window_s = self.cfg.adapt_interval_s;
        self.measured_event_rate = self.events_this_window as f64 / window_s;
        self.events_this_window = 0;
        let grow = self.cfg.protocol.grow_fraction;
        self.adapt_ticks += 1;
        let phase = self.adapt_ticks;
        // Collect decisions first (cannot mutate the directory mid-scan).
        // Nodes adapt on alternating ticks (their own timers would be
        // staggered; a synchronized global sweep amplifies cascades).
        let mut shifts: Vec<(NodeId, Level)> = Vec::new();
        let mut pressures: Vec<(u32, i8)> = Vec::new();
        for (idx, slot) in self.dir.slots().iter().enumerate() {
            if !slot.alive || !(idx as u64 + phase).is_multiple_of(2) {
                continue;
            }
            let bps = slot.rx_window_bits as f64 / window_s;
            let mut pressure = slot.pressure;
            if bps > slot.threshold_bps && slot.level != Level::MAX {
                pressure = pressure.max(0) + 1;
            } else if bps < slot.threshold_bps * grow && !slot.level.is_top() {
                pressure = pressure.min(0) - 1;
            } else {
                pressure = 0;
            }
            // Two consecutive same-direction windows before acting.
            if pressure >= 2 {
                shifts.push((slot.id, slot.level.lowered()));
                pressure = 0;
            } else if pressure <= -4 {
                // Raising is a luxury (it only spends spare budget), so it
                // demands twice the evidence a protective descent does —
                // this breaks the deep-level flap cycle.
                // Raising is capped at the part's top level (§4.3): there
                // is nobody to download a wider list from.
                if let Some((top_level, _)) = self.dir.part_of(slot.id) {
                    if slot.level.value() > top_level.value() {
                        shifts.push((slot.id, slot.level.raised()));
                    }
                }
                pressure = 0;
            }
            if pressure != slot.pressure {
                pressures.push((idx as u32, pressure));
            }
        }
        for (idx, pr) in pressures {
            self.dir.slot_mut(idx).pressure = pr;
        }
        // Shift transitions feed the counter registry instead of a debug
        // print; the report carries them out for rendering.
        for (id, nl) in &shifts {
            if let Some(sd) = self.dir.get(*id) {
                self.shift_registry.add(
                    &format!("oracle.shift.{}->{}", sd.level.value(), nl.value()),
                    1,
                );
            }
        }
        for (id, new_level) in shifts {
            if self.dir.change_level(id, new_level).is_some() {
                self.grow_levels(new_level.value());
                if self.in_measure(now.as_micros()) {
                    self.level_shifts += 1;
                }
                let report_latency = 40_000 + self.rng.below(120_000);
                self.multicast(
                    id,
                    now.as_micros(),
                    now.as_micros() + report_latency,
                    ChangeKind::Shift,
                );
            }
        }
        // Reset the windows.
        for i in 0..self.dir.slots().len() {
            self.dir.slot_mut(i as u32).rx_window_bits = 0;
        }
    }

    fn handle_sample(&mut self) {
        self.samples += 1;
        let max_l = self.dir.max_level();
        self.grow_levels(max_l);
        for l in 0..=max_l {
            let n_l = self.dir.level_count(l);
            self.nodes_per_level[l as usize] += n_l as f64;
            if n_l == 0 {
                continue;
            }
            // Walk the level's groups (distinct eigenstrings).
            let ids: Vec<u128> = self
                .dir
                .level_prefix_ids(l, peerwindow_core::prelude::Prefix::EMPTY)
                .to_vec();
            let mut i = 0;
            let mut sum = 0.0;
            while i < ids.len() {
                let p = NodeId(ids[i]).prefix(l);
                let group_n = self.dir.count_level_prefix(l, p);
                let list = self.dir.count_prefix(p).saturating_sub(1) as f64;
                self.list_stats[l as usize].push(list);
                sum += list * group_n as f64;
                i += group_n;
            }
            self.sum_list_per_level[l as usize] += sum;
        }
    }

    fn report(&self) -> OracleReport {
        let measure_s = self.cfg.measure_s;
        let samples = self.samples.max(1) as f64;
        let n_total: f64 = self.nodes_per_level.iter().sum::<f64>() / samples;
        let mut rows = Vec::new();
        let probe_in_bps = (self.cfg.protocol.probe_msg_bits + self.cfg.protocol.ack_msg_bits)
            as f64
            / (self.cfg.protocol.probe_interval_us as f64 / 1e6);
        for l in 0..self.errsec_per_level.len() {
            let nodes = self.nodes_per_level[l] / samples;
            if nodes < 0.5 {
                continue;
            }
            let sum_list = self.sum_list_per_level[l] / samples;
            let error_rate = if sum_list > 0.0 {
                self.errsec_per_level[l] / (measure_s * sum_list)
            } else {
                0.0
            };
            // Per-node mean traffic over live nodes currently at level l.
            let (mut rx, mut tx, mut cnt) = (0.0, 0.0, 0.0);
            for s in self.dir.slots() {
                if s.alive && s.level.value() as usize == l {
                    rx += s.rx_measure_bits as f64;
                    tx += s.tx_measure_bits as f64;
                    cnt += 1.0;
                }
            }
            let (in_bps, out_bps) = if cnt > 0.0 {
                (
                    rx / cnt / measure_s + probe_in_bps,
                    tx / cnt / measure_s + probe_in_bps,
                )
            } else {
                (0.0, 0.0)
            };
            let ls = &self.list_stats[l];
            rows.push(LevelRow {
                level: l as u8,
                nodes,
                node_fraction: if n_total > 0.0 { nodes / n_total } else { 0.0 },
                list_min: if ls.count() > 0 { ls.min() } else { 0.0 },
                list_mean: ls.mean(),
                list_max: if ls.count() > 0 { ls.max() } else { 0.0 },
                error_rate,
                in_bps,
                out_bps,
            });
        }
        let total_err: f64 = self.errsec_per_level.iter().sum();
        let total_list: f64 = self.sum_list_per_level.iter().map(|s| s / samples).sum();
        OracleReport {
            rows,
            n_final: self.dir.len(),
            events: self.events,
            deliveries: self.deliveries,
            avg_error_rate: if total_list > 0.0 {
                total_err / (measure_s * total_list)
            } else {
                0.0
            },
            mean_tree_depth: self.depth_stat.mean(),
            max_tree_depth: self.depth_stat.max().max(0.0) as u32,
            mean_multicast_delay_s: self.delay_stat.mean(),
            level_shifts: self.level_shifts,
            // The oracle abstracts the network away entirely (§5 oracle
            // mode): no fault layer, nothing dropped or duplicated.
            dropped: 0,
            duplicated: 0,
            measure_s,
            shift_counters: self
                .shift_registry
                .counters()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        }
    }
}

impl Simulation for OracleSim {
    type Event = Ev;
    fn handle(&mut self, now: SimTime, event: Ev, sched: &mut Scheduler<'_, Ev>) {
        match event {
            Ev::Arrive(i) => self.handle_arrive(now, i, sched),
            Ev::Depart(id) => self.handle_depart(now, id),
            Ev::InfoChange(id) => self.handle_info_change(now, id),
            Ev::AdaptTick => {
                self.handle_adapt(now);
                sched.schedule((self.cfg.adapt_interval_s * 1e6) as u64, Ev::AdaptTick);
            }
            Ev::Sample => {
                if self.in_measure(now.as_micros()) {
                    self.handle_sample();
                }
                sched.schedule((self.cfg.sample_interval_s * 1e6) as u64, Ev::Sample);
            }
        }
    }
}

/// Runs one oracle-mode simulation and returns its report.
pub fn run_oracle(cfg: OracleConfig) -> OracleReport {
    let model = cfg.model();
    let net = cfg.network.build();
    let duration_s = cfg.warmup_s + cfg.measure_s;
    let sim = OracleSim {
        model,
        net,
        rng: DetRng::for_stream(cfg.seed, 0xC0FFEE),
        arrivals: cfg.churn.arrivals(duration_s),
        audience: Vec::new(),
        rmq: Rmq::new(),
        measure_start_us: (cfg.warmup_s * 1e6) as u64,
        measure_end_us: (duration_s * 1e6) as u64,
        errsec_per_level: Vec::new(),
        events: 0,
        deliveries: 0,
        depth_stat: StreamingStat::new(),
        delay_stat: StreamingStat::new(),
        level_shifts: 0,
        adapt_ticks: 0,
        events_this_window: 0,
        measured_event_rate: 0.0,
        samples: 0,
        nodes_per_level: Vec::new(),
        list_stats: Vec::new(),
        sum_list_per_level: Vec::new(),
        shift_registry: peerwindow_trace::CounterRegistry::new(),
        dir: Directory::new(),
        cfg,
    };
    // Warm start: steady-state population at analytically stable levels.
    let population = sim.cfg.churn.initial_population();
    let mut engine = Engine::new(sim);
    {
        let n = population.len();
        let sim = engine.sim_mut();
        for (spec, _) in &population {
            let id = NodeId(spec.id_raw);
            let level = sim.model.stable_level(n.max(2) as f64, spec.threshold_bps);
            let addr = sim.rng.below(u32::MAX as u64) as u32;
            sim.grow_levels(level.value());
            sim.dir
                .join(id, addr, level, spec.threshold_bps, spec.bandwidth_bps);
        }
    }
    // Schedule departures and residual info changes for the warm-start
    // population (a node whose mid-lifetime change already happened before
    // the snapshot does not change again).
    for (spec, residual) in &population {
        let id = NodeId(spec.id_raw);
        engine.schedule((residual * 1e6) as u64, Ev::Depart(id));
        let elapsed = spec.lifetime_s - residual;
        let change_in = spec.info_change_at_s - elapsed;
        if change_in > 0.0 {
            engine.schedule((change_in * 1e6) as u64, Ev::InfoChange(id));
        }
    }
    // Flash crowds: generate the scripted joiners with the same sampler
    // and splice them into the arrival list.
    {
        let sim = engine.sim_mut();
        let crowds = sim.cfg.flash_crowds.clone();
        for (at_s, count) in crowds {
            let mut crowd_cfg = sim.cfg.churn.clone();
            crowd_cfg.n = count.max(1);
            crowd_cfg.seed = sim.cfg.seed ^ (at_s.to_bits().rotate_left(17));
            for (k, (spec, _)) in crowd_cfg.initial_population().into_iter().enumerate() {
                let jitter = k as f64 / count.max(1) as f64;
                sim.arrivals.push((at_s + jitter, spec));
            }
        }
        sim.arrivals
            .sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    }
    let arrival_count = engine.sim().arrivals.len();
    for i in 0..arrival_count {
        let at = (engine.sim().arrivals[i].0 * 1e6) as u64;
        engine.schedule(at, Ev::Arrive(i as u32));
    }
    let adapt_us = (engine.sim().cfg.adapt_interval_s * 1e6) as u64;
    let sample_us = (engine.sim().cfg.sample_interval_s * 1e6) as u64;
    engine.schedule(adapt_us, Ev::AdaptTick);
    engine.schedule(sample_us / 2, Ev::Sample);
    let end = SimTime((duration_s * 1e6) as u64);
    engine.run_until(end);
    engine.into_sim().report()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg(n: usize, seed: u64) -> OracleConfig {
        OracleConfig {
            warmup_s: 20.0,
            measure_s: 60.0,
            sample_interval_s: 10.0,
            ..OracleConfig::paper_common_uniform(n, seed)
        }
    }

    #[test]
    fn small_run_produces_sane_report() {
        let rep = run_oracle(tiny_cfg(2_000, 1));
        // Population stays near target.
        assert!(
            (1_800..=2_200).contains(&rep.n_final),
            "n = {}",
            rep.n_final
        );
        // Events flowed and were delivered.
        assert!(rep.events > 20, "events = {}", rep.events);
        assert!(
            rep.deliveries > rep.events,
            "deliveries = {}",
            rep.deliveries
        );
        // Rows exist and fractions sum to ≈ 1.
        let frac: f64 = rep.rows.iter().map(|r| r.node_fraction).sum();
        assert!((frac - 1.0).abs() < 0.05, "fractions sum to {frac}");
        // At n=2000 the level-0 maintenance cost is 3·2000·1000/8100 ≈
        // 740 bps, below every threshold floor? No: floor is 500 bps, so
        // weak nodes sit at level 1+; strong nodes at level 0.
        assert!(rep.level(0).is_some(), "no level-0 row");
        // Peer lists at level 0 cover (almost) the whole system.
        let l0 = rep.level(0).unwrap();
        assert!(l0.list_mean > 0.9 * rep.n_final as f64);
        // Error rate is small but nonzero, within an order of magnitude of
        // the paper's back-of-envelope delay/lifetime estimate.
        assert!(
            l0.error_rate > 1e-5 && l0.error_rate < 0.05,
            "err = {}",
            l0.error_rate
        );
        // Tree depth is logarithmic-ish.
        assert!(rep.mean_tree_depth > 2.0 && rep.max_tree_depth < 64);
    }

    #[test]
    fn graceful_leaves_cut_the_error_rate() {
        let base = run_oracle(tiny_cfg(2_000, 9));
        let mut cfg = tiny_cfg(2_000, 9);
        cfg.graceful_fraction = 1.0;
        let graceful = run_oracle(cfg);
        assert!(
            graceful.avg_error_rate < base.avg_error_rate,
            "graceful {} !< silent {}",
            graceful.avg_error_rate,
            base.avg_error_rate
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_oracle(tiny_cfg(500, 7));
        let b = run_oracle(tiny_cfg(500, 7));
        assert_eq!(a.events, b.events);
        assert_eq!(a.deliveries, b.deliveries);
        assert_eq!(a.n_final, b.n_final);
        assert_eq!(format!("{:?}", a.rows), format!("{:?}", b.rows));
    }

    #[test]
    fn shorter_lifetimes_raise_error_rate_and_deepen_levels() {
        let base = run_oracle(tiny_cfg(2_000, 3));
        let mut fast = tiny_cfg(2_000, 3);
        fast.churn.lifetime_rate = 0.1;
        let fast = run_oracle(fast);
        assert!(
            fast.avg_error_rate > 2.0 * base.avg_error_rate,
            "fast churn error {} vs base {}",
            fast.avg_error_rate,
            base.avg_error_rate
        );
        // More levels occupied under fast churn (figure 11's shape).
        let base_levels = base.rows.len();
        let fast_levels = fast.rows.len();
        assert!(
            fast_levels >= base_levels,
            "levels: fast {fast_levels} vs base {base_levels}"
        );
        // Level-0 share shrinks under fast churn.
        let f0_base = base.level(0).map(|r| r.node_fraction).unwrap_or(0.0);
        let f0_fast = fast.level(0).map(|r| r.node_fraction).unwrap_or(0.0);
        assert!(
            f0_fast < f0_base,
            "level-0 share did not shrink: {f0_fast} vs {f0_base}"
        );
    }

    #[test]
    fn input_bandwidth_is_proportional_to_list_size() {
        // §5.1: "the input bandwidth is in proportion to the peer list
        // size … about 500 bps per 1000 pointers".
        let rep = run_oracle(tiny_cfg(3_000, 5));
        for r in rep
            .rows
            .iter()
            .filter(|r| r.nodes >= 10.0 && r.list_mean > 100.0)
        {
            let per_1000 = (r.in_bps - 0.0) / (r.list_mean / 1000.0);
            assert!(
                per_1000 > 100.0 && per_1000 < 2_000.0,
                "level {}: {per_1000} bps per 1000 pointers",
                r.level
            );
        }
    }
}
