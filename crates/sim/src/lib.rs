//! # peerwindow-sim
//!
//! Large-scale PeerWindow simulation, reproducing the paper's §5
//! experiments:
//!
//! * [`full`] — **full fidelity**: every node runs the real
//!   `peerwindow_core::node::NodeMachine` over the discrete-event engine;
//!   used for protocol validation and small-system studies.
//! * [`oracle`] — **oracle mode**: the paper's own memory trick (§5 ¶3) —
//!   one ground-truth directory stands in for all correct peer lists, so
//!   100,000-node runs fit in one machine's memory; multicast trees are
//!   planned per event and accounted analytically.
//! * [`parallel_full`] — full fidelity on the *parallel* engine: shards
//!   of real machines under barrier-synchronised windows, with pluggable
//!   actor placement (modulo or topology-affine shard maps).
//! * [`directory`], [`plan`] — the oracle's membership structure and tree
//!   planner.
//! * [`report`] — per-level result rows (the columns of figures 5–8).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod directory;
pub mod full;
pub mod oracle;
pub mod parallel_full;
pub mod plan;
pub mod report;
mod snaphub;

pub use directory::Directory;
pub use full::{FullLog, FullSim};
pub use oracle::{run_oracle, NetworkConfig, OracleConfig};
pub use parallel_full::{ParallelFullSim, StubAffineShardMap};
pub use peerwindow_des::runtime_metrics_active;
pub use report::{LevelRow, OracleReport};
