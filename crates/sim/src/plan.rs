//! Per-event multicast tree planning over an extracted audience set.
//!
//! Oracle mode plans each event's entire dissemination tree in one pass
//! over the (sorted) audience array instead of simulating every hop as a
//! discrete event: the §4.2 recursion is a binary dissection of the array,
//! target selection ("highest level, smallest id") is a range-minimum
//! query, and per-hop delivery times accumulate latency + processing along
//! the tree. The result is bit-identical to `peerwindow_core::multicast::
//! plan_tree` over a consistent peer list (asserted by tests), at a cost
//! of O(A log A) per event instead of O(A · levels · log N) heap events.

use crate::directory::AudienceEntry;
use peerwindow_core::prelude::NodeId;

/// Sparse-table range-minimum query over `(level, index)` keys: returns
/// the index of the strongest (lowest level), smallest-id entry in a
/// range. Buffers are reused across events.
#[derive(Default)]
pub struct Rmq {
    n: usize,
    /// `table[k][i]` = argmin over `[i, i + 2^k)`.
    table: Vec<Vec<u32>>,
    levels: Vec<u8>,
}

impl Rmq {
    /// Empty RMQ (build before use).
    pub fn new() -> Self {
        Self::default()
    }

    /// (Re)builds over the levels of `audience`.
    pub fn build(&mut self, audience: &[AudienceEntry]) {
        let n = audience.len();
        self.n = n;
        self.levels.clear();
        self.levels.extend(audience.iter().map(|e| e.level));
        let k_max = if n <= 1 {
            1
        } else {
            usize::BITS as usize - (n - 1).leading_zeros() as usize
        };
        if self.table.len() < k_max {
            self.table.resize_with(k_max, Vec::new);
        }
        let t0 = &mut self.table[0];
        t0.clear();
        t0.extend(0..n as u32);
        for k in 1..k_max {
            let half = 1usize << (k - 1);
            let len = n.saturating_sub((1 << k) - 1);
            // Split to appease the borrow checker: read level k-1, write k.
            let (lo, hi) = self.table.split_at_mut(k);
            let prev = &lo[k - 1];
            let cur = &mut hi[0];
            cur.clear();
            for i in 0..len {
                let a = prev[i];
                let b = prev[i + half];
                cur.push(if self.levels[a as usize] <= self.levels[b as usize] {
                    a
                } else {
                    b
                });
            }
        }
    }

    /// Argmin over `[lo, hi)`; `None` when the range is empty.
    pub fn argmin(&self, lo: usize, hi: usize) -> Option<usize> {
        if lo >= hi || hi > self.n {
            return None;
        }
        let len = hi - lo;
        if len == 1 {
            return Some(lo);
        }
        let k = usize::BITS as usize - 1 - len.leading_zeros() as usize;
        let a = self.table[k][lo];
        let b = self.table[k][hi - (1 << k)];
        // Tie-break: smaller level wins; equal levels → smaller index
        // (= smaller id, the array is id-sorted).
        Some(if self.levels[a as usize] < self.levels[b as usize] {
            a as usize
        } else if self.levels[b as usize] < self.levels[a as usize] {
            b as usize
        } else {
            a.min(b) as usize
        })
    }
}

/// One planned delivery.
#[derive(Clone, Copy, Debug)]
pub struct Delivery {
    /// Index of the sender in the audience array, or `usize::MAX` for the
    /// report hop into the root.
    pub parent: usize,
    /// Index of the receiver.
    pub child: usize,
    /// Time (µs) at which the receiver gets the event.
    pub at_us: u64,
    /// Range length the receiver becomes responsible for.
    pub step: u8,
    /// Tree depth (root's children = 1).
    pub depth: u32,
}

/// Plans the full tree for an event whose sorted `audience` excludes the
/// subject. `root_idx` is the initiating top node's index, `root_step` its
/// level, and `t_root` the time it holds the event. `latency(a_slot,
/// b_slot)` supplies pairwise one-way latency; `processing_us` is the
/// §5.1 per-hop compute delay. Calls `on_deliver` once per receiver in
/// depth-first send order.
#[allow(clippy::too_many_arguments)]
pub fn plan_event<L, F>(
    audience: &[AudienceEntry],
    rmq: &mut Rmq,
    root_idx: usize,
    root_step: u8,
    t_root: u64,
    processing_us: u64,
    mut latency: L,
    mut on_deliver: F,
) where
    L: FnMut(u32, u32) -> u64,
    F: FnMut(&Delivery),
{
    if audience.is_empty() {
        return;
    }
    rmq.build(audience);
    // Explicit stack: (holder idx, lo, hi, step, t, depth).
    let mut stack: Vec<(usize, usize, usize, u8, u64, u32)> = Vec::with_capacity(64);
    stack.push((root_idx, 0, audience.len(), root_step, t_root, 0));
    while let Some((y, mut lo, mut hi, mut s, t, depth)) = stack.pop() {
        let y_id = NodeId(audience[y].id);
        debug_assert!(lo <= y && y < hi, "holder outside its slice");
        while hi - lo > 1 && s < 128 {
            // Split [lo, hi) — all ids share y's first s bits — by bit s.
            let boundary = y_id.prefix(s).child(true).range_start().raw();
            let mid = lo + audience[lo..hi].partition_point(|e| e.id < boundary);
            let (flip_lo, flip_hi, keep_lo, keep_hi) = if y_id.bit(s) {
                (lo, mid, mid, hi)
            } else {
                (mid, hi, lo, mid)
            };
            if let Some(child) = rmq.argmin(flip_lo, flip_hi) {
                let t_child = t + processing_us + latency(audience[y].slot, audience[child].slot);
                let d = Delivery {
                    parent: y,
                    child,
                    at_us: t_child,
                    step: s + 1,
                    depth: depth + 1,
                };
                on_deliver(&d);
                stack.push((child, flip_lo, flip_hi, s + 1, t_child, depth + 1));
            }
            lo = keep_lo;
            hi = keep_hi;
            s += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peerwindow_core::prelude::*;
    use std::collections::BTreeSet;

    fn audience_from(members: &[(u128, u8)], subject: u128) -> Vec<AudienceEntry> {
        let mut v: Vec<AudienceEntry> = members
            .iter()
            .enumerate()
            .filter(|(_, &(id, l))| {
                id != subject
                    && NodeIdentity::new(NodeId(id), Level::new(l)).covers(NodeId(subject))
            })
            .map(|(slot, &(id, l))| AudienceEntry {
                id,
                level: l,
                slot: slot as u32,
                addr: slot as u32,
            })
            .collect();
        v.sort_unstable_by_key(|e| e.id);
        v
    }

    #[test]
    fn rmq_matches_linear_scan() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let mut audience: Vec<AudienceEntry> = (0..300)
            .map(|i| AudienceEntry {
                id: i as u128 * 7,
                level: rng.gen_range(0..5),
                slot: i,
                addr: i,
            })
            .collect();
        audience.sort_unstable_by_key(|e| e.id);
        let mut rmq = Rmq::new();
        rmq.build(&audience);
        for _ in 0..500 {
            let a = rng.gen_range(0..300usize);
            let b = rng.gen_range(0..=300usize);
            let (lo, hi) = (a.min(b), a.max(b));
            let got = rmq.argmin(lo, hi);
            let want = (lo..hi).min_by_key(|&i| (audience[i].level, i));
            assert_eq!(got, want, "range [{lo},{hi})");
        }
    }

    #[test]
    fn rmq_reuse_across_sizes() {
        let mk = |n: usize| -> Vec<AudienceEntry> {
            (0..n)
                .map(|i| AudienceEntry {
                    id: i as u128,
                    level: (i % 3) as u8,
                    slot: i as u32,
                    addr: i as u32,
                })
                .collect()
        };
        let mut rmq = Rmq::new();
        rmq.build(&mk(100));
        assert_eq!(rmq.argmin(1, 100), Some(3)); // first level-0 after 0
        rmq.build(&mk(10));
        assert_eq!(rmq.argmin(0, 10), Some(0));
        assert_eq!(rmq.argmin(10, 10), None);
    }

    /// The planner must produce exactly the same edge set as the reference
    /// implementation in peerwindow-core over a consistent view.
    #[test]
    fn planner_matches_core_plan_tree() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let members: Vec<(u128, u8)> = (0..400)
            .map(|_| (rng.gen::<u128>(), rng.gen_range(0..4u8)))
            .collect();
        // Reference peer list (top node view).
        let mut list = PeerList::new(Prefix::EMPTY);
        for &(id, l) in &members {
            list.insert(Pointer::new(NodeId(id), Addr(0), Level::new(l)));
        }
        let root = members.iter().find(|&&(_, l)| l == 0).unwrap().0;
        for trial in 0..10 {
            let subject = members[trial * 17].0;
            if subject == root {
                continue;
            }
            let reference: BTreeSet<(u128, u128, u8)> =
                plan_tree(&list, NodeId(root), 0, NodeId(subject))
                    .into_iter()
                    .map(|e| (e.from.raw(), e.to.id.raw(), e.step))
                    .collect();
            let audience = audience_from(&members, subject);
            let root_idx = audience
                .binary_search_by_key(&root, |e| e.id)
                .expect("root in audience");
            let mut rmq = Rmq::new();
            let mut got = BTreeSet::new();
            plan_event(
                &audience,
                &mut rmq,
                root_idx,
                0,
                0,
                0,
                |_, _| 0,
                |d| {
                    got.insert((audience[d.parent].id, audience[d.child].id, d.step));
                },
            );
            // Core's plan_tree excludes the subject but includes the root's
            // own deliveries; both reach audience \ {root, subject}.
            assert_eq!(got, reference, "trial {trial}");
        }
    }

    #[test]
    fn delivery_times_accumulate_latency_and_processing() {
        // Chain: 2 top nodes and one level-1 node; fixed latency 10, proc 1.
        let members = [
            (0x2000_0000_0000_0000_0000_0000_0000_0000u128, 0u8),
            (0x7000_0000_0000_0000_0000_0000_0000_0000u128, 0),
            (0xB000_0000_0000_0000_0000_0000_0000_0000u128, 1),
        ];
        let subject = 0xB800_0000_0000_0000_0000_0000_0000_0000u128;
        let audience = audience_from(&members, subject);
        assert_eq!(audience.len(), 3);
        let root_idx = audience
            .binary_search_by_key(&members[0].0, |e| e.id)
            .unwrap();
        let mut rmq = Rmq::new();
        let mut deliveries = Vec::new();
        plan_event(
            &audience,
            &mut rmq,
            root_idx,
            0,
            100,
            1,
            |_, _| 10,
            |d| deliveries.push(*d),
        );
        assert_eq!(deliveries.len(), 2);
        // Root (0010…) sends into the "1" half first: both remaining
        // members are there; strongest is the other top (0111…)? No:
        // 0111… is in the "0" half. The "1" half holds only the level-1
        // node → depth-1 delivery at 100+1+10.
        for d in &deliveries {
            assert_eq!(d.at_us, 111);
            assert_eq!(d.depth, 1);
        }
    }

    #[test]
    fn empty_audience_is_noop() {
        let mut rmq = Rmq::new();
        let mut called = false;
        plan_event(&[], &mut rmq, 0, 0, 0, 0, |_, _| 0, |_| called = true);
        assert!(!called);
    }
}
