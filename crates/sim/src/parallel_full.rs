//! Full-fidelity protocol simulation on the *parallel* engine.
//!
//! The paper ran its experiments on ONSP, a parallel discrete-event
//! platform (MPI over a 16-server cluster). This module is the
//! demonstration that our conservative sharded engine carries the real
//! protocol: every node's [`NodeMachine`] lives in one shard of a
//! [`ParallelEngine`], messages between nodes respect the engine's
//! latency lookahead, and — the claim that matters — **the simulation
//! outcome is identical for any shard count** (asserted by tests), so
//! parallelism is a pure speedup, exactly ONSP's pitch.
//!
//! Latencies are deterministically jittered per (source, destination)
//! pair so no two deliveries tie on the clock; with unique timestamps the
//! global delivery order is shard-count-invariant.

use bytes::Bytes;
use peerwindow_core::prelude::*;
use peerwindow_des::{ModuloShardMap, Outbox, ParallelEngine, ShardLogic, ShardMap, SimTime};
use peerwindow_faults::{FaultCounters, FaultModel, FaultPlan, LinkConditioner, Verdict};
use peerwindow_topology::TransitStubNetwork;

/// Topology-affine actor placement: overlay addresses whose stub nodes
/// share a transit-stub *domain* land in the same shard, so the bulk of
/// intra-domain chatter stays shard-local and the barrier merge carries
/// only inter-domain traffic. Falls back to spreading domains round-robin
/// when there are more domains than shards.
///
/// The map is a pure function of `(actor, shards)` captured from the
/// network at construction — cheap to copy into worker threads, and the
/// simulation outcome stays invariant (asserted by tests) because shard
/// placement never affects delivery timestamps, only where work runs.
#[derive(Clone, Copy, Debug)]
pub struct StubAffineShardMap {
    stub_count: u32,
    stubs_per_domain: u32,
}

impl StubAffineShardMap {
    /// Captures the stub/domain layout of `net`.
    pub fn new(net: &TransitStubNetwork) -> Self {
        StubAffineShardMap {
            stub_count: net.stub_count(),
            stubs_per_domain: net.stubs_per_domain(),
        }
    }
}

impl ShardMap for StubAffineShardMap {
    #[inline]
    fn shard_of(&self, actor: u32, shards: usize) -> usize {
        let domain = (actor % self.stub_count) / self.stubs_per_domain;
        domain as usize % shards
    }
}

/// Messages between actors (nodes) in the parallel world.
pub enum PMsg {
    /// Bring the node up: `None` = seed, `Some(target)` = join via it.
    Start {
        /// Node id for the machine.
        id: NodeId,
        /// Collection budget.
        threshold_bps: f64,
        /// Attached info.
        info: Bytes,
        /// Bootstrap target (None for the genesis node).
        bootstrap: Option<Target>,
    },
    /// A protocol message from another node.
    Net {
        /// Sender id.
        from: NodeId,
        /// Sender address.
        from_addr: Addr,
        /// Payload.
        msg: Message,
    },
    /// A machine timer.
    Timer(Timer),
    /// Silent crash.
    Crash,
    /// Application command.
    Cmd(Command),
}

/// One shard: the machines of every actor with `actor % shards == index`.
pub struct ProtocolShard {
    /// Actor id → machine (only this shard's actors are `Some`).
    machines: Vec<Option<NodeMachine>>,
    protocol: ProtocolConfig,
    base_latency_us: u64,
    lookahead_us: u64,
    seed: u64,
    /// Shard-local view of the network fault plan. Each directed link is
    /// judged exactly once, in the *sender's* shard, so per-shard
    /// conditioners touch disjoint link states and their counters sum.
    /// A sender's outgoing packet sequence is shard-count-invariant
    /// (conservative windows + deterministic merge order), hence so is
    /// every verdict — the fingerprint identity the chaos tests pin.
    faults: Option<LinkConditioner>,
    /// Lock-free snapshot publication for this shard's actors. Every
    /// shard owns its publishers (only its worker thread touches them)
    /// but all shards share one directory, so observers resolve readers
    /// by actor id without knowing the shard layout. Pure observation —
    /// fingerprints are identical with snapshots on or off.
    snapshots: Option<crate::snaphub::SnapshotHub>,
    /// Per-actor counter for harness fault records (high-bit seq space).
    #[cfg(feature = "trace")]
    fault_seq: Vec<u64>,
    /// Whether machines of this shard record trace events.
    #[cfg(feature = "trace")]
    tracing: bool,
    /// This shard's record buffer. Only the shard's own worker thread
    /// touches it (lock-free by construction); the harness concatenates
    /// and canonically sorts the per-shard buffers at collection time.
    #[cfg(feature = "trace")]
    trace_buf: Vec<peerwindow_trace::TraceRecord>,
}

impl ProtocolShard {
    /// Creates a shard able to host `capacity` actors.
    pub fn new(
        capacity: usize,
        protocol: ProtocolConfig,
        base_latency_us: u64,
        lookahead_us: u64,
        seed: u64,
    ) -> Self {
        ProtocolShard {
            machines: (0..capacity).map(|_| None).collect(),
            protocol,
            base_latency_us,
            lookahead_us,
            seed,
            faults: None,
            snapshots: None,
            #[cfg(feature = "trace")]
            fault_seq: vec![0; capacity],
            #[cfg(feature = "trace")]
            tracing: false,
            #[cfg(feature = "trace")]
            trace_buf: Vec::new(),
        }
    }

    /// Moves `actor`'s buffered records into the shard buffer.
    #[cfg(feature = "trace")]
    fn drain_trace(&mut self, actor: u32) {
        if !self.tracing {
            return;
        }
        if let Some(m) = self.machines[actor as usize].as_mut() {
            m.take_trace(&mut self.trace_buf);
        }
    }

    /// Deterministic per-(src, dst) latency jitter, identical in every
    /// shard layout: base + hash(src, dst) mod 1000 µs, floored at the
    /// lookahead.
    fn latency_us(&self, src: u64, dst: u64) -> u64 {
        let mut h = src
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(dst.wrapping_mul(0xBF58476D1CE4E5B9))
            ^ self.seed;
        h ^= h >> 29;
        h = h.wrapping_mul(0x94D049BB133111EB);
        (self.base_latency_us + (h % 1_000)).max(self.lookahead_us)
    }

    /// Records a fault verdict against the sending actor. Same key
    /// discipline as the full simulator: `node` is the sender and `seq`
    /// has the high bit set, keeping `(at_us, node, seq)` unique against
    /// machine-emitted records — and, because each sender's verdicts
    /// happen in its own shard in event order, byte-identical across
    /// shard counts after the canonical sort.
    #[cfg(feature = "trace")]
    fn trace_fault(
        &mut self,
        now_us: u64,
        actor: u32,
        from: NodeId,
        level: u8,
        to: NodeId,
        fault: peerwindow_trace::FaultClass,
    ) {
        if !self.tracing {
            return;
        }
        let seq = (1 << 63) | self.fault_seq[actor as usize];
        self.fault_seq[actor as usize] += 1;
        self.trace_buf.push(peerwindow_trace::TraceRecord {
            at_us: now_us,
            node: from.raw(),
            seq,
            level,
            cause: peerwindow_trace::CauseId::NONE,
            kind: peerwindow_trace::TraceEventKind::NetFault {
                to: to.raw(),
                fault,
            },
        });
    }

    fn process(&mut self, now_us: u64, actor: u32, outs: Vec<Output>, out: &mut Outbox<PMsg>) {
        let (from, from_level) = match self.machines[actor as usize].as_ref() {
            Some(m) => (m.id(), m.level().value()),
            None => (NodeId(0), 0),
        };
        #[cfg(not(feature = "trace"))]
        let _ = from_level;
        let from_addr = Addr(actor as u64);
        for o in outs {
            match o {
                Output::Send { to, msg, delay_us } => {
                    // Latency ≥ lookahead always; jitter only adds, so
                    // every faulted delivery still clears the engine's
                    // cross-shard lookahead assertion.
                    let base = delay_us + self.latency_us(actor as u64, to.addr.0);
                    let verdict = match self.faults.as_mut() {
                        Some(f) => f.judge(now_us, actor, to.addr.0 as u32),
                        None => Verdict::Deliver { extra_delay_us: 0 },
                    };
                    let (first, dup) = match verdict {
                        Verdict::Deliver { extra_delay_us } => (Some(base + extra_delay_us), None),
                        Verdict::Drop => {
                            #[cfg(feature = "trace")]
                            self.trace_fault(
                                now_us,
                                actor,
                                from,
                                from_level,
                                to.id,
                                peerwindow_trace::FaultClass::Dropped,
                            );
                            (None, None)
                        }
                        Verdict::Duplicate {
                            extra_delay_us,
                            dup_extra_delay_us,
                        } => {
                            #[cfg(feature = "trace")]
                            self.trace_fault(
                                now_us,
                                actor,
                                from,
                                from_level,
                                to.id,
                                peerwindow_trace::FaultClass::Duplicated,
                            );
                            (Some(base + extra_delay_us), Some(base + dup_extra_delay_us))
                        }
                    };
                    if let Some(d) = dup {
                        out.send(
                            d,
                            to.addr.0 as u32,
                            PMsg::Net {
                                from,
                                from_addr,
                                msg: msg.clone(),
                            },
                        );
                    }
                    if let Some(d) = first {
                        out.send(
                            d,
                            to.addr.0 as u32,
                            PMsg::Net {
                                from,
                                from_addr,
                                msg,
                            },
                        );
                    }
                }
                Output::SetTimer { delay_us, timer } => {
                    // Self-send: same shard, exempt from lookahead.
                    out.send(delay_us, actor, PMsg::Timer(timer));
                }
                _ => {}
            }
        }
        // Serving layer: `process` runs directly after every machine
        // event, so publishing here mirrors each peer-list change into
        // the actor's lock-free cell (generation-gated — unchanged lists
        // cost one integer compare).
        if let (Some(hub), Some(m)) = (
            self.snapshots.as_mut(),
            self.machines[actor as usize].as_ref(),
        ) {
            hub.publish(actor, m, now_us);
        }
    }

    /// Order-insensitive digest of one machine.
    fn machine_digest(m: &NodeMachine) -> u64 {
        let mut h = m.id().raw() as u64 ^ (m.id().raw() >> 64) as u64;
        h = h
            .wrapping_mul(31)
            .wrapping_add(m.level().value() as u64 + 1);
        h = h.wrapping_mul(31).wrapping_add(m.peers().len() as u64);
        let peers_sum: u64 = m
            .peers()
            .iter()
            .map(|p| {
                (p.id.raw() as u64 ^ (p.id.raw() >> 64) as u64)
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add(p.level.value() as u64)
            })
            .fold(0u64, u64::wrapping_add);
        h ^ peers_sum
    }
}

impl ShardLogic for ProtocolShard {
    type Msg = PMsg;

    fn handle(&mut self, now: SimTime, actor: u32, msg: PMsg, out: &mut Outbox<PMsg>) {
        let t = now.as_micros();
        match msg {
            PMsg::Start {
                id,
                threshold_bps,
                info,
                bootstrap,
            } => {
                let (m, outs) = match bootstrap {
                    None => NodeMachine::new_seed(
                        self.protocol.clone(),
                        id,
                        Addr(actor as u64),
                        info,
                        threshold_bps,
                        id.raw() as u64 | 1,
                    ),
                    Some(b) => NodeMachine::new_joining(
                        self.protocol.clone(),
                        id,
                        Addr(actor as u64),
                        info,
                        threshold_bps,
                        b,
                        id.raw() as u64 | 1,
                    ),
                };
                self.machines[actor as usize] = Some(m);
                #[cfg(feature = "trace")]
                if self.tracing {
                    if let Some(m) = self.machines[actor as usize].as_mut() {
                        m.set_tracing(true);
                    }
                }
                self.process(t, actor, outs, out);
            }
            PMsg::Net {
                from,
                from_addr,
                msg,
            } => {
                let Some(m) = self.machines[actor as usize].as_mut() else {
                    return;
                };
                let outs = m.handle(
                    t,
                    Input::Message {
                        from,
                        from_addr,
                        msg,
                    },
                );
                #[cfg(feature = "trace")]
                self.drain_trace(actor);
                self.process(t, actor, outs, out);
            }
            PMsg::Timer(timer) => {
                let Some(m) = self.machines[actor as usize].as_mut() else {
                    return;
                };
                let outs = m.handle(t, Input::Timer(timer));
                #[cfg(feature = "trace")]
                self.drain_trace(actor);
                self.process(t, actor, outs, out);
            }
            PMsg::Crash => {
                #[cfg(feature = "trace")]
                self.drain_trace(actor);
                self.machines[actor as usize] = None;
            }
            PMsg::Cmd(c) => {
                let Some(m) = self.machines[actor as usize].as_mut() else {
                    return;
                };
                let outs = m.handle(t, Input::Command(c));
                #[cfg(feature = "trace")]
                self.drain_trace(actor);
                self.process(t, actor, outs, out);
            }
        }
    }

    fn fingerprint(&self) -> u64 {
        self.machines
            .iter()
            .flatten()
            .map(Self::machine_digest)
            .fold(0u64, u64::wrapping_add)
    }
}

/// A convenience harness: builds a `ParallelEngine` of `shards` shards
/// able to host `capacity` actors, with the §5.1-ish uniform latency.
/// Actor placement defaults to [`ModuloShardMap`]; pass a
/// [`StubAffineShardMap`] (or any [`ShardMap`]) via [`Self::with_map`] to
/// co-locate topologically close actors.
pub struct ParallelFullSim<M: ShardMap = ModuloShardMap> {
    engine: ParallelEngine<ProtocolShard, M>,
    capacity: usize,
}

impl ParallelFullSim<ModuloShardMap> {
    /// Creates the world with the default `actor % shards` placement.
    /// `lookahead_us` must lower-bound the network latency (it does:
    /// latencies are floored at it).
    pub fn new(
        shards: usize,
        capacity: usize,
        protocol: ProtocolConfig,
        base_latency_us: u64,
        lookahead_us: u64,
        seed: u64,
    ) -> Self {
        Self::with_map(
            shards,
            capacity,
            protocol,
            base_latency_us,
            lookahead_us,
            seed,
            ModuloShardMap,
        )
    }
}

impl<M: ShardMap> ParallelFullSim<M> {
    /// Creates the world with an explicit actor→shard placement.
    #[allow(clippy::too_many_arguments)]
    pub fn with_map(
        shards: usize,
        capacity: usize,
        protocol: ProtocolConfig,
        base_latency_us: u64,
        lookahead_us: u64,
        seed: u64,
        map: M,
    ) -> Self {
        let logics: Vec<ProtocolShard> = (0..shards)
            .map(|_| {
                ProtocolShard::new(
                    capacity,
                    protocol.clone(),
                    base_latency_us,
                    lookahead_us,
                    seed,
                )
            })
            .collect();
        ParallelFullSim {
            engine: ParallelEngine::with_map(logics, lookahead_us, map),
            capacity,
        }
    }

    /// Schedules a node start. Actor ids are the node addresses.
    pub fn start_node(
        &mut self,
        at: SimTime,
        actor: u32,
        id: NodeId,
        threshold_bps: f64,
        info: Bytes,
        bootstrap: Option<Target>,
    ) {
        assert!((actor as usize) < self.capacity);
        self.engine.schedule(
            at,
            actor,
            PMsg::Start {
                id,
                threshold_bps,
                info,
                bootstrap,
            },
        );
    }

    /// Schedules a silent crash.
    pub fn crash(&mut self, at: SimTime, actor: u32) {
        self.engine.schedule(at, actor, PMsg::Crash);
    }

    /// Schedules an application command.
    pub fn command(&mut self, at: SimTime, actor: u32, cmd: Command) {
        self.engine.schedule(at, actor, PMsg::Cmd(cmd));
    }

    /// Runs to `t`.
    pub fn run_until(&mut self, t: SimTime) {
        self.engine.run_until(t);
    }

    /// Overrides the engine's worker-thread count (default: one per core,
    /// capped at the shard count). Results are bit-identical for every
    /// worker count; tests use this to exercise the threaded window
    /// protocol on small hosts.
    pub fn set_workers(&mut self, workers: usize) {
        self.engine.set_workers(workers);
    }

    /// Re-pins every shard queue's representation policy (heap, wheel,
    /// or adaptive — see [`peerwindow_des::SchedKind`]). Determinism is
    /// unaffected; this is a performance knob for known workload shapes.
    pub fn set_sched_kind(&mut self, kind: peerwindow_des::SchedKind) {
        self.engine.set_sched_kind(kind);
    }

    /// Turns wall-clock runtime metrics on or off for subsequent runs.
    ///
    /// Only effective when the `runtime-metrics` feature is compiled in
    /// (see [`runtime_metrics_active`](peerwindow_des::runtime_metrics_active));
    /// otherwise the engine's Noop sink discards everything. Metrics are
    /// write-only observation: the simulation's fingerprint is
    /// byte-identical with metrics on or off.
    pub fn enable_runtime_metrics(&mut self, on: bool) {
        self.engine.set_metrics_enabled(on);
    }

    /// Wall-clock attribution report for the runs so far, labelled
    /// `name`. Empty (zero time, zero counters) when the
    /// `runtime-metrics` feature is compiled out or metrics were never
    /// enabled.
    pub fn runtime_metrics_report(&self, name: &str) -> peerwindow_metrics::runtime::RunReport {
        self.engine.metrics_report(name)
    }

    /// Order-insensitive digest of the entire world, fault-layer totals
    /// included (per-shard counters sum, so the digest stays
    /// shard-count-invariant).
    pub fn fingerprint(&self) -> u64 {
        let c = self.fault_counters();
        self.engine
            .fingerprint()
            .wrapping_add(c.judged.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(c.dropped.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(c.duplicated.wrapping_mul(0x94D0_49BB_1331_11EB))
            .wrapping_add(c.jittered.wrapping_mul(0xD6E8_FEB8_6659_FD93))
    }

    /// Total events processed (speedup accounting).
    pub fn processed(&self) -> u64 {
        self.engine.processed()
    }

    /// Installs a network fault plan in every shard (replacing any
    /// previous model and its counters). Install before the scenario
    /// runs: per-link random streams start fresh. Each directed link is
    /// judged only in its sender's shard, so one plan drives all shards
    /// without coordination — and without breaking shard invariance.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        for shard in 0..self.engine.shard_count() {
            self.engine.logic_mut(shard).faults = Some(LinkConditioner::new(plan.clone()));
        }
    }

    /// Back-compat shim: uniform per-datagram loss as a degenerate
    /// [`FaultPlan`] (0.0 = reliable network, no model installed).
    pub fn set_loss(&mut self, loss: f64) {
        let loss = loss.clamp(0.0, 1.0);
        if loss <= 0.0 {
            self.clear_faults();
        } else {
            let seed = self.engine.logic(0).seed ^ 0xFA_0175;
            self.set_fault_plan(&FaultPlan::uniform_loss(seed, loss));
        }
    }

    /// Removes the fault model from every shard.
    pub fn clear_faults(&mut self) {
        for shard in 0..self.engine.shard_count() {
            self.engine.logic_mut(shard).faults = None;
        }
    }

    /// Fault-layer totals, summed over shards (zeros when no model is
    /// installed).
    pub fn fault_counters(&self) -> FaultCounters {
        let mut total = FaultCounters::default();
        for shard in 0..self.engine.shard_count() {
            if let Some(f) = self.engine.logic(shard).faults.as_ref() {
                total.merge(&f.counters());
            }
        }
        total
    }

    /// Datagrams dropped by the fault layer so far.
    pub fn dropped(&self) -> u64 {
        self.fault_counters().dropped
    }

    /// Read access to `actor`'s machine, wherever its shard lives.
    pub fn machine(&self, actor: u32) -> Option<&NodeMachine> {
        (0..self.engine.shard_count()).find_map(|s| {
            self.engine
                .logic(s)
                .machines
                .get(actor as usize)
                .and_then(Option::as_ref)
        })
    }

    /// Iterates `(actor, machine)` over live machines in actor order
    /// (deterministic regardless of shard layout).
    pub fn machines(&self) -> impl Iterator<Item = (u32, &NodeMachine)> + '_ {
        (0..self.capacity as u32).filter_map(move |a| self.machine(a).map(|m| (a, m)))
    }

    /// Live machine count across all shards.
    pub fn live_count(&self) -> usize {
        self.machines().count()
    }

    /// Ground-truth live identities (id, level) from the machines.
    pub fn ground_truth(&self) -> Vec<NodeIdentity> {
        self.machines()
            .filter(|(_, m)| m.is_active())
            .map(|(_, m)| NodeIdentity::new(m.id(), m.level()))
            .collect()
    }

    /// Peer-list accuracy against ground truth, `(correct, missing,
    /// stale)` — same definition as [`crate::FullSim::accuracy`].
    pub fn accuracy(&self) -> (usize, usize, usize) {
        let truth = self.ground_truth();
        let live: std::collections::BTreeSet<NodeId> = truth.iter().map(|n| n.id).collect();
        let mut correct = 0;
        let mut missing = 0;
        let mut stale = 0;
        for (_, m) in self.machines().filter(|(_, m)| m.is_active()) {
            let scope = m.eigenstring();
            for t in &truth {
                if t.id != m.id() && scope.contains(t.id) {
                    correct += 1;
                    if !m.peers().contains(t.id) {
                        missing += 1;
                    }
                }
            }
            for p in m.peers().iter() {
                if !live.contains(&p.id) {
                    stale += 1;
                }
            }
        }
        (correct, missing, stale)
    }

    /// Partition-aware settle check (§4.4) over the live machines — see
    /// [`peerwindow_core::parts::audit_parts`].
    pub fn part_audit(&self) -> PartAudit {
        let views: Vec<(NodeIdentity, Vec<NodeId>)> = self
            .machines()
            .filter(|(_, m)| m.is_active())
            .map(|(_, m)| {
                (
                    NodeIdentity::new(m.id(), m.level()),
                    m.peers().iter().map(|p| p.id).collect(),
                )
            })
            .collect();
        audit_parts(&views)
    }

    /// Turns lock-free snapshot publication on in every shard: each
    /// actor's peer list is mirrored into a per-actor [`Published`] cell
    /// after every handled event. All shards publish into one shared
    /// directory (returned here), so observers resolve readers by actor
    /// id without knowing the shard layout. Call between windows
    /// (before `run_until`). Idempotent — a second call returns the
    /// existing directory.
    ///
    /// Publication is pure observation: the simulation outcome
    /// (fingerprints included) is identical with snapshots on or off,
    /// for every shard count — asserted by the workspace
    /// `query_consistency` tests.
    pub fn enable_snapshots(&mut self) -> std::sync::Arc<SnapshotDirectory> {
        if let Some(hub) = self.engine.logic(0).snapshots.as_ref() {
            return hub.directory();
        }
        let now_us = self.engine.now().as_micros();
        let dir = std::sync::Arc::new(SnapshotDirectory::new());
        for shard in 0..self.engine.shard_count() {
            let logic = self.engine.logic_mut(shard);
            let mut hub = crate::snaphub::SnapshotHub::with_directory(std::sync::Arc::clone(&dir));
            for (actor, m) in logic.machines.iter().enumerate() {
                if let Some(m) = m.as_ref() {
                    hub.publish(actor as u32, m, now_us);
                }
            }
            logic.snapshots = Some(hub);
        }
        dir
    }

    /// A lock-free reader over `actor`'s published snapshots. `None`
    /// until [`Self::enable_snapshots`] has run and the actor published.
    pub fn snapshot_reader(&self, actor: u32) -> Option<SnapshotReader> {
        (0..self.engine.shard_count())
            .find_map(|s| self.engine.logic(s).snapshots.as_ref()?.reader(actor))
    }

    /// Total snapshots published across all shards (0 when off).
    pub fn snapshots_published(&self) -> u64 {
        (0..self.engine.shard_count())
            .filter_map(|s| self.engine.logic(s).snapshots.as_ref())
            .map(crate::snaphub::SnapshotHub::published)
            .sum()
    }

    /// Turns structured tracing on for every current and future machine,
    /// in every shard. Call between windows (before `run_until`).
    #[cfg(feature = "trace")]
    pub fn enable_tracing(&mut self, on: bool) {
        for shard in 0..self.engine.shard_count() {
            let logic = self.engine.logic_mut(shard);
            logic.tracing = on;
            for m in logic.machines.iter_mut().flatten() {
                m.set_tracing(on);
            }
        }
    }

    /// Collects every shard's records into one canonically ordered log,
    /// clearing the shard buffers. The `(at_us, node, seq)` sort key is a
    /// pure function of the protocol run, so the result is byte-for-byte
    /// identical for any shard count (asserted by the workspace tests).
    #[cfg(feature = "trace")]
    pub fn take_trace(&mut self) -> Vec<peerwindow_trace::TraceRecord> {
        let mut log = Vec::new();
        for shard in 0..self.engine.shard_count() {
            let logic = self.engine.logic_mut(shard);
            for actor in 0..logic.machines.len() as u32 {
                logic.drain_trace(actor);
            }
            log.append(&mut logic.trace_buf);
        }
        peerwindow_trace::canonical_sort(&mut log);
        log
    }

    /// Samples engine counters plus machine aggregates into a registry.
    #[cfg(feature = "trace")]
    pub fn sample_metrics(&self, reg: &mut peerwindow_trace::CounterRegistry) {
        self.engine.sample_into(reg);
        let (count, peer_sum, retries) = (0..self.engine.shard_count())
            .flat_map(|s| self.engine.logic(s).machines.iter().flatten())
            .filter(|m| m.is_active())
            .fold((0u64, 0u64, 0u64), |(c, p, r), m| {
                (c + 1, p + m.peers().len() as u64, r + m.stats().rpc_retries)
            });
        reg.set_gauge("nodes.live", count as f64);
        reg.set_gauge(
            "peers.mean",
            if count > 0 {
                peer_sum as f64 / count as f64
            } else {
                0.0
            },
        );
        reg.set("rpc.retries", retries);
        let c = self.fault_counters();
        reg.set("faults.judged", c.judged);
        reg.set("faults.dropped", c.dropped);
        reg.set("faults.duplicated", c.duplicated);
        reg.set("faults.jittered", c.jittered);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(shards: usize) -> (u64, u64) {
        scenario_with(shards, ModuloShardMap)
    }

    fn scenario_with<M: ShardMap>(shards: usize, map: M) -> (u64, u64) {
        let protocol = ProtocolConfig {
            probe_interval_us: 2_000_000,
            rpc_timeout_us: 400_000,
            processing_delay_us: 10_000,
            bandwidth_window_us: 8_000_000,
            ..ProtocolConfig::default()
        };
        let n = 48u32;
        let mut sim =
            ParallelFullSim::with_map(shards, n as usize, protocol, 20_000, 1_000, 7, map);
        // Seed at actor 0, then staggered joiners bootstrapping off it.
        let seed_id = NodeId(0x0123_4567_89AB_CDEF_0011_2233_4455_6677);
        sim.start_node(SimTime::ZERO, 0, seed_id, 1e9, Bytes::new(), None);
        let boot = Target {
            id: seed_id,
            addr: Addr(0),
            level: Level::TOP,
        };
        for k in 1..n {
            let id =
                NodeId((k as u128).wrapping_mul(0x9E37_79B9_7F4A_7C15_F39C_0C4A_2B8E_D1A3) | 1);
            sim.start_node(
                SimTime::from_millis(400 * k as u64),
                k,
                id,
                1e9,
                Bytes::new(),
                Some(boot),
            );
        }
        // A couple of crashes and an info change mid-run.
        sim.crash(SimTime::from_secs(30), 5);
        sim.crash(SimTime::from_secs(31), 9);
        sim.command(
            SimTime::from_secs(35),
            3,
            Command::ChangeInfo(Bytes::from_static(b"v2")),
        );
        sim.run_until(SimTime::from_secs(80));
        (sim.fingerprint(), sim.processed())
    }

    #[test]
    fn outcome_is_invariant_across_shard_counts() {
        let (f1, p1) = scenario(1);
        let (f2, p2) = scenario(2);
        let (f4, p4) = scenario(4);
        let (f7, p7) = scenario(7);
        assert_eq!(p1, p2, "processed-event counts differ (1 vs 2 shards)");
        assert_eq!(p1, p4, "processed-event counts differ (1 vs 4 shards)");
        assert_eq!(p1, p7, "processed-event counts differ (1 vs 7 shards)");
        assert_eq!(f1, f2, "world digest differs (1 vs 2 shards)");
        assert_eq!(f1, f4, "world digest differs (1 vs 4 shards)");
        assert_eq!(f1, f7, "world digest differs (1 vs 7 shards)");
    }

    /// The topology-affine placement moves actors between shards but must
    /// not move the simulation: fingerprints and processed-event counts
    /// match the modulo layout for every shard count.
    #[test]
    fn outcome_is_invariant_under_stub_affine_map() {
        use peerwindow_topology::{TransitStubNetwork, TransitStubParams};
        let topo = peerwindow_topology::Topology::generate(TransitStubParams::small(), 11);
        let net = TransitStubNetwork::build(&topo);
        let affine = StubAffineShardMap::new(&net);
        let (f1, p1) = scenario(1);
        for shards in [2usize, 4, 7] {
            let (fa, pa) = scenario_with(shards, affine);
            assert_eq!(p1, pa, "processed counts differ (affine, {shards} shards)");
            assert_eq!(f1, fa, "world digest differs (affine, {shards} shards)");
        }
        // Sanity: the affine map really does group neighbours — actors
        // attached to the same stub domain share a shard.
        let spd = net.stubs_per_domain();
        assert!(spd >= 2, "small topology should have multi-stub domains");
        assert_eq!(affine.shard_of(0, 4), affine.shard_of(1, 4));
        assert_ne!(
            affine.shard_of(0, net.stub_count() as usize / spd as usize),
            affine.shard_of(spd, net.stub_count() as usize / spd as usize),
        );
    }

    #[test]
    fn scenario_actually_converges() {
        let protocol = ProtocolConfig {
            probe_interval_us: 2_000_000,
            rpc_timeout_us: 400_000,
            processing_delay_us: 10_000,
            bandwidth_window_us: 8_000_000,
            ..ProtocolConfig::default()
        };
        let n = 24u32;
        let mut sim = ParallelFullSim::new(3, n as usize, protocol, 20_000, 1_000, 9);
        let seed_id = NodeId(0xFACE_0000_0000_0000_0000_0000_0000_0001);
        sim.start_node(SimTime::ZERO, 0, seed_id, 1e9, Bytes::new(), None);
        let boot = Target {
            id: seed_id,
            addr: Addr(0),
            level: Level::TOP,
        };
        for k in 1..n {
            let id = NodeId((k as u128) << 96 | 0xBEEF);
            sim.start_node(
                SimTime::from_millis(500 * k as u64),
                k,
                id,
                1e9,
                Bytes::new(),
                Some(boot),
            );
        }
        sim.run_until(SimTime::from_secs(60));
        // Peek machine states through the fingerprint path: every live
        // machine should know the other 23.
        let mut sizes = Vec::new();
        for shard in 0..3 {
            let logic = sim.engine.logic(shard);
            for m in logic.machines.iter().flatten() {
                sizes.push(m.peers().len());
            }
        }
        assert_eq!(sizes.len(), 24);
        assert!(
            sizes.iter().all(|&s| s == 23),
            "peer lists not converged: {sizes:?}"
        );
    }
}
