//! Ground-truth membership directory for oracle-mode simulation.
//!
//! The paper's own experiment uses this trick (§5): "Considering that
//! PeerWindow nodes with the same eigenstring would have the same peer
//! list, we record all the correct peer lists in a centralized data
//! structure, and only record erroneous items in nodes' individual data
//! structures." The directory holds the live membership in sorted vectors
//! (one global, one per level), so every peer-list-shaped question — list
//! sizes, audience sets, multicast target selection — is a pair of binary
//! searches instead of per-node state.

use peerwindow_core::prelude::{Level, NodeId, Prefix};
use std::collections::HashMap; // audit: ordered — key lookups only, never iterated

/// Per-node simulation state (traffic accounting and workload schedule).
#[derive(Clone, Debug)]
pub struct SlotData {
    /// Node id.
    pub id: NodeId,
    /// Overlay address (stable per slot; maps to a topology stub node).
    pub addr: u32,
    /// Current level.
    pub level: Level,
    /// Bandwidth threshold, bps.
    pub threshold_bps: f64,
    /// Total access bandwidth, bps (reporting only).
    pub bandwidth_bps: f64,
    /// Whether the node is currently alive.
    pub alive: bool,
    /// Bits received in the current adaptation window.
    pub rx_window_bits: u64,
    /// Bits received during the measurement period.
    pub rx_measure_bits: u64,
    /// Bits sent during the measurement period.
    pub tx_measure_bits: u64,
    /// Event sequence counter (for StateEvent seq fields).
    pub seq: u64,
    /// Adaptation debounce: +1 per over-budget window, −1 per
    /// raise-eligible window, reset on in-band windows; a shift needs two
    /// consecutive same-direction windows (deep levels see few events per
    /// window, and acting on one noisy sample makes them flap).
    pub pressure: i8,
}

/// The ground-truth directory.
#[derive(Clone, Debug, Default)]
pub struct Directory {
    /// All live ids, sorted.
    all: Vec<u128>,
    /// Live ids per level, each sorted.
    levels: Vec<Vec<u128>>,
    /// id → slot index.
    index: HashMap<u128, u32>, // audit: ordered — key lookups only, never iterated
    /// Slot storage (never shrinks; `alive` distinguishes).
    slots: Vec<SlotData>,
    /// Live count per level (kept in sync with `levels`).
    level_counts: Vec<usize>,
}

fn insert_sorted(v: &mut Vec<u128>, x: u128) {
    match v.binary_search(&x) {
        Ok(_) => {}
        Err(pos) => v.insert(pos, x),
    }
}

fn remove_sorted(v: &mut Vec<u128>, x: u128) {
    if let Ok(pos) = v.binary_search(&x) {
        v.remove(pos);
    }
}

/// Index range of ids with prefix `p` within a sorted vector.
fn range_of(v: &[u128], p: Prefix) -> (usize, usize) {
    let lo = v.partition_point(|&x| x < p.range_start().raw());
    let hi = v.partition_point(|&x| x <= p.range_end().raw());
    (lo, hi)
}

impl Directory {
    /// Empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.all.len()
    }

    /// Whether the system is empty.
    pub fn is_empty(&self) -> bool {
        self.all.is_empty()
    }

    /// Highest level value in use.
    pub fn max_level(&self) -> u8 {
        self.levels.len().saturating_sub(1) as u8
    }

    /// Live nodes at `level`.
    pub fn level_count(&self, level: u8) -> usize {
        self.level_counts.get(level as usize).copied().unwrap_or(0)
    }

    /// The slot storage (including dead slots).
    pub fn slots(&self) -> &[SlotData] {
        &self.slots
    }

    /// Mutable slot access.
    pub fn slot_mut(&mut self, slot: u32) -> &mut SlotData {
        &mut self.slots[slot as usize]
    }

    /// Slot of a live id.
    pub fn slot_of(&self, id: NodeId) -> Option<u32> {
        self.index.get(&id.raw()).copied()
    }

    /// Slot data of a live id.
    pub fn get(&self, id: NodeId) -> Option<&SlotData> {
        self.slot_of(id).map(|s| &self.slots[s as usize])
    }

    /// Adds a node; returns its slot.
    ///
    /// # Panics
    /// Panics if the id is already live.
    pub fn join(
        &mut self,
        id: NodeId,
        addr: u32,
        level: Level,
        threshold_bps: f64,
        bandwidth_bps: f64,
    ) -> u32 {
        assert!(
            !self.index.contains_key(&id.raw()),
            "duplicate join of {id}"
        );
        let slot = self.slots.len() as u32;
        self.slots.push(SlotData {
            id,
            addr,
            level,
            threshold_bps,
            bandwidth_bps,
            alive: true,
            rx_window_bits: 0,
            rx_measure_bits: 0,
            tx_measure_bits: 0,
            seq: 1,
            pressure: 0,
        });
        self.index.insert(id.raw(), slot);
        insert_sorted(&mut self.all, id.raw());
        let l = level.value() as usize;
        if self.levels.len() <= l {
            self.levels.resize_with(l + 1, Vec::new);
            self.level_counts.resize(l + 1, 0);
        }
        insert_sorted(&mut self.levels[l], id.raw());
        self.level_counts[l] += 1;
        slot
    }

    /// Removes a node; returns its slot if it was live.
    pub fn leave(&mut self, id: NodeId) -> Option<u32> {
        let slot = self.index.remove(&id.raw())?;
        let level = self.slots[slot as usize].level.value() as usize;
        self.slots[slot as usize].alive = false;
        remove_sorted(&mut self.all, id.raw());
        remove_sorted(&mut self.levels[level], id.raw());
        self.level_counts[level] -= 1;
        Some(slot)
    }

    /// Changes a live node's level; returns `(slot, old_level)`.
    pub fn change_level(&mut self, id: NodeId, new: Level) -> Option<(u32, Level)> {
        let slot = self.slot_of(id)?;
        let old = self.slots[slot as usize].level;
        if old == new {
            return None;
        }
        remove_sorted(&mut self.levels[old.value() as usize], id.raw());
        self.level_counts[old.value() as usize] -= 1;
        let l = new.value() as usize;
        if self.levels.len() <= l {
            self.levels.resize_with(l + 1, Vec::new);
            self.level_counts.resize(l + 1, 0);
        }
        insert_sorted(&mut self.levels[l], id.raw());
        self.level_counts[l] += 1;
        self.slots[slot as usize].level = new;
        Some((slot, old))
    }

    /// Number of live ids with prefix `p` — the correct peer-list size of
    /// any node whose eigenstring is `p` (§2 property 1).
    pub fn count_prefix(&self, p: Prefix) -> usize {
        let (lo, hi) = range_of(&self.all, p);
        hi - lo
    }

    /// Live ids at `level` with prefix `p` (a group's population).
    pub fn count_level_prefix(&self, level: u8, p: Prefix) -> usize {
        match self.levels.get(level as usize) {
            Some(v) => {
                let (lo, hi) = range_of(v, p);
                hi - lo
            }
            None => 0,
        }
    }

    /// Iterates live ids at `level` within `p`.
    pub fn level_prefix_ids(&self, level: u8, p: Prefix) -> &[u128] {
        match self.levels.get(level as usize) {
            Some(v) => {
                let (lo, hi) = range_of(v, p);
                &v[lo..hi]
            }
            None => &[],
        }
    }

    /// All live ids, sorted.
    pub fn all_ids(&self) -> &[u128] {
        &self.all
    }

    /// The part of node `id` (§4.4): the smallest `l` such that some live
    /// node's eigenstring equals `id.prefix(l)`. Returns `(top_level,
    /// part_prefix)`; `None` only when the system is empty of coverers
    /// (cannot happen for a live id — its own eigenstring covers it).
    pub fn part_of(&self, id: NodeId) -> Option<(Level, Prefix)> {
        for l in 0..=self.max_level() {
            let p = id.prefix(l);
            if self.count_level_prefix(l, p) > 0 {
                return Some((Level::new(l), p));
            }
        }
        None
    }

    /// Picks a pseudo-random top node of `subject`'s part, excluding the
    /// subject itself. `die` supplies randomness (index below n).
    pub fn random_top_for(
        &self,
        subject: NodeId,
        mut die: impl FnMut(usize) -> usize,
    ) -> Option<NodeId> {
        let (top_level, part) = self.part_of(subject)?;
        let ids = self.level_prefix_ids(top_level.value(), part);
        if ids.is_empty() {
            return None;
        }
        for _ in 0..8 {
            let cand = ids[die(ids.len())];
            if cand != subject.raw() {
                return Some(NodeId(cand));
            }
        }
        ids.iter()
            .find(|&&x| x != subject.raw())
            .map(|&x| NodeId(x))
    }

    /// The audience set of `subject`, as `(id, level, slot)` triples sorted
    /// by id: for each level `l`, the live level-`l` nodes whose id shares
    /// `subject`'s first `l` bits. Writes into `out` (reused buffer).
    pub fn collect_audience(&self, subject: NodeId, out: &mut Vec<AudienceEntry>) {
        out.clear();
        for l in 0..self.levels.len() {
            let p = subject.prefix(l as u8);
            let ids = self.level_prefix_ids(l as u8, p);
            out.reserve(ids.len());
            for &raw in ids {
                if raw == subject.raw() {
                    continue;
                }
                let slot = self.index[&raw];
                out.push(AudienceEntry {
                    id: raw,
                    level: l as u8,
                    slot,
                    addr: self.slots[slot as usize].addr,
                });
            }
        }
        out.sort_unstable_by_key(|e| e.id);
    }

    /// Consistency check for tests: every invariant the sorted vectors and
    /// counters must satisfy.
    pub fn check_invariants(&self) {
        assert!(self.all.windows(2).all(|w| w[0] < w[1]), "all not sorted");
        let mut total = 0;
        for (l, v) in self.levels.iter().enumerate() {
            assert!(v.windows(2).all(|w| w[0] < w[1]), "level {l} not sorted");
            assert_eq!(v.len(), self.level_counts[l], "level {l} count");
            total += v.len();
            for &id in v {
                let slot = self.index[&id];
                assert_eq!(self.slots[slot as usize].level.value() as usize, l);
                assert!(self.slots[slot as usize].alive);
            }
        }
        assert_eq!(total, self.all.len(), "levels partition all");
        assert_eq!(self.index.len(), self.all.len());
    }
}

/// One audience-set member (sorted extraction for the tree planner).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AudienceEntry {
    /// Raw node id.
    pub id: u128,
    /// Level.
    pub level: u8,
    /// Slot index.
    pub slot: u32,
    /// Overlay address (copied out so planners never re-touch slots).
    pub addr: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid(bits: &str) -> NodeId {
        Prefix::from_bits_str(bits).unwrap().range_start()
    }

    fn figure1() -> Directory {
        let mut d = Directory::new();
        for (i, (bits, level)) in [
            ("0010", 0u8), // A
            ("0111", 0),   // B
            ("0100", 2),   // C
            ("1101", 1),   // D
            ("1011", 1),   // E
            ("0110", 2),   // F
            ("0000", 2),   // G
            ("1010", 2),   // H
            ("0011", 2),   // I
            ("1000", 3),   // J
        ]
        .iter()
        .enumerate()
        {
            d.join(nid(bits), i as u32, Level::new(*level), 500.0, 1e6);
        }
        d.check_invariants();
        d
    }

    #[test]
    fn join_leave_change_level_keep_invariants() {
        let mut d = figure1();
        assert_eq!(d.len(), 10);
        assert_eq!(d.level_count(0), 2);
        assert_eq!(d.level_count(2), 5);
        d.leave(nid("0111"));
        d.check_invariants();
        assert_eq!(d.level_count(0), 1);
        d.change_level(nid("1011"), Level::new(2));
        d.check_invariants();
        assert_eq!(d.level_count(1), 1);
        assert_eq!(d.level_count(2), 6);
        // no-op change returns None
        assert!(d.change_level(nid("1011"), Level::new(2)).is_none());
        // rejoin after leave works
        d.join(nid("0111"), 99, Level::TOP, 500.0, 1e6);
        d.check_invariants();
        assert_eq!(d.level_count(0), 2);
    }

    #[test]
    fn count_prefix_is_correct_list_size() {
        let d = figure1();
        assert_eq!(d.count_prefix(Prefix::EMPTY), 10);
        assert_eq!(d.count_prefix(Prefix::from_bits_str("1").unwrap()), 4);
        assert_eq!(d.count_prefix(Prefix::from_bits_str("10").unwrap()), 3);
        assert_eq!(d.count_prefix(Prefix::from_bits_str("11").unwrap()), 1);
    }

    #[test]
    fn audience_matches_paper_example() {
        let d = figure1();
        let mut out = Vec::new();
        d.collect_audience(nid("1011"), &mut out);
        let ids: Vec<u128> = out.iter().map(|e| e.id).collect();
        let expect: Vec<u128> = [nid("0010"), nid("0111"), nid("1010"), nid("1101")]
            .iter()
            .map(|n| n.raw())
            .collect();
        assert_eq!(ids, expect);
        // levels carried along
        let h = out.iter().find(|e| e.id == nid("1010").raw()).unwrap();
        assert_eq!(h.level, 2);
    }

    #[test]
    fn part_of_whole_system_is_top() {
        let d = figure1();
        let (l, p) = d.part_of(nid("1011")).unwrap();
        assert_eq!(l, Level::TOP);
        assert_eq!(p, Prefix::EMPTY);
    }

    #[test]
    fn part_of_split_system() {
        let mut d = figure1();
        d.leave(nid("0010"));
        d.leave(nid("0111"));
        d.check_invariants();
        // Now the "1…" side's tops are the level-1 nodes D and E.
        let (l, p) = d.part_of(nid("1000")).unwrap();
        assert_eq!(l, Level::new(1));
        assert_eq!(p, Prefix::from_bits_str("1").unwrap());
        // The "0…" side splits further: C and F ("01"-group level 2).
        let (l, p) = d.part_of(nid("0110")).unwrap();
        assert_eq!(l, Level::new(2));
        assert_eq!(p, Prefix::from_bits_str("01").unwrap());
    }

    #[test]
    fn random_top_excludes_subject() {
        let d = figure1();
        let mut k = 0usize;
        let top = d
            .random_top_for(nid("0010"), |n| {
                k += 1;
                (k - 1) % n
            })
            .unwrap();
        assert_ne!(top, nid("0010"));
        assert_eq!(top, nid("0111")); // the only other top
    }

    #[test]
    fn random_top_in_split_part() {
        let mut d = figure1();
        d.leave(nid("0010"));
        d.leave(nid("0111"));
        let top = d.random_top_for(nid("1000"), |_| 0).unwrap();
        // Tops of part "1" are D (1101) and E (1011); die(0) picks E
        // (smaller id sorts first).
        assert_eq!(top, nid("1011"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Clone, Debug)]
    enum Op {
        Join(u128, u8),
        Leave(usize),
        Shift(usize, u8),
    }

    fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
        proptest::collection::vec(
            prop_oneof![
                (any::<u128>(), 0u8..6).prop_map(|(id, l)| Op::Join(id, l)),
                any::<usize>().prop_map(Op::Leave),
                (any::<usize>(), 0u8..6).prop_map(|(i, l)| Op::Shift(i, l)),
            ],
            1..120,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Random operation sequences keep every structural invariant, and
        /// the range counts always agree with a brute-force recount.
        #[test]
        fn random_ops_maintain_invariants(ops in arb_ops(), probe in any::<u128>()) {
            let mut dir = Directory::new();
            let mut live: Vec<u128> = Vec::new();
            for op in ops {
                match op {
                    Op::Join(id, level) => {
                        if dir.get(NodeId(id)).is_none() {
                            dir.join(NodeId(id), 0, Level::new(level), 500.0, 1e6);
                            live.push(id);
                        }
                    }
                    Op::Leave(i) => {
                        if !live.is_empty() {
                            let id = live.remove(i % live.len());
                            prop_assert!(dir.leave(NodeId(id)).is_some());
                        }
                    }
                    Op::Shift(i, level) => {
                        if !live.is_empty() {
                            let id = live[i % live.len()];
                            dir.change_level(NodeId(id), Level::new(level));
                        }
                    }
                }
                dir.check_invariants();
            }
            prop_assert_eq!(dir.len(), live.len());
            // count_prefix agrees with brute force for a random probe.
            for l in [0u8, 1, 2, 5, 9] {
                let p = NodeId(probe).prefix(l);
                let brute = live.iter().filter(|&&id| p.contains(NodeId(id))).count();
                prop_assert_eq!(dir.count_prefix(p), brute, "prefix len {}", l);
            }
            // Audience extraction matches the covers() definition.
            let mut audience = Vec::new();
            dir.collect_audience(NodeId(probe), &mut audience);
            let brute: std::collections::BTreeSet<u128> = live
                .iter()
                .filter(|&&id| {
                    id != probe && {
                        let lvl = dir.get(NodeId(id)).unwrap().level;
                        NodeId(id).prefix(lvl.value()).contains(NodeId(probe))
                    }
                })
                .copied()
                .collect();
            let got: std::collections::BTreeSet<u128> =
                audience.iter().map(|e| e.id).collect();
            prop_assert_eq!(got, brute);
        }

        /// part_of always returns the strongest covering eigenstring.
        #[test]
        fn part_of_is_minimal_cover(ids in proptest::collection::vec((any::<u128>(), 0u8..5), 1..40)) {
            let mut dir = Directory::new();
            for &(id, l) in &ids {
                if dir.get(NodeId(id)).is_none() {
                    dir.join(NodeId(id), 0, Level::new(l), 500.0, 1e6);
                }
            }
            for &(id, _) in &ids {
                let (top_level, p) = dir.part_of(NodeId(id)).expect("own eigenstring covers");
                prop_assert!(p.contains(NodeId(id)));
                prop_assert_eq!(p.len(), top_level.value());
                // Nothing stronger covers it.
                for l in 0..top_level.value() {
                    prop_assert_eq!(
                        dir.count_level_prefix(l, NodeId(id).prefix(l)),
                        0,
                        "stronger cover exists at level {}", l
                    );
                }
            }
        }
    }
}
