//! Explicit-probing baseline (§1's strawman).
//!
//! Maintain pointers by heartbeating every neighbor every `T` seconds.
//! The paper's point: with a 2-hour average lifetime, ≈ 99.6 % of probes
//! return "still alive" and teach nothing, so 10 kbps of budget maintains
//! only ≈ 600 pointers — versus ≈ 24,000 for PeerWindow under the same
//! budget. This module provides both the closed-form model and a small
//! event-driven simulation that measures achieved staleness empirically.

use peerwindow_des::DetRng;

/// Parameters of the explicit-probing protocol.
#[derive(Clone, Copy, Debug)]
pub struct ProbingConfig {
    /// Heartbeat period, seconds (§1 example: 30).
    pub heartbeat_interval_s: f64,
    /// Heartbeat message size, bits (§1 example: 500).
    pub heartbeat_bits: f64,
    /// Mean node lifetime, seconds.
    pub lifetime_s: f64,
}

impl Default for ProbingConfig {
    fn default() -> Self {
        ProbingConfig {
            heartbeat_interval_s: 30.0,
            heartbeat_bits: 500.0,
            lifetime_s: 2.0 * 3600.0,
        }
    }
}

impl ProbingConfig {
    /// Outgoing probe bandwidth needed per maintained pointer, bps.
    pub fn cost_per_pointer_bps(&self) -> f64 {
        self.heartbeat_bits / self.heartbeat_interval_s
    }

    /// Pointers maintainable within `budget_bps` (§1: 10 kbps → 600).
    pub fn pointers_for_budget(&self, budget_bps: f64) -> f64 {
        budget_bps / self.cost_per_pointer_bps()
    }

    /// Fraction of probes that return positively (teach nothing): a
    /// neighbor departs within a probe period with probability
    /// `T / lifetime`, so `1 − T/L` of probes are wasted (§1:
    /// 239/240 ≈ 99.58 %).
    pub fn wasted_probe_fraction(&self) -> f64 {
        1.0 - self.heartbeat_interval_s / self.lifetime_s
    }

    /// Expected staleness of a detected departure: half the heartbeat
    /// period on average.
    pub fn mean_detection_delay_s(&self) -> f64 {
        self.heartbeat_interval_s / 2.0
    }

    /// Expected peer-list error rate: each entry is stale for
    /// `T/2` per departure, departures happen once per lifetime.
    pub fn error_rate(&self) -> f64 {
        self.mean_detection_delay_s() / self.lifetime_s
    }
}

/// Result of the probing simulation.
#[derive(Clone, Copy, Debug, Default)]
pub struct ProbingSimResult {
    /// Probes sent.
    pub probes: u64,
    /// Probes answered positively (wasted).
    pub wasted: u64,
    /// Departures detected.
    pub detections: u64,
    /// Mean staleness of detected departures, seconds.
    pub mean_staleness_s: f64,
    /// Achieved outgoing bandwidth, bps.
    pub out_bps: f64,
}

/// Monte-Carlo simulation of one prober maintaining `k` pointers over
/// exponential-lifetime neighbors for `duration_s`.
pub fn simulate_probing(
    cfg: ProbingConfig,
    k: usize,
    duration_s: f64,
    seed: u64,
) -> ProbingSimResult {
    let mut rng = DetRng::for_stream(seed, 0xBEEF);
    // Each neighbor has a current death time; on detection it is replaced
    // (the prober refills its list), mirroring steady state.
    let mut death: Vec<f64> = (0..k).map(|_| rng.exponential(cfg.lifetime_s)).collect();
    let mut probes = 0u64;
    let mut wasted = 0u64;
    let mut detections = 0u64;
    let mut staleness_sum = 0.0;
    let mut t = 0.0;
    while t < duration_s {
        t += cfg.heartbeat_interval_s;
        for d in death.iter_mut() {
            probes += 1;
            if *d <= t {
                detections += 1;
                staleness_sum += t - *d;
                *d = t + rng.exponential(cfg.lifetime_s);
            } else {
                wasted += 1;
            }
        }
    }
    ProbingSimResult {
        probes,
        wasted,
        detections,
        mean_staleness_s: if detections > 0 {
            staleness_sum / detections as f64
        } else {
            0.0
        },
        out_bps: probes as f64 * cfg.heartbeat_bits / duration_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_strawman_numbers() {
        let cfg = ProbingConfig::default();
        // 10 kbps maintains 600 pointers (§1).
        assert!((cfg.pointers_for_budget(10_000.0) - 600.0).abs() < 1e-9);
        // 99.58 % of probes are wasted (§1: 239/240).
        assert!((cfg.wasted_probe_fraction() - 239.0 / 240.0).abs() < 1e-9);
    }

    #[test]
    fn simulation_matches_model() {
        let cfg = ProbingConfig::default();
        let r = simulate_probing(cfg, 500, 100_000.0, 1);
        // Wasted fraction ≈ model.
        let wf = r.wasted as f64 / r.probes as f64;
        assert!(
            (wf - cfg.wasted_probe_fraction()).abs() < 0.005,
            "wasted {wf}"
        );
        // Mean staleness ≈ T/2.
        assert!(
            (r.mean_staleness_s - cfg.mean_detection_delay_s()).abs() < 2.0,
            "staleness {}",
            r.mean_staleness_s
        );
        // Bandwidth = k · bits / interval.
        let expect = 500.0 * cfg.heartbeat_bits / cfg.heartbeat_interval_s;
        assert!((r.out_bps - expect).abs() < 0.02 * expect);
    }

    #[test]
    fn probing_is_an_order_of_magnitude_worse_than_peerwindow() {
        // Same environment as §2's efficiency example: L = 3600 s.
        let cfg = ProbingConfig {
            lifetime_s: 3600.0,
            ..ProbingConfig::default()
        };
        let probing_pointers = cfg.pointers_for_budget(5_000.0);
        let pw = peerwindow_core::model::ModelParams {
            lifetime_s: 3600.0,
            ..Default::default()
        };
        let pw_pointers = pw.pointers_for_budget(5_000.0);
        assert!(
            pw_pointers > 10.0 * probing_pointers,
            "PeerWindow {pw_pointers} vs probing {probing_pointers}"
        );
    }
}
