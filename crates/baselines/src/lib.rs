//! # peerwindow-baselines
//!
//! The comparison points the paper argues against:
//!
//! * [`probing`] — §1's explicit-heartbeat strawman (10 kbps → 600
//!   pointers);
//! * [`gossip`] — the §2 gossip-multicast alternative with redundancy
//!   `r > 1` (ablation for the tree multicast);
//! * [`one_hop`] — the §6 one-hop-DHT comparison (homogeneous full
//!   membership that prices weak nodes out of large systems).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod gossip;
pub mod one_hop;
pub mod probing;

pub use gossip::{pointers_with_redundancy, simulate_gossip, GossipConfig, GossipResult};
pub use one_hop::OneHopConfig;
pub use probing::{simulate_probing, ProbingConfig, ProbingSimResult};
