//! One-hop-DHT baseline (§6, Gupta–Liskov–Rodrigues [7]).
//!
//! A one-hop DHT gives *every* node a complete membership table,
//! disseminated through a fixed slice/unit-leader hierarchy. The paper's
//! criticism: it "treats almost all the nodes as homogeneous peers and
//! costs too much for weak nodes when the system is very large and
//! dynamic". This module models that cost so the comparison bench can
//! plot weak-node burden under one-hop vs PeerWindow's self-chosen level.

use peerwindow_core::model::ModelParams;

/// One-hop DHT cost model.
#[derive(Clone, Copy, Debug)]
pub struct OneHopConfig {
    /// System size.
    pub n: f64,
    /// Mean lifetime, seconds.
    pub lifetime_s: f64,
    /// Event message size, bits.
    pub msg_bits: f64,
    /// State changes per lifetime (join + leave).
    pub changes_per_lifetime: f64,
}

impl OneHopConfig {
    /// The §5.1-style environment at size `n`.
    pub fn paper(n: f64) -> Self {
        OneHopConfig {
            n,
            lifetime_s: 135.0 * 60.0,
            msg_bits: 1_000.0,
            changes_per_lifetime: 2.0, // one-hop disseminates joins/leaves
        }
    }

    /// Mandatory per-node maintenance bandwidth, bps — identical for a
    /// modem node and a campus node.
    pub fn per_node_cost_bps(&self) -> f64 {
        self.n * self.changes_per_lifetime * self.msg_bits / self.lifetime_s
    }

    /// Whether a node with `budget_bps` can afford membership at all.
    pub fn affordable(&self, budget_bps: f64) -> bool {
        self.per_node_cost_bps() <= budget_bps
    }

    /// PeerWindow's cost for the same budget: the node simply picks the
    /// level that fits, and collects `n / 2^level` pointers.
    pub fn peerwindow_pointers(&self, budget_bps: f64) -> f64 {
        let m = ModelParams {
            lifetime_s: self.lifetime_s,
            changes_per_lifetime: 3.0,
            redundancy: 1.0,
            msg_bits: self.msg_bits,
        };
        let level = m.stable_level(self.n, budget_bps);
        self.n / 2f64.powi(level.value() as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_hop_cost_is_size_proportional_and_capacity_blind() {
        let small = OneHopConfig::paper(10_000.0);
        let large = OneHopConfig::paper(1_000_000.0);
        assert!((large.per_node_cost_bps() / small.per_node_cost_bps() - 100.0).abs() < 1e-9);
        // At a million nodes, one-hop needs ≈ 247 kbps from EVERY node…
        assert!(large.per_node_cost_bps() > 200_000.0);
        // …which a modem node (56 kbps total!) cannot give.
        assert!(!large.affordable(560.0));
        assert!(!large.affordable(56_000.0));
    }

    #[test]
    fn peerwindow_serves_the_same_weak_node_with_a_scaled_list() {
        let env = OneHopConfig::paper(1_000_000.0);
        // A modem node budgeting 560 bps still participates, with a
        // usefully large list.
        let p = env.peerwindow_pointers(560.0);
        // ≈ n / 2^10.
        assert!(p >= 900.0, "weak node collects only {p}");
        // A strong node gets (nearly) everything.
        let p = env.peerwindow_pointers(1e9);
        assert!((p - 1_000_000.0).abs() < 1.0);
    }

    #[test]
    fn crossover_where_one_hop_is_fine() {
        // In a small, stable system one-hop is affordable for everyone —
        // the baseline is not a strawman there.
        let env = OneHopConfig::paper(5_000.0);
        assert!(env.affordable(5_000.0));
        assert!(env.per_node_cost_bps() < 2_000.0);
    }
}
