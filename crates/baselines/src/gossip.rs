//! Gossip multicast alternative (§2 sketches it; §4.2 replaces it).
//!
//! The paper notes the audience set could also be covered by a
//! level-by-level gossip ("the top node first initiates a gossip around
//! all the top nodes, then sends the event to a level-1 node …"), at the
//! price of redundancy `r > 1` — each node receives the event `r` times,
//! shrinking the collectible peer list by the same factor
//! (`p = W·L / (m·r·i)`). This module simulates push gossip over one
//! group to quantify the redundancy/coverage/latency trade-off that
//! motivates the tree design.

use peerwindow_des::DetRng;

/// Push-gossip parameters for disseminating within one group.
#[derive(Clone, Copy, Debug)]
pub struct GossipConfig {
    /// Group size.
    pub n: usize,
    /// Fanout: targets each informed node pushes to per round.
    pub fanout: usize,
    /// Rounds of gossip (∞ coverage needs ≈ log n + c).
    pub rounds: usize,
}

/// Outcome of one gossip dissemination.
#[derive(Clone, Copy, Debug, Default)]
pub struct GossipResult {
    /// Nodes that received the event at least once.
    pub covered: usize,
    /// Total messages sent.
    pub messages: u64,
    /// Redundancy: messages per covered node (the paper's `r`).
    pub redundancy: f64,
    /// Rounds until the last new node was reached.
    pub rounds_to_cover: usize,
}

/// Simulates one push-gossip dissemination over `cfg.n` nodes starting
/// from node 0.
pub fn simulate_gossip(cfg: GossipConfig, seed: u64) -> GossipResult {
    let mut rng = DetRng::for_stream(seed, 0x6055);
    let mut informed = vec![false; cfg.n];
    informed[0] = true;
    let mut frontier: Vec<usize> = vec![0];
    let mut messages = 0u64;
    let mut covered = 1usize;
    let mut rounds_to_cover = 0usize;
    for round in 1..=cfg.rounds {
        let mut fresh = Vec::new();
        for &src in &frontier {
            let _ = src;
            for _ in 0..cfg.fanout {
                let dst = rng.below(cfg.n as u64) as usize;
                messages += 1;
                if !informed[dst] {
                    informed[dst] = true;
                    covered += 1;
                    fresh.push(dst);
                    rounds_to_cover = round;
                }
            }
        }
        // Classic push gossip: everyone informed keeps pushing.
        frontier.extend(fresh);
    }
    GossipResult {
        covered,
        messages,
        redundancy: messages as f64 / covered.max(1) as f64,
        rounds_to_cover,
    }
}

/// The analytic comparison the ablation bench prints: pointers collectible
/// under a budget with redundancy `r` (tree multicast: `r = 1`).
pub fn pointers_with_redundancy(budget_bps: f64, lifetime_s: f64, msg_bits: f64, r: f64) -> f64 {
    budget_bps * lifetime_s / (3.0 * r * msg_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gossip_covers_with_log_rounds_but_redundantly() {
        let cfg = GossipConfig {
            n: 2_000,
            fanout: 2,
            rounds: 30,
        };
        let r = simulate_gossip(cfg, 1);
        assert!(
            r.covered as f64 > 0.99 * cfg.n as f64,
            "covered {}",
            r.covered
        );
        // Push gossip with persistent senders is redundant: every covered
        // node costs several messages.
        assert!(r.redundancy > 2.0, "redundancy {}", r.redundancy);
        // log2(2000) ≈ 11 rounds.
        assert!(
            r.rounds_to_cover >= 8 && r.rounds_to_cover <= 25,
            "rounds {}",
            r.rounds_to_cover
        );
    }

    #[test]
    fn low_fanout_few_rounds_undercover() {
        let cfg = GossipConfig {
            n: 2_000,
            fanout: 1,
            rounds: 5,
        };
        let r = simulate_gossip(cfg, 2);
        assert!(r.covered < cfg.n / 10, "covered {}", r.covered);
    }

    #[test]
    fn redundancy_shrinks_collectible_pointers_linearly() {
        let p1 = pointers_with_redundancy(5_000.0, 3_600.0, 1_000.0, 1.0);
        let p3 = pointers_with_redundancy(5_000.0, 3_600.0, 1_000.0, 3.0);
        assert!((p1 - 6_000.0).abs() < 1e-9);
        assert!((p3 - 2_000.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = GossipConfig {
            n: 500,
            fanout: 2,
            rounds: 20,
        };
        let a = simulate_gossip(cfg, 9);
        let b = simulate_gossip(cfg, 9);
        assert_eq!(a.covered, b.covered);
        assert_eq!(a.messages, b.messages);
    }
}
