//! # peerwindow-core
//!
//! Core implementation of **PeerWindow** (Hu, Li, Yu, Dong, Zheng —
//! ICPP 2005): an efficient, heterogeneous, and autonomic node collection
//! protocol for peer-to-peer systems.
//!
//! Every node keeps a large *peer list* of pointers to other nodes. A node
//! at level `l` holds pointers to every node whose 128-bit identifier
//! shares its first `l` bits (its *eigenstring*), so heterogeneous nodes
//! pick heterogeneous levels and the set of nodes that must learn about a
//! state change — the *audience set* — is computable from identifiers
//! alone. State changes are disseminated by a binary-dissection tree
//! multicast rooted at a *top node*.
//!
//! The crate is **sans-IO**: [`node::NodeMachine`] consumes timestamped
//! inputs and emits outputs (sends, timers), so the same code runs over a
//! real transport or inside the deterministic simulator in
//! `peerwindow-sim`.
//!
//! ## Module map
//!
//! * [`id`] — 128-bit identifiers and prefix algebra.
//! * [`level`] — levels, eigenstrings, the stronger/weaker order.
//! * [`pointer`] — peer-list entries (§2) with attached info (§3).
//! * [`peer_list`] — the indexed peer list and its queries.
//! * [`event`] — state-changing events (§2).
//! * [`multicast`] — the §4.2 tree multicast planner.
//! * [`top_list`] — top-node lists and lazy maintenance (§4.5).
//! * [`parts`] — split-system parts (§4.4).
//! * [`messages`] — wire messages and size accounting.
//! * [`node`] — the full sans-IO protocol state machine (§4).
//! * [`snapshot`] — lock-free peer-list snapshot publication (serving layer).
//! * [`config`] — protocol constants (paper defaults).
//! * [`model`] — the §2 analytic performance model.
//! * [`error`] — typed protocol errors (no panics in handling paths).
//! * [`invariants`] — runtime consistency checker (feature `invariants`).
//!
//! ## Quick example
//!
//! ```
//! use peerwindow_core::prelude::*;
//!
//! // An l-level node's eigenstring is the first l bits of its id.
//! let id = NodeId::new(0xB000_0000_0000_0000_0000_0000_0000_0000);
//! let node = NodeIdentity::new(id, Level::new(2));
//! assert_eq!(node.eigenstring().to_string(), "10");
//!
//! // Audience sets are computable from identifiers alone.
//! let other = NodeId::new(0xA000_0000_0000_0000_0000_0000_0000_0000);
//! assert!(node.covers(other)); // "10" is a prefix of other's id
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod error;
pub mod event;
pub mod id;
#[cfg(any(test, feature = "invariants"))]
pub mod invariants;
pub mod level;
pub mod messages;
pub mod model;
pub mod multicast;
pub mod node;
pub mod parts;
pub mod peer_list;
pub mod pointer;
pub mod snapshot;
pub mod top_list;

/// Convenient re-exports of the most used types.
pub mod prelude {
    pub use crate::config::{ProbeScope, ProtocolConfig};
    pub use crate::error::ProtocolError;
    pub use crate::event::{EventKind, StateEvent};
    pub use crate::id::{NodeId, Prefix, ID_BITS};
    pub use crate::level::{Level, NodeIdentity};
    pub use crate::messages::Message;
    pub use crate::model::ModelParams;
    pub use crate::multicast::{
        forward_steps, plan_tree, tree_stats, AudienceView, Forward, Target, TreeEdge, TreeStats,
    };
    pub use crate::node::{Command, Input, NodeMachine, NodeStats, Output, Timer};
    pub use crate::parts::{audit_parts, PartAudit, PartMap};
    pub use crate::peer_list::PeerList;
    pub use crate::pointer::{Addr, Pointer};
    pub use crate::snapshot::{
        PeerSnapshot, Published, SnapshotDirectory, SnapshotPublisher, SnapshotReader,
    };
    pub use crate::top_list::TopList;
}
