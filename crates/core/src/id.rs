//! 128-bit node identifiers and prefix algebra.
//!
//! PeerWindow identifies every node by a 128-bit `NodeId`, "commonly the
//! result of consistent hashing of its public key or IP address" (§2), so
//! identifiers are assumed uniformly distributed. All of the protocol's
//! membership reasoning — eigenstrings, audience sets, multicast target
//! ranges — reduces to prefix arithmetic on these identifiers, implemented
//! here. Bit 0 is the most significant bit, matching the paper's
//! left-to-right `N0 N1 N2 …` notation.

use core::fmt;
use serde::{Deserialize, Serialize};

/// Number of bits in a [`NodeId`].
pub const ID_BITS: u8 = 128;

/// A 128-bit PeerWindow node identifier.
///
/// Wraps a `u128` whose most significant bit is "bit 0" in the paper's
/// notation. Ordering is numeric, which coincides with lexicographic
/// ordering of the bit string; the nodeId "circle" used by failure
/// detection (§4.1) is the numeric order wrapping around.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u128);

impl NodeId {
    /// The smallest identifier (all zero bits).
    pub const MIN: NodeId = NodeId(0);
    /// The largest identifier (all one bits).
    pub const MAX: NodeId = NodeId(u128::MAX);

    /// Builds an id from a raw `u128`.
    #[inline]
    pub const fn new(raw: u128) -> Self {
        NodeId(raw)
    }

    /// Returns the raw `u128`.
    #[inline]
    pub const fn raw(self) -> u128 {
        self.0
    }

    /// Returns bit `i` (0 = most significant) as `false`/`true`.
    ///
    /// # Panics
    /// Panics if `i >= 128`.
    #[inline]
    pub fn bit(self, i: u8) -> bool {
        assert!(i < ID_BITS, "bit index {i} out of range");
        (self.0 >> (ID_BITS - 1 - i)) & 1 == 1
    }

    /// Returns a copy with bit `i` flipped.
    #[inline]
    pub fn flip_bit(self, i: u8) -> Self {
        assert!(i < ID_BITS, "bit index {i} out of range");
        NodeId(self.0 ^ (1u128 << (ID_BITS - 1 - i)))
    }

    /// Returns a copy with bit `i` set to `v`.
    #[inline]
    pub fn with_bit(self, i: u8, v: bool) -> Self {
        assert!(i < ID_BITS, "bit index {i} out of range");
        let mask = 1u128 << (ID_BITS - 1 - i);
        if v {
            NodeId(self.0 | mask)
        } else {
            NodeId(self.0 & !mask)
        }
    }

    /// Length (in bits) of the longest common prefix of `self` and `other`.
    #[inline]
    pub fn common_prefix_len(self, other: NodeId) -> u8 {
        // leading_zeros of a u128 is at most 128, so the conversion is
        // total; the fallback keeps the expression cast-free.
        u8::try_from((self.0 ^ other.0).leading_zeros()).unwrap_or(ID_BITS)
    }

    /// The first `len` bits of this id, as a [`Prefix`].
    ///
    /// # Panics
    /// Panics if `len > 128`.
    #[inline]
    pub fn prefix(self, len: u8) -> Prefix {
        Prefix::new(self.0, len)
    }

    /// Whether this id starts with `p`.
    #[inline]
    pub fn has_prefix(self, p: Prefix) -> bool {
        p.contains(self)
    }

    /// The successor on the identifier circle (wrapping).
    #[inline]
    pub fn circle_successor(self) -> NodeId {
        NodeId(self.0.wrapping_add(1))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeId({:032x})", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl From<u128> for NodeId {
    fn from(raw: u128) -> Self {
        NodeId(raw)
    }
}

/// A bit-string prefix of an identifier: the first `len` bits.
///
/// A node's *eigenstring* (§2) is exactly `Prefix::new(node.id, node.level)`;
/// audience-set membership, multicast target ranges, and split-system parts
/// are all expressed as prefixes. The unused low bits of `bits` are always
/// zero, so equal prefixes compare equal structurally.
///
/// ```
/// use peerwindow_core::id::{NodeId, Prefix};
/// let p = Prefix::from_bits_str("10").unwrap();
/// let id = NodeId::new(0xB000_0000_0000_0000_0000_0000_0000_0000); // 1011…
/// assert!(p.contains(id));
/// assert!(p.is_prefix_of(id.prefix(4)));
/// assert_eq!(p.sibling().to_string(), "11");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct Prefix {
    bits: u128,
    len: u8,
}

impl Prefix {
    /// The empty prefix (matches every identifier) — the eigenstring of a
    /// level-0 *top node*.
    pub const EMPTY: Prefix = Prefix { bits: 0, len: 0 };

    /// Builds the prefix consisting of the first `len` bits of `bits`.
    ///
    /// # Panics
    /// Panics if `len > 128`.
    #[inline]
    pub fn new(bits: u128, len: u8) -> Self {
        assert!(len <= ID_BITS, "prefix length {len} out of range");
        let masked = if len == 0 {
            0
        } else {
            bits & (u128::MAX << (ID_BITS - len))
        };
        Prefix { bits: masked, len }
    }

    /// Parses a prefix from a string of `0`/`1` characters (tests and
    /// examples; mirrors the paper's underlined eigenstrings).
    pub fn from_bits_str(s: &str) -> Option<Self> {
        if s.len() > ID_BITS as usize {
            return None;
        }
        let mut bits = 0u128;
        for (i, c) in s.chars().enumerate() {
            match c {
                '0' => {}
                '1' => bits |= 1u128 << (ID_BITS as usize - 1 - i),
                _ => return None,
            }
        }
        Some(Prefix {
            bits,
            len: u8::try_from(s.len()).ok()?,
        })
    }

    /// Prefix length in bits. A node at level `l` has an eigenstring of
    /// length `l`.
    #[inline]
    pub const fn len(self) -> u8 {
        self.len
    }

    /// Whether this is the empty prefix.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.len == 0
    }

    /// The raw (masked) high bits.
    #[inline]
    pub const fn bits(self) -> u128 {
        self.bits
    }

    /// Whether identifier `id` starts with this prefix.
    #[inline]
    pub fn contains(self, id: NodeId) -> bool {
        if self.len == 0 {
            true
        } else {
            (id.0 ^ self.bits) >> (ID_BITS - self.len) == 0
        }
    }

    /// Whether `self` is a (non-strict) prefix of `other`.
    ///
    /// In the paper's vocabulary, a node whose eigenstring is a prefix of
    /// another's is *stronger* than it (§2 property 2).
    #[inline]
    pub fn is_prefix_of(self, other: Prefix) -> bool {
        self.len <= other.len && Prefix::new(other.bits, self.len) == self
    }

    /// Extends the prefix by one bit.
    ///
    /// # Panics
    /// Panics if already 128 bits long.
    #[inline]
    pub fn child(self, bit: bool) -> Prefix {
        assert!(self.len < ID_BITS, "prefix already full-length");
        let mut bits = self.bits;
        if bit {
            bits |= 1u128 << (ID_BITS - 1 - self.len);
        }
        Prefix {
            bits,
            len: self.len + 1,
        }
    }

    /// Drops the last bit.
    ///
    /// # Panics
    /// Panics on the empty prefix.
    #[inline]
    pub fn parent(self) -> Prefix {
        assert!(self.len > 0, "empty prefix has no parent");
        Prefix::new(self.bits, self.len - 1)
    }

    /// The sibling prefix: same length, last bit flipped.
    ///
    /// # Panics
    /// Panics on the empty prefix.
    #[inline]
    pub fn sibling(self) -> Prefix {
        assert!(self.len > 0, "empty prefix has no sibling");
        Prefix {
            bits: self.bits ^ (1u128 << (ID_BITS - self.len)),
            len: self.len,
        }
    }

    /// The smallest identifier with this prefix.
    #[inline]
    pub fn range_start(self) -> NodeId {
        NodeId(self.bits)
    }

    /// The largest identifier with this prefix.
    #[inline]
    pub fn range_end(self) -> NodeId {
        // checked_shr: a full-length prefix (len = 128) matches exactly
        // one identifier, and `u128::MAX >> 128` would overflow the shift.
        // audit: cast-ok — u8 → u32 is widening, never lossy.
        NodeId(self.bits | u128::MAX.checked_shr(self.len as u32).unwrap_or(0))
    }

    /// Inclusive range of identifiers covered by this prefix.
    #[inline]
    pub fn id_range(self) -> core::ops::RangeInclusive<NodeId> {
        self.range_start()..=self.range_end()
    }

    /// Truncates to the first `len` bits.
    ///
    /// # Panics
    /// Panics if `len > self.len()`.
    #[inline]
    pub fn truncate(self, len: u8) -> Prefix {
        assert!(len <= self.len, "cannot truncate {} to {len}", self.len);
        Prefix::new(self.bits, len)
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Prefix(\"{self}\")")
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            let bit = (self.bits >> (ID_BITS - 1 - i)) & 1;
            write!(f, "{bit}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(s: &str) -> NodeId {
        // Interpret `s` as the leading bits, zero-padded.
        Prefix::from_bits_str(s).unwrap().range_start()
    }

    #[test]
    fn bit_indexing_is_msb_first() {
        let x = id("1011");
        assert!(x.bit(0));
        assert!(!x.bit(1));
        assert!(x.bit(2));
        assert!(x.bit(3));
        assert!(!x.bit(4));
    }

    #[test]
    fn flip_and_with_bit_roundtrip() {
        let x = id("1010");
        assert_eq!(x.flip_bit(1).bit(1), true);
        assert_eq!(x.flip_bit(1).flip_bit(1), x);
        assert_eq!(x.with_bit(0, false).bit(0), false);
        assert_eq!(x.with_bit(0, true), x);
    }

    #[test]
    fn common_prefix_len_basic() {
        assert_eq!(id("1011").common_prefix_len(id("1010")), 3);
        assert_eq!(id("0").common_prefix_len(id("1")), 0);
        let x = id("1111");
        assert_eq!(x.common_prefix_len(x), 128);
    }

    #[test]
    fn prefix_contains() {
        let p = Prefix::from_bits_str("10").unwrap();
        assert!(p.contains(id("1011")));
        assert!(p.contains(id("10")));
        assert!(!p.contains(id("1111")));
        assert!(Prefix::EMPTY.contains(NodeId::MAX));
        assert!(Prefix::EMPTY.contains(NodeId::MIN));
    }

    #[test]
    fn prefix_of_relation() {
        let e = Prefix::EMPTY;
        let p1 = Prefix::from_bits_str("1").unwrap();
        let p10 = Prefix::from_bits_str("10").unwrap();
        let p11 = Prefix::from_bits_str("11").unwrap();
        assert!(e.is_prefix_of(p10));
        assert!(p1.is_prefix_of(p10));
        assert!(p1.is_prefix_of(p1));
        assert!(!p10.is_prefix_of(p1));
        assert!(!p11.is_prefix_of(p10));
    }

    #[test]
    fn child_parent_sibling() {
        let p = Prefix::from_bits_str("10").unwrap();
        assert_eq!(p.child(true), Prefix::from_bits_str("101").unwrap());
        assert_eq!(p.child(false).parent(), p);
        assert_eq!(p.sibling(), Prefix::from_bits_str("11").unwrap());
        assert_eq!(p.sibling().sibling(), p);
    }

    #[test]
    fn full_length_prefix_matches_exactly_one_id() {
        let p = Prefix::new(0, 128);
        assert_eq!(p.range_start(), NodeId(0));
        assert_eq!(p.range_end(), NodeId(0));
        assert!(p.contains(NodeId(0)));
        assert!(!p.contains(NodeId(1)));
        let q = Prefix::new(u128::MAX, 128);
        assert_eq!(q.range_end(), NodeId::MAX);
        assert_eq!(q.range_start(), NodeId::MAX);
    }

    #[test]
    fn range_bounds() {
        let p = Prefix::from_bits_str("10").unwrap();
        assert_eq!(p.range_start().raw(), 0b10u128 << 126);
        assert_eq!(p.range_end().raw(), (0b10u128 << 126) | (u128::MAX >> 2));
        assert_eq!(Prefix::EMPTY.range_start(), NodeId::MIN);
        assert_eq!(Prefix::EMPTY.range_end(), NodeId::MAX);
        // every id in range has the prefix
        assert!(p.contains(p.range_start()));
        assert!(p.contains(p.range_end()));
    }

    #[test]
    fn display_roundtrip() {
        for s in ["", "0", "1", "1011", "0000", "111000111"] {
            let p = Prefix::from_bits_str(s).unwrap();
            assert_eq!(p.to_string(), s);
        }
    }

    #[test]
    fn from_bits_str_rejects_garbage() {
        assert!(Prefix::from_bits_str("102").is_none());
        assert!(Prefix::from_bits_str("ab").is_none());
        let long = "0".repeat(129);
        assert!(Prefix::from_bits_str(&long).is_none());
    }

    #[test]
    fn circle_successor_wraps() {
        assert_eq!(NodeId::MAX.circle_successor(), NodeId::MIN);
        assert_eq!(NodeId(7).circle_successor(), NodeId(8));
    }

    #[test]
    fn truncate_matches_manual() {
        let p = Prefix::from_bits_str("10110").unwrap();
        assert_eq!(p.truncate(3), Prefix::from_bits_str("101").unwrap());
        assert_eq!(p.truncate(0), Prefix::EMPTY);
    }
}
