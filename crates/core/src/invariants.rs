//! Runtime protocol invariant checking and the projection hooks the
//! explicit-state model checker (`peerwindow-mc`) builds on.
//!
//! Three layers:
//!
//! * **Local invariants** — [`NodeMachine::check_invariants`]: properties
//!   of a single machine that must hold after *every* handled event, in
//!   every phase (scope ≡ eigenstring, every held pointer inside the
//!   audience the identifier algebra assigns us, no self-pointer, no
//!   duplicate entries, top-list within capacity).
//! * **System invariants** — [`check_system`]: cross-node properties that
//!   only hold at *quiescence*, once all in-flight multicasts have been
//!   applied (membership symmetry `A.covers(B) ⇔ B ∈ A.peers`, level
//!   agreement, in-scope top-list entries present in the peer list).
//!   Mid-multicast these are legitimately violated — a piggybacked top
//!   can be known before the subject's join event arrives — which is why
//!   they are not part of `check_invariants`.
//! * **Canonical projection** — [`NodeMachine::project`] and
//!   [`CanonicalState`]: the membership-view quotient the model checker
//!   hashes for visited-state deduplication. Node ids are interchangeable
//!   up to the eigenstring algebra (§2: audiences are computable from id
//!   *prefixes* alone), so the projection exposes each id only through
//!   its first `class_bits` bits; `peerwindow-mc` relabels ids to dense
//!   canonical indices on top of it.
//!
//! The exhaustive interleaving sweep that used to live here (PR 2) was
//! subsumed by `crates/mc`, which adds visited-state dedup, id-symmetry
//! reduction, temporal properties, and counterexample shrinking on top of
//! these hooks.
//!
//! The module is compiled under `cfg(test)` and behind the `invariants`
//! feature so production builds pay nothing for it.

use crate::id::{NodeId, Prefix, ID_BITS};
use crate::level::{Level, NodeIdentity};
use crate::node::NodeMachine;
use std::fmt;

// ----------------------------------------------------------------------
// Violations
// ----------------------------------------------------------------------

/// A protocol invariant that failed to hold, with enough context to
/// localise the offending machine and entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InvariantViolation {
    /// An active node's peer-list scope differs from its eigenstring
    /// (the first `l` bits of its id at level `l`, §2).
    ScopeMismatch {
        /// The offending node.
        node: NodeId,
        /// The peer list's scope.
        scope: Prefix,
        /// The eigenstring implied by (id, level).
        eigenstring: Prefix,
    },
    /// A node holds a pointer the identifier algebra says it must not:
    /// its audience membership (`covers`) does not include the entry.
    OutOfScopePointer {
        /// The holder.
        node: NodeId,
        /// The out-of-scope entry.
        pointer: NodeId,
    },
    /// A node's peer list contains the node itself.
    SelfPointer {
        /// The offending node.
        node: NodeId,
    },
    /// The top-node list contains the node itself. A self-entry is never
    /// level-synced (nodes do not apply their own events) and a level
    /// raise that picks it downloads from an empty mirror of itself.
    SelfTopEntry {
        /// The offending node.
        node: NodeId,
    },
    /// The top-node list contains the same id twice.
    DuplicateTopEntry {
        /// The holder.
        node: NodeId,
        /// The duplicated id.
        dup: NodeId,
    },
    /// The top-node list exceeds its configured capacity `t` (§2).
    TopListOverCapacity {
        /// The holder.
        node: NodeId,
        /// Entries present.
        len: usize,
        /// Configured capacity.
        capacity: usize,
    },
    /// Two live machines share one NodeId.
    DuplicateNodeId {
        /// The id present twice.
        id: NodeId,
    },
    /// Quiescent check: `A.covers(B)` but B is absent from A's peer list
    /// (a member of B's audience never learned of B).
    MissingPeer {
        /// The node whose list is incomplete.
        node: NodeId,
        /// The absent member.
        missing: NodeId,
    },
    /// Quiescent check: a peer-list entry references a node that is no
    /// longer live (departed but never cleaned up).
    StalePeer {
        /// The holder.
        node: NodeId,
        /// The departed entry.
        stale: NodeId,
    },
    /// Quiescent check: a held entry records a different level than the
    /// subject actually runs at.
    LevelMismatch {
        /// The holder.
        node: NodeId,
        /// The entry.
        peer: NodeId,
        /// Level recorded in the holder's list.
        recorded: Level,
        /// The subject's actual level.
        actual: Level,
    },
    /// Quiescent check: an in-scope top-list entry is missing from the
    /// peer list (top-node-list ⊆ peer-list, for ids the scope covers).
    TopNotInPeerList {
        /// The holder.
        node: NodeId,
        /// The top entry absent from the peer list.
        top: NodeId,
    },
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            InvariantViolation::ScopeMismatch {
                node,
                scope,
                eigenstring,
            } => write!(
                f,
                "{node:?}: peer-list scope {scope:?} != eigenstring {eigenstring:?}"
            ),
            InvariantViolation::OutOfScopePointer { node, pointer } => {
                write!(f, "{node:?}: holds {pointer:?} outside its audience")
            }
            InvariantViolation::SelfPointer { node } => {
                write!(f, "{node:?}: peer list contains the node itself")
            }
            InvariantViolation::SelfTopEntry { node } => {
                write!(f, "{node:?}: top list contains the node itself")
            }
            InvariantViolation::DuplicateTopEntry { node, dup } => {
                write!(f, "{node:?}: top list contains {dup:?} twice")
            }
            InvariantViolation::TopListOverCapacity {
                node,
                len,
                capacity,
            } => write!(
                f,
                "{node:?}: top list has {len} entries, capacity {capacity}"
            ),
            InvariantViolation::DuplicateNodeId { id } => {
                write!(f, "two live machines share id {id:?}")
            }
            InvariantViolation::MissingPeer { node, missing } => {
                write!(f, "{node:?}: covers {missing:?} but does not hold it")
            }
            InvariantViolation::StalePeer { node, stale } => {
                write!(f, "{node:?}: holds departed node {stale:?}")
            }
            InvariantViolation::LevelMismatch {
                node,
                peer,
                recorded,
                actual,
            } => write!(
                f,
                "{node:?}: records {peer:?} at {recorded:?}, actual {actual:?}"
            ),
            InvariantViolation::TopNotInPeerList { node, top } => {
                write!(f, "{node:?}: in-scope top {top:?} absent from peer list")
            }
        }
    }
}

impl std::error::Error for InvariantViolation {}

// ----------------------------------------------------------------------
// Local invariants
// ----------------------------------------------------------------------

impl NodeMachine {
    /// Checks every *local* invariant — properties of this machine alone
    /// that must hold after every handled event, in every phase.
    ///
    /// Cross-node properties (membership symmetry, level agreement) are
    /// only meaningful at quiescence and live in [`check_system`].
    pub fn check_invariants(&self) -> Result<(), InvariantViolation> {
        let me = self.id();
        let ident = NodeIdentity::new(me, self.level());

        // An active node's list scope is exactly its eigenstring (§2).
        // While joining the machine provisionally holds wider scopes, so
        // the equality is only required once active.
        if self.is_active() && self.peers().scope() != ident.eigenstring() {
            return Err(InvariantViolation::ScopeMismatch {
                node: me,
                scope: self.peers().scope(),
                eigenstring: ident.eigenstring(),
            });
        }

        // Every held pointer lies inside the declared scope — the
        // audience-set rule: we hold X iff we cover X. (Audience
        // *symmetry* — everyone who covers us holds us — is the
        // quiescent half, checked in `check_system`.)
        let scope = self.peers().scope();
        let mut prev: Option<NodeId> = None;
        for p in self.peers().iter() {
            if p.id == me {
                return Err(InvariantViolation::SelfPointer { node: me });
            }
            if !scope.contains(p.id) {
                return Err(InvariantViolation::OutOfScopePointer {
                    node: me,
                    pointer: p.id,
                });
            }
            // The list is keyed by id; iteration must be strictly
            // ascending (duplicates are structurally impossible, but the
            // sweep asserts it rather than assuming it).
            if let Some(prev) = prev {
                if p.id <= prev {
                    return Err(InvariantViolation::OutOfScopePointer {
                        node: me,
                        pointer: p.id,
                    });
                }
            }
            prev = Some(p.id);
        }

        // Top-node list: bounded by t, no duplicate ids.
        let tops = self.tops();
        if tops.capacity() > 0 && tops.len() > tops.capacity() {
            return Err(InvariantViolation::TopListOverCapacity {
                node: me,
                len: tops.len(),
                capacity: tops.capacity(),
            });
        }
        let mut seen: Vec<NodeId> = Vec::with_capacity(tops.len());
        for t in tops.entries() {
            if t.id == me {
                return Err(InvariantViolation::SelfTopEntry { node: me });
            }
            if seen.contains(&t.id) {
                return Err(InvariantViolation::DuplicateTopEntry {
                    node: me,
                    dup: t.id,
                });
            }
            seen.push(t.id);
        }

        Ok(())
    }
}

// ----------------------------------------------------------------------
// System (quiescent) invariants
// ----------------------------------------------------------------------

/// Checks cross-node invariants over a set of live machines. Only valid
/// at quiescence — when no multicast, join, or failure-detection traffic
/// is still in flight — because dissemination is asynchronous by design.
///
/// * no duplicate NodeIds;
/// * membership symmetry: for active A ≠ B, `A.covers(B) ⇔ B ∈ A.peers`
///   (the audience-set rule of §2, both directions);
/// * level agreement: recorded pointer levels match the subject's level;
/// * top-list containment: in-scope top entries appear in the peer list.
pub fn check_system<'a, I>(machines: I) -> Result<(), InvariantViolation>
where
    I: IntoIterator<Item = &'a NodeMachine>,
{
    let live: Vec<&NodeMachine> = machines.into_iter().filter(|m| m.is_active()).collect();

    for (i, a) in live.iter().enumerate() {
        for b in live.iter().skip(i + 1) {
            if a.id() == b.id() {
                return Err(InvariantViolation::DuplicateNodeId { id: a.id() });
            }
        }
    }

    for a in &live {
        let ident = NodeIdentity::new(a.id(), a.level());
        for b in &live {
            if a.id() == b.id() {
                continue;
            }
            let held = a.peers().contains(b.id());
            if ident.covers(b.id()) && !held {
                return Err(InvariantViolation::MissingPeer {
                    node: a.id(),
                    missing: b.id(),
                });
            }
            if held {
                // Holding implies covering (the other audience direction).
                if !ident.covers(b.id()) {
                    return Err(InvariantViolation::OutOfScopePointer {
                        node: a.id(),
                        pointer: b.id(),
                    });
                }
                let recorded = a.peers().get(b.id()).map(|p| p.level);
                if let Some(recorded) = recorded {
                    if recorded != b.level() {
                        return Err(InvariantViolation::LevelMismatch {
                            node: a.id(),
                            peer: b.id(),
                            recorded,
                            actual: b.level(),
                        });
                    }
                }
            }
        }

        // Every peer entry references a live machine.
        for p in a.peers().iter() {
            if !live.iter().any(|m| m.id() == p.id) {
                return Err(InvariantViolation::StalePeer {
                    node: a.id(),
                    stale: p.id,
                });
            }
        }

        // Top-node-list ⊆ peer-list, restricted to ids the scope covers
        // (tops of other parts are legitimately outside the list).
        for t in a.tops().entries() {
            if t.id != a.id() && ident.covers(t.id) && !a.peers().contains(t.id) {
                return Err(InvariantViolation::TopNotInPeerList {
                    node: a.id(),
                    top: t.id,
                });
            }
        }
    }

    Ok(())
}

// ----------------------------------------------------------------------
// Canonical projection (model-checker hooks)
// ----------------------------------------------------------------------

/// The SplitMix64 finalizer — the same mixer `peerwindow_des::DetRng`
/// and `peerwindow_faults::LinkRng` are built on, reused here as the
/// canonical-state hash so the whole evidence chain leans on one
/// well-tested avalanche function.
#[inline]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Folds a word sequence into one 64-bit digest with [`splitmix64`].
pub fn hash_words(words: &[u64]) -> u64 {
    let mut h: u64 = 0x5157_434b_4e41_4843; // arbitrary nonzero IV
    for &w in words {
        h = splitmix64(h ^ w);
    }
    // Length is mixed in so a trailing zero word is not invisible.
    splitmix64(h ^ words.len() as u64)
}

/// A canonically serialized quotient of a system state: the word
/// sequence is invariant under any id relabeling that preserves the
/// eigenstring algebra (first-`class_bits` prefix classes), and `hash`
/// is its [`splitmix64`] digest. Built by `peerwindow-mc`'s canonical
/// relabeler from per-machine [`MachineProjection`]s.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CanonicalState {
    /// The canonical serialization. Kept alongside the hash so the
    /// visited set can verify that equal hashes really are equal states
    /// (collision freedom is asserted, not assumed).
    pub words: Vec<u64>,
    /// [`hash_words`] digest of `words`.
    pub hash: u64,
}

impl CanonicalState {
    /// Wraps a serialized word sequence with its digest.
    pub fn from_words(words: Vec<u64>) -> Self {
        let hash = hash_words(&words);
        CanonicalState { words, hash }
    }
}

/// Everything the model checker may observe about one machine: the
/// membership view (peer list, top list, level, lifecycle), with ids
/// exposed verbatim so the caller can relabel them, plus the id's
/// prefix class — the only id information that may enter a canonical
/// encoding directly (§2: behavior depends on ids only through prefix
/// relations up to the maximum configured level).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MachineProjection {
    /// The machine's id (for the caller's relabeling map).
    pub id: NodeId,
    /// First `class_bits` bits of the id, right-aligned.
    pub prefix_class: u64,
    /// Current level.
    pub level: u8,
    /// Whether the machine is fully joined and serving.
    pub active: bool,
    /// Whether the machine has departed (gracefully or by command).
    pub departed: bool,
    /// Whether the machine believes it is a top node (§4.5).
    pub believes_top: bool,
    /// Peer-list entries in id order: `(id, recorded level)`.
    pub peers: Vec<(NodeId, u8)>,
    /// Top-list entries in list order: `(id, recorded level)`.
    pub tops: Vec<(NodeId, u8)>,
    /// Number of RPCs awaiting replies (in-flight protocol activity).
    pub pending_rpcs: u64,
}

/// Extracts the first `class_bits` bits of `id`, right-aligned.
/// `class_bits` is clamped to 64 (beyond that, prefix classes stop
/// quotienting anything in practice: the checker never shifts deeper).
pub fn prefix_class(id: NodeId, class_bits: u8) -> u64 {
    let bits = u32::from(class_bits.min(64));
    if bits == 0 {
        return 0;
    }
    // Lossless: shifting a u128 right by >= 64 leaves at most 64 bits.
    (id.raw() >> (u32::from(ID_BITS) - bits)) as u64
}

impl NodeMachine {
    /// Projects the membership view the model checker canonicalizes.
    /// See [`MachineProjection`].
    pub fn project(&self, class_bits: u8) -> MachineProjection {
        MachineProjection {
            id: self.id(),
            prefix_class: prefix_class(self.id(), class_bits),
            level: self.level().value(),
            active: self.is_active(),
            departed: self.has_left(),
            believes_top: self.believes_top(),
            peers: self
                .peers()
                .iter()
                .map(|p| (p.id, p.level.value()))
                .collect(),
            tops: self
                .tops()
                .entries()
                .iter()
                .map(|t| (t.id, t.level.value()))
                .collect(),
            pending_rpcs: self.pending_rpc_count() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolConfig;
    use bytes::Bytes;

    const A: u128 = 0x2000_0000_0000_0000_0000_0000_0000_0000; // 001…
    const B: u128 = 0x6000_0000_0000_0000_0000_0000_0000_0000; // 011…
    const C: u128 = 0xa000_0000_0000_0000_0000_0000_0000_0000; // 101…

    fn fast_cfg() -> ProtocolConfig {
        ProtocolConfig {
            probe_interval_us: 1_000_000,
            rpc_timeout_us: 300_000,
            processing_delay_us: 1_000,
            bandwidth_window_us: 5_000_000,
            ..ProtocolConfig::default()
        }
    }

    fn seed(raw: u128) -> NodeMachine {
        let (m, _outs) = NodeMachine::new_seed(
            fast_cfg(),
            NodeId(raw),
            crate::pointer::Addr(0),
            Bytes::new(),
            1e9,
            1,
        );
        m
    }

    #[test]
    fn seed_machine_passes_local_invariants() {
        let m = seed(A);
        m.check_invariants().unwrap();
        check_system([&m]).unwrap();
    }

    #[test]
    fn violations_display_mentions_node() {
        let v = InvariantViolation::SelfPointer { node: NodeId(A) };
        assert!(format!("{v}").contains("itself"));
    }

    #[test]
    fn prefix_class_takes_leading_bits() {
        assert_eq!(prefix_class(NodeId(A), 3), 0b001);
        assert_eq!(prefix_class(NodeId(B), 3), 0b011);
        assert_eq!(prefix_class(NodeId(C), 1), 1);
        assert_eq!(prefix_class(NodeId(C), 0), 0);
        assert_eq!(prefix_class(NodeId(u128::MAX), 64), u64::MAX);
    }

    #[test]
    fn projection_reflects_membership_view() {
        let m = seed(A);
        let p = m.project(1);
        assert_eq!(p.id, NodeId(A));
        assert_eq!(p.prefix_class, 0);
        assert_eq!(p.level, 0);
        assert!(p.active);
        assert!(!p.departed);
        assert!(p.peers.is_empty());
    }

    #[test]
    fn hash_words_is_length_and_order_sensitive() {
        assert_ne!(hash_words(&[1, 2]), hash_words(&[2, 1]));
        assert_ne!(hash_words(&[1]), hash_words(&[1, 0]));
        assert_eq!(hash_words(&[1, 2, 3]), hash_words(&[1, 2, 3]));
    }

    #[test]
    fn canonical_state_digest_matches_words() {
        let s = CanonicalState::from_words(vec![7, 8, 9]);
        assert_eq!(s.hash, hash_words(&[7, 8, 9]));
    }
}
