//! Runtime protocol invariant checking and an exhaustive state-space
//! sweep, in the spirit of FSM model-checking harnesses (polestar-style).
//!
//! Two layers:
//!
//! * **Local invariants** — [`NodeMachine::check_invariants`]: properties
//!   of a single machine that must hold after *every* handled event, in
//!   every phase (scope ≡ eigenstring, every held pointer inside the
//!   audience the identifier algebra assigns us, no self-pointer, no
//!   duplicate entries, top-list within capacity).
//! * **System invariants** — [`check_system`]: cross-node properties that
//!   only hold at *quiescence*, once all in-flight multicasts have been
//!   applied (membership symmetry `A.covers(B) ⇔ B ∈ A.peers`, level
//!   agreement, in-scope top-list entries present in the peer list).
//!   Mid-multicast these are legitimately violated — a piggybacked top
//!   can be known before the subject's join event arrives — which is why
//!   they are not part of `check_invariants`.
//!
//! [`exhaustive_sweep`] drives both: a breadth-first enumeration of all
//! join/leave/crash/shift interleavings of a small id table up to a depth
//! bound, running each interleaving on real [`NodeMachine`]s over a
//! deterministic mini event loop, checking local invariants after every
//! handled event and system invariants at every quiescent state.
//!
//! The module is compiled under `cfg(test)` and behind the `invariants`
//! feature so production builds pay nothing for it.

use crate::config::ProtocolConfig;
use crate::id::{NodeId, Prefix};
use crate::level::{Level, NodeIdentity};
use crate::node::{Command, Input, NodeMachine, Output};
use bytes::Bytes;
use std::collections::BTreeMap;
use std::fmt;

// ----------------------------------------------------------------------
// Violations
// ----------------------------------------------------------------------

/// A protocol invariant that failed to hold, with enough context to
/// localise the offending machine and entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InvariantViolation {
    /// An active node's peer-list scope differs from its eigenstring
    /// (the first `l` bits of its id at level `l`, §2).
    ScopeMismatch {
        /// The offending node.
        node: NodeId,
        /// The peer list's scope.
        scope: Prefix,
        /// The eigenstring implied by (id, level).
        eigenstring: Prefix,
    },
    /// A node holds a pointer the identifier algebra says it must not:
    /// its audience membership (`covers`) does not include the entry.
    OutOfScopePointer {
        /// The holder.
        node: NodeId,
        /// The out-of-scope entry.
        pointer: NodeId,
    },
    /// A node's peer list contains the node itself.
    SelfPointer {
        /// The offending node.
        node: NodeId,
    },
    /// The top-node list contains the node itself. A self-entry is never
    /// level-synced (nodes do not apply their own events) and a level
    /// raise that picks it downloads from an empty mirror of itself.
    SelfTopEntry {
        /// The offending node.
        node: NodeId,
    },
    /// The top-node list contains the same id twice.
    DuplicateTopEntry {
        /// The holder.
        node: NodeId,
        /// The duplicated id.
        dup: NodeId,
    },
    /// The top-node list exceeds its configured capacity `t` (§2).
    TopListOverCapacity {
        /// The holder.
        node: NodeId,
        /// Entries present.
        len: usize,
        /// Configured capacity.
        capacity: usize,
    },
    /// Two live machines share one NodeId.
    DuplicateNodeId {
        /// The id present twice.
        id: NodeId,
    },
    /// Quiescent check: `A.covers(B)` but B is absent from A's peer list
    /// (a member of B's audience never learned of B).
    MissingPeer {
        /// The node whose list is incomplete.
        node: NodeId,
        /// The absent member.
        missing: NodeId,
    },
    /// Quiescent check: a peer-list entry references a node that is no
    /// longer live (departed but never cleaned up).
    StalePeer {
        /// The holder.
        node: NodeId,
        /// The departed entry.
        stale: NodeId,
    },
    /// Quiescent check: a held entry records a different level than the
    /// subject actually runs at.
    LevelMismatch {
        /// The holder.
        node: NodeId,
        /// The entry.
        peer: NodeId,
        /// Level recorded in the holder's list.
        recorded: Level,
        /// The subject's actual level.
        actual: Level,
    },
    /// Quiescent check: an in-scope top-list entry is missing from the
    /// peer list (top-node-list ⊆ peer-list, for ids the scope covers).
    TopNotInPeerList {
        /// The holder.
        node: NodeId,
        /// The top entry absent from the peer list.
        top: NodeId,
    },
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            InvariantViolation::ScopeMismatch {
                node,
                scope,
                eigenstring,
            } => write!(
                f,
                "{node:?}: peer-list scope {scope:?} != eigenstring {eigenstring:?}"
            ),
            InvariantViolation::OutOfScopePointer { node, pointer } => {
                write!(f, "{node:?}: holds {pointer:?} outside its audience")
            }
            InvariantViolation::SelfPointer { node } => {
                write!(f, "{node:?}: peer list contains the node itself")
            }
            InvariantViolation::SelfTopEntry { node } => {
                write!(f, "{node:?}: top list contains the node itself")
            }
            InvariantViolation::DuplicateTopEntry { node, dup } => {
                write!(f, "{node:?}: top list contains {dup:?} twice")
            }
            InvariantViolation::TopListOverCapacity {
                node,
                len,
                capacity,
            } => write!(
                f,
                "{node:?}: top list has {len} entries, capacity {capacity}"
            ),
            InvariantViolation::DuplicateNodeId { id } => {
                write!(f, "two live machines share id {id:?}")
            }
            InvariantViolation::MissingPeer { node, missing } => {
                write!(f, "{node:?}: covers {missing:?} but does not hold it")
            }
            InvariantViolation::StalePeer { node, stale } => {
                write!(f, "{node:?}: holds departed node {stale:?}")
            }
            InvariantViolation::LevelMismatch {
                node,
                peer,
                recorded,
                actual,
            } => write!(
                f,
                "{node:?}: records {peer:?} at {recorded:?}, actual {actual:?}"
            ),
            InvariantViolation::TopNotInPeerList { node, top } => {
                write!(f, "{node:?}: in-scope top {top:?} absent from peer list")
            }
        }
    }
}

impl std::error::Error for InvariantViolation {}

// ----------------------------------------------------------------------
// Local invariants
// ----------------------------------------------------------------------

impl NodeMachine {
    /// Checks every *local* invariant — properties of this machine alone
    /// that must hold after every handled event, in every phase.
    ///
    /// Cross-node properties (membership symmetry, level agreement) are
    /// only meaningful at quiescence and live in [`check_system`].
    pub fn check_invariants(&self) -> Result<(), InvariantViolation> {
        let me = self.id();
        let ident = NodeIdentity::new(me, self.level());

        // An active node's list scope is exactly its eigenstring (§2).
        // While joining the machine provisionally holds wider scopes, so
        // the equality is only required once active.
        if self.is_active() && self.peers().scope() != ident.eigenstring() {
            return Err(InvariantViolation::ScopeMismatch {
                node: me,
                scope: self.peers().scope(),
                eigenstring: ident.eigenstring(),
            });
        }

        // Every held pointer lies inside the declared scope — the
        // audience-set rule: we hold X iff we cover X. (Audience
        // *symmetry* — everyone who covers us holds us — is the
        // quiescent half, checked in `check_system`.)
        let scope = self.peers().scope();
        let mut prev: Option<NodeId> = None;
        for p in self.peers().iter() {
            if p.id == me {
                return Err(InvariantViolation::SelfPointer { node: me });
            }
            if !scope.contains(p.id) {
                return Err(InvariantViolation::OutOfScopePointer {
                    node: me,
                    pointer: p.id,
                });
            }
            // The list is keyed by id; iteration must be strictly
            // ascending (duplicates are structurally impossible, but the
            // sweep asserts it rather than assuming it).
            if let Some(prev) = prev {
                if p.id <= prev {
                    return Err(InvariantViolation::OutOfScopePointer {
                        node: me,
                        pointer: p.id,
                    });
                }
            }
            prev = Some(p.id);
        }

        // Top-node list: bounded by t, no duplicate ids.
        let tops = self.tops();
        if tops.capacity() > 0 && tops.len() > tops.capacity() {
            return Err(InvariantViolation::TopListOverCapacity {
                node: me,
                len: tops.len(),
                capacity: tops.capacity(),
            });
        }
        let mut seen: Vec<NodeId> = Vec::with_capacity(tops.len());
        for t in tops.entries() {
            if t.id == me {
                return Err(InvariantViolation::SelfTopEntry { node: me });
            }
            if seen.contains(&t.id) {
                return Err(InvariantViolation::DuplicateTopEntry {
                    node: me,
                    dup: t.id,
                });
            }
            seen.push(t.id);
        }

        Ok(())
    }
}

// ----------------------------------------------------------------------
// System (quiescent) invariants
// ----------------------------------------------------------------------

/// Checks cross-node invariants over a set of live machines. Only valid
/// at quiescence — when no multicast, join, or failure-detection traffic
/// is still in flight — because dissemination is asynchronous by design.
///
/// * no duplicate NodeIds;
/// * membership symmetry: for active A ≠ B, `A.covers(B) ⇔ B ∈ A.peers`
///   (the audience-set rule of §2, both directions);
/// * level agreement: recorded pointer levels match the subject's level;
/// * top-list containment: in-scope top entries appear in the peer list.
pub fn check_system<'a, I>(machines: I) -> Result<(), InvariantViolation>
where
    I: IntoIterator<Item = &'a NodeMachine>,
{
    let live: Vec<&NodeMachine> = machines.into_iter().filter(|m| m.is_active()).collect();

    for (i, a) in live.iter().enumerate() {
        for b in live.iter().skip(i + 1) {
            if a.id() == b.id() {
                return Err(InvariantViolation::DuplicateNodeId { id: a.id() });
            }
        }
    }

    for a in &live {
        let ident = NodeIdentity::new(a.id(), a.level());
        for b in &live {
            if a.id() == b.id() {
                continue;
            }
            let held = a.peers().contains(b.id());
            if ident.covers(b.id()) && !held {
                return Err(InvariantViolation::MissingPeer {
                    node: a.id(),
                    missing: b.id(),
                });
            }
            if held {
                // Holding implies covering (the other audience direction).
                if !ident.covers(b.id()) {
                    return Err(InvariantViolation::OutOfScopePointer {
                        node: a.id(),
                        pointer: b.id(),
                    });
                }
                let recorded = a.peers().get(b.id()).map(|p| p.level);
                if let Some(recorded) = recorded {
                    if recorded != b.level() {
                        return Err(InvariantViolation::LevelMismatch {
                            node: a.id(),
                            peer: b.id(),
                            recorded,
                            actual: b.level(),
                        });
                    }
                }
            }
        }

        // Every peer entry references a live machine.
        for p in a.peers().iter() {
            if !live.iter().any(|m| m.id() == p.id) {
                return Err(InvariantViolation::StalePeer {
                    node: a.id(),
                    stale: p.id,
                });
            }
        }

        // Top-node-list ⊆ peer-list, restricted to ids the scope covers
        // (tops of other parts are legitimately outside the list).
        for t in a.tops().entries() {
            if t.id != a.id() && ident.covers(t.id) && !a.peers().contains(t.id) {
                return Err(InvariantViolation::TopNotInPeerList {
                    node: a.id(),
                    top: t.id,
                });
            }
        }
    }

    Ok(())
}

// ----------------------------------------------------------------------
// Exhaustive interleaving sweep
// ----------------------------------------------------------------------

/// One membership operation applied between quiescent states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepOp {
    /// Spawn node `k` of the id table, bootstrapping off the
    /// lowest-indexed live node.
    Join(usize),
    /// Graceful shutdown of node `k`.
    Leave(usize),
    /// Silent crash of node `k` (failure detection must clean up).
    Crash(usize),
    /// Pin node `k` to the given level (§4.3 runtime shifting).
    Shift(usize, u8),
}

/// Parameters for [`exhaustive_sweep`].
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Raw 128-bit ids; index 0 is the seed node, present from the start.
    pub ids: Vec<u128>,
    /// Maximum number of operations per interleaving (search depth).
    pub max_ops: usize,
    /// Simulated time to run after each operation before declaring
    /// quiescence. Must comfortably exceed join round-trips and
    /// probe-based failure detection under [`sweep_protocol_config`].
    pub settle_us: u64,
    /// Levels `Shift` may pin nodes to.
    pub levels: Vec<u8>,
    /// Whether to enumerate silent crashes in addition to graceful leaves.
    pub allow_crash: bool,
}

/// Counters describing how much state space a sweep covered.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Quiescent states visited (including the initial seed state).
    pub states: usize,
    /// Operations applied across all interleavings.
    pub transitions: usize,
    /// Individual machine events after which local invariants held.
    pub events_checked: u64,
    /// Distinct quiescent membership fingerprints observed.
    pub distinct_states: usize,
}

/// A sweep counterexample: the operation trace that led to the violation.
#[derive(Clone, Debug)]
pub struct SweepFailure {
    /// Operations applied, in order, from the initial seed state.
    pub trace: Vec<SweepOp>,
    /// The violated invariant.
    pub violation: InvariantViolation,
}

impl fmt::Display for SweepFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "after {:?}: {}", self.trace, self.violation)
    }
}

impl std::error::Error for SweepFailure {}

/// The fast-timer configuration the sweep runs under: probing every 1 s,
/// 300 ms RPC timeouts, so a crash is detected and disseminated well
/// inside a 10 s settle window.
pub fn sweep_protocol_config() -> ProtocolConfig {
    ProtocolConfig {
        probe_interval_us: 1_000_000,
        rpc_timeout_us: 300_000,
        processing_delay_us: 1_000,
        bandwidth_window_us: 5_000_000,
        ..ProtocolConfig::default()
    }
}

/// A small deterministic event loop over real machines, cloneable so the
/// breadth-first sweep can branch from any quiescent state.
#[derive(Clone)]
struct SweepNet {
    /// One slot per id-table entry; `None` until spawned.
    slots: Vec<Option<NodeMachine>>,
    /// Crashed slots silently drop all delivery.
    dead: Vec<bool>,
    /// Pending deliveries keyed by `(time, seq)` — a BTreeMap so clones
    /// iterate identically. Values carry the destination slot.
    queue: BTreeMap<(u64, u64), (usize, Input)>,
    seq: u64,
    now: u64,
    latency_us: u64,
    events_checked: u64,
}

/// A violation or unexpected machine death observed while driving the net.
enum SweepErr {
    Violation(InvariantViolation),
    /// A machine died with [`Output::Fatal`]; the sweep only applies
    /// well-formed operations, so any fatal is a protocol bug.
    Fatal(NodeId, &'static str),
}

impl SweepNet {
    fn new(ids: &[u128]) -> Self {
        let mut net = SweepNet {
            slots: vec![None; ids.len()],
            dead: vec![false; ids.len()],
            queue: BTreeMap::new(),
            seq: 0,
            now: 0,
            latency_us: 10_000,
            events_checked: 0,
        };
        let (m, outs) = NodeMachine::new_seed(
            sweep_protocol_config(),
            NodeId(ids[0]),
            crate::pointer::Addr(0),
            Bytes::new(),
            1e9,
            1,
        );
        net.slots[0] = Some(m);
        // Seed start-up outputs are timers only; `Fatal` is impossible.
        let _ = net.enqueue(0, outs);
        net
    }

    fn machine(&self, slot: usize) -> Option<&NodeMachine> {
        match &self.slots[slot] {
            Some(m) if !self.dead[slot] => Some(m),
            _ => None,
        }
    }

    /// Live, fully-joined machines.
    fn active(&self) -> impl Iterator<Item = &NodeMachine> + '_ {
        (0..self.slots.len()).filter_map(|s| self.machine(s).filter(|m| m.is_active()))
    }

    fn enqueue(&mut self, from: usize, outs: Vec<Output>) -> Result<(), SweepErr> {
        for o in outs {
            match o {
                Output::Send { to, msg, delay_us } => {
                    let dest = to.addr.0 as usize;
                    let sender = self.slots[from].as_ref();
                    let (id, addr) = match sender {
                        Some(m) => (m.id(), m.addr()),
                        None => continue,
                    };
                    self.seq += 1;
                    let at = self.now + delay_us + self.latency_us;
                    self.queue.insert(
                        (at, self.seq),
                        (
                            dest,
                            Input::Message {
                                from: id,
                                from_addr: addr,
                                msg,
                            },
                        ),
                    );
                }
                Output::SetTimer { delay_us, timer } => {
                    self.seq += 1;
                    self.queue
                        .insert((self.now + delay_us, self.seq), (from, Input::Timer(timer)));
                }
                Output::Fatal(reason) => {
                    let id = self.slots[from].as_ref().map(NodeMachine::id);
                    return Err(SweepErr::Fatal(id.unwrap_or(NodeId(0)), reason));
                }
                Output::Joined | Output::FailureDetected { .. } | Output::LevelShifted { .. } => {}
            }
        }
        Ok(())
    }

    /// Drives one input into `slot`, checking local invariants afterwards.
    fn step(&mut self, slot: usize, input: Input) -> Result<(), SweepErr> {
        let Some(m) = self.slots[slot].as_mut() else {
            return Ok(());
        };
        let outs = m.handle(self.now, input);
        m.check_invariants().map_err(SweepErr::Violation)?;
        self.events_checked += 1;
        self.enqueue(slot, outs)
    }

    fn run_until(&mut self, t_us: u64) -> Result<(), SweepErr> {
        while let Some((&(at, _), _)) = self.queue.first_key_value() {
            if at > t_us {
                break;
            }
            let Some(((at, _), (dest, input))) = self.queue.pop_first() else {
                break;
            };
            self.now = at;
            if self.dead[dest] {
                continue;
            }
            self.step(dest, input)?;
        }
        self.now = t_us;
        Ok(())
    }

    /// Order-insensitive digest of the quiescent membership view, for
    /// counting distinct states (FNV-1a over sorted machine summaries).
    fn membership_fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for s in 0..self.slots.len() {
            match self.machine(s) {
                Some(m) if m.is_active() => {
                    mix(&m.id().raw().to_le_bytes());
                    mix(&[m.level().value()]);
                    for p in m.peers().iter() {
                        mix(&p.id.raw().to_le_bytes());
                        mix(&[p.level.value()]);
                    }
                    mix(&[0xfe]);
                }
                _ => mix(&[0xff]),
            }
        }
        h
    }
}

/// Runs the exhaustive breadth-first sweep: from a single seed node,
/// applies every legal sequence of at most `cfg.max_ops` operations,
/// settling and checking system invariants after each, and checking
/// local invariants after every individual machine event along the way.
///
/// Legality keeps the system well-formed (these are environment
/// constraints, not protocol assumptions): each id joins at most once,
/// at least one live node always remains, and the last active top-level
/// node can neither depart nor shift down (a partition with no top is
/// outside the protocol's §4 operating envelope).
pub fn exhaustive_sweep(cfg: &SweepConfig) -> Result<SweepStats, Box<SweepFailure>> {
    assert!(!cfg.ids.is_empty(), "sweep needs at least a seed id");
    let mut stats = SweepStats::default();
    let mut fingerprints = std::collections::BTreeSet::new();

    let mut net0 = SweepNet::new(&cfg.ids);
    net0.run_until(cfg.settle_us)
        .map_err(|e| to_failure(e, &[]))?;
    check_state(&net0, &[])?;
    stats.states = 1;
    stats.events_checked = net0.events_checked;
    fingerprints.insert(net0.membership_fingerprint());

    // Frontier of (state, trace, joined-mask).
    let mut frontier: Vec<(SweepNet, Vec<SweepOp>, Vec<bool>)> = Vec::new();
    let mut joined0 = vec![false; cfg.ids.len()];
    joined0[0] = true;
    frontier.push((net0, Vec::new(), joined0));

    for _depth in 0..cfg.max_ops {
        let mut next = Vec::new();
        for (net, trace, joined) in &frontier {
            for op in legal_ops(net, joined, cfg) {
                let mut n = net.clone();
                let mut t = trace.clone();
                t.push(op);
                let mut j = joined.clone();
                if let SweepOp::Join(k) = op {
                    j[k] = true;
                }
                let before = n.events_checked;
                apply_op(&mut n, op, cfg).map_err(|e| to_failure(e, &t))?;
                stats.transitions += 1;
                stats.states += 1;
                stats.events_checked += n.events_checked - before;
                check_state(&n, &t)?;
                fingerprints.insert(n.membership_fingerprint());
                next.push((n, t, j));
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }

    stats.distinct_states = fingerprints.len();
    Ok(stats)
}

/// Applies one operation and settles; `Join` resolves its id from the
/// table (`SweepNet` itself is table-free so clones stay cheap).
fn apply_op(net: &mut SweepNet, op: SweepOp, cfg: &SweepConfig) -> Result<(), SweepErr> {
    match op {
        SweepOp::Join(k) => {
            let boot = net.active().next().map(|m| m.as_target());
            // Op legality (enforced by `legal_ops`) guarantees a live
            // bootstrap exists.
            let Some(boot) = boot else {
                return Ok(());
            };
            let (m, outs) = NodeMachine::new_joining(
                sweep_protocol_config(),
                NodeId(cfg.ids[k]),
                crate::pointer::Addr(k as u64),
                Bytes::new(),
                1e9,
                boot,
                k as u64 + 1,
            );
            net.slots[k] = Some(m);
            net.enqueue(k, outs)?;
        }
        SweepOp::Leave(k) => {
            net.step(k, Input::Command(Command::Shutdown))?;
        }
        SweepOp::Crash(k) => {
            net.dead[k] = true;
        }
        SweepOp::Shift(k, l) => {
            net.step(k, Input::Command(Command::SetLevel(Level::new(l))))?;
        }
    }
    let deadline = net.now + cfg.settle_us;
    net.run_until(deadline)
}

/// Enumerates the well-formed operations available from a quiescent state.
fn legal_ops(net: &SweepNet, joined: &[bool], cfg: &SweepConfig) -> Vec<SweepOp> {
    let mut ops = Vec::new();
    let live: Vec<usize> = (0..net.slots.len())
        .filter(|&s| net.machine(s).is_some_and(NodeMachine::is_active))
        .collect();
    let tops: Vec<usize> = live
        .iter()
        .copied()
        .filter(|&s| net.machine(s).is_some_and(|m| m.level().is_top()))
        .collect();

    // Joins: any id not yet spawned, while a bootstrap exists.
    if !live.is_empty() {
        for (k, &already) in joined.iter().enumerate() {
            if !already {
                ops.push(SweepOp::Join(k));
            }
        }
    }

    for &k in &live {
        let is_last_top = tops.len() == 1 && tops[0] == k;
        // Departures: keep at least one live node, and never remove the
        // last top-level node (no-top systems are outside §4's envelope).
        if live.len() > 1 && !is_last_top {
            ops.push(SweepOp::Leave(k));
            if cfg.allow_crash {
                ops.push(SweepOp::Crash(k));
            }
        }
        // Shifts: to any configured level other than the current one;
        // the last top may not shift off level 0.
        let cur = net.machine(k).map(|m| m.level().value()).unwrap_or(u8::MAX);
        for &l in &cfg.levels {
            if l != cur && !(is_last_top && l != 0) {
                ops.push(SweepOp::Shift(k, l));
            }
        }
    }
    ops
}

// The failure side is boxed: a `SweepFailure` carries a whole operation
// trace, and the success path should not pay its size on every return
// (clippy: result_large_err).
fn check_state(net: &SweepNet, trace: &[SweepOp]) -> Result<(), Box<SweepFailure>> {
    check_system(net.active()).map_err(|violation| {
        Box::new(SweepFailure {
            trace: trace.to_vec(),
            violation,
        })
    })
}

fn to_failure(e: SweepErr, trace: &[SweepOp]) -> Box<SweepFailure> {
    match e {
        SweepErr::Violation(violation) => Box::new(SweepFailure {
            trace: trace.to_vec(),
            violation,
        }),
        SweepErr::Fatal(node, _reason) => Box::new(SweepFailure {
            trace: trace.to_vec(),
            // A fatal during a well-formed trace means the node lost its
            // part's top — surface it as the nearest structural violation.
            violation: InvariantViolation::MissingPeer {
                node,
                missing: node,
            },
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: u128 = 0x2000_0000_0000_0000_0000_0000_0000_0000; // 001…
    const B: u128 = 0x6000_0000_0000_0000_0000_0000_0000_0000; // 011…
    const C: u128 = 0xa000_0000_0000_0000_0000_0000_0000_0000; // 101…
    const D: u128 = 0xe000_0000_0000_0000_0000_0000_0000_0000; // 111…

    #[test]
    fn seed_machine_passes_local_invariants() {
        let (m, _outs) = NodeMachine::new_seed(
            sweep_protocol_config(),
            NodeId(A),
            crate::pointer::Addr(0),
            Bytes::new(),
            1e9,
            1,
        );
        m.check_invariants().unwrap();
        check_system([&m]).unwrap();
    }

    #[test]
    fn sweep_three_nodes_joins_and_leaves() {
        let cfg = SweepConfig {
            ids: vec![A, B, C],
            max_ops: 3,
            settle_us: 10_000_000,
            levels: vec![],
            allow_crash: true,
        };
        let stats = exhaustive_sweep(&cfg).unwrap_or_else(|f| panic!("{f}"));
        assert!(stats.states > 10, "explored only {} states", stats.states);
        assert!(stats.events_checked > 0);
        assert!(stats.distinct_states > 1);
    }

    #[test]
    fn sweep_four_nodes_with_shifts() {
        let cfg = SweepConfig {
            ids: vec![A, B, C, D],
            max_ops: 2,
            settle_us: 10_000_000,
            levels: vec![0, 1],
            allow_crash: false,
        };
        let stats = exhaustive_sweep(&cfg).unwrap_or_else(|f| panic!("{f}"));
        assert!(stats.states > 10);
    }

    #[test]
    fn violations_display_mentions_node() {
        let v = InvariantViolation::SelfPointer { node: NodeId(A) };
        assert!(format!("{v}").contains("itself"));
    }
}
