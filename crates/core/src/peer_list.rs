//! Peer lists — every node's large collection of pointers.
//!
//! An `l`-level node's peer list must contain pointers to all nodes whose
//! nodeId shares its first `l` bits (§2). The list is kept sorted by
//! nodeId (the failure-detection circle, §4.1) and secondarily indexed by
//! level so the tree multicast (§4.2) can find "the target node with the
//! highest level from all possible nodes" in `O(levels · log n)`.

use crate::id::{NodeId, Prefix, ID_BITS};
use crate::level::{Level, NodeIdentity};
use crate::pointer::Pointer;
use std::collections::{BTreeMap, BTreeSet};

/// A node's peer list: all known pointers within its eigenstring scope.
///
/// ```
/// use peerwindow_core::prelude::*;
/// let mut list = PeerList::new(Prefix::EMPTY);
/// list.insert(Pointer::new(NodeId::new(42), Addr(7), Level::new(1)));
/// assert_eq!(list.len(), 1);
/// assert!(list.contains(NodeId::new(42)));
/// // Narrowing the scope (a level shift) drops out-of-scope pointers.
/// list.set_scope(Prefix::from_bits_str("1").unwrap());
/// assert!(list.is_empty()); // id 42 starts with a 0 bit
/// ```
#[derive(Clone, Debug, Default)]
pub struct PeerList {
    /// The scope this list is supposed to cover (the owner's eigenstring).
    scope: Prefix,
    /// All entries, ordered by nodeId (the probing circle).
    entries: BTreeMap<NodeId, Pointer>,
    /// Secondary index: ids of entries at each level.
    by_level: Vec<BTreeSet<NodeId>>,
    /// Mutation counter: bumped by every state-changing call so snapshot
    /// publication (`crate::snapshot`) can coalesce "did anything change
    /// since the last capture?" into one integer compare. Not part of the
    /// protocol state: never serialized, never hashed into fingerprints.
    generation: u64,
    /// Like `generation`, but only for changes a serving-layer query can
    /// observe: membership, levels, info, scope. Refresh-stamp touches
    /// (§4.6 probe acks — the steady-state hot path) bump `generation`
    /// only, so publishers gating on this counter skip an O(n) capture
    /// per probe ack.
    content_generation: u64,
}

impl PeerList {
    /// Creates an empty list scoped to `scope`.
    pub fn new(scope: Prefix) -> Self {
        PeerList {
            scope,
            entries: BTreeMap::new(),
            by_level: Vec::new(),
            generation: 0,
            content_generation: 0,
        }
    }

    /// The eigenstring scope this list covers.
    #[inline]
    pub fn scope(&self) -> Prefix {
        self.scope
    }

    /// Mutation counter: increases on every state-changing call (insert,
    /// remove, level/info/refresh updates, re-scoping). Two equal
    /// generations on the *same* list instance mean no mutation happened
    /// in between; snapshot publishers use this to skip redundant
    /// captures. Observation only — cloning copies the current value.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Content-mutation counter: increases only when membership, a
    /// level, attached info, or the scope changes — everything a
    /// serving-layer query can observe. Pure refresh-stamp touches do
    /// *not* bump it, so snapshot publishers gating on this counter stay
    /// off the §4.6 probe-ack hot path.
    #[inline]
    pub fn content_generation(&self) -> u64 {
        self.content_generation
    }

    /// Re-scopes the list (level shift, §4.3). When narrowing, out-of-scope
    /// pointers are dropped ("removes those useless pointers"); when
    /// widening, the caller is responsible for downloading the missing
    /// pointers from a stronger node.
    pub fn set_scope(&mut self, scope: Prefix) {
        self.generation += 1;
        self.content_generation += 1;
        self.scope = scope;
        if !scope.is_empty() {
            let out_of_scope: Vec<NodeId> = self
                .entries
                .keys()
                .copied()
                .filter(|id| !scope.contains(*id))
                .collect();
            for id in out_of_scope {
                self.remove(id);
            }
        }
    }

    /// Number of pointers currently held.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the list is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a pointer by id.
    #[inline]
    pub fn get(&self, id: NodeId) -> Option<&Pointer> {
        self.entries.get(&id)
    }

    /// Whether the list contains `id`.
    #[inline]
    pub fn contains(&self, id: NodeId) -> bool {
        self.entries.contains_key(&id)
    }

    /// Inserts or replaces a pointer. Out-of-scope pointers are accepted
    /// (the protocol may briefly hold them during level shifts) but callers
    /// normally insert within scope. Returns the previous pointer, if any.
    pub fn insert(&mut self, ptr: Pointer) -> Option<Pointer> {
        let id = ptr.id;
        let level = ptr.level;
        let addr = ptr.addr;
        let info = ptr.info.clone(); // refcount bump, not a copy
        self.generation += 1;
        let prev = self.entries.insert(id, ptr);
        // Re-inserting an observably identical pointer (the common case:
        // window exchanges redeliver known peers with fresher stamps) is
        // not a *content* change — gating it out keeps snapshot
        // publishers off the steady-state exchange path.
        if prev
            .as_ref()
            .is_none_or(|old| old.level != level || old.addr != addr || old.info != info)
        {
            self.content_generation += 1;
        }
        if let Some(ref old) = prev {
            if old.level != level {
                self.unindex(id, old.level);
            } else {
                return prev; // index already correct
            }
        }
        self.index(id, level);
        prev
    }

    /// Removes a pointer, returning it if present.
    pub fn remove(&mut self, id: NodeId) -> Option<Pointer> {
        let prev = self.entries.remove(&id);
        if let Some(ref p) = prev {
            self.generation += 1;
            self.content_generation += 1;
            self.unindex(id, p.level);
        }
        prev
    }

    /// Updates the recorded level of `id` (a level-shift event). Returns
    /// `false` if the id is unknown.
    pub fn update_level(&mut self, id: NodeId, level: Level) -> bool {
        // Take the old level out first to appease the borrow checker.
        let old = match self.entries.get(&id) {
            Some(p) => p.level,
            None => return false,
        };
        if old != level {
            self.generation += 1;
            self.content_generation += 1;
            self.unindex(id, old);
            self.index(id, level);
            if let Some(p) = self.entries.get_mut(&id) {
                p.level = level;
            }
        }
        true
    }

    /// Updates the attached info and refresh stamp of `id`.
    pub fn update_info(&mut self, id: NodeId, info: bytes::Bytes, now_us: u64) -> bool {
        match self.entries.get_mut(&id) {
            Some(p) => {
                // §4.6 refresh reports re-deliver the info a node already
                // advertises; only a genuine change is serving-observable.
                if p.info != info {
                    self.content_generation += 1;
                }
                p.info = info;
                p.last_refresh_us = now_us;
                self.generation += 1;
                true
            }
            None => false,
        }
    }

    /// Marks `id` as refreshed at `now_us` (§4.6).
    pub fn touch(&mut self, id: NodeId, now_us: u64) -> bool {
        match self.entries.get_mut(&id) {
            Some(p) => {
                p.last_refresh_us = now_us;
                self.generation += 1;
                true
            }
            None => false,
        }
    }

    /// Iterates over all pointers in nodeId order.
    pub fn iter(&self) -> impl Iterator<Item = &Pointer> + '_ {
        self.entries.values()
    }

    /// Iterates over all pointers within `prefix`, in nodeId order.
    pub fn iter_prefix(&self, prefix: Prefix) -> impl Iterator<Item = &Pointer> + '_ {
        self.entries.range(prefix.id_range()).map(|(_, p)| p)
    }

    /// Number of pointers within `prefix`.
    pub fn count_prefix(&self, prefix: Prefix) -> usize {
        self.entries.range(prefix.id_range()).count()
    }

    /// The pointers a node re-scoping to `prefix` would download from us
    /// (§4.3 step 3 / warm-up): our entries restricted to `prefix`.
    pub fn subset_for(&self, prefix: Prefix) -> Vec<Pointer> {
        self.iter_prefix(prefix).cloned().collect()
    }

    /// The *right neighbor* on the probing circle (§4.1): the entry with
    /// the smallest id strictly greater than `me` among nodes in `group`
    /// (the caller's eigenstring group: same level, same prefix), wrapping
    /// around. Returns `None` when the group has no other member.
    pub fn ring_successor_in_group(
        &self,
        me: NodeId,
        group: Prefix,
        level: Level,
    ) -> Option<&Pointer> {
        let set = self.by_level.get(level.value() as usize)?;
        let range = group.id_range();
        let (start, end) = (*range.start(), *range.end());
        // First candidate after `me`, then wrap to the start of the group.
        let after = set
            .range((
                std::ops::Bound::Excluded(me),
                std::ops::Bound::Included(end),
            ))
            .next();
        let id = match after {
            Some(&id) => id,
            None => *set
                .range((
                    std::ops::Bound::Included(start),
                    std::ops::Bound::Included(end),
                ))
                .find(|&&id| id != me)?,
        };
        if id == me {
            return None;
        }
        self.entries.get(&id)
    }

    /// Number of held entries at `level` whose id falls inside `group` —
    /// the membership count of one eigenstring group as this list sees
    /// it. A peer whose group count is 1 (itself) has no same-group
    /// predecessor anywhere in our view: nobody's §4.1 ring reaches it.
    pub fn count_group(&self, group: Prefix, level: Level) -> usize {
        match self.by_level.get(level.value() as usize) {
            Some(set) => set.range(group.id_range()).count(),
            None => 0,
        }
    }

    /// The right neighbor on the circle formed by the *whole* peer list
    /// (the `ProbeScope::PeerList` extension): the entry with the smallest
    /// id strictly greater than `me`, wrapping around.
    pub fn ring_successor(&self, me: NodeId) -> Option<&Pointer> {
        self.entries
            .range((std::ops::Bound::Excluded(me), std::ops::Bound::Unbounded))
            .next()
            .or_else(|| self.entries.iter().next())
            .map(|(_, p)| p)
            .filter(|p| p.id != me)
    }

    /// Highest level value present in the index.
    fn max_level(&self) -> u8 {
        self.by_level.len().saturating_sub(1) as u8
    }

    /// Finds the strongest audience-set member of `changing` within the id
    /// range `range` — the §4.2 rule "choose a target node with the highest
    /// level from all possible nodes". Ties (several candidates at the
    /// strongest level) are broken by smallest nodeId, which keeps full and
    /// oracle fidelity modes bit-identical. `exclude` (normally the local
    /// node) is never returned.
    ///
    /// A level-`l` entry `c` is in `changing`'s audience set iff
    /// `c.prefix(l) == changing.prefix(l)`; within a fixed range this is a
    /// per-level range test, so the scan is `O(levels · log n)`.
    pub fn strongest_audience_in_range(
        &self,
        range: Prefix,
        changing: NodeId,
        exclude: NodeId,
    ) -> Option<&Pointer> {
        let diverge = changing.common_prefix_len(range.range_start());
        for l in 0..=self.max_level() {
            let set = match self.by_level.get(l as usize) {
                Some(s) if !s.is_empty() => s,
                _ => continue,
            };
            // Level-l members of the audience set have eigenstring equal to
            // changing.prefix(l). Inside `range` they exist only if the two
            // prefixes are compatible.
            let query = if l <= range.len() {
                // Everything in `range` already fixes the first `range.len()`
                // bits; audience requires those bits to agree with `changing`
                // on the first l of them.
                if l <= diverge.min(range.len()) {
                    range
                } else {
                    continue;
                }
            } else {
                // Deeper levels: candidates must extend `changing`'s own
                // prefix, which lies inside `range` only if `range` itself
                // agrees with `changing` on all its bits.
                if diverge >= range.len() && l <= ID_BITS {
                    changing.prefix(l)
                } else {
                    continue;
                }
            };
            let found = set
                .range(query.id_range())
                .find(|&&id| id != exclude && id != changing);
            if let Some(&id) = found {
                return self.entries.get(&id);
            }
        }
        None
    }

    /// Whether any audience-set member of `changing` (other than `exclude`
    /// and `changing` itself) lies within `range`. Used to terminate the
    /// multicast recursion ("until no more appropriate node can be found").
    pub fn any_audience_in_range(&self, range: Prefix, changing: NodeId, exclude: NodeId) -> bool {
        self.strongest_audience_in_range(range, changing, exclude)
            .is_some()
    }

    /// All audience-set members of `changing` present in this list (test
    /// and oracle helper).
    pub fn audience_members(&self, changing: NodeId) -> Vec<NodeIdentity> {
        self.entries
            .values()
            .filter(|p| p.identity().covers(changing))
            .map(|p| p.identity())
            .collect()
    }

    /// Per-level entry counts (reporting).
    pub fn level_histogram(&self) -> Vec<usize> {
        self.by_level.iter().map(|s| s.len()).collect()
    }

    /// Drops every pointer whose `last_refresh_us` is older than
    /// `deadline_for(level)` (§4.6 expiry: an `m`-level pointer unrefreshed
    /// for `3 · LT_m` is removed without explicit probing). Returns the
    /// removed ids.
    pub fn expire(&mut self, mut deadline_for: impl FnMut(Level) -> u64) -> Vec<NodeId> {
        let stale: Vec<NodeId> = self
            .entries
            .values()
            .filter(|p| p.last_refresh_us < deadline_for(p.level))
            .map(|p| p.id)
            .collect();
        for &id in &stale {
            self.remove(id);
        }
        stale
    }

    fn index(&mut self, id: NodeId, level: Level) {
        let l = level.value() as usize;
        if self.by_level.len() <= l {
            self.by_level.resize_with(l + 1, BTreeSet::new);
        }
        self.by_level[l].insert(id);
    }

    fn unindex(&mut self, id: NodeId, level: Level) {
        if let Some(set) = self.by_level.get_mut(level.value() as usize) {
            set.remove(&id);
        }
        while matches!(self.by_level.last(), Some(s) if s.is_empty()) {
            self.by_level.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pointer::Addr;

    fn p(bits: &str, level: u8) -> Pointer {
        let id = Prefix::from_bits_str(bits).unwrap().range_start();
        Pointer::new(id, Addr(0), Level::new(level))
    }

    fn nid(bits: &str) -> NodeId {
        Prefix::from_bits_str(bits).unwrap().range_start()
    }

    /// The 10-node example of figure 1 (4-bit ids, padded to 128 bits).
    fn figure1_list() -> PeerList {
        let mut list = PeerList::new(Prefix::EMPTY);
        for (bits, level) in [
            ("0010", 0), // A
            ("0111", 0), // B
            ("0100", 2), // C
            ("1101", 1), // D
            ("1011", 1), // E
            ("0110", 2), // F
            ("0000", 2), // G
            ("1010", 2), // H
            ("0011", 2), // I
            ("1000", 3), // J
        ] {
            list.insert(p(bits, level));
        }
        list
    }

    #[test]
    fn insert_remove_and_reindex() {
        let mut list = PeerList::new(Prefix::EMPTY);
        assert!(list.is_empty());
        list.insert(p("1010", 2));
        list.insert(p("1010", 2)); // idempotent
        assert_eq!(list.len(), 1);
        assert!(list.update_level(nid("1010"), Level::new(1)));
        assert_eq!(list.get(nid("1010")).unwrap().level, Level::new(1));
        assert_eq!(list.level_histogram(), vec![0, 1]);
        assert!(list.remove(nid("1010")).is_some());
        assert!(list.level_histogram().is_empty());
        assert!(!list.update_level(nid("1010"), Level::TOP));
    }

    #[test]
    fn scope_narrowing_drops_outsiders() {
        let mut list = figure1_list();
        list.set_scope(Prefix::from_bits_str("1").unwrap());
        // Only D, E, H, J start with "1".
        assert_eq!(list.len(), 4);
        assert!(list.contains(nid("1101")));
        assert!(!list.contains(nid("0010")));
    }

    #[test]
    fn ring_successor_wraps_within_group() {
        let list = figure1_list();
        // Level-2 nodes with prefix "0": G(0000), I(0011), C(0100), F(0110).
        let g2 = Prefix::from_bits_str("0").unwrap();
        let next = |me: &str| {
            list.ring_successor_in_group(nid(me), g2, Level::new(2))
                .map(|p| p.id)
        };
        assert_eq!(next("0000"), Some(nid("0011")));
        assert_eq!(next("0110"), Some(nid("0000"))); // wrap
                                                     // Singleton group: the only level-1 node under "11" is D itself.
        let solo = list.ring_successor_in_group(
            nid("1101"),
            Prefix::from_bits_str("11").unwrap(),
            Level::new(1),
        );
        assert!(solo.is_none());
    }

    #[test]
    fn audience_members_match_paper_example() {
        // §2: node E's (1011) audience set = {A, B (level 0), D, E (level 1,
        // eigenstring "1"), H (level 2, eigenstring "10")}.
        let list = figure1_list();
        let mut ids: Vec<NodeId> = list
            .audience_members(nid("1011"))
            .into_iter()
            .map(|i| i.id)
            .collect();
        ids.sort();
        let mut expect = vec![
            nid("0010"),
            nid("0111"),
            nid("1101"),
            nid("1011"),
            nid("1010"),
        ];
        expect.sort();
        assert_eq!(ids, expect);
    }

    #[test]
    fn strongest_audience_prefers_low_level_value() {
        let list = figure1_list();
        let changing = nid("1011"); // E
                                    // In the "0…" half, only the level-0 nodes A and B are audience.
        let range = Prefix::from_bits_str("0").unwrap();
        let t = list
            .strongest_audience_in_range(range, changing, NodeId::MAX)
            .unwrap();
        assert_eq!(t.level, Level::TOP);
        assert_eq!(t.id, nid("0010")); // smallest-id tie-break (A over B)
                                       // In the "10" quarter, H (level 2, eigenstring "10") qualifies.
        let range = Prefix::from_bits_str("10").unwrap();
        let t = list
            .strongest_audience_in_range(range, changing, nid("1011"))
            .unwrap();
        assert_eq!(t.id, nid("1010"));
        // In the "11" quarter, D has level 1 and eigenstring "1": audience.
        let range = Prefix::from_bits_str("11").unwrap();
        let t = list
            .strongest_audience_in_range(range, changing, NodeId::MAX)
            .unwrap();
        assert_eq!(t.id, nid("1101"));
    }

    #[test]
    fn strongest_audience_excludes_changing_and_self() {
        let list = figure1_list();
        let changing = nid("1011");
        // Range "1011…": only E itself lives there; excluded.
        let range = Prefix::from_bits_str("1011").unwrap();
        assert!(list
            .strongest_audience_in_range(range, changing, NodeId::MAX)
            .is_none());
    }

    #[test]
    fn non_audience_levels_are_skipped() {
        let list = figure1_list();
        // Changing node 0101…: audience = A, B (level 0) plus C (0100) and
        // F (0110), both level 2 with eigenstring "01". G (0000) and I
        // (0011) have eigenstring "00" and are not audience members.
        let changing = nid("0101");
        // Range "00" holds A (0010, level 0, audience) plus the
        // non-audience G and I; A is found.
        let range = Prefix::from_bits_str("00").unwrap();
        let t = list
            .strongest_audience_in_range(range, changing, NodeId::MAX)
            .unwrap();
        assert_eq!(t.id, nid("0010"));
        // Range "000" holds only G, a non-audience node.
        let range = Prefix::from_bits_str("000").unwrap();
        assert!(list
            .strongest_audience_in_range(range, changing, NodeId::MAX)
            .is_none());
        // Range "011" holds B (0111, level 0) and F (0110, level 2): the
        // stronger B wins; with B unavailable the scan falls through to F.
        let range = Prefix::from_bits_str("011").unwrap();
        let t = list
            .strongest_audience_in_range(range, changing, NodeId::MAX)
            .unwrap();
        assert_eq!(t.id, nid("0111"));
        let t = list
            .strongest_audience_in_range(range, changing, nid("0111"))
            .unwrap();
        assert_eq!(t.id, nid("0110"));
    }

    #[test]
    fn expire_drops_old_entries() {
        let mut list = figure1_list();
        let now = 1_000_000u64;
        for ptr in [nid("0010"), nid("1011")] {
            list.touch(ptr, now);
        }
        let removed = list.expire(|_| now); // everything untouched dies
        assert_eq!(removed.len(), 8);
        assert_eq!(list.len(), 2);
        assert!(list.contains(nid("0010")));
        assert!(list.contains(nid("1011")));
    }

    #[test]
    fn generation_tracks_every_mutation_kind() {
        let mut list = PeerList::new(Prefix::EMPTY);
        let g0 = list.generation();
        list.insert(p("1010", 2));
        assert!(list.generation() > g0);
        let g = list.generation();
        let cg = list.content_generation();
        // Read-only calls don't move either counter.
        let _ = list.get(nid("1010"));
        let _ = list.level_histogram();
        assert_eq!(list.generation(), g);
        assert_eq!(list.content_generation(), cg);
        // Failed mutations don't move them either.
        assert!(!list.touch(nid("0001"), 5));
        assert!(!list.update_level(nid("0001"), Level::TOP));
        assert!(list.remove(nid("0001")).is_none());
        assert_eq!(list.generation(), g);
        assert_eq!(list.content_generation(), cg);
        // Each successful mutation kind bumps the full counter…
        assert!(list.touch(nid("1010"), 5));
        assert!(list.update_level(nid("1010"), Level::new(1)));
        assert!(list.update_info(nid("1010"), bytes::Bytes::from_static(b"x"), 6));
        // Re-delivering identical info (a §4.6 refresh) is a refresh
        // stamp, not a content change.
        let cg_same = list.content_generation();
        assert!(list.update_info(nid("1010"), bytes::Bytes::from_static(b"x"), 7));
        assert_eq!(list.content_generation(), cg_same);
        list.set_scope(Prefix::from_bits_str("1").unwrap());
        assert!(list.remove(nid("1010")).is_some());
        assert_eq!(list.generation(), g + 6);
        // …but touch() and the identical-info refresh are invisible to
        // the content counter (refresh stamps are not serving-layer
        // state), so it moved two less.
        assert_eq!(list.content_generation(), cg + 4);
    }

    #[test]
    fn subset_for_returns_prefix_slice() {
        let list = figure1_list();
        let sub = list.subset_for(Prefix::from_bits_str("10").unwrap());
        let ids: Vec<NodeId> = sub.iter().map(|p| p.id).collect();
        assert_eq!(ids, vec![nid("1000"), nid("1010"), nid("1011")]);
    }
}
